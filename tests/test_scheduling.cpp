// Tests for the deferral hook (the Hassidim-model scheduling power) and the
// TimeMultiplexStrategy built on it.
#include "adversary/scheduling.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::sim_config;

RequestSet overfull_cycles(std::size_t p, std::size_t cycle, std::size_t laps) {
  // Each core cycles `cycle` private pages; together they exceed K.
  RequestSet rs;
  for (std::size_t j = 0; j < p; ++j) {
    RequestSequence seq;
    const std::vector<PageId> pages =
        page_block(static_cast<PageId>(j * cycle), cycle);
    seq.append_repeated(pages, laps);
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

TEST(TimeMultiplex, ServesOneCoreAtATime) {
  // Cores run strictly in id order: core 1's first service happens after
  // core 0's last.
  const RequestSet rs = overfull_cycles(2, 3, 5);
  TimeMultiplexStrategy mux;
  const RunStats stats = simulate(sim_config(4, 2), rs, mux);
  // Core 0: 3 compulsory faults + hits; core 1 starts afterwards.
  EXPECT_EQ(stats.core(0).faults, 3u);
  EXPECT_EQ(stats.core(1).faults, 3u);
  ASSERT_FALSE(stats.core(1).fault_times.empty());
  EXPECT_GT(stats.core(1).fault_times.front(), stats.core(0).completion_time);
}

TEST(TimeMultiplex, ConvertsThrashIntoCompulsoryMisses) {
  // K = 4 but each of 2 cores cycles 3 pages: concurrently they thrash any
  // honest shared policy; multiplexed, each runs with the whole cache.
  const RequestSet rs = overfull_cycles(2, 3, 40);
  const SimConfig cfg = sim_config(4, 6);

  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats shared = simulate(cfg, rs, lru);
  TimeMultiplexStrategy mux;
  const RunStats muxed = simulate(cfg, rs, mux);

  EXPECT_EQ(muxed.total_faults(), 6u);  // compulsory only
  EXPECT_GT(shared.total_faults(), 20 * muxed.total_faults());
  // With a large tau, fewer faults even wins the makespan despite running
  // serially — the scheduling power is real.
  EXPECT_LT(muxed.makespan(), shared.makespan());
}

TEST(TimeMultiplex, SmallTauFavoursConcurrency) {
  // With tau = 0 faults are cheap: running serially costs makespan.
  const RequestSet rs = overfull_cycles(2, 3, 40);
  const SimConfig cfg = sim_config(4, 0);
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats shared = simulate(cfg, rs, lru);
  TimeMultiplexStrategy mux;
  const RunStats muxed = simulate(cfg, rs, mux);
  EXPECT_LT(muxed.total_faults(), shared.total_faults());
  EXPECT_GT(muxed.makespan(), shared.makespan());
}

TEST(TimeMultiplex, HandlesEmptySequencesAndFinishes) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{});
  rs.add_sequence(RequestSequence{1, 2, 1});
  rs.add_sequence(RequestSequence{});
  TimeMultiplexStrategy mux;
  const RunStats stats = simulate(sim_config(4, 1), rs, mux);
  EXPECT_EQ(stats.core(1).requests, 3u);
}

// A strategy that defers everything forever must be caught as livelock.
class StarveEverything final : public CacheStrategy {
 public:
  void attach(const SimConfig&, std::size_t, const RequestSet*) override {}
  [[nodiscard]] bool defer_request(const AccessContext&,
                                   const CacheState&) override {
    return true;
  }
  void on_hit(const AccessContext&) override {}
  void on_fault(const AccessContext&, const CacheState&, bool,
                std::vector<PageId>&) override {}
  [[nodiscard]] std::string name() const override { return "STARVE"; }
};

TEST(Deferral, TotalStarvationIsLivelockChecked) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  StarveEverything strategy;
  SimConfig cfg = sim_config(2, 0);
  cfg.max_steps = 100;  // cheaper than waiting out the livelock threshold
  Simulator sim(cfg);
  EXPECT_THROW((void)sim.run(rs, strategy), ModelError);
}

TEST(Deferral, DefaultStrategiesNeverDefer) {
  // The in-model strategies keep the paper's "serve as they arrive" rule:
  // per-core completion of an all-hit run is unchanged.
  RequestSet rs;
  RequestSequence seq;
  const std::vector<PageId> one = {1};
  seq.append_repeated(one, 20);
  rs.add_sequence(std::move(seq));
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(2, 3), rs, lru);
  EXPECT_EQ(stats.core(0).completion_time, 22u);  // fault 0..3, hits 4..22
}

}  // namespace
}  // namespace mcp
