// Tests for the PIF decision solver (offline/pif_solver.hpp): agreement with
// the simulator-driven exhaustive search and the structural properties of
// the decision problem (monotone in bounds, antitone in the deadline).
#include "offline/pif_solver.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "offline/exhaustive.hpp"
#include "offline/ftf_solver.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;

PifInstance make_pif(RequestSet rs, std::size_t k, Time tau, Time deadline,
                     std::vector<Count> bounds) {
  PifInstance inst;
  inst.base.requests = std::move(rs);
  inst.base.cache_size = k;
  inst.base.tau = tau;
  inst.deadline = deadline;
  inst.bounds = std::move(bounds);
  return inst;
}

TEST(PifSolver, TrivialBoundsAreFeasible) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1});
  rs.add_sequence(RequestSequence{5, 6});
  // Bounds equal to sequence lengths can never be exceeded.
  const PifInstance inst = make_pif(std::move(rs), 2, 1, 50, {3, 2});
  EXPECT_TRUE(solve_pif(inst).feasible);
}

TEST(PifSolver, ZeroBoundsInfeasibleWhenFaultsAreForced) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  const PifInstance inst = make_pif(std::move(rs), 1, 0, 5, {0});
  EXPECT_FALSE(solve_pif(inst).feasible);
}

TEST(PifSolver, ZeroDeadlineAlwaysFeasible) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  const PifInstance inst = make_pif(std::move(rs), 1, 0, 0, {0});
  EXPECT_TRUE(solve_pif(inst).feasible);
}

TEST(PifSolver, AgreesWithExhaustiveSimulatorSearch) {
  Rng rng(97531);
  int feasible_seen = 0;
  int infeasible_seen = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const std::size_t k = 2 + rng.below(2);
    const Time tau = rng.below(2);
    const Time deadline = 3 + rng.below(10);
    std::vector<Count> bounds = {rng.below(5), rng.below(5)};
    const PifInstance inst = make_pif(rs, k, tau, deadline, bounds);
    const bool dp = solve_pif(inst).feasible;
    const bool brute = exhaustive_pif(inst).feasible;
    EXPECT_EQ(dp, brute) << "trial=" << trial << " deadline=" << deadline
                         << " bounds=" << bounds[0] << "," << bounds[1];
    (dp ? feasible_seen : infeasible_seen)++;
  }
  // The random grid should exercise both answers; if not, the test is too
  // weak and must be re-tuned.
  EXPECT_GT(feasible_seen, 0);
  EXPECT_GT(infeasible_seen, 0);
}

TEST(PifSolver, MonotoneInBounds) {
  Rng rng(22222);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const Time deadline = 4 + rng.below(8);
    const std::vector<Count> bounds = {rng.below(4), rng.below(4)};
    const PifInstance tight = make_pif(rs, 2, 1, deadline, bounds);
    const PifInstance loose =
        make_pif(rs, 2, 1, deadline, {bounds[0] + 1, bounds[1] + 1});
    if (solve_pif(tight).feasible) {
      EXPECT_TRUE(solve_pif(loose).feasible) << "trial=" << trial;
    }
  }
}

TEST(PifSolver, AntitoneInDeadline) {
  // A schedule meeting the bounds at t2 >= t1 meets them at t1 too.
  Rng rng(33333);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const std::vector<Count> bounds = {rng.below(4), rng.below(4)};
    const Time t1 = 3 + rng.below(5);
    const Time t2 = t1 + 1 + rng.below(5);
    const PifInstance late = make_pif(rs, 2, 1, t2, bounds);
    const PifInstance early = make_pif(rs, 2, 1, t1, bounds);
    if (solve_pif(late).feasible) {
      EXPECT_TRUE(solve_pif(early).feasible) << "trial=" << trial;
    }
  }
}

TEST(PifSolver, ConsistentWithFtfOptimum) {
  // With a deadline past every completion, per-core bounds summing below
  // the FTF optimum are infeasible; the per-core fault vector of an optimal
  // run is feasible.
  Rng rng(44444);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    OfflineInstance base;
    base.requests = rs;
    base.cache_size = 2;
    base.tau = 1;
    const Count opt = solve_ftf(base).min_faults;
    const Time deadline = 200;  // far beyond any completion

    // Any bounds b with b0 + b1 < opt must be infeasible.
    if (opt >= 2) {
      const PifInstance too_tight =
          make_pif(rs, 2, 1, deadline, {opt / 2, (opt - 1) - opt / 2});
      EXPECT_FALSE(solve_pif(too_tight).feasible) << "trial=" << trial;
    }
    // Bounds equal to the whole optimum per core are feasible.
    const PifInstance sane = make_pif(rs, 2, 1, deadline, {opt, opt});
    EXPECT_TRUE(solve_pif(sane).feasible) << "trial=" << trial;
  }
}

TEST(PifSolver, FaultAccountingMatchesRunStats) {
  // Cross-check the "faults issued strictly before t" convention: take an
  // actual LRU run, read off its fault vector at a mid-run time, and verify
  // PIF with exactly those bounds is feasible at that deadline.
  Rng rng(55555);
  for (int trial = 0; trial < 6; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    SimConfig cfg;
    cfg.cache_size = 2;
    cfg.fault_penalty = 1;
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, lru);
    const Time deadline = stats.makespan() / 2 + 1;
    const std::vector<Count> bounds = stats.fault_vector_at(deadline);
    const PifInstance inst = make_pif(rs, 2, 1, deadline, bounds);
    EXPECT_TRUE(solve_pif(inst).feasible) << "trial=" << trial;
  }
}

TEST(PifSolver, WitnessScheduleReplaysWithinBounds) {
  // Every feasible decision must come with a schedule the simulator agrees
  // with (LRU continuation after the decision point).
  Rng rng(86420);
  int witnesses = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const Time deadline = 3 + rng.below(10);
    const PifInstance inst = make_pif(
        rs, 2, 1, deadline, {1 + rng.below(5), 1 + rng.below(5)});
    PifOptions options;
    options.build_schedule = true;
    const PifResult result = solve_pif(inst, options);
    if (!result.feasible) continue;
    ++witnesses;
    EXPECT_TRUE(verify_pif_witness(inst, result.schedule))
        << "trial=" << trial << " deadline=" << deadline;
  }
  EXPECT_GT(witnesses, 3);  // the grid must actually exercise the witness path
}

TEST(PifSolver, WitnessFromEarlyTerminalAlsoReplays) {
  // Deadline far beyond completion: success comes from the early-terminal
  // branch; its witness must still verify.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1});
  rs.add_sequence(RequestSequence{5, 6});
  PifInstance inst = make_pif(std::move(rs), 2, 1, 500, {3, 2});
  PifOptions options;
  options.build_schedule = true;
  const PifResult result = solve_pif(inst, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_LT(result.decided_at, 500u);
  EXPECT_TRUE(verify_pif_witness(inst, result.schedule));
}

TEST(PifSolver, RestrictedFeasibleImpliesUnrestrictedFeasible) {
  // The Theorem-5 victim restriction only shrinks the schedule space, so a
  // restricted YES must be an unrestricted YES.  (The converse is not
  // claimed for PIF.)
  Rng rng(1357);
  for (int trial = 0; trial < 12; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const PifInstance inst =
        make_pif(rs, 2, 1, 3 + rng.below(9), {rng.below(4), rng.below(4)});
    PifOptions restricted;
    restricted.victim_rule = VictimRule::kFitfPerSequence;
    if (solve_pif(inst, restricted).feasible) {
      EXPECT_TRUE(solve_pif(inst).feasible) << "trial=" << trial;
    }
  }
}

TEST(PifSolver, LayerWidthLimitThrows) {
  Rng rng(6);
  const RequestSet rs = random_disjoint_workload(rng, 2, 4, 12);
  PifInstance inst = make_pif(rs, 3, 2, 60, {12, 12});
  PifOptions options;
  options.max_layer_width = 2;
  EXPECT_THROW((void)solve_pif(inst, options), ModelError);
}

TEST(PifSolver, ValidatesBoundsSize) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  const PifInstance inst = make_pif(std::move(rs), 1, 0, 5, {0, 0});
  EXPECT_THROW((void)solve_pif(inst), ModelError);
}

}  // namespace
}  // namespace mcp
