// Tests for the static partition strategy sP^B_A
// (strategies/static_partition.hpp).  The central property: for disjoint
// inputs, a static partition decomposes into independent single-core
// problems — part j's fault count equals the sequential fault count of R_j
// with k_j cells, regardless of tau (delays change timing, never one core's
// request order).  This is the decomposition DESIGN.md's partition search
// relies on, so it gets its own property test here.
#include "strategies/static_partition.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

TEST(StaticPartition, NameIncludesSizes) {
  StaticPartitionStrategy strategy({2, 3}, make_policy_factory("fifo"));
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  rs.add_sequence(RequestSequence{2});
  (void)simulate(sim_config(5, 0), rs, strategy);
  EXPECT_EQ(strategy.name(), "sP[2,3]_FIFO");
}

TEST(StaticPartition, RejectsInvalidPartitions) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  rs.add_sequence(RequestSequence{2});
  {
    StaticPartitionStrategy wrong_sum({2, 2}, make_policy_factory("lru"));
    EXPECT_THROW((void)simulate(sim_config(5, 0), rs, wrong_sum), ModelError);
  }
  {
    StaticPartitionStrategy zero_part({5, 0}, make_policy_factory("lru"));
    EXPECT_THROW((void)simulate(sim_config(5, 0), rs, zero_part), ModelError);
  }
  {
    StaticPartitionStrategy wrong_cores({5}, make_policy_factory("lru"));
    EXPECT_THROW((void)simulate(sim_config(5, 0), rs, wrong_cores), ModelError);
  }
}

TEST(StaticPartition, PartsAreIsolated) {
  // Core 0 thrashes its 1-cell part; core 1's working set stays resident in
  // its own part, untouched by core 0's faults.
  RequestSet rs;
  RequestSequence thrash;
  const std::vector<PageId> cycle = {1, 2};
  thrash.append_repeated(cycle, 25);
  rs.add_sequence(std::move(thrash));
  RequestSequence stable;
  const std::vector<PageId> pair = {10, 11};
  stable.append_repeated(pair, 25);
  rs.add_sequence(std::move(stable));

  StaticPartitionStrategy strategy({1, 2}, make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(3, 2), rs, strategy);
  EXPECT_EQ(stats.core(0).faults, 50u);  // 1 cell, alternating pages
  EXPECT_EQ(stats.core(1).faults, 2u);   // both pages fit
}

// Decomposition property across policies, partitions and tau.
struct DecompositionCase {
  std::string policy;
  Time tau;
};

class PartitionDecomposition
    : public ::testing::TestWithParam<DecompositionCase> {};

TEST_P(PartitionDecomposition, FaultsDecomposePerCore) {
  const auto& param = GetParam();
  const PolicyFactory factory = make_policy_factory(param.policy, /*seed=*/11);
  Rng rng(7000 + param.tau);
  for (int trial = 0; trial < 6; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 5, 80);
    for (const Partition& part :
         {Partition{2, 2, 2}, Partition{1, 2, 3}, Partition{4, 1, 1}}) {
      StaticPartitionStrategy strategy(part, factory);
      const RunStats stats =
          simulate(sim_config(6, param.tau), rs, strategy);
      for (CoreId j = 0; j < 3; ++j) {
        const Count expected =
            single_core_policy_faults(rs.sequence(j), part[j], factory);
        EXPECT_EQ(stats.core(j).faults, expected)
            << param.policy << " tau=" << param.tau << " trial=" << trial
            << " part=" << partition_to_string(part) << " core=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyTauGrid, PartitionDecomposition,
    ::testing::Values(DecompositionCase{"lru", 0}, DecompositionCase{"lru", 3},
                      DecompositionCase{"fifo", 0}, DecompositionCase{"fifo", 2},
                      DecompositionCase{"lfu", 1}, DecompositionCase{"mark", 2},
                      DecompositionCase{"clock", 1}));

TEST(StaticPartition, FitfPerPartMatchesBelady) {
  // sP^B_FITF on disjoint inputs is the per-part optimum sP^B_OPT.
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 6, 120);
    const Partition part = {3, 4};
    auto strategy = StaticPartitionStrategy::fitf(part);
    const RunStats stats = simulate(sim_config(7, 2), rs, *strategy);
    for (CoreId j = 0; j < 2; ++j) {
      EXPECT_EQ(stats.core(j).faults, belady_faults(rs.sequence(j), part[j]))
          << "trial=" << trial << " core=" << j;
    }
  }
}

TEST(StaticPartition, LemmaOneUpperBoundHolds) {
  // Lemma 1 (upper bound): sP^B_LRU <= max_j k_j * sP^B_OPT on every input.
  Rng rng(404);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 7, 150);
    const Partition part = {3, 5};
    StaticPartitionStrategy lru(part, make_policy_factory("lru"));
    const RunStats lru_stats = simulate(sim_config(8, 1), rs, lru);
    Count opt_faults = 0;
    for (CoreId j = 0; j < 2; ++j) {
      opt_faults += belady_faults(rs.sequence(j), part[j]);
    }
    EXPECT_LE(lru_stats.total_faults(), 5u * opt_faults) << "trial=" << trial;
  }
}

TEST(StaticPartition, HitsInAnotherCoresPartStillCount) {
  // Non-disjoint input: core 1 requests the page core 0 faulted in.  The
  // partition governs placement, not lookup, so core 1 hits.
  RequestSet rs;
  rs.add_sequence(RequestSequence{5, 5, 5});
  rs.add_sequence(RequestSequence{5, 5, 5});
  StaticPartitionStrategy strategy({1, 1}, make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(2, 1), rs, strategy);
  // Core 0 faults once; core 1's first request joins the in-flight fetch
  // (one more fault); afterwards everyone hits page 5 in core 0's part.
  EXPECT_EQ(stats.total_faults(), 2u);
  EXPECT_EQ(stats.total_hits(), 4u);
}

}  // namespace
}  // namespace mcp
