// Unit tests for the deterministic RNG (core/rng.hpp).
#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mcp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW((void)rng.below(0), ModelError);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.08);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.between(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(123);
  Rng childA = parent.fork(1);
  Rng childB = parent.fork(2);
  Rng childA2 = Rng(123).fork(1);
  EXPECT_NE(childA(), childB());
  // Same parent seed + same salt => same child stream.
  Rng childA_again = Rng(123).fork(1);
  (void)childA2;
  Rng childA_ref = Rng(123).fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA_again(), childA_ref());
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(Splitmix, KnownGoldenValues) {
  // Reference values from the public-domain SplitMix64 implementation.
  std::uint64_t state = 0;
  const std::uint64_t v1 = splitmix64(state);
  const std::uint64_t v2 = splitmix64(state);
  EXPECT_EQ(v1, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(v2, 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace mcp
