// Tests for the relative-progress tracker (core/progress.hpp).
#include "core/progress.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::sim_config;

TEST(ProgressTracker, SamplesAreMonotoneAndSpaced) {
  RequestSet rs;
  RequestSequence seq;
  const std::vector<PageId> two = {1, 2};
  seq.append_repeated(two, 100);
  rs.add_sequence(std::move(seq));

  ProgressTracker tracker(1, /*sample_interval=*/16);
  SharedStrategy lru(make_policy_factory("lru"));
  Simulator sim(sim_config(4, 1));
  sim.add_observer(&tracker);
  (void)sim.run(rs, lru);

  const auto& times = tracker.sample_times();
  ASSERT_GE(times.size(), 3u);
  for (std::size_t s = 0; s < times.size(); ++s) {
    EXPECT_EQ(times[s], s * 16);
  }
  const auto& samples = tracker.samples();
  for (std::size_t s = 1; s < samples.size(); ++s) {
    EXPECT_GE(samples[s][0], samples[s - 1][0]);
  }
}

TEST(ProgressTracker, SymmetricCoresHaveTinySpread) {
  // Two identical hit-friendly cores progress in lockstep.
  RequestSet rs;
  for (int j = 0; j < 2; ++j) {
    RequestSequence seq;
    const std::vector<PageId> pages = {static_cast<PageId>(10 * j),
                                       static_cast<PageId>(10 * j + 1)};
    seq.append_repeated(pages, 100);
    rs.add_sequence(std::move(seq));
  }
  ProgressTracker tracker(2, 16);
  SharedStrategy lru(make_policy_factory("lru"));
  Simulator sim(sim_config(4, 3));
  sim.add_observer(&tracker);
  (void)sim.run(rs, lru);
  EXPECT_LT(tracker.max_spread(rs), 0.05);
}

TEST(ProgressTracker, StarvedCoreShowsLargeSpread) {
  // Core 0 runs from cache; core 1 thrashes a 1-cell part with big tau.
  RequestSet rs;
  RequestSequence fast;
  const std::vector<PageId> one = {1};
  fast.append_repeated(one, 200);
  rs.add_sequence(std::move(fast));
  RequestSequence slow;
  const std::vector<PageId> pair = {11, 12};
  slow.append_repeated(pair, 200);
  rs.add_sequence(std::move(slow));

  ProgressTracker tracker(2, 16);
  StaticPartitionStrategy uneven({3, 1}, make_policy_factory("lru"));
  Simulator sim(sim_config(4, 9));
  sim.add_observer(&tracker);
  (void)sim.run(rs, uneven);
  EXPECT_GT(tracker.max_spread(rs), 0.5);
}

TEST(ProgressTracker, FastForwardStillEmitsSamples) {
  // One core with a huge tau: the simulator skips idle steps, but samples
  // at every interval boundary must still appear.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  ProgressTracker tracker(1, 100);
  SharedStrategy lru(make_policy_factory("lru"));
  Simulator sim(sim_config(4, 500));
  sim.add_observer(&tracker);
  (void)sim.run(rs, lru);
  // Run spans ~1500 steps: samples at 0,100,...,>=1000.
  EXPECT_GE(tracker.sample_times().size(), 10u);
  for (std::size_t s = 1; s < tracker.sample_times().size(); ++s) {
    EXPECT_EQ(tracker.sample_times()[s] - tracker.sample_times()[s - 1], 100u);
  }
}

}  // namespace
}  // namespace mcp
