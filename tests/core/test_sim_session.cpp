// SimSession differential battery: a session advanced through an
// incremental, stalling RequestSource must produce results bit-identical
// to Simulator::run over the full materialized trace — the property the
// mcpd shard layer's determinism rests on (DESIGN.md §13).
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

/// Feeds a RequestSet page-by-page under a grant budget: pull() stalls
/// once a core's granted window is exhausted, ended once the true sequence
/// is drained.  grant() releases more pages, emulating chunk arrival.
class ChunkedSource final : public RequestSource {
 public:
  explicit ChunkedSource(const RequestSet& requests)
      : requests_(&requests),
        cursor_(requests.num_cores(), 0),
        granted_(requests.num_cores(), 0) {}

  [[nodiscard]] std::size_t num_cores() const override {
    return requests_->num_cores();
  }

  PullStatus pull(CoreId core, PageId& page) override {
    const RequestSequence& seq = requests_->sequence(core);
    if (cursor_[core] >= seq.size()) return PullStatus::kEnded;
    if (cursor_[core] >= granted_[core]) return PullStatus::kStalled;
    page = seq[cursor_[core]++];
    return PullStatus::kReady;
  }

  /// Grants `n` more pages to `core` (clamped to the sequence length).
  void grant(CoreId core, std::size_t n) {
    granted_[core] =
        std::min(requests_->sequence(core).size(), granted_[core] + n);
  }

  void grant_all() {
    for (CoreId j = 0; j < requests_->num_cores(); ++j) {
      granted_[j] = requests_->sequence(j).size();
    }
  }

  [[nodiscard]] bool fully_granted() const {
    for (CoreId j = 0; j < requests_->num_cores(); ++j) {
      if (granted_[j] < requests_->sequence(j).size()) return false;
    }
    return true;
  }

 private:
  const RequestSet* requests_;
  std::vector<std::size_t> cursor_;
  std::vector<std::size_t> granted_;
};

void expect_identical(const RunStats& a, const RunStats& b) {
  ASSERT_EQ(a.num_cores(), b.num_cores());
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.sim_steps, b.sim_steps);
  for (CoreId j = 0; j < a.num_cores(); ++j) {
    EXPECT_EQ(a.core(j).hits, b.core(j).hits) << "core " << j;
    EXPECT_EQ(a.core(j).faults, b.core(j).faults) << "core " << j;
    EXPECT_EQ(a.core(j).requests, b.core(j).requests) << "core " << j;
    EXPECT_EQ(a.core(j).completion_time, b.core(j).completion_time)
        << "core " << j;
    EXPECT_EQ(a.core(j).fault_times, b.core(j).fault_times) << "core " << j;
  }
}

/// Runs `requests` through a SimSession with the given grant pattern and
/// returns the stats.  `grant_step` pages are released to one core per
/// stall round-robin (grant_step == 0 means: release everything upfront).
RunStats run_chunked(const SimConfig& config, const RequestSet& requests,
                     CacheStrategy& strategy, std::size_t grant_step,
                     Rng* shuffle_rng = nullptr) {
  ChunkedSource source(requests);
  SimSession session(config, requests.num_cores(), strategy, &requests);
  if (grant_step == 0) source.grant_all();
  CoreId next_core = 0;
  std::size_t rounds = 0;
  const std::size_t round_bound = 16 * (requests.total_requests() + 16);
  while (!session.advance(source)) {
    // Release a little more work; randomized order when a shuffler is given.
    const CoreId core =
        shuffle_rng != nullptr
            ? static_cast<CoreId>(shuffle_rng->below(requests.num_cores()))
            : next_core;
    next_core = static_cast<CoreId>((next_core + 1) % requests.num_cores());
    source.grant(core, grant_step);
    if (++rounds > round_bound) {
      throw ModelError("chunked run failed to make progress");
    }
  }
  return session.take_stats();
}

TEST(SimSession, ChunkedSharedLruMatchesFullRun) {
  Rng rng(0xA5A5);
  for (int trial = 0; trial < 12; ++trial) {
    const RequestSet requests =
        testing::random_disjoint_workload(rng, 3, 16, 120);
    const SimConfig config = testing::sim_config(12, 3);

    SharedStrategy full(make_policy_factory("lru"));
    Simulator sim(config);
    const RunStats want = sim.run(requests, full);

    for (const std::size_t grant : {1u, 3u, 7u, 64u}) {
      SharedStrategy chunked(make_policy_factory("lru"));
      RunStats got;
      {
        SCOPED_TRACE(grant);
        got = run_chunked(config, requests, chunked, grant);
      }
      expect_identical(got, want);
    }
  }
}

TEST(SimSession, ChunkedStaticPartitionMatchesFullRun) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet requests =
        testing::random_disjoint_workload(rng, 4, 12, 90);
    const SimConfig config = testing::sim_config(8, 5);

    StaticPartitionStrategy full(even_partition(8, 4),
                                 make_policy_factory("fifo"));
    Simulator sim(config);
    const RunStats want = sim.run(requests, full);

    StaticPartitionStrategy chunked(even_partition(8, 4),
                                    make_policy_factory("fifo"));
    const RunStats got = run_chunked(config, requests, chunked, 2);
    expect_identical(got, want);
  }
}

TEST(SimSession, RandomizedGrantOrderIsIrrelevant) {
  Rng rng(0xD00D);
  const RequestSet requests =
      testing::random_shared_workload(rng, 3, 24, 150);
  const SimConfig config = testing::sim_config(10, 2);

  SharedStrategy full(make_policy_factory("lru"));
  Simulator sim(config);
  const RunStats want = sim.run(requests, full);

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng shuffle(seed);
    SharedStrategy chunked(make_policy_factory("lru"));
    const RunStats got = run_chunked(config, requests, chunked, 5, &shuffle);
    expect_identical(got, want);
  }
}

TEST(SimSession, UngatedSourceFinishesInOneAdvance) {
  Rng rng(0x11);
  const RequestSet requests = testing::random_disjoint_workload(rng, 2, 8, 40);
  const SimConfig config = testing::sim_config(6, 1);
  SharedStrategy strategy(make_policy_factory("lru"));
  ChunkedSource source(requests);
  source.grant_all();
  SimSession session(config, 2, strategy, &requests);
  EXPECT_TRUE(session.advance(source));
  EXPECT_TRUE(session.finished());
  // A finished session's advance is idempotent.
  EXPECT_TRUE(session.advance(source));
}

TEST(SimSession, TakeStatsBeforeFinishThrows) {
  Rng rng(0x22);
  const RequestSet requests = testing::random_disjoint_workload(rng, 2, 8, 40);
  const SimConfig config = testing::sim_config(6, 1);
  SharedStrategy strategy(make_policy_factory("lru"));
  ChunkedSource source(requests);  // nothing granted: stalls immediately
  SimSession session(config, 2, strategy, &requests);
  EXPECT_FALSE(session.advance(source));
  EXPECT_THROW((void)session.take_stats(), ModelError);
}

TEST(SimSession, EmptySequencesFinishImmediately) {
  RequestSet requests(3);  // three cores, all empty
  const SimConfig config = testing::sim_config(4, 2);
  SharedStrategy strategy(make_policy_factory("lru"));
  ChunkedSource source(requests);
  SimSession session(config, 3, strategy, &requests);
  EXPECT_TRUE(session.advance(source));
  const RunStats stats = session.take_stats();
  EXPECT_EQ(stats.total_requests(), 0u);
  EXPECT_EQ(stats.end_time, 0u);
}

}  // namespace
}  // namespace mcp
