// Differential test battery for the batched lockstep engine
// (core/batch_engine.hpp): for every batchable strategy x workload x tau x
// shared-fetch cell, BatchEngine must produce RunStats bit-equal to the
// retained scalar Simulator driving the real strategy objects — hits,
// faults, fault timelines, completion times, end time and step count — at
// every tested batch width B, including ragged tails where lanes finish at
// different trace lengths.  Error behaviour (reserved-full cache, max_steps
// abort) must match too.
#include "core/batch_engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::random_shared_workload;

void expect_same_stats(const RunStats& batched, const RunStats& scalar,
                       const std::string& label) {
  ASSERT_EQ(batched.num_cores(), scalar.num_cores()) << label;
  EXPECT_EQ(batched.end_time, scalar.end_time) << label;
  EXPECT_EQ(batched.sim_steps, scalar.sim_steps) << label;
  for (CoreId j = 0; j < batched.num_cores(); ++j) {
    const CoreStats& a = batched.core(j);
    const CoreStats& b = scalar.core(j);
    EXPECT_EQ(a.hits, b.hits) << label << " core=" << j;
    EXPECT_EQ(a.faults, b.faults) << label << " core=" << j;
    EXPECT_EQ(a.requests, b.requests) << label << " core=" << j;
    EXPECT_EQ(a.completion_time, b.completion_time) << label << " core=" << j;
    EXPECT_EQ(a.fault_times, b.fault_times) << label << " core=" << j;
  }
}

/// A batchable strategy: the spec the batch engine runs and the factory for
/// the equivalent scalar strategy object (rebuilt fresh per run).
struct BatchableCase {
  std::string label;
  BatchStrategySpec spec;
  std::function<std::unique_ptr<CacheStrategy>()> make_scalar;
};

std::vector<BatchableCase> batchable_grid(std::size_t p, std::size_t K) {
  std::vector<BatchableCase> grid;
  grid.push_back({"S_lru", BatchStrategySpec::shared(BatchPolicy::kLru), [] {
                    return std::make_unique<SharedStrategy>(
                        make_policy_factory("lru"));
                  }});
  grid.push_back({"S_fifo", BatchStrategySpec::shared(BatchPolicy::kFifo), [] {
                    return std::make_unique<SharedStrategy>(
                        make_policy_factory("fifo"));
                  }});
  const Partition even = even_partition(K, p);
  grid.push_back(
      {"sP_even_lru", BatchStrategySpec::static_partition(even, BatchPolicy::kLru),
       [even] {
         return std::make_unique<StaticPartitionStrategy>(
             even, make_policy_factory("lru"));
       }});
  grid.push_back(
      {"sP_even_fifo",
       BatchStrategySpec::static_partition(even, BatchPolicy::kFifo), [even] {
         return std::make_unique<StaticPartitionStrategy>(
             even, make_policy_factory("fifo"));
       }});
  Partition skew(p, 1);
  skew[0] = K - (p - 1);
  grid.push_back(
      {"sP_skew_lru", BatchStrategySpec::static_partition(skew, BatchPolicy::kLru),
       [skew] {
         return std::make_unique<StaticPartitionStrategy>(
             skew, make_policy_factory("lru"));
       }});
  return grid;
}

struct WorkloadCase {
  std::string label;
  RequestSet requests;
  bool disjoint = true;
};

std::vector<WorkloadCase> workload_grid(std::size_t p) {
  std::vector<WorkloadCase> grid;
  {
    Rng rng(20260807);
    grid.push_back(
        {"disjoint_uniform", random_disjoint_workload(rng, p, 7, 160), true});
  }
  {
    Rng rng(4242);
    grid.push_back(
        {"shared_uniform", random_shared_workload(rng, p, 12, 160), false});
  }
  {
    CoreWorkload core;
    core.pattern = AccessPattern::kZipf;
    core.num_pages = 24;
    core.length = 200;
    grid.push_back(
        {"disjoint_zipf", make_workload(homogeneous_spec(p, core)), true});
  }
  {
    // Ragged per-core lengths, including an empty sequence: lanes in the
    // same cell — and cells in the same batch — finish at different times.
    Rng rng(99);
    RequestSet rs;
    rs.add_sequence({});
    RequestSequence mid;
    for (std::size_t i = 0; i < 45; ++i) {
      mid.push_back(100 + static_cast<PageId>(rng.below(5)));
    }
    rs.add_sequence(std::move(mid));
    RequestSequence lng;
    for (std::size_t i = 0; i < 160; ++i) {
      lng.push_back(200 + static_cast<PageId>(rng.below(9)));
    }
    rs.add_sequence(std::move(lng));
    grid.push_back({"ragged_lengths", std::move(rs), true});
  }
  {
    // Sparse page ids stress the page->slot index lane sizing.
    RequestSet rs;
    rs.add_sequence({5000, 7, 5000, 4321, 7, 5000});
    rs.add_sequence({9, 4999, 9, 4999, 9});
    rs.add_sequence({1234});
    grid.push_back({"sparse_ids", std::move(rs), true});
  }
  return grid;
}

TEST(BatchDifferential, BitEqualToScalarEngineAcrossGridAndWidths) {
  const std::size_t p = 3;
  const std::size_t K = 6;
  const std::vector<WorkloadCase> workloads = workload_grid(p);
  const std::vector<BatchableCase> strategies = batchable_grid(p, K);

  std::vector<SimJob> jobs;
  std::vector<RunStats> expected;
  std::vector<std::string> labels;
  for (const WorkloadCase& wl : workloads) {
    for (const BatchableCase& sc : strategies) {
      for (const Time tau : {Time{0}, Time{3}}) {
        for (const SharedFetchMode mode :
             {SharedFetchMode::kCountsAsFault, SharedFetchMode::kJoinsFetch}) {
          // Shared-fetch mode only matters for non-disjoint inputs; skip
          // the redundant duplicate run on disjoint ones.
          if (wl.disjoint && mode == SharedFetchMode::kJoinsFetch) continue;
          SimConfig config = testing::sim_config(K, tau);
          config.shared_fetch = mode;
          config.record_fault_timeline = true;

          SimJob job;
          job.config = config;
          job.requests = &wl.requests;
          job.strategy = sc.spec;
          jobs.push_back(std::move(job));

          const std::unique_ptr<CacheStrategy> scalar = sc.make_scalar();
          Simulator sim(config);
          expected.push_back(sim.run(wl.requests, *scalar));
          labels.push_back(wl.label + "/" + sc.label +
                           "/tau=" + std::to_string(tau) +
                           (mode == SharedFetchMode::kJoinsFetch ? "/join"
                                                                 : "/fault"));
        }
      }
    }
  }
  // A couple of off-grid shapes so batches mix heterogeneous K and tau.
  for (const Time tau : {Time{1}, Time{5}}) {
    SimConfig config = testing::sim_config(3, tau);
    SimJob job;
    job.config = config;
    job.requests = &workloads[0].requests;
    job.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
    jobs.push_back(std::move(job));
    SharedStrategy scalar(make_policy_factory("lru"));
    Simulator sim(config);
    expected.push_back(sim.run(workloads[0].requests, scalar));
    labels.push_back("off_grid/K=3/tau=" + std::to_string(tau));
  }
  ASSERT_GT(jobs.size(), 60u);

  for (const std::size_t width :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{64}}) {
    SweepRunner sweep;
    const std::vector<RunStats> got = sweep.run_jobs(jobs, width);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_stats(got[i], expected[i],
                        labels[i] + "/B=" + std::to_string(width));
    }
  }
}

TEST(BatchDifferential, PhasedSteppingWithValidationMatchesOneShot) {
  const std::size_t p = 3;
  const std::size_t K = 6;
  Rng rng(777);
  const RequestSet disjoint = random_disjoint_workload(rng, p, 6, 120);
  const RequestSet shared = random_shared_workload(rng, p, 10, 80);

  std::vector<SimJob> jobs;
  for (const RequestSet* rs : {&disjoint, &shared}) {
    for (const Time tau : {Time{0}, Time{2}}) {
      SimJob job;
      job.config = testing::sim_config(K, tau);
      job.requests = rs;
      job.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
      jobs.push_back(std::move(job));
      SimJob part_job;
      part_job.config = testing::sim_config(K, tau);
      part_job.requests = rs;
      part_job.strategy = BatchStrategySpec::static_partition(
          even_partition(K, p), BatchPolicy::kFifo);
      jobs.push_back(std::move(part_job));
    }
  }

  BatchEngine one_shot;
  const std::vector<RunStats> direct = one_shot.run(jobs);

  // Phased: validate the lane/cell invariants after every round (in any
  // build type, not just MCP_CHECKED).
  BatchEngine phased(BatchEngineOptions{.alloc_guard = false});
  std::vector<RunStats> out(jobs.size());
  phased.load(jobs, out);
  phased.validate();
  std::size_t rounds = 0;
  while (phased.step_round() > 0) {
    phased.validate();
    ++rounds;
  }
  phased.validate();
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(phased.active_lanes(), 0u);

  Count steps_sum = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_same_stats(out[i], direct[i], "phased job " + std::to_string(i));
    steps_sum += direct[i].sim_steps;
  }
  EXPECT_EQ(phased.lane_steps(), steps_sum);
  EXPECT_EQ(one_shot.lane_steps(), steps_sum);
}

TEST(BatchDifferential, AllReservedCacheThrowsLikeScalar) {
  // K=1, two cores faulting different pages in the same step: the second
  // needs a cell while the only slot is reserved by an in-flight fetch.
  RequestSet rs;
  rs.add_sequence({1});
  rs.add_sequence({2});
  const SimConfig config = testing::sim_config(1, 2);

  SharedStrategy scalar(make_policy_factory("lru"));
  Simulator sim(config);
  EXPECT_THROW((void)sim.run(rs, scalar), ModelError);

  SimJob job;
  job.config = config;
  job.requests = &rs;
  job.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
  BatchEngine engine;
  EXPECT_THROW((void)engine.run(std::span<const SimJob>(&job, 1)), ModelError);
}

TEST(BatchDifferential, MaxStepsAbortMatchesScalar) {
  Rng rng(5);
  const RequestSet rs = random_disjoint_workload(rng, 2, 8, 200);
  SimConfig config = testing::sim_config(4, 3);
  config.max_steps = 10;

  SharedStrategy scalar(make_policy_factory("lru"));
  Simulator sim(config);
  EXPECT_THROW((void)sim.run(rs, scalar), ModelError);

  SimJob job;
  job.config = config;
  job.requests = &rs;
  job.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
  BatchEngine engine;
  EXPECT_THROW((void)engine.run(std::span<const SimJob>(&job, 1)), ModelError);
}

// --- Cohort mode (mcpd's per-shard scheduler) -------------------------------

/// Reveals a full trace to a cohort lane in chunks, the way mcpd's shard
/// drains ingress frames into a session's append-only buffer.
struct CohortFeeder {
  const RequestSet* full;
  RequestSet revealed;
  std::vector<std::size_t> sent;
  PageId bound = 0;
  bool closed = false;

  explicit CohortFeeder(const RequestSet& trace)
      : full(&trace),
        revealed(trace.num_cores()),
        sent(trace.num_cores(), 0) {}

  /// Reveals up to `chunk` more pages per core; once the trace is used up
  /// the feeder marks itself closed.  Returns true while anything moved.
  bool feed(std::size_t chunk) {
    bool moved = false;
    for (CoreId core = 0; core < full->num_cores(); ++core) {
      const RequestSequence& seq = full->sequence(core);
      const std::size_t n = std::min(chunk, seq.size() - sent[core]);
      for (std::size_t i = 0; i < n; ++i) {
        const PageId page = seq[sent[core] + i];
        bound = std::max(bound, page + 1);
        revealed.sequence(core).push_back(page);
      }
      sent[core] += n;
      moved |= n > 0;
    }
    if (!moved) closed = true;
    return moved;
  }
};

/// Feeds every lane in chunks until all end, validating between drains, and
/// returns each lane's detached RunStats.
std::vector<RunStats> run_cohort(BatchEngine& engine,
                                 std::vector<std::uint32_t>& lanes,
                                 std::vector<CohortFeeder>& feeders,
                                 std::size_t chunk) {
  bool all_ended = false;
  while (!all_ended) {
    all_ended = true;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (engine.lane_status(lanes[i]) == BatchLaneStatus::kEnded) continue;
      all_ended = false;
      // Stagger chunk sizes across lanes so refreshes interleave unevenly.
      feeders[i].feed(chunk + i % 2);
      engine.refresh_lane(lanes[i], feeders[i].revealed, feeders[i].bound,
                          feeders[i].closed);
    }
    engine.drain();
    engine.validate();
  }
  std::vector<RunStats> got;
  got.reserve(lanes.size());
  for (const std::uint32_t lane : lanes) {
    got.push_back(engine.detach_lane(lane));
  }
  return got;
}

TEST(BatchDifferential, CohortChunkedFeedsBitEqualToScalar) {
  const std::size_t p = 3;
  const std::size_t K = 6;
  const std::vector<WorkloadCase> workloads = workload_grid(p);
  const std::vector<BatchableCase> strategies = batchable_grid(p, K);

  for (const BatchableCase& sc : strategies) {
    for (const Time tau : {Time{0}, Time{3}}) {
      SimConfig config = testing::sim_config(K, tau);
      config.record_fault_timeline = true;
      std::vector<RunStats> expected;
      for (const WorkloadCase& wl : workloads) {
        const std::unique_ptr<CacheStrategy> scalar = sc.make_scalar();
        Simulator sim(config);
        expected.push_back(sim.run(wl.requests, *scalar));
      }

      for (const std::size_t chunk :
           {std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
        CohortShape shape;
        shape.cache_size = K;
        shape.num_cores = p;
        shape.fault_penalty = tau;
        shape.record_fault_timeline = true;
        shape.strategy = sc.spec;
        BatchEngine engine;
        engine.init_cohort(shape);

        std::vector<CohortFeeder> feeders;
        std::vector<std::uint32_t> lanes;
        feeders.reserve(workloads.size());
        for (const WorkloadCase& wl : workloads) {
          feeders.emplace_back(wl.requests);
          lanes.push_back(engine.attach_lane());
        }
        const std::vector<RunStats> got =
            run_cohort(engine, lanes, feeders, chunk);
        for (std::size_t i = 0; i < got.size(); ++i) {
          expect_same_stats(got[i], expected[i],
                            workloads[i].label + "/" + sc.label + "/tau=" +
                                std::to_string(tau) + "/chunk=" +
                                std::to_string(chunk));
        }
        EXPECT_EQ(engine.active_lanes(), 0u);
      }
    }
  }
}

TEST(BatchDifferential, CohortLateAttachAndSlotReuse) {
  const std::size_t p = 2;
  const std::size_t K = 4;
  Rng rng(31337);
  const RequestSet trace_a = random_disjoint_workload(rng, p, 6, 120);
  const RequestSet trace_b = random_shared_workload(rng, p, 8, 90);
  const RequestSet trace_c = random_disjoint_workload(rng, p, 5, 150);
  const RequestSet trace_d = random_shared_workload(rng, p, 7, 60);

  SimConfig config = testing::sim_config(K, 2);
  config.record_fault_timeline = true;
  const auto oracle = [&config](const RequestSet& trace) {
    SharedStrategy scalar(make_policy_factory("lru"));
    Simulator sim(config);
    return sim.run(trace, scalar);
  };

  CohortShape shape;
  shape.cache_size = K;
  shape.num_cores = p;
  shape.fault_penalty = 2;
  shape.record_fault_timeline = true;
  shape.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
  BatchEngine engine;
  engine.init_cohort(shape);

  // Two lanes start and park mid-flight on a partial feed.
  CohortFeeder fa(trace_a);
  CohortFeeder fb(trace_b);
  const std::uint32_t la = engine.attach_lane();
  const std::uint32_t lb = engine.attach_lane();
  fa.feed(20);
  fb.feed(15);
  engine.refresh_lane(la, fa.revealed, fa.bound, fa.closed);
  engine.refresh_lane(lb, fb.revealed, fb.bound, fb.closed);
  engine.drain();
  engine.validate();
  EXPECT_EQ(engine.lane_status(la), BatchLaneStatus::kStalled);
  EXPECT_EQ(engine.lane_status(lb), BatchLaneStatus::kStalled);

  // A third session joins the live cohort; all three then run to the end.
  CohortFeeder fc(trace_c);
  const std::uint32_t lc = engine.attach_lane();
  EXPECT_EQ(lc, 2u);
  std::vector<std::uint32_t> lanes = {la, lb, lc};
  std::vector<CohortFeeder> feeders;
  feeders.push_back(std::move(fa));
  feeders.push_back(std::move(fb));
  feeders.push_back(std::move(fc));
  const std::vector<RunStats> got = run_cohort(engine, lanes, feeders, 9);
  expect_same_stats(got[0], oracle(trace_a), "late_attach/a");
  expect_same_stats(got[1], oracle(trace_b), "late_attach/b");
  expect_same_stats(got[2], oracle(trace_c), "late_attach/c");
  const Count steps_after_first_wave = engine.lane_steps();
  EXPECT_EQ(steps_after_first_wave, got[0].sim_steps + got[1].sim_steps +
                                        got[2].sim_steps);

  // A fourth session reuses a detached slot; earlier lanes' steps stay in
  // the monotonic counter.
  CohortFeeder fd(trace_d);
  const std::uint32_t ld = engine.attach_lane();
  EXPECT_LT(ld, 3u);
  std::vector<std::uint32_t> lanes2 = {ld};
  std::vector<CohortFeeder> feeders2;
  feeders2.push_back(std::move(fd));
  const std::vector<RunStats> got2 = run_cohort(engine, lanes2, feeders2, 4);
  expect_same_stats(got2[0], oracle(trace_d), "slot_reuse/d");
  EXPECT_EQ(engine.lane_steps(),
            steps_after_first_wave + got2[0].sim_steps);
}

TEST(BatchDifferential, CohortRefreshContract) {
  CohortShape shape;
  shape.cache_size = 4;
  shape.num_cores = 2;
  shape.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
  BatchEngine engine;
  engine.init_cohort(shape);
  const std::uint32_t lane = engine.attach_lane();

  // Core-count mismatch.
  RequestSet wrong(std::size_t{3});
  EXPECT_THROW(engine.refresh_lane(lane, wrong, 0, false), ModelError);

  // A closed lane cannot reopen, and a feed may only grow.
  RequestSet trace(std::size_t{2});
  trace.sequence(0).push_back(1);
  engine.refresh_lane(lane, trace, 2, true);
  EXPECT_THROW(engine.refresh_lane(lane, trace, 2, false), ModelError);
  engine.drain();
  EXPECT_EQ(engine.lane_status(lane), BatchLaneStatus::kEnded);

  // Detaching a not-ended lane is rejected; ended lanes detach cleanly.
  const std::uint32_t parked = engine.attach_lane();
  EXPECT_THROW((void)engine.detach_lane(parked), ModelError);
  const RunStats stats = engine.detach_lane(lane);
  EXPECT_EQ(stats.core(0).requests, 1u);

  // Shared cohorts with K < p may deadlock on reserved slots; the shape is
  // rejected up front (such sessions belong on the scalar path).
  CohortShape narrow;
  narrow.cache_size = 1;
  narrow.num_cores = 2;
  narrow.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
  BatchEngine rejected;
  EXPECT_THROW(rejected.init_cohort(narrow), ModelError);
}

TEST(BatchDifferential, RejectsMalformedJobs) {
  RequestSet rs;
  rs.add_sequence({1, 2, 3});
  rs.add_sequence({4, 5});
  BatchEngine engine;

  SimJob no_requests;
  no_requests.config = testing::sim_config(2, 0);
  EXPECT_THROW((void)engine.run(std::span<const SimJob>(&no_requests, 1)),
               ModelError);

  SimJob bad_partition;
  bad_partition.config = testing::sim_config(4, 0);
  bad_partition.requests = &rs;
  bad_partition.strategy =
      BatchStrategySpec::static_partition({3, 2}, BatchPolicy::kLru);
  EXPECT_THROW((void)engine.run(std::span<const SimJob>(&bad_partition, 1)),
               ModelError);

  SimJob starved;
  starved.config = testing::sim_config(4, 0);
  starved.requests = &rs;
  starved.strategy =
      BatchStrategySpec::static_partition({4, 0}, BatchPolicy::kLru);
  EXPECT_THROW((void)engine.run(std::span<const SimJob>(&starved, 1)),
               ModelError);
}

}  // namespace
}  // namespace mcp
