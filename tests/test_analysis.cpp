// Tests for trace analysis (workload/analysis.hpp): stack-distance
// histograms and the Mattson one-pass LRU miss-ratio curve, cross-checked
// against the direct LRU runner; plus the parallel_for helper.
#include "workload/analysis.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "workload/workload.hpp"

namespace mcp {
namespace {

TEST(StackDistance, HandComputedExample) {
  // 1 2 1 3 2 1:
  //   1@0 cold; 2@1 cold; 1@2 d=1 (saw 2); 3@3 cold; 2@4 d=2 (1,3);
  //   1@5 d=2 (3,2).
  const RequestSequence seq{1, 2, 1, 3, 2, 1};
  const StackDistanceHistogram hist(seq);
  EXPECT_EQ(hist.cold(), 3u);
  EXPECT_EQ(hist.at(0), 0u);
  EXPECT_EQ(hist.at(1), 1u);
  EXPECT_EQ(hist.at(2), 2u);
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_EQ(hist.distinct(), 3u);
}

TEST(StackDistance, ImmediateRepeatIsDistanceZero) {
  const RequestSequence seq{5, 5, 5};
  const StackDistanceHistogram hist(seq);
  EXPECT_EQ(hist.cold(), 1u);
  EXPECT_EQ(hist.at(0), 2u);
  EXPECT_EQ(hist.lru_faults(1), 1u);  // one cell suffices
}

TEST(StackDistance, EmptySequence) {
  const StackDistanceHistogram hist(RequestSequence{});
  EXPECT_EQ(hist.cold(), 0u);
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_EQ(hist.lru_faults(4), 0u);
}

TEST(StackDistance, CurveMonotoneAndBounded) {
  Rng rng(42);
  RequestSequence seq;
  for (int i = 0; i < 500; ++i) seq.push_back(static_cast<PageId>(rng.below(20)));
  const StackDistanceHistogram hist(seq);
  const std::vector<Count> curve = hist.lru_curve(22);
  EXPECT_EQ(curve[0], seq.size());  // zero cells: everything faults
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_LE(curve[k], curve[k - 1]) << "k=" << k;
  }
  // Beyond the distinct count only compulsory misses remain.
  EXPECT_EQ(curve[20], hist.cold());
  EXPECT_EQ(curve[22], hist.cold());
}

TEST(StackDistance, MatchesDirectLruRunner) {
  // The headline property: Mattson's one-pass curve equals running LRU at
  // every cache size, over randomized traces of several shapes.
  Rng rng(7);
  for (AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kZipf,
        AccessPattern::kWorkingSet, AccessPattern::kLoop,
        AccessPattern::kScan}) {
    CoreWorkload core;
    core.pattern = pattern;
    core.num_pages = 16;
    core.length = 400;
    core.working_set = 5;
    core.loop_length = 7;
    Rng gen = rng.fork(static_cast<std::uint64_t>(pattern));
    const RequestSequence seq = generate_sequence(core, 0, gen);
    const StackDistanceHistogram hist(seq);
    for (std::size_t k = 0; k <= 18; ++k) {
      EXPECT_EQ(hist.lru_faults(k),
                single_core_policy_faults(seq, k, make_policy_factory("lru")))
          << to_string(pattern) << " k=" << k;
    }
  }
}

TEST(StackDistance, DominatedByBelady) {
  Rng rng(9);
  RequestSequence seq;
  for (int i = 0; i < 300; ++i) seq.push_back(static_cast<PageId>(rng.below(12)));
  const StackDistanceHistogram hist(seq);
  for (std::size_t k = 1; k <= 12; ++k) {
    EXPECT_GE(hist.lru_faults(k), belady_faults(seq, k)) << "k=" << k;
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> touched(kCount);
  parallel_for(kCount, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(2, [&](std::size_t) { ++calls; });  // serial fallback
  EXPECT_EQ(calls, 2);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MaxThreadsOneIsSerial) {
  std::vector<int> order;
  parallel_for(
      8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace mcp
