// Shared helpers for mcpaging tests: small random workload builders used by
// property tests (the workload library proper lives in src/workload; these
// are deliberately tiny and independent so core tests don't depend on it).
#pragma once

#include "core/request.hpp"
#include "core/rng.hpp"
#include "core/strategy.hpp"

namespace mcp::testing {

/// Random disjoint request set: core j draws uniformly from its own block of
/// `pages_per_core` page ids.
inline RequestSet random_disjoint_workload(Rng& rng, std::size_t num_cores,
                                           std::size_t pages_per_core,
                                           std::size_t requests_per_core) {
  RequestSet rs;
  for (std::size_t j = 0; j < num_cores; ++j) {
    RequestSequence seq;
    const PageId base = static_cast<PageId>(j * pages_per_core);
    for (std::size_t i = 0; i < requests_per_core; ++i) {
      seq.push_back(base + static_cast<PageId>(rng.below(pages_per_core)));
    }
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

/// Random request set where all cores share one page universe (non-disjoint
/// with high probability).
inline RequestSet random_shared_workload(Rng& rng, std::size_t num_cores,
                                         std::size_t universe,
                                         std::size_t requests_per_core) {
  RequestSet rs;
  for (std::size_t j = 0; j < num_cores; ++j) {
    RequestSequence seq;
    for (std::size_t i = 0; i < requests_per_core; ++i) {
      seq.push_back(static_cast<PageId>(rng.below(universe)));
    }
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

/// SimConfig shorthand.
inline SimConfig sim_config(std::size_t cache_size, Time tau) {
  SimConfig cfg;
  cfg.cache_size = cache_size;
  cfg.fault_penalty = tau;
  return cfg;
}

}  // namespace mcp::testing
