// mcp-verify fixture: MUST fail rule `atomic-order` (linted as a
// src/service file).
#include <atomic>
#include <cstdint>

struct Counter {
  std::atomic<std::uint64_t> pending_{0};

  void arrive() {
    pending_.fetch_add(1);  // fail: defaulted seq_cst, claim unstated
  }
  std::uint64_t read() const {
    return pending_.load();  // fail: defaulted seq_cst
  }
  void reset() {
    pending_ = 0;  // fail: operator store, implicit seq_cst
  }
  void bump() {
    ++pending_;  // fail: operator RMW, implicit seq_cst
  }
};
