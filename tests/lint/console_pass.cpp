// mcp-verify fixture: MUST pass rule `console`.
// Engines report through return values; snprintf-into-buffer is fine.
#include <cstdio>

int format(char* buffer, int size, int faults) {
  return snprintf(buffer, static_cast<size_t>(size), "faults=%d", faults);
}
