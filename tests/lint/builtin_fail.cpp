// mcp-verify fixture: MUST fail rule `builtin`.
#include <cstdint>

int ones(std::uint64_t x) {
  return __builtin_popcountll(x);  // fail: C++20 <bit> has std::popcount
}

int trailing(unsigned x) {
  return __builtin_ctz(x);  // fail: std::countr_zero
}
