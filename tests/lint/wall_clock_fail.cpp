// mcp-verify fixture: MUST fail rule `wall-clock` (linted as a src/ file
// outside src/lab).
#include <chrono>
#include <ctime>

long stamp() {
  const auto now = std::chrono::system_clock::now();  // fail: wall clock
  (void)now;
  return static_cast<long>(time(nullptr));  // fail: time()
}
