// mcp-verify fixture: the "test side" of the alloc-guard pass registry
// (alloc_guard_pass.toml points its test-pattern here).  Never compiled.

void fixture_kernel();

void exercises_fixture_kernel_under_guard() {
  fixture_kernel();  // runs the region with its guard armed
}
