// mcp-verify fixture: MUST pass rule `atomic-order`.
// Every access names its ordering claim — relaxed is a claim too.
#include <atomic>
#include <cstdint>

struct Counter {
  std::atomic<std::uint64_t> pending_{0};

  void arrive() { pending_.fetch_add(1, std::memory_order_release); }
  std::uint64_t read() const {
    return pending_.load(std::memory_order_acquire);
  }
  void reset() { pending_.store(0, std::memory_order_relaxed); }
};
