// mcp-verify fixture: MUST fail rule `hot-path` (linted as an engine file).
#include <functional>

struct Engine {
  std::function<void(int)> sink;  // fail: type-erased call per step
};

int* make_state() {
  return new int[64];  // fail: naked new, untracked ownership
}
