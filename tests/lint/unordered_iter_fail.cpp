// mcp-verify fixture: MUST fail rule `unordered-iter` (linted as a file
// on a declared emission path).
#include <cstdint>
#include <unordered_map>
#include <vector>

using Index = std::unordered_map<std::uint64_t, std::uint64_t>;

std::vector<std::uint64_t> emit(const Index& index,
                                const std::unordered_map<int, int>& extra) {
  std::vector<std::uint64_t> out;
  for (const auto& [key, value] : index) {  // fail: hash order reaches out
    out.push_back(key ^ value);
  }
  for (auto it = extra.begin(); it != extra.end(); ++it) {  // fail: begin()
    out.push_back(static_cast<std::uint64_t>(it->first));
  }
  return out;
}
