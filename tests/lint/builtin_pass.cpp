// mcp-verify fixture: MUST pass rule `builtin`.
#include <bit>
#include <cstdint>

int ones(std::uint64_t x) { return std::popcount(x); }
int trailing(unsigned x) { return std::countr_zero(x); }
