// mcp-verify fixture: MUST fail rule `console` (linted as a src/ file
// outside src/lab).
#include <iostream>  // fail: <iostream> in an engine

void report(int faults) {
  std::cout << faults << "\n";  // fail: console write
  printf("faults=%d\n", faults);  // fail: printf family
}
