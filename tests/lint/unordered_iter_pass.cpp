// mcp-verify fixture: MUST pass rule `unordered-iter`.
// Lookups in unordered containers are fine on an emission path; only
// iteration order is banned.  Emission walks a sorted materialization.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

std::vector<std::uint64_t> emit(
    const std::vector<std::uint64_t>& sorted_keys,
    const std::unordered_map<std::uint64_t, std::uint64_t>& index) {
  std::vector<std::uint64_t> out;
  for (const std::uint64_t key : sorted_keys) {  // deterministic order
    const auto it = index.find(key);             // lookup: allowed
    if (it != index.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());  // begin() on a vector: allowed
  return out;
}
