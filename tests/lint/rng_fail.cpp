// mcp-verify fixture: MUST fail rule `rng`.
// Naming an underlying randomness source outside core/rng.hpp breaks
// seed-stable reproducibility.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device entropy;  // fail: nondeterministic seed source
  return static_cast<int>(entropy()) + rand();  // fail: C rand()
}
