// mcp-verify fixture: MUST pass rule `hot-path`.
#include <memory>
#include <vector>

template <typename Sink>
void drive(Sink&& sink) {  // concrete callable, inlined per step
  for (int i = 0; i < 64; ++i) sink(i);
}

std::unique_ptr<std::vector<int>> make_state() {
  return std::make_unique<std::vector<int>>(64);  // tracked ownership
}
