// mcp-verify fixture: MUST pass rule `wall-clock`.
// steady_clock for intervals, thread-CPU clock for accounting: both are
// allowed everywhere (they cannot leak wall time into results).
#include <chrono>
#include <ctime>

double interval_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}
