// mcp-verify fixture: the "guard side" of the alloc-guard pass registry
// (alloc_guard_pass.toml points its guard-pattern here).  Never compiled.

struct AllocGuard {
  explicit AllocGuard(const char*) {}
};

void fixture_kernel() {
  AllocGuard guard("fixture kernel region");
  // allocation-free work would run here
}
