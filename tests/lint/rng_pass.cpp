// mcp-verify fixture: MUST pass rule `rng`.
// Randomness drawn from the repo's seed-stable streams: every value is a
// pure function of (master_seed, stream_index).
#include <cstdint>

struct SplitStream {
  std::uint64_t state;
  std::uint64_t next() { return state += 0x9e3779b97f4a7c15ull; }
};

std::uint64_t roll(std::uint64_t master_seed, std::uint64_t cell_index) {
  SplitStream stream{master_seed ^ cell_index};
  return stream.next();
}
