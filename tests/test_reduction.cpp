// Tests for the Theorem 2 / Theorem 3 reductions and the certificate player
// (hardness/reduction.hpp).  The headline check: a k-PARTITION solution,
// played through the simulator as the proof's eviction schedule, meets every
// per-sequence fault bound — with equality, as the proof computes.
#include "hardness/reduction.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "offline/pif_solver.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

namespace mcp {
namespace {

KPartitionInstance tiny_yes_3partition() {
  KPartitionInstance inst;
  inst.values = {4, 4, 4};
  inst.target = 12;
  inst.group_size = 3;
  return inst;
}

TEST(Reduction, InstanceShapeMatchesTheorem2) {
  const KPartitionInstance source = tiny_yes_3partition();
  const PifReduction red = reduce_kpartition_to_pif(source, /*tau=*/1);
  EXPECT_EQ(red.pif.base.requests.num_cores(), 3u);
  EXPECT_EQ(red.pif.base.cache_size, 4u);             // (4/3) * 3
  EXPECT_EQ(red.pif.deadline, 12u * 2 + 4 + 5);       // B(tau+1)+4tau+5 = 33
  for (CoreId i = 0; i < 3; ++i) {
    EXPECT_EQ(red.pif.bounds[i], 12u - 4 + 4);        // B - s_i + 4
    EXPECT_EQ(red.required_hits(i), 4u * 2 + 1);      // s_i(tau+1)+1
    // Alternating two private pages.
    const RequestSequence& seq = red.pif.base.requests.sequence(i);
    EXPECT_EQ(seq[0], PifReduction::alpha(i));
    EXPECT_EQ(seq[1], PifReduction::beta(i));
    EXPECT_EQ(seq[2], PifReduction::alpha(i));
  }
  EXPECT_TRUE(red.pif.base.requests.is_disjoint());
}

class CertificateGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, Time>> {};

TEST_P(CertificateGrid, SolutionMeetsEveryBoundWithEquality) {
  const auto [group_size, tau] = GetParam();
  Rng rng(1000 + group_size * 10 + tau);
  for (int trial = 0; trial < 4; ++trial) {
    const std::uint32_t target = group_size == 3 ? 30 : 40;
    const KPartitionInstance source = random_yes_instance(
        rng, /*num_groups=*/2 + rng.below(2), group_size, target);
    const auto solution = solve_kpartition(source);
    ASSERT_TRUE(solution.has_value());

    const PifReduction red = reduce_kpartition_to_pif(source, tau);
    const RunStats stats = play_certificate(red, *solution);
    for (CoreId i = 0; i < source.values.size(); ++i) {
      EXPECT_EQ(stats.faults_before(i, red.pif.deadline), red.pif.bounds[i])
          << "k=" << group_size << " tau=" << tau << " trial=" << trial
          << " core=" << i;
    }
    EXPECT_TRUE(stats.within_bounds_at(red.pif.deadline, red.pif.bounds));
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroupSizeTauGrid, CertificateGrid,
    ::testing::Values(std::make_tuple(std::size_t{3}, Time{0}),
                      std::make_tuple(std::size_t{3}, Time{1}),
                      std::make_tuple(std::size_t{3}, Time{3}),
                      std::make_tuple(std::size_t{3}, Time{7}),
                      std::make_tuple(std::size_t{4}, Time{0}),
                      std::make_tuple(std::size_t{4}, Time{1}),
                      std::make_tuple(std::size_t{4}, Time{2}),
                      std::make_tuple(std::size_t{4}, Time{5})));

TEST(Reduction, CertificateRejectsNonSolutions) {
  KPartitionInstance source;
  source.values = {4, 4, 5, 4, 4, 5};
  source.target = 13;
  source.group_size = 3;
  const PifReduction red = reduce_kpartition_to_pif(source, 1);
  // {0,1,3} sums to 12, not 13: not a solution.
  EXPECT_THROW((void)play_certificate(red, {{0, 1, 3}, {2, 4, 5}}), ModelError);
}

TEST(Reduction, WrongGroupingBlowsABound) {
  // Playing the certificate mechanics on a grouping whose sums are off-B
  // must violate at least one bound: the over-B group runs out of time.
  // Build a yes-instance but group it wrongly (swap two unequal elements).
  Rng rng(424242);
  for (int trial = 0; trial < 6; ++trial) {
    const KPartitionInstance source =
        random_yes_instance(rng, 2, 3, /*target=*/30);
    const auto solution = solve_kpartition(source);
    ASSERT_TRUE(solution.has_value());
    auto groups = *solution;
    // Find two groups with a pair of unequal elements and swap them.
    std::size_t a = 0;
    std::size_t b = 1;
    bool found = false;
    for (std::size_t i = 0; i < 3 && !found; ++i) {
      for (std::size_t j = 0; j < 3 && !found; ++j) {
        if (source.values[groups[0][i]] != source.values[groups[1][j]]) {
          a = i;
          b = j;
          found = true;
        }
      }
    }
    if (!found) continue;  // all elements equal; wrong grouping impossible
    std::swap(groups[0][a], groups[1][b]);

    const PifReduction red = reduce_kpartition_to_pif(source, 1);
    CertificateStrategy strategy(red, groups);
    Simulator sim(red.pif.base.sim_config());
    const RunStats stats = sim.run(red.pif.base.requests, strategy);
    EXPECT_FALSE(stats.within_bounds_at(red.pif.deadline, red.pif.bounds))
        << "trial=" << trial;
  }
}

TEST(Reduction, SharedLruDoesNotMeetTheBounds) {
  // The reduction is tight: an oblivious policy (shared LRU) burns the
  // extra cells on whoever faults and misses the bounds.
  const KPartitionInstance source = tiny_yes_3partition();
  const PifReduction red = reduce_kpartition_to_pif(source, 1);
  SharedStrategy lru(make_policy_factory("lru"));
  Simulator sim(red.pif.base.sim_config());
  const RunStats stats = sim.run(red.pif.base.requests, lru);
  EXPECT_FALSE(stats.within_bounds_at(red.pif.deadline, red.pif.bounds));
}

TEST(Reduction, PifSolverAcceptsTinyYesInstance) {
  // n=3 (a single triple) keeps Algorithm 2 within reach: B=12, tau=0.
  const KPartitionInstance source = tiny_yes_3partition();
  const PifReduction red = reduce_kpartition_to_pif(source, /*tau=*/0);
  PifOptions options;
  options.victim_rule = VictimRule::kAllPages;
  const PifResult result = solve_pif(red.pif, options);
  EXPECT_TRUE(result.feasible);
}

}  // namespace
}  // namespace mcp
