// Tests for PIF instance serialization (offline/instance_io.hpp).
#include "offline/instance_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "hardness/reduction.hpp"

namespace mcp {
namespace {

PifInstance sample() {
  PifInstance inst;
  inst.base.requests.add_sequence(RequestSequence{1, 2, 1});
  inst.base.requests.add_sequence(RequestSequence{5, 6});
  inst.base.cache_size = 3;
  inst.base.tau = 2;
  inst.deadline = 17;
  inst.bounds = {2, 1};
  return inst;
}

TEST(InstanceIo, RoundTrip) {
  const PifInstance original = sample();
  std::stringstream ss;
  write_pif_instance(ss, original);
  const PifInstance loaded = read_pif_instance(ss);
  EXPECT_EQ(loaded.base.requests, original.base.requests);
  EXPECT_EQ(loaded.base.cache_size, original.base.cache_size);
  EXPECT_EQ(loaded.base.tau, original.base.tau);
  EXPECT_EQ(loaded.deadline, original.deadline);
  EXPECT_EQ(loaded.bounds, original.bounds);
}

TEST(InstanceIo, ReductionInstanceRoundTrips) {
  KPartitionInstance source;
  source.values = {4, 4, 4};
  source.target = 12;
  source.group_size = 3;
  const PifReduction red = reduce_kpartition_to_pif(source, 1);
  std::stringstream ss;
  write_pif_instance(ss, red.pif);
  const PifInstance loaded = read_pif_instance(ss);
  EXPECT_EQ(loaded.bounds, red.pif.bounds);
  EXPECT_EQ(loaded.deadline, red.pif.deadline);
  EXPECT_EQ(loaded.base.requests.total_requests(),
            red.pif.base.requests.total_requests());
}

TEST(InstanceIo, RejectsMissingHeader) {
  std::stringstream ss("cache 3\n");
  EXPECT_THROW((void)read_pif_instance(ss), InputError);
}

TEST(InstanceIo, RejectsIncompleteHeader) {
  std::stringstream ss(
      "mcppif 1\ncache 3\nmcptrace 1\ncores 1\nseq 0 1 7\n");
  EXPECT_THROW((void)read_pif_instance(ss), InputError);
}

TEST(InstanceIo, RejectsMissingTrace) {
  std::stringstream ss(
      "mcppif 1\ncache 3\ntau 1\ndeadline 5\nbounds 1\n");
  EXPECT_THROW((void)read_pif_instance(ss), InputError);
}

TEST(InstanceIo, RejectsBoundsMismatch) {
  std::stringstream ss(
      "mcppif 1\ncache 3\ntau 1\ndeadline 5\nbounds 1\n"
      "mcptrace 1\ncores 2\nseq 0 1 7\nseq 1 1 8\n");
  EXPECT_THROW((void)read_pif_instance(ss), ModelError);
}

TEST(InstanceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/mcp_pif_test.txt";
  save_pif_instance(path, sample());
  const PifInstance loaded = load_pif_instance(path);
  EXPECT_EQ(loaded.deadline, 17u);
}

}  // namespace
}  // namespace mcp
