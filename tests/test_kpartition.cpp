// Tests for the 3-/4-PARTITION solver and instance generators
// (hardness/kpartition.hpp).
#include "hardness/kpartition.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace mcp {
namespace {

TEST(KPartition, ValidatesConstraints) {
  KPartitionInstance bad;
  bad.values = {4, 4, 4};
  bad.target = 12;
  bad.group_size = 3;
  EXPECT_NO_THROW(bad.validate());

  bad.values = {3, 4, 5};  // 3 <= 12/4: out of range
  EXPECT_THROW(bad.validate(), ModelError);

  bad.values = {4, 4, 5};  // sum != B
  EXPECT_THROW(bad.validate(), ModelError);

  bad.values = {4, 4, 4, 4};  // n not divisible by 3
  bad.target = 16;
  EXPECT_THROW(bad.validate(), ModelError);
}

TEST(KPartition, SolvesTrivialSingleGroup) {
  KPartitionInstance inst;
  inst.values = {4, 4, 4};
  inst.target = 12;
  inst.group_size = 3;
  const auto solution = solve_kpartition(inst);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(check_kpartition_solution(inst, *solution));
}

TEST(KPartition, SolvesTwoGroupYesInstance) {
  KPartitionInstance inst;
  inst.values = {4, 4, 5, 4, 4, 5};
  inst.target = 13;
  inst.group_size = 3;
  const auto solution = solve_kpartition(inst);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(check_kpartition_solution(inst, *solution));
  EXPECT_EQ(solution->size(), 2u);
}

TEST(KPartition, RejectsTheCanonicalNoInstance) {
  const KPartitionInstance inst = smallest_no_instance_3partition();
  EXPECT_FALSE(solve_kpartition(inst).has_value());
}

TEST(KPartition, SolvesFourPartition) {
  // B = 22, range (4.4, 7.33): {7,5,5,5} and {6,6,5,5} both sum to 22.
  KPartitionInstance inst;
  inst.values = {7, 6, 5, 5, 6, 5, 5, 5};
  inst.target = 22;
  inst.group_size = 4;
  const auto solution = solve_kpartition(inst);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(check_kpartition_solution(inst, *solution));
}

TEST(KPartition, FourPartitionNoInstance) {
  // B = 17, values in (17/5, 17/3) = {4, 5}: quadruples reach 16..20 but
  // 4+4+4+4=16 and any 5 pushes to 17 exactly? 4+4+4+5 = 17 — so craft
  // counts that cannot pair up: seven 4s and one 5 sums 33 != 2*17; use
  // {4,4,4,4,4,4,5,5}: sum 34 = 2*17, but groups need 4+4+4+5 twice — that
  // works.  Instead force imbalance: {5,5,5,5,4,4,4,4} sum 36 => B=18,
  // range (3.6, 6): quadruples of 18: 5+5+4+4 — solvable again.  A genuine
  // small NO: B=19, range (3.8, 6.33) = {4,5,6}, values {6,6,6,6,4,4,4,4}
  // sum 40 != 2*19.  Use {6,6,6,4,4,4,4,4} sum 38 = 2*19: quadruples of 19:
  // 6+5.. no 5s: 6+6+4+4=20, 6+4+4+4=18 — impossible.  NO instance.
  KPartitionInstance inst;
  inst.values = {6, 6, 6, 4, 4, 4, 4, 4};
  inst.target = 19;
  inst.group_size = 4;
  EXPECT_NO_THROW(inst.validate());
  EXPECT_FALSE(solve_kpartition(inst).has_value());
}

TEST(KPartition, RandomYesInstancesAlwaysSolve) {
  Rng rng(314);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t groups = 2 + rng.below(3);
    const KPartitionInstance inst =
        random_yes_instance(rng, groups, 3, /*target=*/30);
    const auto solution = solve_kpartition(inst);
    ASSERT_TRUE(solution.has_value()) << "trial=" << trial;
    EXPECT_TRUE(check_kpartition_solution(inst, *solution));
    EXPECT_EQ(solution->size(), groups);
  }
}

TEST(KPartition, RandomYesFourPartition) {
  Rng rng(2718);
  for (int trial = 0; trial < 8; ++trial) {
    const KPartitionInstance inst =
        random_yes_instance(rng, 2 + rng.below(2), 4, /*target=*/40);
    const auto solution = solve_kpartition(inst);
    ASSERT_TRUE(solution.has_value()) << "trial=" << trial;
    EXPECT_TRUE(check_kpartition_solution(inst, *solution));
  }
}

TEST(KPartition, CheckerRejectsBadSolutions) {
  KPartitionInstance inst;
  inst.values = {4, 4, 5, 4, 4, 5};
  inst.target = 13;
  inst.group_size = 3;
  EXPECT_TRUE(check_kpartition_solution(inst, {{0, 1, 2}, {3, 4, 5}}));
  EXPECT_FALSE(check_kpartition_solution(inst, {{0, 1, 3}, {2, 4, 5}}));  // 12 / 14
  EXPECT_FALSE(check_kpartition_solution(inst, {{0, 0, 2}, {3, 4, 5}}));  // repeat
  EXPECT_FALSE(check_kpartition_solution(inst, {{0, 1, 2}}));             // missing
}

}  // namespace
}  // namespace mcp
