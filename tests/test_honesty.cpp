// Tests for the honesty checker (offline/honesty.hpp) and the honesty
// status of the built-in strategies (Theorem 4 vocabulary).
#include "offline/honesty.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

TEST(Honesty, SharedStrategiesAreHonest) {
  Rng rng(8080);
  const RequestSet rs = random_disjoint_workload(rng, 3, 5, 80);
  for (const char* name : {"lru", "fifo", "mark"}) {
    SharedStrategy strategy(make_policy_factory(name));
    HonestyChecker checker;
    Simulator sim(sim_config(6, 1));
    sim.add_observer(&checker);
    (void)sim.run(rs, strategy);
    EXPECT_TRUE(checker.honest()) << name;
  }
}

TEST(Honesty, StaticPartitionIsHonest) {
  Rng rng(8081);
  const RequestSet rs = random_disjoint_workload(rng, 2, 5, 80);
  StaticPartitionStrategy strategy({3, 3}, make_policy_factory("lru"));
  HonestyChecker checker;
  Simulator sim(sim_config(6, 2));
  sim.add_observer(&checker);
  (void)sim.run(rs, strategy);
  EXPECT_TRUE(checker.honest());
}

TEST(Honesty, Lemma3DynamicPartitionIsHonest) {
  Rng rng(8082);
  const RequestSet rs = random_disjoint_workload(rng, 3, 5, 80);
  Lemma3DynamicPartition strategy;
  HonestyChecker checker;
  Simulator sim(sim_config(6, 1));
  sim.add_observer(&checker);
  (void)sim.run(rs, strategy);
  EXPECT_TRUE(checker.honest());
}

TEST(Honesty, StagedShrinkIsDetectedAsDishonest) {
  // A shrinking stage boundary forces voluntary evictions.
  RequestSet rs;
  RequestSequence warm;
  const std::vector<PageId> tri = {1, 2, 3};
  warm.append_repeated(tri, 30);
  rs.add_sequence(std::move(warm));
  RequestSequence solo;
  const std::vector<PageId> one = {9};
  solo.append_repeated(one, 90);
  rs.add_sequence(std::move(solo));

  StagedPartitionStrategy staged({{0, {3, 1}}, {40, {1, 3}}},
                                 make_policy_factory("lru"));
  HonestyChecker checker;
  Simulator sim(sim_config(4, 0));
  sim.add_observer(&checker);
  (void)sim.run(rs, staged);
  EXPECT_FALSE(checker.honest());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].find("voluntary"), std::string::npos);
}

}  // namespace
}  // namespace mcp
