// Differential test: the optimized engine (slot-arena CacheState, fetch
// heap, allocation-free step loop) must be observably identical to the
// retained reference build (tests/reference_engine.hpp) — same hits,
// faults, fault timelines, completion times, end time and step count — for
// every strategy family, policy, workload shape, tau and shared-fetch mode
// in the grid below.  The reference engine additionally cross-checks the
// optimized CacheState against a map-based shadow at every step.
#include "reference_engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/scheduling.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/partition.hpp"
#include "strategies/set_associative.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::random_shared_workload;
using testing::reference_simulate;

void expect_same_stats(const RunStats& optimized, const RunStats& reference,
                       const std::string& label) {
  ASSERT_EQ(optimized.num_cores(), reference.num_cores()) << label;
  EXPECT_EQ(optimized.end_time, reference.end_time) << label;
  EXPECT_EQ(optimized.sim_steps, reference.sim_steps) << label;
  for (CoreId j = 0; j < optimized.num_cores(); ++j) {
    const CoreStats& a = optimized.core(j);
    const CoreStats& b = reference.core(j);
    EXPECT_EQ(a.hits, b.hits) << label << " core=" << j;
    EXPECT_EQ(a.faults, b.faults) << label << " core=" << j;
    EXPECT_EQ(a.requests, b.requests) << label << " core=" << j;
    EXPECT_EQ(a.completion_time, b.completion_time) << label << " core=" << j;
    EXPECT_EQ(a.fault_times, b.fault_times) << label << " core=" << j;
  }
}

struct StrategyCase {
  std::string label;
  std::function<std::unique_ptr<CacheStrategy>()> make;
};

/// The strategy grid; every entry is rebuilt fresh for each engine so
/// stateful strategies (and seeded policies) start identically.
std::vector<StrategyCase> strategy_grid(std::size_t p, std::size_t K) {
  std::vector<StrategyCase> grid;
  for (const std::string policy : {"lru", "fifo", "clock", "lfu", "slru"}) {
    grid.push_back({"S_" + policy, [policy] {
                      return std::make_unique<SharedStrategy>(
                          make_policy_factory(policy));
                    }});
  }
  grid.push_back({"S_random", [] {
                    return std::make_unique<SharedStrategy>(
                        make_policy_factory("random", 1234));
                  }});
  grid.push_back({"S_fitf", [] { return SharedStrategy::fitf(); }});
  grid.push_back({"sP_even_lru", [p, K] {
                    return std::make_unique<StaticPartitionStrategy>(
                        even_partition(K, p), make_policy_factory("lru"));
                  }});
  grid.push_back(
      {"dP_lemma3", [] { return std::make_unique<Lemma3DynamicPartition>(); }});
  grid.push_back({"dP_staged", [p, K] {
                    std::vector<PartitionStage> schedule;
                    schedule.push_back({0, even_partition(K, p)});
                    Partition skewed = even_partition(K, p);
                    skewed[0] += skewed[1] - 1;
                    skewed[1] = 1;
                    schedule.push_back({40, skewed});
                    schedule.push_back({120, even_partition(K, p)});
                    return std::make_unique<StagedPartitionStrategy>(
                        std::move(schedule), make_policy_factory("lru"));
                  }});
  grid.push_back({"SA_2way", [K] {
                    return std::make_unique<SetAssociativeStrategy>(
                        K / 2, make_policy_factory("lru"));
                  }});
  grid.push_back({"time_mux", [] {
                    return std::make_unique<TimeMultiplexStrategy>();
                  }});
  return grid;
}

struct WorkloadCase {
  std::string label;
  RequestSet requests;
  bool disjoint = true;
};

std::vector<WorkloadCase> workload_grid(std::size_t p) {
  std::vector<WorkloadCase> grid;
  {
    Rng rng(20260807);
    grid.push_back(
        {"disjoint_uniform", random_disjoint_workload(rng, p, 7, 160), true});
  }
  {
    Rng rng(4242);
    grid.push_back(
        {"shared_uniform", random_shared_workload(rng, p, 12, 160), false});
  }
  {
    CoreWorkload core;
    core.pattern = AccessPattern::kZipf;
    core.num_pages = 24;
    core.length = 200;
    grid.push_back(
        {"disjoint_zipf", make_workload(homogeneous_spec(p, core)), true});
  }
  return grid;
}

TEST(EngineDifferential, OptimizedEngineMatchesReferenceAcrossGrid) {
  const std::size_t p = 3;
  const std::size_t K = 6;
  for (const WorkloadCase& wl : workload_grid(p)) {
    for (const StrategyCase& sc : strategy_grid(p, K)) {
      // Offline strategies need materialized (and for FITF, any) inputs;
      // time_mux defers, which is fine everywhere.
      for (const Time tau : {Time{0}, Time{3}}) {
        for (const SharedFetchMode mode :
             {SharedFetchMode::kCountsAsFault, SharedFetchMode::kJoinsFetch}) {
          // Shared-fetch mode only matters for non-disjoint inputs; skip the
          // redundant duplicate run on disjoint ones.
          if (wl.disjoint && mode == SharedFetchMode::kJoinsFetch) continue;
          SimConfig config = testing::sim_config(K, tau);
          config.shared_fetch = mode;
          config.record_fault_timeline = true;
          const std::string label =
              wl.label + "/" + sc.label + "/tau=" + std::to_string(tau) +
              (mode == SharedFetchMode::kJoinsFetch ? "/join" : "/fault");

          const std::unique_ptr<CacheStrategy> opt_strategy = sc.make();
          Simulator sim(config);
          const RunStats optimized = sim.run(wl.requests, *opt_strategy);

          const std::unique_ptr<CacheStrategy> ref_strategy = sc.make();
          const RunStats reference =
              reference_simulate(config, wl.requests, *ref_strategy);

          expect_same_stats(optimized, reference, label);
        }
      }
    }
  }
}

TEST(EngineDifferential, AdaptiveUniverseGrowthMatchesReference) {
  // Large, sparse page ids force the arena's page->slot index to grow
  // adaptively (no reserve_universe path in the reference engine's shadow);
  // both engines must still agree.
  RequestSet rs;
  rs.add_sequence({1000000, 5, 1000000, 70000, 5, 900001, 1000000});
  rs.add_sequence({2000000, 2000001, 2000000, 2000001, 42});
  SimConfig config = testing::sim_config(3, 2);
  config.record_fault_timeline = true;

  SharedStrategy optimized_strategy(make_policy_factory("lru"));
  Simulator sim(config);
  const RunStats optimized = sim.run(rs, optimized_strategy);

  SharedStrategy reference_strategy(make_policy_factory("lru"));
  const RunStats reference = reference_simulate(config, rs, reference_strategy);
  expect_same_stats(optimized, reference, "sparse_ids");
}

}  // namespace
}  // namespace mcp
