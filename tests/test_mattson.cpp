// Differential tests for the single-pass Mattson LRU fault-curve kernel
// (policies/mattson.hpp): every curve cell must equal the per-k
// single-core LRU run it replaces, on random, skewed and adversarial
// sequences, including capacities at and beyond the distinct-page count.
#include "policies/mattson.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "adversary/adversary.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"
#include "workload/analysis.hpp"
#include "workload/workload.hpp"

namespace mcp {
namespace {

/// Checks curve[k] == single_core_policy_faults(seq, k, LRU) for k = 0..max_k.
void expect_matches_per_k(const RequestSequence& seq, std::size_t max_k,
                          const std::string& label) {
  const PolicyFactory lru = make_policy_factory("lru");
  const std::vector<Count> curve = lru_fault_curve(seq, max_k);
  ASSERT_EQ(curve.size(), max_k + 1) << label;
  for (std::size_t k = 0; k <= max_k; ++k) {
    EXPECT_EQ(curve[k], single_core_policy_faults(seq, k, lru))
        << label << " k=" << k;
  }
}

std::size_t distinct_pages(const RequestSequence& seq) {
  return std::unordered_set<PageId>(seq.begin(), seq.end()).size();
}

TEST(MattsonKernel, TinySequencesByHand) {
  // a b a b: distances 0 0 2 2 -> f(0)=4, f(1)=4, f(2)=2, f(3)=2.
  const RequestSequence seq = {1, 2, 1, 2};
  const std::vector<Count> curve = lru_fault_curve(seq, 3);
  EXPECT_EQ(curve, (std::vector<Count>{4, 4, 2, 2}));
  // Immediate repeat has distance 1 (hits for any k >= 1).
  const std::vector<Count> rep = lru_fault_curve({7, 7, 7}, 2);
  EXPECT_EQ(rep, (std::vector<Count>{3, 1, 1}));
  // Empty sequence: all-zero curve.
  EXPECT_EQ(lru_fault_curve({}, 2), (std::vector<Count>{0, 0, 0}));
}

TEST(MattsonKernel, StackDistancesDefinition) {
  // seq:      5 6 7 5 5 6
  // distance: 0 0 0 3 1 3
  EXPECT_EQ(stack_distances({5, 6, 7, 5, 5, 6}),
            (std::vector<std::size_t>{0, 0, 0, 3, 1, 3}));
}

TEST(MattsonKernel, MatchesPerKOnRandomSequences) {
  Rng rng(20260807);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t universe = 3 + rng.below(20);
    RequestSequence seq;
    for (std::size_t i = 0; i < 400; ++i) {
      seq.push_back(static_cast<PageId>(rng.below(universe)));
    }
    // Cover k beyond the distinct-page count (curve must flatten at cold).
    const std::size_t max_k = distinct_pages(seq) + 4;
    expect_matches_per_k(seq, max_k, "trial=" + std::to_string(trial));
    const std::vector<Count> curve = lru_fault_curve(seq, max_k);
    EXPECT_EQ(curve[max_k], distinct_pages(seq));
    EXPECT_EQ(curve[distinct_pages(seq)], distinct_pages(seq));
  }
}

TEST(MattsonKernel, MatchesPerKOnZipfAndScanWorkloads) {
  for (const AccessPattern pattern :
       {AccessPattern::kZipf, AccessPattern::kScan, AccessPattern::kLoop,
        AccessPattern::kWorkingSet}) {
    CoreWorkload core;
    core.pattern = pattern;
    core.num_pages = 48;
    core.length = 600;
    Rng rng(99);
    const RequestSequence seq = generate_sequence(core, 0, rng);
    expect_matches_per_k(seq, 52, to_string(pattern));
  }
}

TEST(MattsonKernel, MatchesPerKOnLemma2Sequences) {
  const RequestSet rs = lemma2_request_set({3, 2, 2}, 240);
  for (CoreId j = 0; j < rs.num_cores(); ++j) {
    expect_matches_per_k(rs.sequence(j), 9, "lemma2 core " + std::to_string(j));
  }
}

TEST(MattsonKernel, MatchesPerKOnRecordedLemma1AdversaryTrace) {
  // The Lemma 1 adversary adapts to the running policy; replaying its
  // recorded trace exercises the worst-case no-reuse pattern LRU can see.
  const Partition partition = {4, 2};
  Lemma1AdversaryStream adversary(partition.size(), /*victim_core=*/0,
                                  partition[0] + 1, /*requests_per_core=*/160);
  RecordingStream recorder(adversary);
  StaticPartitionStrategy strategy(partition, make_policy_factory("lru"));
  Simulator sim(testing::sim_config(6, 1));
  (void)sim.run_stream(recorder, strategy, nullptr);
  const RequestSet& trace = recorder.recorded();
  for (CoreId j = 0; j < trace.num_cores(); ++j) {
    expect_matches_per_k(trace.sequence(j), 8,
                         "lemma1 trace core " + std::to_string(j));
  }
}

TEST(MattsonKernel, PolicyFaultCurvesFastPathEqualsReferenceSweep) {
  // policy_fault_curves takes the Mattson path for LRU; the per-k sweep it
  // replaced must give the same curves (here reproduced via the oracle).
  Rng rng(7);
  const RequestSet rs = testing::random_disjoint_workload(rng, 3, 10, 500);
  const std::size_t K = 12;
  const PolicyFactory lru = make_policy_factory("lru");
  const FaultCurves fast = policy_fault_curves(rs, K, lru);
  ASSERT_EQ(fast.size(), rs.num_cores());
  for (CoreId j = 0; j < rs.num_cores(); ++j) {
    ASSERT_EQ(fast[j].size(), K + 1);
    for (std::size_t k = 0; k <= K; ++k) {
      EXPECT_EQ(fast[j][k],
                single_core_policy_faults(rs.sequence(j), k, lru))
          << "core=" << j << " k=" << k;
    }
  }
  // And the partition search built on the curves stays consistent with the
  // exhaustive simulate-every-partition reference.
  const PartitionSearchResult via_curves =
      optimal_partition_for_policy(rs, K, lru);
  const PartitionSearchResult via_sim =
      optimal_partition_by_simulation(testing::sim_config(K, 0), rs, lru);
  EXPECT_EQ(via_curves.faults, via_sim.faults);
}

TEST(MattsonKernel, BatchedCurvesMatchPerKOracle) {
  // lru_fault_curve_batch advances all cores' Mattson passes as lanes over
  // shared offset arrays; every lane's curve must equal both the scalar
  // kernel and the per-k oracle it stands in for.  Ragged lane lengths
  // (including an empty sequence) exercise the active-prefix shrink.
  Rng rng(0x3A77);
  RequestSet rs;
  rs.add_sequence({});
  for (const std::size_t len : {std::size_t{37}, std::size_t{400},
                                std::size_t{123}, std::size_t{5}}) {
    RequestSequence seq;
    const std::size_t universe = 3 + rng.below(14);
    for (std::size_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<PageId>(rng.below(universe)));
    }
    rs.add_sequence(std::move(seq));
  }
  const std::size_t max_k = 18;
  const PolicyFactory lru = make_policy_factory("lru");
  const FaultCurves batched = lru_fault_curve_batch(rs, max_k);
  ASSERT_EQ(batched.size(), rs.num_cores());
  for (CoreId j = 0; j < rs.num_cores(); ++j) {
    ASSERT_EQ(batched[j].size(), max_k + 1) << "core=" << j;
    EXPECT_EQ(batched[j], lru_fault_curve(rs.sequence(j), max_k))
        << "core=" << j;
    for (std::size_t k = 0; k <= max_k; ++k) {
      EXPECT_EQ(batched[j][k],
                single_core_policy_faults(rs.sequence(j), k, lru))
          << "core=" << j << " k=" << k;
    }
  }
}

TEST(MattsonKernel, FifoFaultCurvesRideTheBatchEngine) {
  // policy_fault_curves has no stack trick for FIFO; it materializes the
  // (core, k) grid as batch-engine jobs.  Hold it to the per-k oracle too.
  Rng rng(23);
  const RequestSet rs = testing::random_disjoint_workload(rng, 3, 8, 300);
  const std::size_t K = 9;
  const PolicyFactory fifo = make_policy_factory("fifo");
  const FaultCurves curves = policy_fault_curves(rs, K, fifo);
  ASSERT_EQ(curves.size(), rs.num_cores());
  for (CoreId j = 0; j < rs.num_cores(); ++j) {
    ASSERT_EQ(curves[j].size(), K + 1);
    for (std::size_t k = 0; k <= K; ++k) {
      EXPECT_EQ(curves[j][k],
                single_core_policy_faults(rs.sequence(j), k, fifo))
          << "core=" << j << " k=" << k;
    }
  }
}

TEST(MattsonKernel, AgreesWithWorkloadHistogramView) {
  Rng rng(41);
  RequestSequence seq;
  for (std::size_t i = 0; i < 300; ++i) {
    seq.push_back(static_cast<PageId>(rng.below(17)));
  }
  const std::vector<Count> curve = lru_fault_curve(seq, 20);
  // StackDistanceHistogram::lru_curve is the same kernel's histogram view.
  const std::vector<Count> hist_curve =
      StackDistanceHistogram(seq).lru_curve(20);
  EXPECT_EQ(curve, hist_curve);
}

}  // namespace
}  // namespace mcp
