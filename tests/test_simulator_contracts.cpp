// Contract and invariant tests for the simulator: misbehaving strategies
// must be rejected loudly, and bookkeeping invariants must hold across
// randomized runs of every built-in strategy.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/simulator.hpp"
#include "offline/replay.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/adaptive_partition.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

// ---------------------------------------------------------------------------
// Misbehaving strategies are rejected.
// ---------------------------------------------------------------------------

/// Configurable bad actor for contract tests.
class MisbehavingStrategy final : public CacheStrategy {
 public:
  enum class Mode {
    kEvictAbsent,     ///< evicts a page that is not resident
    kEvictIncoming,   ///< evicts the very page that is faulting in
    kEvictTwice,      ///< returns the same victim twice
    kNeverEvict,      ///< returns no victim even when the cache is full
    kEvictFetching,   ///< evicts a page whose cell is still reserved
  };
  explicit MisbehavingStrategy(Mode mode) : mode_(mode) {}

  void attach(const SimConfig& config, std::size_t /*num_cores*/,
              const RequestSet* /*requests*/) override {
    cache_size_ = config.cache_size;
    lru_ = std::make_unique<LruPolicy>();
    lru_->reset();
  }
  void on_hit(const AccessContext& ctx) override { lru_->on_hit(ctx.page, ctx); }
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override {
    if (!needs_cell) return;
    if (cache.occupied() == cache_size_) {
      switch (mode_) {
        case Mode::kEvictAbsent:
          evictions.push_back(99999);
          break;
        case Mode::kEvictIncoming:
          evictions.push_back(ctx.page);
          break;
        case Mode::kEvictTwice: {
          const PageId victim = lru_->victim(
              ctx, [&cache](PageId page) { return cache.contains(page); });
          evictions.push_back(victim);
          evictions.push_back(victim);
          break;
        }
        case Mode::kNeverEvict:
          break;
        case Mode::kEvictFetching: {
          // Pick a resident-but-not-present page (reserved cell) if any.
          PageId reserved = kInvalidPage;
          cache.for_each_resident([&](PageId page) {
            if (reserved == kInvalidPage && cache.is_fetching(page)) {
              reserved = page;
            }
          });
          if (reserved != kInvalidPage) evictions.push_back(reserved);
          if (evictions.empty()) {  // fall back to a legal victim
            const PageId victim = lru_->victim(
                ctx, [&cache](PageId page) { return cache.contains(page); });
            lru_->on_remove(victim);
            evictions.push_back(victim);
          }
          break;
        }
      }
    }
    if (lru_->contains(ctx.page)) lru_->on_remove(ctx.page);
    lru_->on_insert(ctx.page, ctx);
  }
  [[nodiscard]] std::string name() const override { return "misbehaving"; }

 private:
  Mode mode_;
  std::size_t cache_size_ = 0;
  std::unique_ptr<LruPolicy> lru_;
};

class MisbehaviorRejected
    : public ::testing::TestWithParam<MisbehavingStrategy::Mode> {};

TEST_P(MisbehaviorRejected, SimulatorThrowsModelError) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3, 4, 1, 2});  // forces evictions
  rs.add_sequence(RequestSequence{11, 12, 13, 14});
  MisbehavingStrategy strategy(GetParam());
  Simulator sim(sim_config(3, 2));
  EXPECT_THROW((void)sim.run(rs, strategy), ModelError);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MisbehaviorRejected,
    ::testing::Values(MisbehavingStrategy::Mode::kEvictAbsent,
                      MisbehavingStrategy::Mode::kEvictIncoming,
                      MisbehavingStrategy::Mode::kEvictTwice,
                      MisbehavingStrategy::Mode::kNeverEvict));

TEST(MisbehaviorFetching, EvictingReservedCellThrows) {
  // Two cores so that a fault of core 1 can try to evict core 0's
  // still-fetching page.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2});
  rs.add_sequence(RequestSequence{11, 12, 13, 14});
  MisbehavingStrategy strategy(MisbehavingStrategy::Mode::kEvictFetching);
  Simulator sim(sim_config(2, 5));
  EXPECT_THROW((void)sim.run(rs, strategy), ModelError);
}

// ---------------------------------------------------------------------------
// Replay error paths.
// ---------------------------------------------------------------------------

TEST(ReplayErrors, ScheduleTooShortThrows) {
  OfflineInstance inst;
  inst.requests.add_sequence(RequestSequence{1, 2, 3});
  inst.cache_size = 1;
  inst.tau = 0;
  EXPECT_THROW((void)replay_schedule(inst, {kInvalidPage}), ModelError);
}

TEST(ReplayErrors, SkippingRequiredEvictionThrows) {
  OfflineInstance inst;
  inst.requests.add_sequence(RequestSequence{1, 2});
  inst.cache_size = 1;
  inst.tau = 0;
  // Second fault requires an eviction; the schedule claims none needed.
  EXPECT_THROW((void)replay_schedule(inst, {kInvalidPage, kInvalidPage}),
               ModelError);
}

TEST(ReplayErrors, EvictingAbsentPageThrows) {
  OfflineInstance inst;
  inst.requests.add_sequence(RequestSequence{1, 2});
  inst.cache_size = 1;
  inst.tau = 0;
  EXPECT_THROW((void)replay_schedule(inst, {kInvalidPage, 42}), ModelError);
}

TEST(ReplayErrors, ValidScheduleWorks) {
  OfflineInstance inst;
  inst.requests.add_sequence(RequestSequence{1, 2});
  inst.cache_size = 1;
  inst.tau = 0;
  const RunStats stats = replay_schedule(inst, {kInvalidPage, 1});
  EXPECT_EQ(stats.total_faults(), 2u);
}

// ---------------------------------------------------------------------------
// Bookkeeping invariants across strategies and workloads.
// ---------------------------------------------------------------------------

/// Observer checking event-level conservation laws during the run.
class InvariantObserver final : public SimObserver {
 public:
  void on_hit(const AccessContext& ctx) override { ++events_; last_time_ok(ctx.now); }
  void on_fault(const AccessContext& ctx) override {
    ++events_;
    ++faults_;
    last_time_ok(ctx.now);
  }
  void on_evict(PageId, CoreId, Time now, EvictionCause) override {
    ++evictions_;
    last_time_ok(now);
  }
  void on_fetch_complete(PageId, CoreId, Time now) override {
    ++completions_;
    last_time_ok(now);
  }
  void last_time_ok(Time now) {
    EXPECT_GE(now, last_seen_);
    last_seen_ = now;
  }

  Count events_ = 0;
  Count faults_ = 0;
  Count evictions_ = 0;
  Count completions_ = 0;
  Time last_seen_ = 0;
};

enum class StrategyKind { kSharedLru, kSharedMark, kEvenPartition, kLemma3,
                          kUtility, kFairness };

std::unique_ptr<CacheStrategy> build(StrategyKind kind, std::size_t cache,
                                     std::size_t cores) {
  switch (kind) {
    case StrategyKind::kSharedLru:
      return std::make_unique<SharedStrategy>(make_policy_factory("lru"));
    case StrategyKind::kSharedMark:
      return std::make_unique<SharedStrategy>(make_policy_factory("mark"));
    case StrategyKind::kEvenPartition:
      return std::make_unique<StaticPartitionStrategy>(
          even_partition(cache, cores), make_policy_factory("lru"));
    case StrategyKind::kLemma3:
      return std::make_unique<Lemma3DynamicPartition>();
    case StrategyKind::kUtility:
      return std::make_unique<UtilityPartitionStrategy>(
          make_policy_factory("lru"), 64);
    case StrategyKind::kFairness:
      return std::make_unique<FairnessPartitionStrategy>(
          make_policy_factory("lru"), 64);
  }
  return nullptr;
}

class ConservationLaws : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(ConservationLaws, HoldOnRandomWorkloads) {
  Rng rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t cores = 2 + rng.below(3);
    const std::size_t cache = 4 * cores;
    const RequestSet rs = random_disjoint_workload(rng, cores, 6, 300);
    const auto strategy = build(GetParam(), cache, cores);
    InvariantObserver observer;
    Simulator sim(sim_config(cache, 1 + rng.below(4)));
    sim.add_observer(&observer);
    const RunStats stats = sim.run(rs, *strategy);

    // Every request accounted, exactly once.
    EXPECT_EQ(stats.total_requests(), rs.total_requests());
    EXPECT_EQ(stats.total_hits() + stats.total_faults(), stats.total_requests());
    EXPECT_EQ(observer.events_, stats.total_requests());
    EXPECT_EQ(observer.faults_, stats.total_faults());
    // Disjoint input: every fault starts a fetch that completes.
    EXPECT_EQ(observer.completions_, stats.total_faults());
    // Cells: evictions never exceed faults plus voluntary repartitions...
    // at minimum they can't exceed insertions.
    EXPECT_LE(observer.evictions_, observer.faults_ + 64);

    for (CoreId j = 0; j < cores; ++j) {
      const CoreStats& c = stats.core(j);
      EXPECT_EQ(c.fault_times.size(), c.faults);
      EXPECT_TRUE(std::is_sorted(c.fault_times.begin(), c.fault_times.end()));
      EXPECT_LE(c.completion_time, stats.makespan());
      EXPECT_EQ(c.requests, rs.sequence(j).size());
    }
    EXPECT_GE(stats.end_time, stats.makespan());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ConservationLaws,
    ::testing::Values(StrategyKind::kSharedLru, StrategyKind::kSharedMark,
                      StrategyKind::kEvenPartition, StrategyKind::kLemma3,
                      StrategyKind::kUtility, StrategyKind::kFairness));

// ---------------------------------------------------------------------------
// Differential check against the textbook single-core baseline.
// ---------------------------------------------------------------------------

// With p = 1 the paper's model (Section 3) reduces to classic sequential
// paging: tau only stretches time, it cannot change which requests fault.
// So SharedStrategy+LRU on one core must produce exactly the classic LRU
// fault count, for every cache size and any tau — cross-validating the full
// multicore simulator against the independent single-core runner.
TEST(SingleCoreDifferential, SharedLruMatchesClassicLru) {
  Rng rng(0xD1FF);
  const PolicyFactory lru = make_policy_factory("lru");
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t universe = 4 + rng.below(10);
    RequestSet rs;
    {
      RequestSequence seq;
      for (int i = 0; i < 400; ++i) {
        seq.push_back(static_cast<PageId>(rng.below(universe)));
      }
      rs.add_sequence(std::move(seq));
    }
    const Time tau = rng.below(6);
    for (std::size_t k = 1; k <= universe + 2; ++k) {
      const Count expected = single_core_policy_faults(rs.sequence(0), k, lru);
      SharedStrategy strategy(lru);
      const Count simulated =
          simulate(sim_config(k, tau), rs, strategy).total_faults();
      EXPECT_EQ(simulated, expected)
          << "trial=" << trial << " k=" << k << " tau=" << tau;
    }
  }
}

TEST(SingleCoreDifferential, SharedLruNeverBeatsBelady) {
  Rng rng(0xB31A);
  const PolicyFactory lru = make_policy_factory("lru");
  RequestSet rs;
  {
    RequestSequence seq;
    for (int i = 0; i < 300; ++i) {
      seq.push_back(static_cast<PageId>(rng.below(9)));
    }
    rs.add_sequence(std::move(seq));
  }
  for (std::size_t k = 1; k <= 10; ++k) {
    SharedStrategy strategy(lru);
    const Count online = simulate(sim_config(k, 2), rs, strategy).total_faults();
    EXPECT_GE(online, belady_faults(rs.sequence(0), k)) << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Fast-forward exactness with huge tau.
// ---------------------------------------------------------------------------

TEST(FastForward, HugeTauTimingIsExact) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(4, 1000), rs, lru);
  const std::vector<Time> expected = {0, 1001, 2002};
  EXPECT_EQ(stats.core(0).fault_times, expected);
  EXPECT_EQ(stats.core(0).completion_time, 3002u);
}

TEST(FastForward, MixedTauCoresInterleaveCorrectly) {
  // Core 1's single page hits from t=1001 even while core 0 crawls.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2});
  RequestSequence ones;
  const std::vector<PageId> solo = {9};
  ones.append_repeated(solo, 5);
  rs.add_sequence(std::move(ones));
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(4, 1000), rs, lru);
  EXPECT_EQ(stats.core(1).faults, 1u);
  EXPECT_EQ(stats.core(1).completion_time, 1004u);  // fault 0..1000, hits 1001..1004
  EXPECT_EQ(stats.core(0).completion_time, 2001u);  // faults at 0 and 1001
}

}  // namespace
}  // namespace mcp
