// ThreadPool contract tests: exception propagation to the caller, zero- and
// single-task edge cases, graceful shutdown with queued work, and absence
// of deadlock when tasks enqueue tasks or nest indexed dispatches.
#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mcp {
namespace {

TEST(ThreadPool, ZeroTasksIsIdle) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.wait_idle());
  int calls = 0;
  pool.run_indexed(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleTaskRuns) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.enqueue([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);

  ran.store(0);
  pool.run_indexed(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToWaiter) {
  ThreadPool pool(2);
  pool.enqueue([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool is reusable afterwards.
  std::atomic<int> ran{0};
  pool.enqueue([&] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, RunIndexedPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(100,
                                [](std::size_t i) {
                                  if (i == 57) throw std::runtime_error("cell");
                                }),
               std::runtime_error);
  // A failed dispatch leaves the pool healthy.
  std::atomic<int> count{0};
  pool.run_indexed(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.enqueue([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // Destructor must complete every queued task before joining.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, TasksCanEnqueueTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  // Each root task fans out children, which fan out grandchildren.
  for (int root = 0; root < 4; ++root) {
    pool.enqueue([&pool, &ran] {
      ran.fetch_add(1);
      for (int child = 0; child < 4; ++child) {
        pool.enqueue([&pool, &ran] {
          ran.fetch_add(1);
          pool.enqueue([&ran] { ran.fetch_add(1); });
        });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 4 + 16 + 16);
}

TEST(ThreadPool, NestedRunIndexedDoesNotDeadlock) {
  // Every worker can be busy in the outer dispatch; the inner dispatches
  // must still finish because the calling runner executes cells inline.
  ThreadPool pool(2);
  std::atomic<int> cells{0};
  pool.run_indexed(8, [&](std::size_t) {
    pool.run_indexed(8, [&](std::size_t) { cells.fetch_add(1); });
  });
  EXPECT_EQ(cells.load(), 64);
}

TEST(ThreadPool, RunIndexedCoversEveryIndexOnceAtAnyWidth) {
  ThreadPool pool(4);
  for (std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> touched(kCount);
    pool.run_indexed(
        kCount, [&](std::size_t i) { touched[i].fetch_add(1); }, width);
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(touched[i].load(), 1) << "width=" << width << " i=" << i;
    }
  }
}

TEST(ThreadPool, SingleRunnerIsInOrder) {
  ThreadPool pool(4);
  std::vector<int> order;  // no lock needed: one runner (the caller)
  pool.run_indexed(
      8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, GlobalPoolIsSharedAndAlive) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1u);
  std::atomic<int> ran{0};
  a.run_indexed(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace mcp
