// Reference build of the simulator engine, kept for differential testing.
//
// This is a transliteration of the pre-optimization step loop (PR 3): the
// cache state is a plain unordered_map scanned in full (and sorted) to land
// fetches, eviction duplicates are checked with an unordered_set, and every
// strategy callback gets a fresh vector.  It is deliberately naive — the
// point is that test_engine_differential.cpp can replay the same run
// through this engine and through mcp::Simulator and require *identical*
// RunStats.
//
// Because strategies take `const CacheState&`, the reference engine drives
// a real CacheState for the callbacks and mirrors every mutation into its
// own map-based shadow; after each step the two are cross-checked
// (residency, fetch status, completion batches), so a divergence inside the
// optimized CacheState (slot arena, fetch heap) is caught at the step it
// happens, not just in the final tallies.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cache_state.hpp"
#include "core/error.hpp"
#include "core/simulator.hpp"
#include "core/stats.hpp"
#include "core/strategy.hpp"
#include "core/stream.hpp"

namespace mcp::testing {

/// Old map-based cache bookkeeping (shadow copy of the run's CacheState).
class ShadowCacheState {
 public:
  explicit ShadowCacheState(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool contains(PageId page) const {
    const auto it = cells_.find(page);
    return it != cells_.end() && it->second.status == CellStatus::kPresent;
  }
  [[nodiscard]] bool is_fetching(PageId page) const {
    const auto it = cells_.find(page);
    return it != cells_.end() && it->second.status == CellStatus::kFetching;
  }
  [[nodiscard]] std::size_t occupied() const { return cells_.size(); }

  void begin_fetch(PageId page, CoreId core, Time ready_at) {
    MCP_REQUIRE(cells_.size() < capacity_, "shadow: begin_fetch on full cache");
    const bool inserted =
        cells_.try_emplace(page, CellInfo{CellStatus::kFetching, ready_at, core})
            .second;
    MCP_REQUIRE(inserted, "shadow: begin_fetch on resident page");
  }

  /// Full scan + sort, exactly like the old CacheState::complete_fetches.
  [[nodiscard]] std::vector<PageId> complete_fetches(Time now) {
    std::vector<PageId> done;
    for (auto& [page, info] : cells_) {
      if (info.status == CellStatus::kFetching && info.ready_at <= now) {
        info.status = CellStatus::kPresent;
        done.push_back(page);
      }
    }
    std::sort(done.begin(), done.end());
    return done;
  }

  void evict(PageId page) {
    const auto it = cells_.find(page);
    MCP_REQUIRE(it != cells_.end(), "shadow: evict of non-resident page");
    MCP_REQUIRE(it->second.status == CellStatus::kPresent,
                "shadow: evict of reserved cell");
    cells_.erase(it);
  }

  [[nodiscard]] std::vector<PageId> present_pages() const {
    std::vector<PageId> pages;
    for (const auto& [page, info] : cells_) {
      if (info.status == CellStatus::kPresent) pages.push_back(page);
    }
    std::sort(pages.begin(), pages.end());
    return pages;
  }
  [[nodiscard]] std::vector<PageId> resident_pages() const {
    std::vector<PageId> pages;
    for (const auto& [page, info] : cells_) pages.push_back(page);
    std::sort(pages.begin(), pages.end());
    return pages;
  }

 private:
  std::size_t capacity_;
  std::unordered_map<PageId, CellInfo> cells_;
};

namespace detail {

struct RefCoreRuntime {
  bool done = false;
  bool has_pending = false;
  PageId pending = kInvalidPage;
  Time ready_at = 0;
  Time last_finish = 0;
  std::size_t issued = 0;
};

/// Cross-check: the optimized CacheState and the shadow must agree exactly.
inline void expect_states_agree(const CacheState& cache,
                                const ShadowCacheState& shadow) {
  MCP_REQUIRE(cache.occupied() == shadow.occupied(),
              "reference engine: occupancy diverged");
  MCP_REQUIRE(cache.present_pages() == shadow.present_pages(),
              "reference engine: present set diverged");
  MCP_REQUIRE(cache.resident_pages() == shadow.resident_pages(),
              "reference engine: resident set diverged");
}

inline void reference_apply_evictions(const std::vector<PageId>& victims,
                                      PageId incoming, CacheState& cache,
                                      ShadowCacheState& shadow) {
  std::unordered_set<PageId> seen;
  for (PageId victim : victims) {
    MCP_REQUIRE(victim != incoming, "strategy evicted the incoming page");
    MCP_REQUIRE(seen.insert(victim).second, "strategy evicted a page twice");
    shadow.evict(victim);
    cache.evict(victim);
  }
}

}  // namespace detail

/// Runs `requests` through the reference engine.  Identical observable
/// semantics to Simulator::run (old build), including the step counter.
inline RunStats reference_simulate(const SimConfig& config,
                                   const RequestSet& requests,
                                   CacheStrategy& strategy) {
  using detail::RefCoreRuntime;
  MCP_REQUIRE(config.cache_size > 0, "SimConfig.cache_size must be positive");
  FixedStream stream(requests);
  const std::size_t p = stream.num_cores();
  MCP_REQUIRE(p > 0, "request stream has no cores");

  strategy.attach(config, p, &requests);

  CacheState cache(config.cache_size);
  ShadowCacheState shadow(config.cache_size);
  RunStats stats(p);
  std::vector<RefCoreRuntime> cores(p);
  std::size_t active = p;
  Time now = 0;
  Time steps = 0;
  Time stalled_steps = 0;
  constexpr Time kMaxStalledSteps = 1 << 20;

  const auto serve = [&](CoreId core, PageId page, RefCoreRuntime& rt) {
    const AccessContext ctx{core, page, now, rt.issued};
    CoreStats& cstats = stats.core(core);

    if (cache.contains(page)) {
      MCP_REQUIRE(shadow.contains(page), "reference engine: hit diverged");
      ++cstats.hits;
      ++cstats.requests;
      strategy.on_hit(ctx);
      rt.ready_at = now + 1;
      rt.last_finish = now;
      ++rt.issued;
      rt.has_pending = false;
      return;
    }
    MCP_REQUIRE(!shadow.contains(page), "reference engine: fault diverged");

    if (cache.is_fetching(page)) {
      MCP_REQUIRE(shadow.is_fetching(page),
                  "reference engine: fetch status diverged");
      if (config.shared_fetch == SharedFetchMode::kJoinsFetch) {
        const CellInfo* info = cache.find(page);
        MCP_ASSERT(info != nullptr);
        rt.ready_at = std::max(info->ready_at, now + 1);
        rt.has_pending = true;
        rt.pending = page;
        return;
      }
      ++cstats.faults;
      ++cstats.requests;
      if (config.record_fault_timeline) cstats.fault_times.push_back(now);
      std::vector<PageId> victims;
      strategy.on_fault(ctx, cache, /*needs_cell=*/false, victims);
      MCP_REQUIRE(victims.empty(),
                  "on_fault(needs_cell=false) must not request evictions");
      rt.ready_at = now + config.fault_penalty + 1;
      rt.last_finish = now + config.fault_penalty;
      ++rt.issued;
      rt.has_pending = false;
      return;
    }

    ++cstats.faults;
    ++cstats.requests;
    if (config.record_fault_timeline) cstats.fault_times.push_back(now);
    std::vector<PageId> victims;
    strategy.on_fault(ctx, cache, /*needs_cell=*/true, victims);
    detail::reference_apply_evictions(victims, page, cache, shadow);
    MCP_REQUIRE(cache.free_cells() >= 1,
                "strategy left no free cell for a faulting request");
    shadow.begin_fetch(page, core, now + config.fault_penalty + 1);
    cache.begin_fetch(page, core, now + config.fault_penalty + 1);
    rt.ready_at = now + config.fault_penalty + 1;
    rt.last_finish = now + config.fault_penalty;
    ++rt.issued;
    rt.has_pending = false;
  };

  while (active > 0) {
    ++steps;
    if (config.max_steps != 0 && steps > config.max_steps) {
      throw ModelError("simulation exceeded SimConfig.max_steps");
    }

    // 1. Land fetches — both engines must produce the identical batch.
    const std::vector<PageId> done_shadow = shadow.complete_fetches(now);
    const std::vector<PageId> done_new = cache.complete_fetches(now);
    MCP_REQUIRE(done_shadow == done_new,
                "reference engine: completion batch diverged");
    for (PageId page : done_new) {
      const CellInfo* info = cache.find(page);
      const CoreId by = info != nullptr ? info->fetched_by : kInvalidCore;
      strategy.on_fetch_complete(page, by, now);
    }

    // 2. Voluntary evictions.
    std::vector<PageId> voluntary;
    strategy.on_step_begin(now, cache, voluntary);
    detail::reference_apply_evictions(voluntary, kInvalidPage, cache, shadow);

    // 3. Serve ready cores in logical order.
    bool any_deferred = false;
    bool any_served = false;
    for (CoreId core = 0; core < p; ++core) {
      RefCoreRuntime& rt = cores[core];
      if (rt.done || rt.ready_at > now) continue;
      if (!rt.has_pending) {
        const std::optional<PageId> next = stream.next(core);
        if (!next.has_value()) {
          rt.done = true;
          stats.core(core).completion_time = rt.last_finish;
          strategy.on_core_done(core, now);
          --active;
          continue;
        }
        rt.has_pending = true;
        rt.pending = *next;
      }
      const AccessContext ctx{core, rt.pending, now, rt.issued};
      if (strategy.defer_request(ctx, cache)) {
        any_deferred = true;
        continue;
      }
      any_served = true;
      serve(core, rt.pending, rt);
    }

    detail::expect_states_agree(cache, shadow);

    if (active == 0) {
      stats.end_time = now;
      break;
    }

    if (any_deferred && !any_served && cache.fetching_count() == 0) {
      if (++stalled_steps > kMaxStalledSteps) {
        throw ModelError("strategy deferred every serviceable request with "
                         "nothing in flight for too long (livelock)");
      }
    } else {
      stalled_steps = 0;
    }

    Time next_time = kTimeNever;
    for (const RefCoreRuntime& rt : cores) {
      if (!rt.done) next_time = std::min(next_time, rt.ready_at);
    }
    MCP_ASSERT(next_time != kTimeNever);
    now = any_deferred ? now + 1 : std::max(now + 1, next_time);
  }

  stats.sim_steps = steps;
  return stats;
}

}  // namespace mcp::testing
