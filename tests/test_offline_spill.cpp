// Out-of-core storage tests: SpillArena / RecordLog mechanics (heap and
// budget modes, eviction accounting, header validation), the StateInterner
// on a file-backed arena, and end-to-end solver runs under a StorageBudget
// a quarter of their in-memory footprint — results must be bit-equal to
// unbudgeted solves, with real writeback traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/packed_state.hpp"
#include "offline/pif_solver.hpp"
#include "offline/replay.hpp"
#include "offline/spill_arena.hpp"
#include "test_support.hpp"

namespace mcp {

/// Corruption-injection backdoor: scribbles over a spill segment's on-file
/// header through its mapping, exactly what validate() must catch.
struct SpillArenaTestAccess {
  static void corrupt_header_word(SpillArena& arena, std::size_t segment,
                                  std::size_t word, std::uint64_t value) {
    ASSERT_LT(segment, arena.segments_.size());
    ASSERT_NE(arena.segments_[segment].map, nullptr);
    static_cast<std::uint64_t*>(arena.segments_[segment].map)[word] = value;
  }
};

namespace {

using testing::random_disjoint_workload;

OfflineInstance make_instance(RequestSet rs, std::size_t k, Time tau) {
  OfflineInstance inst;
  inst.requests = std::move(rs);
  inst.cache_size = k;
  inst.tau = tau;
  return inst;
}

/// A budget tight enough to force eviction on small test arenas: 256-byte
/// segments, two of them resident (the SpillArena minimum).
StorageBudget tight_budget() {
  StorageBudget budget;
  budget.segment_bytes = 256;
  budget.ram_bytes = 512;
  return budget;
}

TEST(SpillArena, HeapModeRoundTripsWithStablePointers) {
  SpillArena arena(3);
  EXPECT_FALSE(arena.spilling());
  std::vector<const std::uint64_t*> ptrs;
  for (std::uint64_t v = 0; v < 500; ++v) {
    const std::uint64_t words[3] = {v, v * 17, ~v};
    const std::uint32_t id = arena.append(words);
    EXPECT_EQ(id, v);
    ptrs.push_back(arena.block(id));
  }
  // Segmenting means earlier pointers survive later appends.
  for (std::uint64_t v = 0; v < 500; ++v) {
    EXPECT_EQ(arena.block(static_cast<std::uint32_t>(v)), ptrs[v]);
    EXPECT_EQ(ptrs[v][0], v);
    EXPECT_EQ(ptrs[v][1], v * 17);
    EXPECT_EQ(ptrs[v][2], ~v);
  }
  EXPECT_EQ(arena.bytes_spilled(), 0u);
  EXPECT_EQ(arena.bytes_in_ram(), arena.peak_bytes_in_ram());
  arena.validate();
}

TEST(SpillArena, BudgetModeEvictsAndReloads) {
  SpillArena arena(4, tight_budget());  // 8 blocks per 256-byte segment
  EXPECT_TRUE(arena.spilling());
  for (std::uint64_t v = 0; v < 200; ++v) {  // 25 segments through 2 resident
    const std::uint64_t words[4] = {v, v + 1, v + 2, v * v};
    arena.append(words);
  }
  EXPECT_EQ(arena.size(), 200u);
  EXPECT_GT(arena.bytes_spilled(), 0u);
  EXPECT_LE(arena.bytes_in_ram(), 512u);
  // Peak can transiently exceed the cap by the segment being appended.
  EXPECT_LE(arena.peak_bytes_in_ram(), 512u + 256u);
  arena.validate();
  // Touching evicted blocks transparently reloads them from the spill file,
  // in an access order hostile to the LRU clock.
  for (std::uint64_t v = 200; v-- > 0;) {
    const std::uint64_t* block = arena.block(static_cast<std::uint32_t>(v));
    EXPECT_EQ(block[0], v);
    EXPECT_EQ(block[3], v * v);
  }
  arena.validate();
}

TEST(SpillArena, BudgetBelowTwoSegmentsIsRejected) {
  StorageBudget budget;
  budget.segment_bytes = 4096;
  budget.ram_bytes = 4096;  // one segment: eviction could never converge
  EXPECT_THROW(SpillArena(2, budget), ModelError);
}

TEST(SpillArena, ValidateCatchesCorruptSegmentHeader) {
  SpillArena arena(4, tight_budget());
  for (std::uint64_t v = 0; v < 64; ++v) {
    const std::uint64_t words[4] = {v, 0, 0, 0};
    arena.append(words);
  }
  arena.validate();
  SpillArenaTestAccess::corrupt_header_word(arena, 2, 0, 0xdeadbeefULL);
  EXPECT_THROW(arena.validate(), ModelError);
}

TEST(RecordLog, RoundTripsInRamAndSpillModes) {
  for (const bool budgeted : {false, true}) {
    RecordLog log(budgeted ? tight_budget() : StorageBudget{});
    std::vector<std::vector<std::uint64_t>> expect;
    std::uint64_t seed = 1;
    for (std::size_t i = 0; i < 40; ++i) {
      std::vector<std::uint64_t> rec(1 + i % 7);
      for (std::uint64_t& w : rec) w = seed++;
      EXPECT_EQ(log.append(rec.data(), rec.size()), i);
      expect.push_back(std::move(rec));
    }
    std::vector<std::uint64_t> got;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(log.record_words(i), expect[i].size());
      log.read(i, got);
      EXPECT_EQ(got, expect[i]) << "budgeted=" << budgeted << " i=" << i;
    }
    if (budgeted) {
      EXPECT_GT(log.bytes_spilled(), 0u);
      // Records live only in the file; RAM holds the offset index.
      EXPECT_LT(log.bytes_in_ram(), log.bytes_spilled());
    } else {
      EXPECT_EQ(log.bytes_spilled(), 0u);
    }
  }
}

TEST(StateInterner, BudgetBackedInterningStillDedupes) {
  StateInterner interner(2, tight_budget());
  EXPECT_TRUE(interner.spilling());
  std::vector<std::uint32_t> ids;
  for (std::uint64_t v = 0; v < 600; ++v) {
    const std::uint64_t words[2] = {v, v ^ 0xabcdu};
    ids.push_back(interner.intern(words).first);
  }
  EXPECT_EQ(interner.size(), 600u);
  EXPECT_GT(interner.bytes_spilled(), 0u);
  // Dedup probes reach back into evicted segments (block_equal faults the
  // data in); every re-intern must find the original id.
  for (std::uint64_t v = 0; v < 600; ++v) {
    const std::uint64_t words[2] = {v, v ^ 0xabcdu};
    const auto [id, inserted] = interner.intern(words);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(id, ids[v]);
  }
  interner.validate();
}

// ---------------------------------------------------------------------------
// End-to-end: solves under a quarter-footprint budget are bit-equal to
// unbudgeted solves and actually hit the spill file.
// ---------------------------------------------------------------------------

TEST(OfflineSpill, FtfUnderQuarterBudgetMatchesUnbudgeted) {
  Rng rng(112233);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 8);
  const OfflineInstance inst = make_instance(rs, 3, 2);

  FtfOptions base;
  base.build_schedule = true;
  const FtfResult clean = solve_ftf(inst, base);
  ASSERT_GT(clean.states_stored, 0u);

  FtfOptions budgeted = base;
  budgeted.expected_states = clean.states_stored;  // reserve-hint satellite
  budgeted.storage.segment_bytes = 256;
  budgeted.storage.ram_bytes = 2048;
  // The budget really is a small fraction of the unbudgeted footprint.
  ASSERT_LT(budgeted.storage.ram_bytes * 4, clean.peak_bytes_in_ram);

  const FtfResult spilled = solve_ftf(inst, budgeted);
  EXPECT_EQ(spilled.min_faults, clean.min_faults);
  EXPECT_EQ(spilled.states_expanded, clean.states_expanded);
  EXPECT_EQ(spilled.states_stored, clean.states_stored);
  // Bit-equal schedule, not merely an equivalent optimum.
  EXPECT_EQ(spilled.schedule, clean.schedule);
  EXPECT_GT(spilled.bytes_spilled, 0u);
  EXPECT_LT(spilled.peak_bytes_in_ram, clean.peak_bytes_in_ram);
  EXPECT_EQ(replay_schedule(inst, spilled.schedule).total_faults(),
            spilled.min_faults);
}

TEST(OfflineSpill, PifUnderBudgetMatchesUnbudgeted) {
  Rng rng(445566);
  const std::size_t p = 2;
  const RequestSet rs = random_disjoint_workload(rng, p, 3, 7);
  PifInstance inst;
  inst.base = make_instance(rs, 3, 1);
  inst.deadline = 12;
  inst.bounds = {4, 4};

  PifOptions base;
  base.build_schedule = true;
  const PifResult clean = solve_pif(inst, base);

  PifOptions budgeted = base;
  budgeted.expected_states = 64;
  budgeted.storage = tight_budget();
  const PifResult spilled = solve_pif(inst, budgeted);

  EXPECT_EQ(spilled.feasible, clean.feasible);
  EXPECT_EQ(spilled.decided_at, clean.decided_at);
  EXPECT_EQ(spilled.states_expanded, clean.states_expanded);
  EXPECT_EQ(spilled.peak_layer_width, clean.peak_layer_width);
  EXPECT_EQ(spilled.schedule, clean.schedule);
  EXPECT_GT(spilled.bytes_spilled, 0u);
  if (clean.feasible) {
    EXPECT_TRUE(verify_pif_witness(inst, spilled.schedule));
  }
}

TEST(OfflineSpill, FtfSolverReportsStorageCounters) {
  Rng rng(778899);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 6);
  const OfflineInstance inst = make_instance(rs, 3, 1);
  const FtfResult result = solve_ftf(inst);
  // Unbudgeted solves still account their resident footprint.
  EXPECT_GT(result.peak_bytes_in_ram, 0u);
  EXPECT_EQ(result.bytes_spilled, 0u);
  EXPECT_FALSE(result.resumed);
}

}  // namespace
}  // namespace mcp
