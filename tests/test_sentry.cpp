// Tests for the checked-build analysis layer (core/sentry.hpp):
//
//   * the allocation sentry — AllocGuard trips on a deliberate allocation,
//     stays silent across the real hot loops it guards (simulator step
//     loop, Mattson fault-curve kernel, packed FTF expansion, packed PIF
//     steady-state layers), and AllocAllow marks declared growth;
//   * the deep invariant validators — CacheState::validate(),
//     StateInterner::validate() and validate_front() each catch a
//     deliberately injected corruption of the structure they watch.
//
// gtest assertions allocate, so no EXPECT/ASSERT runs while a guard is
// armed: guarded regions record outcomes into locals and assert after.
#include "core/sentry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/cache_state.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "core/strategy.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/packed_state.hpp"
#include "offline/pareto_front.hpp"
#include "offline/pif_solver.hpp"
#include "policies/mattson.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {

// Corruption-injection backdoors (friends of the structures under test).
struct CacheStateTestAccess {
  static void swap_index_entries(CacheState& cache, PageId a, PageId b) {
    std::swap(cache.page_to_slot_[a], cache.page_to_slot_[b]);
  }
  static void duplicate_free_slot(CacheState& cache) {
    MCP_REQUIRE(cache.free_slots_.size() >= 2, "need two free slots");
    cache.free_slots_[0] = cache.free_slots_[1];
  }
  static void break_fetch_heap(CacheState& cache) {
    MCP_REQUIRE(cache.fetch_heap_.size() >= 2, "need two in-flight fetches");
    std::swap(cache.fetch_heap_.front(), cache.fetch_heap_.back());
  }
};

struct InternerTestAccess {
  static void mutate_stored_hash(StateInterner& interner, std::uint32_t id) {
    interner.hashes_[id] ^= 0x8000000000000001ULL;
  }
  /// Makes id 1 a byte-identical duplicate of id 0 (stored hash kept
  /// consistent, so only the no-duplicates invariant is violated).
  static void duplicate_block(StateInterner& interner) {
    MCP_REQUIRE(interner.count_ >= 2, "need two interned states");
    std::memcpy(const_cast<std::uint64_t*>(interner.arena_.block(1)),
                interner.arena_.block(0),
                interner.stride_ * sizeof(std::uint64_t));
    interner.hashes_[1] = interner.hashes_[0];
  }
};

namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

// ---------------------------------------------------------------------------
// Allocation sentry mechanics
// ---------------------------------------------------------------------------

TEST(AllocSentry, InstrumentationIsLinkedIn) {
  // If this fails the replacement operator new was not linked and every
  // other guard test passes vacuously.
  ASSERT_TRUE(sentry::instrumentation_active());
}

TEST(AllocSentry, GuardTripsOnDeliberateAllocation) {
  bool threw = false;
  std::uint64_t attempts = 0;
  {
    AllocGuard guard("deliberate allocation");
    try {
      // Direct operator-new call: unlike a new-expression, it cannot be
      // elided by the compiler, so the guard always sees the attempt.  The
      // refused allocation is never performed — nothing to free.
      void* refused = ::operator new(64);
      ::operator delete(refused);
    } catch (const ModelError&) {
      threw = true;
    }
    attempts = guard.allocations();
  }
  EXPECT_TRUE(threw);
  EXPECT_GE(attempts, 1u);
}

TEST(AllocSentry, ViolationReportNamesInnermostRegion) {
  // ModelError's copy is non-allocating (libstdc++ shares the message), so
  // the error can be captured under guard; the message string is only
  // built after the guards unwind.
  std::optional<ModelError> caught;
  {
    AllocGuard outer("outer region");
    AllocGuard inner("inner region");
    try {
      std::vector<int> v(100);
      v[0] = 1;
    } catch (const ModelError& e) {
      caught.emplace(e);
    }
  }
  ASSERT_TRUE(caught.has_value());
  const std::string message = caught->what();
  EXPECT_NE(message.find("inner region"), std::string::npos) << message;
  EXPECT_NE(message.find("test_sentry.cpp"), std::string::npos) << message;
}

TEST(AllocSentry, AllowSuspendsAndNestsBackToEnforcing) {
  bool allow_threw = false;
  bool after_threw = false;
  {
    AllocGuard guard("allow scope");
    try {
      AllocAllow allow;
      std::vector<int> v(100);
      v[0] = 1;
    } catch (const ModelError&) {
      allow_threw = true;
    }
    try {
      void* refused = ::operator new(32);  // non-elidable, see above
      ::operator delete(refused);
    } catch (const ModelError&) {
      after_threw = true;
    }
  }
  EXPECT_FALSE(allow_threw);
  EXPECT_TRUE(after_threw);
}

TEST(AllocSentry, GuardIsSilentOnAllocationFreeCode) {
  std::vector<int> warm(64, 1);
  std::uint64_t attempts = 0;
  {
    AllocGuard guard("pure compute");
    int sum = 0;
    for (int x : warm) sum += x;
    warm[0] = sum;
    attempts = guard.allocations();
  }
  EXPECT_EQ(attempts, 0u);
  EXPECT_EQ(warm[0], 64);
}

// ---------------------------------------------------------------------------
// Hot-loop guards: the structural performance claims, enforced end to end.
// A throw inside any of these runs would fail the test — each run IS the
// assertion that the guarded loop performs zero allocations.
// ---------------------------------------------------------------------------

TEST(AllocSentry, SimulatorHitSteadyStateIsAllocationFree) {
  // Two cores cycling inside working sets that fit the cache together:
  // cold faults during warm-up, pure hits afterwards.  S_LRU's hit path is
  // a list splice — allocation-free.
  RequestSet rs;
  for (CoreId j = 0; j < 2; ++j) {
    RequestSequence seq;
    for (int round = 0; round < 60; ++round) {
      for (PageId p = 0; p < 4; ++p) {
        seq.push_back(static_cast<PageId>(j * 4) + p);
      }
    }
    rs.add_sequence(std::move(seq));
  }
  SimConfig cfg = sim_config(/*cache_size=*/8, /*tau=*/1);
  cfg.alloc_guard_after_step = 40;  // all 8 cold faults land well before
  Simulator sim(cfg);
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = sim.run(rs, lru);
  EXPECT_EQ(stats.total_faults(), 8u);  // cold misses only
}

namespace {
/// Minimal non-allocating test strategy: evict the smallest-id present
/// page.  Exists because real policies (LRU's list/map nodes) allocate per
/// insert — this keeps the *fault* path itself under guard.
class MinPresentStrategy final : public CacheStrategy {
 public:
  void attach(const SimConfig&, std::size_t, const RequestSet*) override {}
  void on_hit(const AccessContext&) override {}
  void on_fault(const AccessContext&, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override {
    if (!needs_cell || cache.free_cells() > 0) return;
    PageId victim = kInvalidPage;
    cache.for_each_present([&victim](PageId page) {
      if (victim == kInvalidPage || page < victim) victim = page;
    });
    evictions.push_back(victim);
  }
  [[nodiscard]] std::string name() const override { return "min-present"; }
};
}  // namespace

TEST(AllocSentry, SimulatorFaultSteadyStateIsAllocationFree) {
  // One core cycling over cache_size + 1 pages: every post-warm-up request
  // faults, exercising begin_fetch / evict / fetch-heap under the guard.
  RequestSet rs;
  {
    RequestSequence seq;
    for (int round = 0; round < 50; ++round) {
      for (PageId p = 0; p < 4; ++p) seq.push_back(p);
    }
    rs.add_sequence(std::move(seq));
  }
  SimConfig cfg = sim_config(/*cache_size=*/3, /*tau=*/1);
  cfg.record_fault_timeline = false;  // a per-fault append is a real
                                      // allocation; not a steady-state one
  cfg.alloc_guard_after_step = 30;
  Simulator sim(cfg);
  MinPresentStrategy strategy;
  const RunStats stats = sim.run(rs, strategy);
  // Min-id eviction on this cycle settles into a fault/hit mix (~2 faults
  // per 4-request round) — what matters is that every one of those faults
  // ran under the armed guard.
  EXPECT_GT(stats.total_faults(), 80u);
}

TEST(AllocSentry, MattsonKernelIsAllocationFree) {
  // lru_fault_curve's stack-distance scan arms its own internal guard —
  // completing without a throw is the assertion.
  Rng rng(1234);
  RequestSequence seq;
  for (int i = 0; i < 4000; ++i) {
    seq.push_back(static_cast<PageId>(rng.below(64)));
  }
  const std::vector<Count> curve = lru_fault_curve(seq, 32);
  ASSERT_EQ(curve.size(), 33u);
  EXPECT_EQ(curve[0], seq.size());
  EXPECT_TRUE(std::is_sorted(curve.rbegin(), curve.rend()));
}

TEST(AllocSentry, FtfPackedExpansionKernelIsAllocationFree) {
  Rng rng(777);
  OfflineInstance inst;
  inst.requests = random_disjoint_workload(rng, 2, 3, 6);
  inst.cache_size = 2;
  inst.tau = 1;

  FtfOptions plain;
  FtfOptions guarded;
  guarded.alloc_guard = true;
  const FtfResult expected = solve_ftf(inst, plain);
  const FtfResult result = solve_ftf(inst, guarded);
  EXPECT_EQ(result.min_faults, expected.min_faults);
  EXPECT_EQ(result.states_expanded, expected.states_expanded);
  EXPECT_GT(result.states_expanded, 1u);
}

TEST(AllocSentry, PifPackedSteadyStateLayersAreAllocationFree) {
  Rng rng(4242);
  PifInstance inst;
  inst.base.requests = random_disjoint_workload(rng, 2, 3, 8);
  inst.base.cache_size = 2;
  inst.base.tau = 1;
  inst.deadline = 24;
  inst.bounds = {100, 100};  // generous: the DP runs the full deadline

  PifOptions plain;
  plain.workers = 1;
  const PifResult expected = solve_pif(inst, plain);
  ASSERT_GT(expected.states_expanded, 0u);

  // Serial engine, guarded past layer 4 (warm-up: scratch buffers, first
  // recycled fronts).
  PifOptions serial = plain;
  serial.alloc_guard_after_layer = 4;
  const PifResult serial_result = solve_pif(inst, serial);
  EXPECT_EQ(serial_result.feasible, expected.feasible);
  EXPECT_EQ(serial_result.states_expanded, expected.states_expanded);
  EXPECT_EQ(serial_result.peak_layer_width, expected.peak_layer_width);

  // Layer-parallel engine: every worker chunk arms its own guard.
  PifOptions parallel = plain;
  parallel.workers = 0;  // all pool workers
  parallel.alloc_guard_after_layer = 4;
  const PifResult parallel_result = solve_pif(inst, parallel);
  EXPECT_EQ(parallel_result.feasible, expected.feasible);
  EXPECT_EQ(parallel_result.states_expanded, expected.states_expanded);
  EXPECT_EQ(parallel_result.peak_layer_width, expected.peak_layer_width);
}

TEST(AllocSentry, BatchEngineStepLoopIsAllocationFree) {
  // The batch engine's contract is stronger than steady-state: after load()
  // the ENTIRE lockstep loop — cold faults, evictions, fetch landings,
  // fault-timeline appends (pre-reserved: <= 1 fault per request) and lane
  // retirement — performs zero allocations.  Arm our own guard around
  // step_round() and count.
  Rng rng(0xBEEF);
  const RequestSet wide = random_disjoint_workload(rng, 2, 6, 400);
  const RequestSet tall = random_disjoint_workload(rng, 3, 5, 250);
  std::vector<SimJob> jobs;
  for (const RequestSet* rs : {&wide, &tall}) {
    for (const Time tau : {Time{0}, Time{2}}) {
      SimJob shared_job;
      shared_job.config = sim_config(2 * rs->num_cores(), tau);
      shared_job.requests = rs;
      shared_job.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
      jobs.push_back(std::move(shared_job));
      SimJob part_job;
      part_job.config = sim_config(2 * rs->num_cores(), tau);
      part_job.requests = rs;
      part_job.strategy = BatchStrategySpec::static_partition(
          std::vector<std::size_t>(rs->num_cores(), 2), BatchPolicy::kFifo);
      jobs.push_back(std::move(part_job));
    }
  }

  BatchEngine engine(BatchEngineOptions{.alloc_guard = false});
  std::vector<RunStats> out(jobs.size());
  engine.load(jobs, out);
  std::uint64_t attempts = 0;
  std::size_t rounds = 0;
  {
    AllocGuard guard("batch engine lockstep loop (test-armed)");
    while (engine.step_round() > 0) ++rounds;
    attempts = guard.allocations();
  }
#ifdef MCP_CHECKED_BUILD
  // Checked builds run the deep validator every round; its scratch is a
  // declared AllocAllow growth point — permitted (no throw above), but
  // counted — so the zero-attempt claim is asserted in unchecked builds.
  (void)attempts;
#else
  EXPECT_EQ(attempts, 0u);
#endif
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(engine.active_lanes(), 0u);
  Count faults = 0;
  for (const RunStats& stats : out) faults += stats.total_faults();
  EXPECT_GT(faults, 0u);  // the guarded loop really exercised the fault path
}

// ---------------------------------------------------------------------------
// Deep invariant validators: each catches its injected corruption.
// ---------------------------------------------------------------------------

namespace {
CacheState populated_cache() {
  CacheState cache(4);
  cache.reserve_universe(16);
  cache.insert_present(1, 0);
  cache.insert_present(2, 0);
  cache.begin_fetch(5, 1, /*ready_at=*/10);
  cache.begin_fetch(7, 1, /*ready_at=*/6);
  return cache;
}
}  // namespace

TEST(CacheStateValidate, PassesOnLiveStates) {
  CacheState cache = populated_cache();
  EXPECT_NO_THROW(cache.validate());
  cache.complete_fetches(10);
  cache.evict(1);
  EXPECT_NO_THROW(cache.validate());
  cache.clear();
  EXPECT_NO_THROW(cache.validate());
}

TEST(CacheStateValidate, CatchesSwappedIndexEntries) {
  CacheState cache = populated_cache();
  CacheStateTestAccess::swap_index_entries(cache, 1, 2);
  EXPECT_THROW(cache.validate(), ModelError);
}

TEST(CacheStateValidate, CatchesFreeSlotDuplicate) {
  CacheState cache(4);
  cache.reserve_universe(8);
  cache.insert_present(3, 0);
  CacheStateTestAccess::duplicate_free_slot(cache);
  EXPECT_THROW(cache.validate(), ModelError);
}

TEST(CacheStateValidate, CatchesFetchHeapDisorder) {
  CacheState cache = populated_cache();  // fetches ready at 10 then 6
  CacheStateTestAccess::break_fetch_heap(cache);
  EXPECT_THROW(cache.validate(), ModelError);
}

TEST(BatchStateValidate, CatchesInjectedLaneSwap) {
  // Corrupt the page lane mid-run — swap the pages held by two present
  // slots without fixing the page->slot backpointers — and the lane/cell
  // bijection check in BatchEngine::validate() must throw.
  Rng rng(0x5107);
  const RequestSet rs = random_disjoint_workload(rng, 2, 5, 120);
  std::vector<SimJob> jobs(2);
  for (SimJob& job : jobs) {
    job.config = sim_config(6, 0);
    job.requests = &rs;
    job.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
  }

  BatchEngine engine(BatchEngineOptions{.alloc_guard = false});
  std::vector<RunStats> out(jobs.size());
  engine.load(jobs, out);
  for (int round = 0; round < 8; ++round) (void)engine.step_round();
  ASSERT_GT(engine.active_lanes(), 0u);
  EXPECT_NO_THROW(engine.validate());

  BatchState& state = BatchEngineTestAccess::state(engine);
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t first = kNone;
  std::size_t second = kNone;
  for (std::size_t s = 0; s < state.slot_page.size(); ++s) {
    if (state.slot_status[s] != BatchSlotStatus::kPresent) continue;
    if (first == kNone) {
      first = s;
    } else if (state.slot_page[s] != state.slot_page[first]) {
      second = s;
      break;
    }
  }
  ASSERT_NE(first, kNone);
  ASSERT_NE(second, kNone);
  std::swap(state.slot_page[first], state.slot_page[second]);
  EXPECT_THROW(engine.validate(), ModelError);
}

namespace {
/// A one-lane cohort engine parked mid-step: the feed is revealed and
/// drained dry but left open, so the lane stalls at the cursor pull with a
/// parked step (in_step set) — the state the new cohort invariants guard.
struct CohortFixture {
  BatchEngine engine{BatchEngineOptions{.alloc_guard = false}};
  RequestSet trace{std::size_t{2}};
  std::uint32_t lane = 0;

  CohortFixture() {
    CohortShape shape;
    shape.cache_size = 4;
    shape.num_cores = 2;
    shape.fault_penalty = 1;
    shape.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
    engine.init_cohort(shape);
    lane = engine.attach_lane();
    const PageId pages_a[] = {1, 2, 1, 3};
    const PageId pages_b[] = {5, 6, 5};
    trace.sequence(0).append(pages_a);
    trace.sequence(1).append(pages_b);
    engine.refresh_lane(lane, trace, 8, /*closed=*/false);
    engine.drain();
  }
};
}  // namespace

TEST(BatchStateValidate, CatchesCohortCursorPastFeed) {
  CohortFixture fx;
  ASSERT_EQ(fx.engine.lane_status(fx.lane), BatchLaneStatus::kStalled);
  EXPECT_NO_THROW(fx.engine.validate());
  BatchState& state = BatchEngineTestAccess::state(fx.engine);
  // A desynced refresh would leave the cursor past the feed it borrowed.
  state.core_next[0] = state.core_len[0] + 1;
  EXPECT_THROW(fx.engine.validate(), ModelError);
}

TEST(BatchStateValidate, CatchesStalledLaneWithNoLiveCores) {
  CohortFixture fx;
  BatchState& state = BatchEngineTestAccess::state(fx.engine);
  state.cells[fx.lane].active_cores = 0;
  EXPECT_THROW(fx.engine.validate(), ModelError);
}

TEST(BatchStateValidate, CatchesParkedStepResumeCoreOutOfRange) {
  CohortFixture fx;
  BatchState& state = BatchEngineTestAccess::state(fx.engine);
  BatchCell& cell = state.cells[fx.lane];
  ASSERT_TRUE(cell.in_step);
  cell.resume_core = cell.num_cores;
  EXPECT_THROW(fx.engine.validate(), ModelError);
}

TEST(BatchStateValidate, CatchesLaneStatusActiveListDesync) {
  CohortFixture fx;
  BatchState& state = BatchEngineTestAccess::state(fx.engine);
  // Claim the parked lane is running without putting it on the active list.
  state.cells[fx.lane].in_step = false;
  state.cells[fx.lane].status = BatchLaneStatus::kRunning;
  EXPECT_THROW(fx.engine.validate(), ModelError);
  // And the inverse: active list entry for a non-running lane.
  state.cells[fx.lane].status = BatchLaneStatus::kStalled;
  BatchEngineTestAccess::active(fx.engine).push_back(fx.lane);
  EXPECT_THROW(fx.engine.validate(), ModelError);
}

TEST(AllocSentry, CohortDrainIsAllocationFree) {
  // The cohort epoch loop's contract: attach_lane() and refresh_lane() are
  // where ALL allocation happens (lane growth, page-index doubling,
  // fault-timeline reserves) — drain() itself, across chunk arrivals,
  // stalls, resumes and lane endings, performs zero allocations.
  Rng rng(0xC0C0);
  const RequestSet full_a = random_disjoint_workload(rng, 2, 6, 300);
  const RequestSet full_b = random_disjoint_workload(rng, 2, 6, 210);

  CohortShape shape;
  shape.cache_size = 4;
  shape.num_cores = 2;
  shape.fault_penalty = 2;
  shape.record_fault_timeline = true;
  shape.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
  BatchEngine engine(BatchEngineOptions{.alloc_guard = false});
  engine.init_cohort(shape);
  const std::uint32_t lane_a = engine.attach_lane();
  const std::uint32_t lane_b = engine.attach_lane();

  RequestSet fed_a(std::size_t{2});
  RequestSet fed_b(std::size_t{2});
  std::uint64_t attempts = 0;
  const std::size_t slices = 3;
  for (std::size_t slice = 1; slice <= slices; ++slice) {
    PageId bound = 0;
    for (RequestSet* fed : {&fed_a, &fed_b}) {
      const RequestSet& full = fed == &fed_a ? full_a : full_b;
      for (CoreId core = 0; core < 2; ++core) {
        const std::span<const PageId> pages = full.sequence(core).pages();
        const std::size_t upto = pages.size() * slice / slices;
        RequestSequence& seq = fed->sequence(core);
        seq.append(pages.subspan(seq.size(), upto - seq.size()));
        for (const PageId page : seq) bound = std::max(bound, page + 1);
      }
    }
    const bool last = slice == slices;
    engine.refresh_lane(lane_a, fed_a, bound, last);
    engine.refresh_lane(lane_b, fed_b, bound, last);
    {
      AllocGuard guard("cohort drain (test-armed)");
      engine.drain();
      attempts += guard.allocations();
    }
  }
  EXPECT_EQ(engine.lane_status(lane_a), BatchLaneStatus::kEnded);
  EXPECT_EQ(engine.lane_status(lane_b), BatchLaneStatus::kEnded);
#ifdef MCP_CHECKED_BUILD
  // Checked builds run the deep validator inside the round loop; its
  // scratch is a declared AllocAllow growth point.
  (void)attempts;
#else
  EXPECT_EQ(attempts, 0u);
#endif
  const RunStats stats_a = engine.detach_lane(lane_a);
  const RunStats stats_b = engine.detach_lane(lane_b);
  EXPECT_GT(stats_a.total_faults() + stats_b.total_faults(), 0u);
}

TEST(InternerValidate, PassesAfterInterning) {
  StateInterner interner(2);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t words[2] = {i, i * 3 + 1};
    interner.intern(words);
  }
  EXPECT_EQ(interner.size(), 100u);
  EXPECT_NO_THROW(interner.validate());
}

TEST(InternerValidate, CatchesMutatedStoredHash) {
  StateInterner interner(2);
  const std::uint64_t a[2] = {1, 2};
  const std::uint64_t b[2] = {3, 4};
  interner.intern(a);
  interner.intern(b);
  InternerTestAccess::mutate_stored_hash(interner, 0);
  EXPECT_THROW(interner.validate(), ModelError);
}

TEST(InternerValidate, CatchesDuplicatePackedState) {
  StateInterner interner(2);
  const std::uint64_t a[2] = {1, 2};
  const std::uint64_t b[2] = {3, 4};
  interner.intern(a);
  interner.intern(b);
  InternerTestAccess::duplicate_block(interner);
  EXPECT_THROW(interner.validate(), ModelError);
}

namespace {
PackedFront staircase_front() {
  // Built through the real insertion kernel: a valid p = 2 staircase.
  PackedFront front;
  const std::uint32_t vectors[][2] = {{3, 1}, {1, 3}, {2, 2}};
  for (const auto& fv : vectors) {
    pareto_insert_packed(front, 2, fv, ParetoProv{});
  }
  return front;
}
}  // namespace

TEST(ParetoFrontValidate, PassesOnInsertedFront) {
  const PackedFront front = staircase_front();
  ASSERT_EQ(front.size(), 3u);
  EXPECT_NO_THROW(validate_front(front, 2));
  // The kernel rejects dominated and duplicate vectors outright.
  PackedFront copy = front;
  const std::uint32_t dominated[2] = {3, 3};
  EXPECT_FALSE(pareto_insert_packed(copy, 2, dominated, ParetoProv{}));
  const std::uint32_t duplicate[2] = {2, 2};
  EXPECT_FALSE(pareto_insert_packed(copy, 2, duplicate, ParetoProv{}));
  EXPECT_EQ(copy.size(), 3u);
}

TEST(ParetoFrontValidate, CatchesShuffledEntries) {
  PackedFront front = staircase_front();
  // Swap entries 0 and 1: (1,3),(2,2),(3,1) -> (2,2),(1,3),(3,1).
  std::swap(front.faults[0], front.faults[2]);
  std::swap(front.faults[1], front.faults[3]);
  EXPECT_THROW(validate_front(front, 2), ModelError);
}

TEST(ParetoFrontValidate, CatchesDominatedPair) {
  PackedFront front = staircase_front();
  // Weaken entry 0 from (1,3) to (1,1): still lex-sorted, but it now
  // dominates (2,2) and (3,1).
  front.faults[1] = 1;
  EXPECT_THROW(validate_front(front, 2), ModelError);
}

}  // namespace
}  // namespace mcp
