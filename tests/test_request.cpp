// Unit tests for RequestSequence / RequestSet (core/request.hpp).
#include "core/request.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace mcp {
namespace {

TEST(RequestSequence, BasicAccess) {
  RequestSequence seq{1, 2, 3, 2};
  EXPECT_EQ(seq.size(), 4u);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq[0], 1u);
  EXPECT_EQ(seq[3], 2u);
  EXPECT_EQ(seq.distinct_pages(), 3u);
}

TEST(RequestSequence, AppendRepeated) {
  RequestSequence seq;
  const std::vector<PageId> block = {5, 6};
  seq.append_repeated(block, 3);
  ASSERT_EQ(seq.size(), 6u);
  EXPECT_EQ(seq[0], 5u);
  EXPECT_EQ(seq[1], 6u);
  EXPECT_EQ(seq[4], 5u);
  EXPECT_EQ(seq[5], 6u);
}

TEST(RequestSequence, AppendRepeatedZeroTimes) {
  RequestSequence seq{1};
  const std::vector<PageId> block = {5, 6};
  seq.append_repeated(block, 0);
  EXPECT_EQ(seq.size(), 1u);
}

TEST(RequestSet, Totals) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  rs.add_sequence(RequestSequence{4, 5});
  EXPECT_EQ(rs.num_cores(), 2u);
  EXPECT_EQ(rs.total_requests(), 5u);
  EXPECT_EQ(rs.max_sequence_length(), 3u);
  EXPECT_EQ(rs.page_bound(), 6u);
}

TEST(RequestSet, UniverseSortedUnique) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{3, 1, 3});
  rs.add_sequence(RequestSequence{2, 1});
  const std::vector<PageId> expected = {1, 2, 3};
  EXPECT_EQ(rs.universe(), expected);
}

TEST(RequestSet, DisjointDetection) {
  RequestSet disjoint;
  disjoint.add_sequence(RequestSequence{1, 2, 1});
  disjoint.add_sequence(RequestSequence{3, 4});
  EXPECT_TRUE(disjoint.is_disjoint());

  RequestSet shared;
  shared.add_sequence(RequestSequence{1, 2});
  shared.add_sequence(RequestSequence{2, 3});
  EXPECT_FALSE(shared.is_disjoint());
}

TEST(RequestSet, RepeatsWithinOneSequenceStayDisjoint) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 1, 1, 1});
  rs.add_sequence(RequestSequence{2});
  EXPECT_TRUE(rs.is_disjoint());
}

TEST(RequestSet, OwnerMap) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{0, 2});
  rs.add_sequence(RequestSequence{1});
  const std::vector<CoreId> owners = rs.owner_map(4);
  EXPECT_EQ(owners[0], 0u);
  EXPECT_EQ(owners[1], 1u);
  EXPECT_EQ(owners[2], 0u);
  EXPECT_EQ(owners[3], kInvalidCore);
}

TEST(RequestSet, OwnerMapRejectsNonDisjoint) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{0});
  rs.add_sequence(RequestSequence{0});
  EXPECT_THROW((void)rs.owner_map(1), ModelError);
}

TEST(RequestSet, OwnerMapRejectsOutOfRangePage) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{9});
  EXPECT_THROW((void)rs.owner_map(5), ModelError);
}

TEST(RequestSet, Describe) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2});
  rs.add_sequence(RequestSequence{3});
  EXPECT_EQ(rs.describe(), "p=2 n=3 (2/1)");
}

TEST(PageBlock, ProducesConsecutiveIds) {
  const std::vector<PageId> block = page_block(10, 3);
  const std::vector<PageId> expected = {10, 11, 12};
  EXPECT_EQ(block, expected);
}

TEST(PageBlock, EmptyBlock) {
  EXPECT_TRUE(page_block(0, 0).empty());
}

}  // namespace
}  // namespace mcp
