// The sweep engine's determinism contract: the same sweep produces
// bit-identical results for max_threads = 1 (serial), 2, and 0 (all
// hardware workers), including the per-cell RNG-splitting path.  This is
// what makes every bench number in the repo reproducible from its master
// seed alone, on any machine.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch_state.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

// Flattens everything RunStats records into one comparable word stream, so
// "bit-identical" is checked on the full observable result, not a summary.
std::vector<std::uint64_t> fingerprint(const RunStats& stats) {
  std::vector<std::uint64_t> words;
  words.push_back(stats.num_cores());
  words.push_back(stats.end_time);
  for (CoreId j = 0; j < stats.num_cores(); ++j) {
    const CoreStats& core = stats.core(j);
    words.push_back(core.hits);
    words.push_back(core.faults);
    words.push_back(core.requests);
    words.push_back(core.completion_time);
    words.insert(words.end(), core.fault_times.begin(),
                 core.fault_times.end());
  }
  return words;
}

// The sweep under test: each cell draws its whole configuration (core
// count, tau, trace) from the per-cell RNG stream and runs a randomized
// simulation — the exact shape of the bench grids.
std::vector<std::vector<std::uint64_t>> run_sweep(std::uint64_t master_seed,
                                                  std::size_t max_threads) {
  SweepRunner sweep(SweepOptions{master_seed, max_threads});
  return sweep.run(12, [](std::size_t cell, Rng& rng) {
    const std::size_t cores = 2 + rng.below(3);
    const std::size_t cache = 3 * cores + rng.below(4);
    const Time tau = rng.below(5);
    const RequestSet rs = random_disjoint_workload(rng, cores, 6, 200);
    // Alternate strategy families across cells, like a real grid.
    if (cell % 2 == 0) {
      SharedStrategy strategy(make_policy_factory("lru"));
      return fingerprint(simulate(sim_config(cache, tau), rs, strategy));
    }
    StaticPartitionStrategy strategy(even_partition(cache, cores),
                                     make_policy_factory("mark", rng()));
    return fingerprint(simulate(sim_config(cache, tau), rs, strategy));
  });
}

TEST(SweepDeterminism, BitIdenticalAcrossWorkerCounts) {
  const std::uint64_t seed = 0xDE7E12;
  const auto serial = run_sweep(seed, 1);
  const auto two = run_sweep(seed, 2);
  const auto hardware = run_sweep(seed, 0);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, hardware);
}

TEST(SweepDeterminism, RerunIsIdenticalAndSeedMatters) {
  const auto first = run_sweep(99, 0);
  const auto again = run_sweep(99, 0);
  EXPECT_EQ(first, again);
  const auto other = run_sweep(100, 0);
  EXPECT_NE(first, other);
}

TEST(SweepCellRng, StreamsAreReproducibleAndDistinct) {
  Rng a = sweep_cell_rng(7, 3);
  Rng b = sweep_cell_rng(7, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());

  // Distinct cells (and distinct seeds) give distinct streams.
  Rng c = sweep_cell_rng(7, 4);
  Rng d = sweep_cell_rng(8, 3);
  Rng base = sweep_cell_rng(7, 3);
  bool c_differs = false;
  bool d_differs = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = base();
    c_differs = c_differs || c() != word;
    d_differs = d_differs || d() != word;
  }
  EXPECT_TRUE(c_differs);
  EXPECT_TRUE(d_differs);
}

TEST(SweepCellRng, CellStreamIndependentOfConsumptionElsewhere) {
  // A cell's stream must not depend on how much randomness other cells
  // consume — the property that makes worker count irrelevant.
  Rng cell5 = sweep_cell_rng(42, 5);
  const std::uint64_t expected = cell5();
  Rng cell4 = sweep_cell_rng(42, 4);
  for (int i = 0; i < 1000; ++i) (void)cell4();  // a greedy neighbour
  Rng cell5_again = sweep_cell_rng(42, 5);
  EXPECT_EQ(cell5_again(), expected);
}

// The batched job path (run_jobs) extends the contract: results must be
// bit-identical for any worker count AND any batch width B — lanes are
// fully independent, so how jobs are tiled into engines is unobservable.
TEST(SweepDeterminism, RunJobsBitIdenticalAcrossWorkersAndBatchWidths) {
  Rng rng(0xBA7C4);
  std::vector<RequestSet> workloads;
  workloads.push_back(random_disjoint_workload(rng, 2, 6, 150));
  workloads.push_back(random_disjoint_workload(rng, 3, 5, 90));
  workloads.push_back(random_disjoint_workload(rng, 4, 7, 200));

  std::vector<SimJob> jobs;
  for (const RequestSet& rs : workloads) {
    for (const Time tau : {Time{0}, Time{2}, Time{5}}) {
      const std::size_t cache = 3 * rs.num_cores();
      SimJob shared_job;
      shared_job.config = sim_config(cache, tau);
      shared_job.requests = &rs;
      shared_job.strategy = BatchStrategySpec::shared(BatchPolicy::kLru);
      jobs.push_back(std::move(shared_job));
      SimJob part_job;
      part_job.config = sim_config(cache, tau);
      part_job.requests = &rs;
      part_job.strategy = BatchStrategySpec::static_partition(
          even_partition(cache, rs.num_cores()), BatchPolicy::kFifo);
      jobs.push_back(std::move(part_job));
    }
  }

  std::vector<std::vector<std::uint64_t>> baseline;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const std::size_t width : {std::size_t{1}, std::size_t{32}}) {
      SweepOptions opts;
      opts.max_threads = workers;
      SweepRunner sweep(opts);
      const std::vector<RunStats> stats = sweep.run_jobs(jobs, width);
      std::vector<std::vector<std::uint64_t>> prints;
      prints.reserve(stats.size());
      for (const RunStats& s : stats) prints.push_back(fingerprint(s));
      if (baseline.empty()) {
        baseline = std::move(prints);
        ASSERT_EQ(baseline.size(), jobs.size());
      } else {
        EXPECT_EQ(prints, baseline)
            << "workers=" << workers << " B=" << width;
      }
    }
  }
}

TEST(SweepTiming, ReportsCellsAndRate) {
  SweepRunner sweep(SweepOptions{1, 0});
  (void)sweep.run(32, [](std::size_t i, Rng&) { return i; });
  const SweepTiming& timing = sweep.last_timing();
  EXPECT_EQ(timing.cells, 32u);
  EXPECT_GE(timing.wall_seconds, 0.0);
  EXPECT_GE(timing.cells_per_second(), 0.0);
  const std::string json = timing.json("unit");
  EXPECT_NE(json.find("\"sweep\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\":32"), std::string::npos);
  EXPECT_NE(json.find("cells_per_second"), std::string::npos);
}

TEST(SweepRunner, EmptySweepIsFine) {
  SweepRunner sweep;
  const std::vector<int> results =
      sweep.run(0, [](std::size_t, Rng&) { return 1; });
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(sweep.last_timing().cells, 0u);
}

}  // namespace
}  // namespace mcp
