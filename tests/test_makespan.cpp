// Tests for the min-makespan solver (offline/makespan_solver.hpp).
#include "offline/makespan_solver.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/replay.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;

OfflineInstance make_instance(RequestSet rs, std::size_t k, Time tau) {
  OfflineInstance inst;
  inst.requests = std::move(rs);
  inst.cache_size = k;
  inst.tau = tau;
  return inst;
}

TEST(MakespanSolver, SingleCoreEqualsBeladyFormula) {
  // p=1: makespan = n + tau*faults - 1, minimized by minimizing faults.
  Rng rng(314);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 1, 4, 10);
    for (std::size_t k : {2u, 3u}) {
      for (Time tau : {Time{0}, Time{2}}) {
        const auto result = solve_min_makespan(make_instance(rs, k, tau));
        const Count faults = belady_faults(rs.sequence(0), k);
        EXPECT_EQ(result.min_makespan,
                  rs.sequence(0).size() + tau * faults - 1)
            << "trial=" << trial << " k=" << k << " tau=" << tau;
      }
    }
  }
}

TEST(MakespanSolver, EmptyInstanceIsZero) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{});
  rs.add_sequence(RequestSequence{});
  EXPECT_EQ(solve_min_makespan(make_instance(std::move(rs), 2, 3)).min_makespan,
            0u);
}

TEST(MakespanSolver, LowerBoundsEveryStrategyRun) {
  Rng rng(2718);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const OfflineInstance inst = make_instance(rs, 2, 2);
    const Time opt = solve_min_makespan(inst).min_makespan;

    SharedStrategy lru(make_policy_factory("lru"));
    EXPECT_GE(simulate(inst.sim_config(), rs, lru).makespan(), opt)
        << "trial=" << trial;
    auto fitf = SharedStrategy::fitf();
    EXPECT_GE(simulate(inst.sim_config(), rs, *fitf).makespan(), opt)
        << "trial=" << trial;

    // Trivial floor: even an all-hit run of the longest sequence takes
    // n_max - 1... plus the first request always faults (cold cache).
    EXPECT_GE(opt, rs.max_sequence_length() - 1) << "trial=" << trial;
  }
}

TEST(MakespanSolver, FtfOptimalScheduleIsNotAlwaysMakespanOptimal) {
  // The objectives coincide often but not always; at minimum the replayed
  // FTF schedule's makespan can never beat the makespan optimum.
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const OfflineInstance inst = make_instance(rs, 2, 2);
    FtfOptions options;
    options.build_schedule = true;
    const FtfResult ftf = solve_ftf(inst, options);
    const RunStats replay = replay_schedule(inst, ftf.schedule);
    EXPECT_GE(replay.makespan(), solve_min_makespan(inst).min_makespan)
        << "trial=" << trial;
  }
}

TEST(MakespanSolver, TauZeroMakespanTracksRequests) {
  // With tau=0, every request takes one step: makespan depends only on the
  // longest per-core request count, not on eviction choices.
  Rng rng(55);
  const RequestSet rs = random_disjoint_workload(rng, 2, 4, 6);
  const auto result = solve_min_makespan(make_instance(rs, 2, 0));
  EXPECT_EQ(result.min_makespan, rs.max_sequence_length() - 1);
}

TEST(MakespanSolver, WidthLimitThrows) {
  Rng rng(7);
  const RequestSet rs = random_disjoint_workload(rng, 3, 4, 10);
  MakespanOptions options;
  options.max_layer_width = 2;
  EXPECT_THROW(
      (void)solve_min_makespan(make_instance(rs, 3, 2), options), ModelError);
}

TEST(MakespanSolver, RejectsNonDisjoint) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  rs.add_sequence(RequestSequence{1});
  EXPECT_THROW((void)solve_min_makespan(make_instance(std::move(rs), 2, 0)),
               ModelError);
}

}  // namespace
}  // namespace mcp
