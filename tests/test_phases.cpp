// Tests for the phase decompositions (workload/phases.hpp) — the
// combinatorial claims inside the proofs of Lemma 1 (upper bound) and
// Theorem 1.2, checked structurally and against simulations.
#include "workload/phases.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

TEST(Phases, HandComputedStarts) {
  // k=2: [1 2 1 | 3 1 | 2 3] — new phase at each 3rd distinct page.
  const RequestSequence seq{1, 2, 1, 3, 1, 2, 3};
  const std::vector<std::size_t> expected = {0, 3, 5};
  EXPECT_EQ(phase_starts(seq, 2), expected);
  EXPECT_EQ(count_phases(seq, 2), 3u);
}

TEST(Phases, WholeSequenceFitsInOnePhase) {
  const RequestSequence seq{1, 2, 1, 2, 1};
  EXPECT_EQ(count_phases(seq, 2), 1u);
  EXPECT_EQ(count_phases(seq, 5), 1u);
  EXPECT_EQ(count_phases(RequestSequence{}, 3), 0u);
}

TEST(Phases, ThresholdOneSplitsAtEveryPageChange) {
  const RequestSequence seq{1, 1, 2, 2, 2, 1};
  EXPECT_EQ(count_phases(seq, 1), 3u);
}

TEST(Phases, CanonicalInterleavingRoundRobins) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  rs.add_sequence(RequestSequence{7, 8});
  const RequestSequence expected{1, 7, 2, 8, 3};
  EXPECT_EQ(canonical_interleaving(rs), expected);
}

TEST(Phases, SharedPhasesBoundedByCorePhaseSum) {
  // Theorem 1.2's claim: phi <= sum_j phi_j, for any partition thresholds
  // summing to K.  Checked over random workloads and partitions.
  Rng rng(606);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 6, 150);
    const std::size_t K = 9;
    for (const Partition& part :
         {Partition{3, 3, 3}, Partition{1, 4, 4}, Partition{5, 2, 2}}) {
      const PhaseDecomposition dec = decompose_phases(rs, K, part);
      EXPECT_LE(dec.shared_phases, dec.core_phase_total())
          << "trial=" << trial << " part=" << partition_to_string(part);
      EXPECT_GE(dec.shared_phases, 1u);
    }
  }
}

TEST(Phases, EveryAlgorithmFaultsOncePerCorePhase) {
  // Any algorithm with k_j cells faults at least once per phase of R_j —
  // in particular Belady: belady_faults(R_j, k_j) >= phi_j.
  Rng rng(707);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 6, 120);
    for (std::size_t k : {2u, 3u, 5u}) {
      for (CoreId j = 0; j < 2; ++j) {
        EXPECT_GE(belady_faults(rs.sequence(j), k),
                  count_phases(rs.sequence(j), k))
            << "trial=" << trial << " k=" << k;
      }
    }
  }
}

TEST(Phases, MarkingFaultsAtMostKPerCorePhase) {
  // Conservative/marking upper bound: faults <= k * phases.
  Rng rng(808);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 1, 7, 200);
    for (std::size_t k : {2u, 4u}) {
      for (const char* policy : {"lru", "fifo", "mark"}) {
        const Count faults =
            single_core_policy_faults(rs.sequence(0), k, make_policy_factory(policy));
        EXPECT_LE(faults, k * count_phases(rs.sequence(0), k))
            << policy << " trial=" << trial << " k=" << k;
      }
    }
  }
}

TEST(Phases, SharedLruFaultsAtMostKPerSharedPhase) {
  // The Theorem 1.2 mechanism end-to-end at tau=0, where the canonical
  // interleaving is the actual service order: S_LRU(R) <= K * phi.
  Rng rng(909);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 6, 120);
    const std::size_t K = 6;
    const std::size_t phi =
        count_phases(canonical_interleaving(rs), K);
    SharedStrategy lru(make_policy_factory("lru"));
    const Count faults = simulate(sim_config(K, 0), rs, lru).total_faults();
    EXPECT_LE(faults, K * phi) << "trial=" << trial;
  }
}

TEST(Phases, RejectsBadArguments) {
  EXPECT_THROW((void)count_phases(RequestSequence{1}, 0), ModelError);
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  EXPECT_THROW((void)decompose_phases(rs, 4, {1, 1}), ModelError);
}

}  // namespace
}  // namespace mcp
