// Unit tests for the cache state machine (core/cache_state.hpp),
// particularly the paper's reserved-cell convention: evicted-on-fault cells
// are unusable and unevictable until the fetch completes.
#include "core/cache_state.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace mcp {
namespace {

TEST(CacheState, StartsEmpty) {
  CacheState cache(4);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_EQ(cache.occupied(), 0u);
  EXPECT_EQ(cache.free_cells(), 4u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(CacheState, RejectsZeroCapacity) {
  EXPECT_THROW(CacheState cache(0), ModelError);
}

TEST(CacheState, FetchLifecycle) {
  CacheState cache(2);
  cache.begin_fetch(/*page=*/7, /*core=*/0, /*ready_at=*/5);
  EXPECT_EQ(cache.occupied(), 1u);
  EXPECT_TRUE(cache.is_fetching(7));
  EXPECT_FALSE(cache.contains(7));  // not usable during fetch
  EXPECT_EQ(cache.fetching_count(), 1u);
  EXPECT_EQ(cache.present_count(), 0u);

  // Too early: nothing completes.
  EXPECT_TRUE(cache.complete_fetches(4).empty());
  EXPECT_TRUE(cache.is_fetching(7));

  const auto done = cache.complete_fetches(5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 7u);
  EXPECT_TRUE(cache.contains(7));
  EXPECT_FALSE(cache.is_fetching(7));
}

TEST(CacheState, ReservedCellCannotBeEvicted) {
  CacheState cache(2);
  cache.begin_fetch(7, 0, 5);
  EXPECT_THROW(cache.evict(7), ModelError);
  cache.complete_fetches(5);
  EXPECT_NO_THROW(cache.evict(7));
  EXPECT_EQ(cache.occupied(), 0u);
}

TEST(CacheState, EvictAbsentPageThrows) {
  CacheState cache(2);
  EXPECT_THROW(cache.evict(3), ModelError);
}

TEST(CacheState, BeginFetchOnFullCacheThrows) {
  CacheState cache(1);
  cache.begin_fetch(1, 0, 1);
  EXPECT_THROW(cache.begin_fetch(2, 0, 1), ModelError);
}

TEST(CacheState, DoubleFetchSamePageThrows) {
  CacheState cache(2);
  cache.begin_fetch(1, 0, 1);
  EXPECT_THROW(cache.begin_fetch(1, 1, 2), ModelError);
}

TEST(CacheState, CompleteFetchesBatches) {
  CacheState cache(3);
  cache.begin_fetch(3, 0, 2);
  cache.begin_fetch(1, 1, 2);
  cache.begin_fetch(2, 2, 9);
  const auto done = cache.complete_fetches(2);
  const std::vector<PageId> expected = {1, 3};  // sorted
  EXPECT_EQ(done, expected);
  EXPECT_EQ(cache.fetching_count(), 1u);
}

TEST(CacheState, FindReportsMetadata) {
  CacheState cache(2);
  cache.begin_fetch(9, 3, 11);
  const CellInfo* info = cache.find(9);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->status, CellStatus::kFetching);
  EXPECT_EQ(info->ready_at, 11u);
  EXPECT_EQ(info->fetched_by, 3u);
  EXPECT_EQ(cache.find(8), nullptr);
}

TEST(CacheState, InsertPresent) {
  CacheState cache(2);
  cache.insert_present(4, 1);
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.present_count(), 1u);
  EXPECT_THROW(cache.insert_present(4, 1), ModelError);
}

TEST(CacheState, SnapshotsAreSorted) {
  CacheState cache(4);
  cache.insert_present(9, 0);
  cache.insert_present(2, 0);
  cache.begin_fetch(5, 1, 10);
  const std::vector<PageId> present = {2, 9};
  const std::vector<PageId> resident = {2, 5, 9};
  EXPECT_EQ(cache.present_pages(), present);
  EXPECT_EQ(cache.resident_pages(), resident);
}

TEST(CacheState, ClearResetsEverything) {
  CacheState cache(2);
  cache.insert_present(1, 0);
  cache.begin_fetch(2, 0, 3);
  cache.clear();
  EXPECT_EQ(cache.occupied(), 0u);
  EXPECT_EQ(cache.fetching_count(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

}  // namespace
}  // namespace mcp
