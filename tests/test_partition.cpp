// Unit tests for partition utilities (strategies/partition.hpp).
#include "strategies/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/error.hpp"

namespace mcp {
namespace {

TEST(Partition, EvenPartitionExact) {
  const Partition p = even_partition(8, 4);
  const Partition expected = {2, 2, 2, 2};
  EXPECT_EQ(p, expected);
}

TEST(Partition, EvenPartitionWithRemainder) {
  const Partition p = even_partition(10, 4);
  const Partition expected = {3, 3, 2, 2};
  EXPECT_EQ(p, expected);
}

TEST(Partition, EvenPartitionRequiresEnoughCells) {
  EXPECT_THROW((void)even_partition(3, 4), ModelError);
  EXPECT_THROW((void)even_partition(4, 0), ModelError);
}

TEST(Partition, ValidateAcceptsGoodPartition) {
  EXPECT_NO_THROW(validate_partition({3, 2, 3}, 8, 3));
}

TEST(Partition, ValidateRejectsBadPartitions) {
  EXPECT_THROW(validate_partition({3, 2}, 8, 3), ModelError);      // wrong p
  EXPECT_THROW(validate_partition({3, 2, 2}, 8, 3), ModelError);   // sum != K
  EXPECT_THROW(validate_partition({8, 0, 0}, 8, 3), ModelError);   // part < 1
  EXPECT_NO_THROW(validate_partition({8, 0, 0}, 8, 3, /*min=*/0));
}

TEST(Partition, EnumerateMatchesCount) {
  for (std::size_t K = 2; K <= 9; ++K) {
    for (std::size_t p = 1; p <= 4; ++p) {
      if (K < p) continue;
      const auto all = enumerate_partitions(K, p);
      EXPECT_EQ(all.size(), count_partitions(K, p)) << "K=" << K << " p=" << p;
      std::set<Partition> unique(all.begin(), all.end());
      EXPECT_EQ(unique.size(), all.size());  // no duplicates
      for (const Partition& part : all) {
        EXPECT_EQ(part.size(), p);
        EXPECT_EQ(std::accumulate(part.begin(), part.end(), std::size_t{0}), K);
        for (std::size_t k : part) EXPECT_GE(k, 1u);
      }
    }
  }
}

TEST(Partition, EnumerateKnownSmallCase) {
  const auto all = enumerate_partitions(4, 2);
  const std::vector<Partition> expected = {{1, 3}, {2, 2}, {3, 1}};
  EXPECT_EQ(all, expected);
}

TEST(Partition, CountPartitionsFormula) {
  EXPECT_EQ(count_partitions(8, 1), 1u);
  EXPECT_EQ(count_partitions(8, 2), 7u);    // C(7,1)
  EXPECT_EQ(count_partitions(8, 8), 1u);    // all ones
  EXPECT_EQ(count_partitions(3, 4), 0u);    // infeasible
  EXPECT_EQ(count_partitions(6, 3, 2), 1u); // {2,2,2} only
}

TEST(Partition, MinPerCoreHonoredInEnumeration) {
  const auto all = enumerate_partitions(6, 2, 2);
  const std::vector<Partition> expected = {{2, 4}, {3, 3}, {4, 2}};
  EXPECT_EQ(all, expected);
}

TEST(Partition, ToString) {
  EXPECT_EQ(partition_to_string({4, 2, 2}), "[4,2,2]");
  EXPECT_EQ(partition_to_string({}), "[]");
}

}  // namespace
}  // namespace mcp
