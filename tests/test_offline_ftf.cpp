// Tests for the optimal FTF solver (offline/ftf_solver.hpp): agreement with
// the independent simulator-driven exhaustive search, Theorem 5's restricted
// search, schedule replay through the simulator, and dominance over online
// strategies.
#include "offline/ftf_solver.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "offline/exhaustive.hpp"
#include "offline/replay.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;

OfflineInstance make_instance(RequestSet rs, std::size_t k, Time tau) {
  OfflineInstance inst;
  inst.requests = std::move(rs);
  inst.cache_size = k;
  inst.tau = tau;
  return inst;
}

TEST(FtfSolver, HandComputedTinyInstance) {
  // One core, K=1, tau=0: a b a — every request faults (b evicts a).
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1});
  const FtfResult result = solve_ftf(make_instance(std::move(rs), 1, 0));
  EXPECT_EQ(result.min_faults, 3u);
}

TEST(FtfSolver, SingleCoreEqualsBelady) {
  Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 1, 5, 12);
    for (std::size_t k : {2u, 3u}) {
      for (Time tau : {Time{0}, Time{2}}) {
        const FtfResult result =
            solve_ftf(make_instance(rs, k, tau));
        EXPECT_EQ(result.min_faults, belady_faults(rs.sequence(0), k))
            << "trial=" << trial << " k=" << k << " tau=" << tau;
      }
    }
  }
}

TEST(FtfSolver, AgreesWithExhaustiveSimulatorSearch) {
  Rng rng(1234);
  for (int trial = 0; trial < 12; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const std::size_t k = 2 + rng.below(2);     // 2..3
    const Time tau = rng.below(3);              // 0..2
    const OfflineInstance inst = make_instance(rs, k, tau);
    const FtfResult dp = solve_ftf(inst);
    const ExhaustiveFtfResult brute = exhaustive_ftf(inst);
    EXPECT_EQ(dp.min_faults, brute.min_faults)
        << "trial=" << trial << " k=" << k << " tau=" << tau << " "
        << rs.describe();
  }
}

TEST(FtfSolver, Theorem5RestrictionPreservesOptimum) {
  // Evicting only FITF-within-some-sequence pages must not cost anything
  // on disjoint inputs (Theorem 5).
  Rng rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 6);
    const std::size_t k = 2 + rng.below(2);
    const Time tau = rng.below(3);
    const OfflineInstance inst = make_instance(rs, k, tau);
    FtfOptions unrestricted;
    FtfOptions restricted;
    restricted.victim_rule = VictimRule::kFitfPerSequence;
    EXPECT_EQ(solve_ftf(inst, restricted).min_faults,
              solve_ftf(inst, unrestricted).min_faults)
        << "trial=" << trial << " k=" << k << " tau=" << tau;
  }
}

TEST(FtfSolver, StatesAtEqualPositionsHaveEqualCacheSizes) {
  // The structural fact that makes cache-superset dominance pruning vacuous
  // for the honest search (see the design note in ftf_solver.hpp): the
  // fault distance of a state equals its cache fill level until saturation,
  // so states sharing a position vector and distance carry equal-sized
  // caches.  Verified by exploring a small instance exhaustively.
  Rng rng(60606);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
  const OfflineInstance inst = make_instance(rs, 2, 1);
  const TransitionSystem system(inst, VictimRule::kAllPages);
  std::vector<OfflineState> frontier = {system.initial()};
  for (int depth = 0; depth < 6; ++depth) {
    std::vector<OfflineState> next;
    for (const OfflineState& state : frontier) {
      system.expand(state, [&next](StepOutcome&& outcome) {
        next.push_back(std::move(outcome.next));
      });
    }
    for (const OfflineState& a : next) {
      for (const OfflineState& b : next) {
        if (a.pos == b.pos && a.fetch == b.fetch) {
          EXPECT_EQ(a.cache.size(), b.cache.size());
        }
      }
    }
    frontier = std::move(next);
    if (frontier.size() > 200) break;  // enough evidence
  }
}

TEST(FtfSolver, ScheduleReplaysToTheSameFaultCount) {
  Rng rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 6);
    const OfflineInstance inst = make_instance(rs, 3, 1);
    FtfOptions options;
    options.build_schedule = true;
    const FtfResult result = solve_ftf(inst, options);
    ASSERT_EQ(result.schedule.size(), result.min_faults);
    const RunStats stats = replay_schedule(inst, result.schedule);
    EXPECT_EQ(stats.total_faults(), result.min_faults) << "trial=" << trial;
  }
}

TEST(FtfSolver, OptimumDominatesOnlineStrategies) {
  Rng rng(31415);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 7);
    const OfflineInstance inst = make_instance(rs, 3, 1);
    const Count opt = solve_ftf(inst).min_faults;

    SharedStrategy lru(make_policy_factory("lru"));
    EXPECT_GE(simulate(inst.sim_config(), rs, lru).total_faults(), opt);

    auto shared_fitf = SharedStrategy::fitf();
    EXPECT_GE(simulate(inst.sim_config(), rs, *shared_fitf).total_faults(), opt);

    StaticPartitionStrategy part({2, 1}, make_policy_factory("lru"));
    EXPECT_GE(simulate(inst.sim_config(), rs, part).total_faults(), opt);
  }
}

TEST(FtfSolver, TauChangesNothingForNonInterferingCores) {
  // If both working sets fit in the cache, faults are compulsory regardless
  // of tau.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1, 2});
  rs.add_sequence(RequestSequence{5, 6, 5, 6});
  for (Time tau : {Time{0}, Time{1}, Time{4}}) {
    const FtfResult result = solve_ftf(make_instance(rs, 4, tau));
    EXPECT_EQ(result.min_faults, 4u) << "tau=" << tau;
  }
}

TEST(FtfSolver, StateLimitThrows) {
  Rng rng(2);
  const RequestSet rs = random_disjoint_workload(rng, 2, 4, 10);
  FtfOptions options;
  options.max_states = 5;
  EXPECT_THROW((void)solve_ftf(make_instance(rs, 3, 1), options), ModelError);
}

TEST(FtfSolver, RejectsNonDisjointInstances) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  rs.add_sequence(RequestSequence{1});
  EXPECT_THROW((void)solve_ftf(make_instance(std::move(rs), 2, 0)), ModelError);
}

TEST(TransitionSystem, InitialAndTerminal) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2});
  const OfflineInstance inst = make_instance(std::move(rs), 2, 1);
  const TransitionSystem system(inst, VictimRule::kAllPages);
  const OfflineState start = system.initial();
  EXPECT_FALSE(system.is_terminal(start));
  OfflineState done = start;
  done.pos[0] = 2;
  EXPECT_TRUE(system.is_terminal(done));
}

TEST(TransitionSystem, ExpandBranchesOverVictims) {
  // Cache full with two evictable pages: the fault must offer two branches.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  const OfflineInstance inst = make_instance(std::move(rs), 2, 0);
  const TransitionSystem system(inst, VictimRule::kAllPages);
  OfflineState state = system.initial();
  state.cache = {1, 2};
  state.pos[0] = 2;  // about to request page 3
  int branches = 0;
  system.expand(state, [&](StepOutcome&& outcome) {
    ++branches;
    EXPECT_EQ(outcome.fault_count(), 1u);
    EXPECT_EQ(outcome.next.cache.size(), 2u);
  });
  EXPECT_EQ(branches, 2);
}

TEST(TransitionSystem, OwnerAndNextOccurrence) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1});
  rs.add_sequence(RequestSequence{7});
  const OfflineInstance inst = make_instance(std::move(rs), 2, 0);
  const TransitionSystem system(inst, VictimRule::kAllPages);
  EXPECT_EQ(system.owner_of(1), 0u);
  EXPECT_EQ(system.owner_of(7), 1u);
  EXPECT_EQ(system.next_occurrence(1, 0), 0u);
  EXPECT_EQ(system.next_occurrence(1, 1), 2u);
  EXPECT_EQ(system.next_occurrence(2, 2),
            std::numeric_limits<std::uint32_t>::max());
}

}  // namespace
}  // namespace mcp
