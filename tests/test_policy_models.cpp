// Model-based differential tests: each production policy is driven through
// long random operation sequences in lockstep with a deliberately naive
// reference implementation; victims must match decision-for-decision
// (deterministic policies) or remain within the tracked set (randomized).
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "policies/policies.hpp"

namespace mcp {
namespace {

AccessContext at(Time now, PageId page) {
  return AccessContext{0, page, now, static_cast<std::size_t>(now)};
}

const auto kAll = [](PageId) { return true; };

/// Naive LRU: vector ordered most-recent-first, linear operations.
class NaiveLru {
 public:
  void insert(PageId page) { order_.insert(order_.begin(), page); }
  void hit(PageId page) {
    order_.erase(std::find(order_.begin(), order_.end(), page));
    order_.insert(order_.begin(), page);
  }
  void remove(PageId page) {
    order_.erase(std::find(order_.begin(), order_.end(), page));
  }
  [[nodiscard]] PageId victim() const {
    return order_.empty() ? kInvalidPage : order_.back();
  }
  [[nodiscard]] std::size_t size() const { return order_.size(); }

 private:
  std::vector<PageId> order_;
};

/// Naive FIFO: arrival order only.
class NaiveFifo {
 public:
  void insert(PageId page) { order_.push_back(page); }
  void remove(PageId page) {
    order_.erase(std::find(order_.begin(), order_.end(), page));
  }
  [[nodiscard]] PageId victim() const {
    return order_.empty() ? kInvalidPage : order_.front();
  }

 private:
  std::vector<PageId> order_;
};

/// Drives random op sequences against tracked state.
struct OpDriver {
  Rng rng;
  std::set<PageId> tracked;
  Time now = 0;

  explicit OpDriver(std::uint64_t seed) : rng(seed) {}

  /// Returns the page for the next op: 0=insert new, 1=hit tracked,
  /// 2=remove tracked, 3=victim query.
  int next_op() {
    if (tracked.empty()) return 0;
    if (tracked.size() > 12) return static_cast<int>(1 + rng.below(3));
    return static_cast<int>(rng.below(4));
  }
  PageId random_tracked() {
    auto it = tracked.begin();
    std::advance(it, static_cast<long>(rng.below(tracked.size())));
    return *it;
  }
  PageId fresh_page() {
    PageId page = static_cast<PageId>(rng.below(1000));
    while (tracked.contains(page)) ++page;
    return page;
  }
};

TEST(PolicyModels, LruMatchesNaiveReference) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    LruPolicy lru;
    NaiveLru naive;
    OpDriver driver(seed);
    for (int step = 0; step < 3000; ++step) {
      ++driver.now;
      switch (driver.next_op()) {
        case 0: {
          const PageId page = driver.fresh_page();
          lru.on_insert(page, at(driver.now, page));
          naive.insert(page);
          driver.tracked.insert(page);
          break;
        }
        case 1: {
          const PageId page = driver.random_tracked();
          lru.on_hit(page, at(driver.now, page));
          naive.hit(page);
          break;
        }
        case 2: {
          const PageId page = driver.random_tracked();
          lru.on_remove(page);
          naive.remove(page);
          driver.tracked.erase(page);
          break;
        }
        default:
          ASSERT_EQ(lru.victim(at(driver.now, kInvalidPage), kAll),
                    naive.victim())
              << "seed=" << seed << " step=" << step;
      }
      ASSERT_EQ(lru.size(), driver.tracked.size());
    }
  }
}

TEST(PolicyModels, FifoMatchesNaiveReference) {
  for (std::uint64_t seed : {7u, 8u}) {
    FifoPolicy fifo;
    NaiveFifo naive;
    OpDriver driver(seed);
    for (int step = 0; step < 3000; ++step) {
      ++driver.now;
      switch (driver.next_op()) {
        case 0: {
          const PageId page = driver.fresh_page();
          fifo.on_insert(page, at(driver.now, page));
          naive.insert(page);
          driver.tracked.insert(page);
          break;
        }
        case 1: {
          const PageId page = driver.random_tracked();
          fifo.on_hit(page, at(driver.now, page));  // no-op for FIFO
          break;
        }
        case 2: {
          const PageId page = driver.random_tracked();
          fifo.on_remove(page);
          naive.remove(page);
          driver.tracked.erase(page);
          break;
        }
        default:
          ASSERT_EQ(fifo.victim(at(driver.now, kInvalidPage), kAll),
                    naive.victim())
              << "seed=" << seed << " step=" << step;
      }
    }
  }
}

/// Structural stress for the policies without a deterministic reference:
/// victims must always be tracked, evictable, and removal must keep sizes
/// consistent — across thousands of random ops.
class PolicyStress : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyStress, VictimsAlwaysTrackedAndEvictable) {
  FutureOracle oracle;  // for FITF
  RequestSet oracle_rs;
  {
    RequestSequence seq;
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
      seq.push_back(static_cast<PageId>(rng.below(1000)));
    }
    oracle_rs.add_sequence(std::move(seq));
    oracle.attach(oracle_rs);
  }

  std::unique_ptr<EvictionPolicy> policy;
  const std::string name = GetParam();
  if (name == "fitf") {
    policy = std::make_unique<FitfPolicy>(&oracle);
  } else if (name == "clock") {
    policy = std::make_unique<ClockPolicy>();
  } else if (name == "lfu") {
    policy = std::make_unique<LfuPolicy>();
  } else if (name == "mru") {
    policy = std::make_unique<MruPolicy>();
  } else if (name == "random") {
    policy = std::make_unique<RandomPolicy>(3);
  } else {
    policy = std::make_unique<MarkingPolicy>(MarkingPolicy::TieBreak::kRandom, 4);
  }

  OpDriver driver(42);
  for (int step = 0; step < 3000; ++step) {
    ++driver.now;
    switch (driver.next_op()) {
      case 0: {
        const PageId page = driver.fresh_page();
        policy->on_insert(page, at(driver.now, page));
        driver.tracked.insert(page);
        break;
      }
      case 1: {
        const PageId page = driver.random_tracked();
        policy->on_hit(page, at(driver.now, page));
        break;
      }
      case 2: {
        const PageId page = driver.random_tracked();
        policy->on_remove(page);
        driver.tracked.erase(page);
        break;
      }
      default: {
        // Randomly restrict evictability to a subset.
        std::set<PageId> blocked;
        for (PageId page : driver.tracked) {
          if (driver.rng.chance(0.3)) blocked.insert(page);
        }
        const auto evictable = [&blocked](PageId page) {
          return !blocked.contains(page);
        };
        const PageId victim =
            policy->victim(at(driver.now, kInvalidPage), evictable);
        if (blocked.size() == driver.tracked.size()) {
          EXPECT_EQ(victim, kInvalidPage) << name << " step=" << step;
        } else {
          ASSERT_NE(victim, kInvalidPage) << name << " step=" << step;
          EXPECT_TRUE(driver.tracked.contains(victim))
              << name << " step=" << step;
          EXPECT_FALSE(blocked.contains(victim)) << name << " step=" << step;
        }
        break;
      }
    }
    ASSERT_EQ(policy->size(), driver.tracked.size()) << name;
    for (PageId page : driver.tracked) {
      ASSERT_TRUE(policy->contains(page)) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStructural, PolicyStress,
                         ::testing::Values("clock", "lfu", "mru", "random",
                                           "mark-random", "fitf"));

}  // namespace
}  // namespace mcp
