// Tests for the set-associative geometry strategy
// (strategies/set_associative.hpp).
#include "strategies/set_associative.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

TEST(SetAssociative, OneSetEqualsFullyAssociativeShared) {
  // S = 1 is the fully associative shared cache: fault-for-fault identical
  // to SharedStrategy with the same policy.
  Rng rng(404040);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 6, 150);
    const SimConfig cfg = sim_config(8, 1 + rng.below(3));
    SetAssociativeStrategy sa(1, make_policy_factory("lru"));
    SharedStrategy shared(make_policy_factory("lru"));
    const RunStats a = simulate(cfg, rs, sa);
    const RunStats b = simulate(cfg, rs, shared);
    EXPECT_EQ(a.total_faults(), b.total_faults()) << "trial=" << trial;
    for (CoreId j = 0; j < 3; ++j) {
      EXPECT_EQ(a.core(j).fault_times, b.core(j).fault_times)
          << "trial=" << trial << " core=" << j;
    }
  }
}

TEST(SetAssociative, DirectMappedConflictMisses) {
  // Ways = 1: two pages with the same index bits thrash one cell even
  // though the rest of the cache is idle.
  RequestSet rs;
  RequestSequence seq;
  const std::vector<PageId> conflicting = {0, 8};  // 0 mod 8 == 8 mod 8
  seq.append_repeated(conflicting, 40);
  rs.add_sequence(std::move(seq));
  SetAssociativeStrategy direct(8, make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(8, 1), rs, direct);
  EXPECT_EQ(stats.total_faults(), 80u);  // every request conflicts

  // The fully associative cache holds both pages after warmup.
  SharedStrategy shared(make_policy_factory("lru"));
  EXPECT_EQ(simulate(sim_config(8, 1), rs, shared).total_faults(), 2u);
}

TEST(SetAssociative, AssociativityCurveShape) {
  // Associativity curves are famously not strictly monotone (more ways can
  // lose a hair to fewer on particular traces), so the test asserts the
  // robust shape: near-monotone within 2% step to step, and the fully
  // associative endpoint strictly no worse than direct-mapped.
  Rng rng(515151);
  const RequestSet rs = random_disjoint_workload(rng, 2, 16, 800);
  const SimConfig cfg = sim_config(16, 2);
  Count direct = 0;
  Count prev = ~Count{0};
  Count full = 0;
  for (std::size_t sets : {16u, 8u, 4u, 1u}) {  // ways 1, 2, 4, 16
    SetAssociativeStrategy sa(sets, make_policy_factory("lru"));
    const Count faults = simulate(cfg, rs, sa).total_faults();
    if (sets == 16) direct = faults;
    if (sets == 1) full = faults;
    EXPECT_LE(faults, prev + prev / 50) << "sets=" << sets;  // within 2%
    prev = faults;
  }
  EXPECT_LE(full, direct);
}

TEST(SetAssociative, ValidatesGeometry) {
  EXPECT_THROW(SetAssociativeStrategy(0, make_policy_factory("lru")),
               ModelError);
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  SetAssociativeStrategy bad(3, make_policy_factory("lru"));  // 8 % 3 != 0
  EXPECT_THROW((void)simulate(sim_config(8, 0), rs, bad), ModelError);
}

TEST(SetAssociative, NameReportsGeometry) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  SetAssociativeStrategy sa(4, make_policy_factory("fifo"));
  (void)simulate(sim_config(8, 0), rs, sa);
  EXPECT_EQ(sa.name(), "SA[4x2]_FIFO");
  EXPECT_EQ(sa.ways(), 2u);
  EXPECT_EQ(sa.set_of(7), 3u);
}

}  // namespace
}  // namespace mcp
