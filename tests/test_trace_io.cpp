// Unit tests for mcptrace text serialization (core/trace_io.hpp).
#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace mcp {
namespace {

RequestSet sample() {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  rs.add_sequence(RequestSequence{});
  rs.add_sequence(RequestSequence{7, 7});
  return rs;
}

TEST(TraceIo, RoundTrip) {
  const RequestSet original = sample();
  std::stringstream ss;
  write_trace(ss, original);
  const RequestSet loaded = read_trace(ss);
  EXPECT_EQ(loaded, original);
}

TEST(TraceIo, WrittenFormatIsStable) {
  std::stringstream ss;
  write_trace(ss, sample());
  EXPECT_EQ(ss.str(),
            "mcptrace 1\n"
            "cores 3\n"
            "seq 0 3 1 2 3\n"
            "seq 1 0\n"
            "seq 2 2 7 7\n");
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "mcptrace 1\n"
      "# another\n"
      "cores 1\n"
      "seq 0 2 4 5\n");
  const RequestSet rs = read_trace(ss);
  EXPECT_EQ(rs.num_cores(), 1u);
  EXPECT_EQ(rs.sequence(0).size(), 2u);
}

TEST(TraceIo, SequencesInAnyOrder) {
  std::stringstream ss(
      "mcptrace 1\ncores 2\nseq 1 1 9\nseq 0 1 8\n");
  const RequestSet rs = read_trace(ss);
  EXPECT_EQ(rs.sequence(0)[0], 8u);
  EXPECT_EQ(rs.sequence(1)[0], 9u);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss("cores 1\nseq 0 0\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream ss("mcptrace 2\ncores 1\nseq 0 0\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsMissingSequence) {
  std::stringstream ss("mcptrace 1\ncores 2\nseq 0 0\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsDuplicateSequence) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 0 0\nseq 0 0\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsCoreOutOfRange) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 1 0\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsShortSequence) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 0 3 1 2\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsLongSequence) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 0 1 1 2\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsUnknownKeyword) {
  std::stringstream ss("mcptrace 1\ncores 1\nbogus\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIoPairs, ParsesInterleavedPairs) {
  std::stringstream ss(
      "# core page\n"
      "0 10\n"
      "1 20\n"
      "0 11\n"
      "\n"
      "1 21\n"
      "0 10\n");
  const RequestSet rs = read_trace_pairs(ss);
  ASSERT_EQ(rs.num_cores(), 2u);
  EXPECT_EQ(rs.sequence(0), (RequestSequence{10, 11, 10}));
  EXPECT_EQ(rs.sequence(1), (RequestSequence{20, 21}));
}

TEST(TraceIoPairs, UnmentionedCoresGetEmptySequences) {
  std::stringstream ss("2 5\n");
  const RequestSet rs = read_trace_pairs(ss);
  ASSERT_EQ(rs.num_cores(), 3u);
  EXPECT_TRUE(rs.sequence(0).empty());
  EXPECT_TRUE(rs.sequence(1).empty());
  EXPECT_EQ(rs.sequence(2).size(), 1u);
}

TEST(TraceIoPairs, RejectsMalformedLines) {
  {
    std::stringstream ss("0\n");
    EXPECT_THROW((void)read_trace_pairs(ss), InputError);
  }
  {
    std::stringstream ss("0 1 2\n");
    EXPECT_THROW((void)read_trace_pairs(ss), InputError);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW((void)read_trace_pairs(ss), InputError);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/mcp_trace_test.txt";
  save_trace(path, sample());
  EXPECT_EQ(load_trace(path), sample());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/definitely/missing.txt"), InputError);
}

}  // namespace
}  // namespace mcp
