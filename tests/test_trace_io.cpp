// Unit tests for mcptrace text serialization (core/trace_io.hpp).
#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace mcp {
namespace {

RequestSet sample() {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  rs.add_sequence(RequestSequence{});
  rs.add_sequence(RequestSequence{7, 7});
  return rs;
}

TEST(TraceIo, RoundTrip) {
  const RequestSet original = sample();
  std::stringstream ss;
  write_trace(ss, original);
  const RequestSet loaded = read_trace(ss);
  EXPECT_EQ(loaded, original);
}

TEST(TraceIo, WrittenFormatIsStable) {
  std::stringstream ss;
  write_trace(ss, sample());
  EXPECT_EQ(ss.str(),
            "mcptrace 1\n"
            "cores 3\n"
            "seq 0 3 1 2 3\n"
            "seq 1 0\n"
            "seq 2 2 7 7\n");
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "mcptrace 1\n"
      "# another\n"
      "cores 1\n"
      "seq 0 2 4 5\n");
  const RequestSet rs = read_trace(ss);
  EXPECT_EQ(rs.num_cores(), 1u);
  EXPECT_EQ(rs.sequence(0).size(), 2u);
}

TEST(TraceIo, SequencesInAnyOrder) {
  std::stringstream ss(
      "mcptrace 1\ncores 2\nseq 1 1 9\nseq 0 1 8\n");
  const RequestSet rs = read_trace(ss);
  EXPECT_EQ(rs.sequence(0)[0], 8u);
  EXPECT_EQ(rs.sequence(1)[0], 9u);
}

/// The InputError message produced by `fn`, or "" if nothing was thrown.
/// Error-path tests assert on substrings: the messages are part of the
/// trace format's user interface (they name the line and the defect).
template <typename Fn>
std::string input_error_message(Fn&& fn) {
  try {
    fn();
  } catch (const InputError& e) {
    return e.what();
  }
  return "";
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss("cores 1\nseq 0 0\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("mcptrace 1"), std::string::npos) << message;
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream ss("mcptrace 2\ncores 1\nseq 0 0\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsMissingSequence) {
  std::stringstream ss("mcptrace 1\ncores 2\nseq 0 0\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsDuplicateSequence) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 0 0\nseq 0 0\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  EXPECT_NE(message.find("duplicate sequence for core 0"), std::string::npos)
      << message;
}

TEST(TraceIo, RejectsCoreOutOfRange) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 1 0\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("core id out of range"), std::string::npos)
      << message;
}

TEST(TraceIo, RejectsShortSequence) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 0 3 1 2\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("shorter than declared length"), std::string::npos)
      << message;
}

TEST(TraceIo, RejectsLongSequence) {
  std::stringstream ss("mcptrace 1\ncores 1\nseq 0 1 1 2\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIo, RejectsUnknownKeyword) {
  std::stringstream ss("mcptrace 1\ncores 1\nbogus\n");
  EXPECT_THROW((void)read_trace(ss), InputError);
}

TEST(TraceIoPairs, ParsesInterleavedPairs) {
  std::stringstream ss(
      "# core page\n"
      "0 10\n"
      "1 20\n"
      "0 11\n"
      "\n"
      "1 21\n"
      "0 10\n");
  const RequestSet rs = read_trace_pairs(ss);
  ASSERT_EQ(rs.num_cores(), 2u);
  EXPECT_EQ(rs.sequence(0), (RequestSequence{10, 11, 10}));
  EXPECT_EQ(rs.sequence(1), (RequestSequence{20, 21}));
}

TEST(TraceIoPairs, UnmentionedCoresGetEmptySequences) {
  std::stringstream ss("2 5\n");
  const RequestSet rs = read_trace_pairs(ss);
  ASSERT_EQ(rs.num_cores(), 3u);
  EXPECT_TRUE(rs.sequence(0).empty());
  EXPECT_TRUE(rs.sequence(1).empty());
  EXPECT_EQ(rs.sequence(2).size(), 1u);
}

TEST(TraceIoPairs, RejectsMalformedLines) {
  {
    std::stringstream ss("0\n");
    const std::string message =
        input_error_message([&] { (void)read_trace_pairs(ss); });
    EXPECT_NE(message.find("line 1"), std::string::npos) << message;
    EXPECT_NE(message.find("expected '<core> <page>'"), std::string::npos)
        << message;
  }
  {
    std::stringstream ss("0 1 2\n");
    const std::string message =
        input_error_message([&] { (void)read_trace_pairs(ss); });
    EXPECT_NE(message.find("trailing tokens"), std::string::npos) << message;
  }
  {
    std::stringstream ss("");
    const std::string message =
        input_error_message([&] { (void)read_trace_pairs(ss); });
    EXPECT_NE(message.find("no requests"), std::string::npos) << message;
  }
}

TEST(TraceIoPairs, ErrorNamesTheOffendingLine) {
  std::stringstream ss("0 1\n1 2\nbroken\n");
  const std::string message =
      input_error_message([&] { (void)read_trace_pairs(ss); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
}

TEST(TraceIoPairs, ErrorNamesTheByteOffset) {
  // "0 1\n" is 4 bytes, "1 2\n" is 4 more: the broken line starts at byte 8.
  std::stringstream ss("0 1\n1 2\nbroken\n");
  const std::string message =
      input_error_message([&] { (void)read_trace_pairs(ss); });
  EXPECT_NE(message.find("(byte 8)"), std::string::npos) << message;
}

TEST(TraceIo, ErrorNamesTheByteOffset) {
  // Offsets: "mcptrace 1\n"=11, "cores 2\n"=8, "seq 0 1 5\n"=10 -> the bad
  // core id on line 4 starts at byte 29.
  std::stringstream ss("mcptrace 1\ncores 2\nseq 0 1 5\nseq 9 0\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  EXPECT_NE(message.find("(byte 29)"), std::string::npos) << message;
  EXPECT_NE(message.find("core id out of range"), std::string::npos)
      << message;
}

TEST(TraceIo, ByteOffsetCountsSkippedCommentLines) {
  // Comment and blank lines advance the byte offset even though they are
  // not parsed: "# hi\n"=5, "\n"=1, so the bad header starts at byte 6.
  std::stringstream ss("# hi\n\nnot-a-header\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("(byte 6)"), std::string::npos) << message;
}

TEST(TraceIo, MissingCoresLineNamed) {
  std::stringstream ss("mcptrace 1\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("missing 'cores' line"), std::string::npos)
      << message;
}

TEST(TraceIo, MissingSequenceNamesTheCore) {
  std::stringstream ss("mcptrace 1\ncores 3\nseq 0 0\nseq 2 0\n");
  const std::string message =
      input_error_message([&] { (void)read_trace(ss); });
  EXPECT_NE(message.find("missing sequence for core 1"), std::string::npos)
      << message;
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/mcp_trace_test.txt";
  save_trace(path, sample());
  EXPECT_EQ(load_trace(path), sample());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/definitely/missing.txt"), InputError);
}

}  // namespace
}  // namespace mcp
