// Tests for the shared strategy S_A (strategies/shared.hpp), including the
// cross-validation that a single-core run through the full multicore
// simulator matches the classic sequential fault counts.
#include "strategies/shared.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::random_shared_workload;
using testing::sim_config;

TEST(SharedStrategy, NameReflectsPolicy) {
  SharedStrategy lru(make_policy_factory("lru"));
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  (void)simulate(sim_config(2, 0), rs, lru);
  EXPECT_EQ(lru.name(), "S_LRU");
}

TEST(SharedStrategy, EvictsOnlyWhenFull) {
  // K=3, four distinct pages: exactly one eviction.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3, 4});
  SharedStrategy lru(make_policy_factory("lru"));

  class EvictCounter : public SimObserver {
   public:
    void on_evict(PageId, CoreId, Time, EvictionCause cause) override {
      ++evictions;
      EXPECT_EQ(cause, EvictionCause::kFault);
    }
    int evictions = 0;
  } counter;

  Simulator sim(sim_config(3, 1));
  sim.add_observer(&counter);
  (void)sim.run(rs, lru);
  EXPECT_EQ(counter.evictions, 1);
}

// The multicore simulator restricted to p=1 must agree exactly with the
// tight single-core loop, for every policy and regardless of tau (delays
// shift time, never single-core hit/miss outcomes).
class SingleCoreAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(SingleCoreAgreement, SimulatorMatchesSequentialRunner) {
  const PolicyFactory factory = make_policy_factory(GetParam(), /*seed=*/3);
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 1, 8, 150);
    for (std::size_t k : {2u, 4u, 7u}) {
      for (Time tau : {Time{0}, Time{3}}) {
        SharedStrategy strategy(factory);
        const RunStats stats = simulate(sim_config(k, tau), rs, strategy);
        const Count expected =
            single_core_policy_faults(rs.sequence(0), k, factory);
        EXPECT_EQ(stats.total_faults(), expected)
            << GetParam() << " trial=" << trial << " k=" << k << " tau=" << tau;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, SingleCoreAgreement,
                         ::testing::Values("lru", "lru-scan", "slru", "fifo",
                                           "clock", "lfu", "mru", "random",
                                           "mark"));

TEST(SharedStrategy, FitfMatchesBeladyOnSingleCore) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 1, 10, 200);
    for (std::size_t k : {2u, 5u, 9u}) {
      auto fitf = SharedStrategy::fitf();
      const RunStats stats = simulate(sim_config(k, 2), rs, *fitf);
      EXPECT_EQ(stats.total_faults(), belady_faults(rs.sequence(0), k))
          << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(SharedStrategy, FitfRequiresMaterializedRequests) {
  auto fitf = SharedStrategy::fitf();
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2});
  FixedStream stream(rs);
  Simulator sim(sim_config(2, 0));
  EXPECT_THROW((void)sim.run_stream(stream, *fitf, nullptr), ModelError);
}

TEST(SharedStrategy, MulticoreFaultsBoundedByCompulsoryAndTotal) {
  Rng rng(2025);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 6, 100);
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats stats = simulate(sim_config(9, 1), rs, lru);
    EXPECT_GE(stats.total_faults(), static_cast<Count>(rs.universe().size()));
    EXPECT_LE(stats.total_faults(), static_cast<Count>(rs.total_requests()));
    EXPECT_EQ(stats.total_requests(), static_cast<Count>(rs.total_requests()));
  }
}

TEST(SharedStrategy, NonDisjointWorkloadsBenefitFromSharing) {
  // All cores walk the same small working set: once resident, everyone hits.
  RequestSet rs;
  for (int j = 0; j < 3; ++j) {
    RequestSequence seq;
    const std::vector<PageId> block = {1, 2, 3};
    seq.append_repeated(block, 20);
    rs.add_sequence(std::move(seq));
  }
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(4, 2), rs, lru);
  // Compulsory misses (some may be charged per-core while a fetch is in
  // flight), then hits for everyone.
  EXPECT_LE(stats.total_faults(), 9u);
  EXPECT_GE(stats.total_hits(), 150u);
}

TEST(SharedStrategy, RandomSharedWorkloadRunsCleanly) {
  Rng rng(4);
  const RequestSet rs = random_shared_workload(rng, 4, 12, 120);
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(8, 1), rs, lru);
  EXPECT_EQ(stats.total_requests(), 480u);
}

}  // namespace
}  // namespace mcp
