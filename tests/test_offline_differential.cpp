// Differential tests pinning the packed offline engines (packed_space.hpp,
// OfflineEngine::kPacked) to the retained reference implementations: both
// solvers run on a seeded grid over p x K x tau x victim rule, and every
// observable the two engines share must agree.  Schedules themselves may
// differ (the bucket queue and the binary heap break ties differently), so
// schedule agreement is checked semantically — replay through the simulator
// must charge exactly min_faults either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/packed_space.hpp"
#include "offline/packed_state.hpp"
#include "offline/pif_solver.hpp"
#include "offline/replay.hpp"
#include "offline/state_space.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;

OfflineInstance make_instance(RequestSet rs, std::size_t k, Time tau) {
  OfflineInstance inst;
  inst.requests = std::move(rs);
  inst.cache_size = k;
  inst.tau = tau;
  return inst;
}

constexpr std::size_t kCores[] = {1, 2, 3};
constexpr std::size_t kCacheSizes[] = {2, 3, 4, 5};
constexpr Time kTaus[] = {1, 2, 5};
constexpr VictimRule kRules[] = {VictimRule::kAllPages,
                                 VictimRule::kFitfPerSequence};

// ---------------------------------------------------------------------------
// Building blocks: interner, pack/unpack, expansion.
// ---------------------------------------------------------------------------

TEST(StateInterner, DedupesAndRoundTrips) {
  StateInterner interner(3);
  const std::uint64_t a[3] = {1, 2, 3};
  const std::uint64_t b[3] = {1, 2, 4};

  const auto [ida, fresh_a] = interner.intern(a);
  EXPECT_TRUE(fresh_a);
  const auto [idb, fresh_b] = interner.intern(b);
  EXPECT_TRUE(fresh_b);
  EXPECT_NE(ida, idb);

  const auto [ida2, fresh_a2] = interner.intern(a);
  EXPECT_FALSE(fresh_a2);
  EXPECT_EQ(ida, ida2);
  EXPECT_EQ(interner.size(), 2u);

  EXPECT_TRUE(std::equal(a, a + 3, interner.state(ida)));
  EXPECT_TRUE(std::equal(b, b + 3, interner.state(idb)));
}

TEST(StateInterner, SurvivesTableGrowth) {
  StateInterner interner(1);
  std::vector<std::uint32_t> ids;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    ids.push_back(interner.intern(&v).first);
  }
  EXPECT_EQ(interner.size(), 1000u);
  for (std::uint64_t v = 0; v < 1000; ++v) {
    EXPECT_EQ(interner.intern(&v).first, ids[v]) << "v=" << v;
    EXPECT_EQ(*interner.state(ids[v]), v) << "v=" << v;
  }
}

TEST(PackedTransitionSystem, PackUnpackRoundTripsReachableStates) {
  Rng rng(777);
  const RequestSet rs = random_disjoint_workload(rng, 3, 3, 6);
  const OfflineInstance inst = make_instance(rs, 3, 2);
  const TransitionSystem ref(inst, VictimRule::kAllPages);
  const PackedTransitionSystem packed(inst, VictimRule::kAllPages);

  std::vector<std::uint64_t> words(packed.state_words());
  // Walk a few expansion levels, round-tripping every state encountered.
  std::vector<OfflineState> frontier = {ref.initial()};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<OfflineState> next;
    for (const OfflineState& state : frontier) {
      packed.pack(state, words.data());
      EXPECT_EQ(packed.unpack(words.data()), state);
      EXPECT_EQ(ref.is_terminal(state), packed.is_terminal(words.data()));
      ref.expand(state, [&next](StepOutcome&& outcome) {
        next.push_back(std::move(outcome.next));
      });
    }
    frontier = std::move(next);
  }
}

TEST(PackedTransitionSystem, ExpansionMatchesReferenceBranchForBranch) {
  Rng rng(4242);
  for (VictimRule rule : kRules) {
    for (int trial = 0; trial < 6; ++trial) {
      const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
      const OfflineInstance inst = make_instance(rs, 2 + rng.below(2), 1);
      const TransitionSystem ref(inst, rule);
      const PackedTransitionSystem packed(inst, rule);
      PackedTransitionSystem::StepScratch scratch;
      std::vector<std::uint64_t> words(packed.state_words());

      std::vector<OfflineState> frontier = {ref.initial()};
      for (int depth = 0; depth < 4 && !frontier.empty(); ++depth) {
        std::vector<OfflineState> next;
        for (const OfflineState& state : frontier) {
          if (ref.is_terminal(state)) continue;
          std::vector<StepOutcome> ref_out;
          ref.expand(state, [&ref_out](StepOutcome&& outcome) {
            ref_out.push_back(std::move(outcome));
          });

          packed.pack(state, words.data());
          std::size_t i = 0;
          packed.expand(words.data(), scratch,
                        [&](const PackedOutcome& outcome) {
            ASSERT_LT(i, ref_out.size());
            // Same emission order: cores in logical order, victims in
            // ascending page order.
            EXPECT_EQ(packed.unpack(outcome.next), ref_out[i].next);
            EXPECT_EQ(outcome.faulted_cores, ref_out[i].faulted_cores);
            EXPECT_TRUE(std::equal(outcome.evictions.begin(),
                                   outcome.evictions.end(),
                                   ref_out[i].evictions.begin(),
                                   ref_out[i].evictions.end()));
            ++i;
          });
          EXPECT_EQ(i, ref_out.size());
          for (StepOutcome& outcome : ref_out) {
            next.push_back(std::move(outcome.next));
          }
        }
        frontier = std::move(next);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Solver grids: packed vs reference on seeded instances.
// ---------------------------------------------------------------------------

TEST(OfflineDifferential, FtfGridAgreesAcrossEngines) {
  Rng rng(20260807);
  for (std::size_t p : kCores) {
    for (std::size_t k : kCacheSizes) {
      for (Time tau : kTaus) {
        for (VictimRule rule : kRules) {
          const RequestSet rs = random_disjoint_workload(rng, p, 3, 6);
          const OfflineInstance inst = make_instance(rs, k, tau);
          ASSERT_TRUE(PackedTransitionSystem::supports(inst));

          FtfOptions packed_opts;
          packed_opts.victim_rule = rule;
          packed_opts.build_schedule = true;
          FtfOptions ref_opts = packed_opts;
          ref_opts.engine = OfflineEngine::kReference;

          if (k < p) {
            // With fewer cells than cores every first-step branch dies (all
            // cells are locked by in-flight fetches when the last core
            // faults): no terminal is reachable.  Both engines must agree on
            // that verdict too.
            EXPECT_THROW((void)solve_ftf(inst, packed_opts), ModelError);
            EXPECT_THROW((void)solve_ftf(inst, ref_opts), ModelError);
            continue;
          }

          const FtfResult packed = solve_ftf(inst, packed_opts);
          const FtfResult ref = solve_ftf(inst, ref_opts);
          const auto label = [&] {
            return ::testing::Message()
                   << "p=" << p << " k=" << k << " tau=" << tau
                   << " rule=" << (rule == VictimRule::kAllPages ? "all" : "fitf");
          };
          EXPECT_EQ(packed.min_faults, ref.min_faults) << label();
          // Schedules may differ (tie-breaking), but both must replay to the
          // optimum.
          EXPECT_EQ(replay_schedule(inst, packed.schedule).total_faults(),
                    packed.min_faults)
              << label();
          EXPECT_EQ(replay_schedule(inst, ref.schedule).total_faults(),
                    ref.min_faults)
              << label();
        }
      }
    }
  }
}

TEST(OfflineDifferential, PifGridAgreesAcrossEngines) {
  Rng rng(1337);
  int feasible_seen = 0;
  int infeasible_seen = 0;
  for (std::size_t p : kCores) {
    for (std::size_t k : kCacheSizes) {
      for (Time tau : kTaus) {
        for (VictimRule rule : kRules) {
          const RequestSet rs = random_disjoint_workload(rng, p, 3, 6);
          PifInstance inst;
          inst.base = make_instance(rs, k, tau);
          inst.deadline = 4 + rng.below(12);
          for (std::size_t j = 0; j < p; ++j) {
            inst.bounds.push_back(rng.below(5));
          }
          ASSERT_TRUE(PackedTransitionSystem::supports(inst.base));

          PifOptions packed_opts;
          packed_opts.victim_rule = rule;
          packed_opts.build_schedule = true;
          PifOptions ref_opts = packed_opts;
          ref_opts.engine = OfflineEngine::kReference;

          const PifResult packed = solve_pif(inst, packed_opts);
          const PifResult ref = solve_pif(inst, ref_opts);
          const auto label = [&] {
            return ::testing::Message()
                   << "p=" << p << " k=" << k << " tau=" << tau
                   << " rule=" << (rule == VictimRule::kAllPages ? "all" : "fitf")
                   << " deadline=" << inst.deadline;
          };
          EXPECT_EQ(packed.feasible, ref.feasible) << label();
          EXPECT_EQ(packed.decided_at, ref.decided_at) << label();
          // Pareto fronts are sets of minimal vectors — identical between
          // engines regardless of insertion order — so widths match too.
          EXPECT_EQ(packed.peak_layer_width, ref.peak_layer_width) << label();
          EXPECT_EQ(packed.states_expanded, ref.states_expanded) << label();
          if (packed.feasible) {
            ++feasible_seen;
            EXPECT_TRUE(verify_pif_witness(inst, packed.schedule)) << label();
            EXPECT_TRUE(verify_pif_witness(inst, ref.schedule)) << label();
          } else {
            ++infeasible_seen;
          }
        }
      }
    }
  }
  // The grid must exercise both verdicts or it proves too little.
  EXPECT_GT(feasible_seen, 0);
  EXPECT_GT(infeasible_seen, 0);
}

TEST(OfflineDifferential, PifBitIdenticalAcrossWorkerCounts) {
  Rng rng(909090);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t p = 1 + rng.below(3);
    const RequestSet rs = random_disjoint_workload(rng, p, 3, 6);
    PifInstance inst;
    inst.base = make_instance(rs, 2 + rng.below(3), 1 + rng.below(2));
    inst.deadline = 6 + rng.below(8);
    for (std::size_t j = 0; j < p; ++j) inst.bounds.push_back(rng.below(6));

    PifOptions opts;
    opts.build_schedule = true;
    opts.workers = 1;
    const PifResult serial = solve_pif(inst, opts);
    for (std::size_t workers : {2u, 8u}) {
      opts.workers = workers;
      const PifResult parallel = solve_pif(inst, opts);
      EXPECT_EQ(parallel.feasible, serial.feasible) << "workers=" << workers;
      EXPECT_EQ(parallel.decided_at, serial.decided_at)
          << "workers=" << workers;
      EXPECT_EQ(parallel.peak_layer_width, serial.peak_layer_width)
          << "workers=" << workers;
      EXPECT_EQ(parallel.states_expanded, serial.states_expanded)
          << "workers=" << workers;
      // Bit-identical witness, not just an equivalent one.
      EXPECT_EQ(parallel.schedule, serial.schedule) << "workers=" << workers;
    }
  }
}

TEST(OfflineDifferential, FtfBitIdenticalAcrossWorkerCounts) {
  Rng rng(424242);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t p = 1 + rng.below(3);
    const RequestSet rs = random_disjoint_workload(rng, p, 3, 6);
    const OfflineInstance inst =
        make_instance(rs, p + 1 + rng.below(2), 1 + rng.below(2));

    FtfOptions opts;
    opts.build_schedule = true;
    opts.workers = 1;
    const FtfResult serial = solve_ftf(inst, opts);
    for (const std::size_t workers : {0u, 2u, 8u}) {
      opts.workers = workers;
      const FtfResult parallel = solve_ftf(inst, opts);
      EXPECT_EQ(parallel.min_faults, serial.min_faults)
          << "workers=" << workers;
      EXPECT_EQ(parallel.states_expanded, serial.states_expanded)
          << "workers=" << workers;
      EXPECT_EQ(parallel.states_stored, serial.states_stored)
          << "workers=" << workers;
      // Bit-identical schedule, not just an equivalent optimum.
      EXPECT_EQ(parallel.schedule, serial.schedule) << "workers=" << workers;
    }
  }
}

TEST(OfflineDifferential, FtfStateLimitAbortsBitIdenticallyAcrossWorkers) {
  // The max_states abort must fire at the same expansion count on the serial
  // and chunked paths: the merge replays per-entry limit checks in serial
  // order, so the counters in the error message are worker-count invariant.
  Rng rng(8181);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 8);
  const OfflineInstance inst = make_instance(rs, 3, 2);
  std::string serial_what;
  for (const std::size_t workers : {1u, 0u, 8u}) {
    FtfOptions opts;
    opts.workers = workers;
    opts.max_states = 40;
    try {
      (void)solve_ftf(inst, opts);
      FAIL() << "expected ModelError at workers=" << workers;
    } catch (const ModelError& e) {
      const std::string what = e.what();
      // Counters (before the memory-story fields) match the serial abort.
      const std::string head = what.substr(0, what.find(", arena_bytes="));
      if (workers == 1) {
        serial_what = head;
      } else {
        EXPECT_EQ(head, serial_what) << "workers=" << workers;
      }
    }
  }
}

TEST(OfflineDifferential, FtfStateLimitReportsCounters) {
  Rng rng(5150);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 8);
  const OfflineInstance inst = make_instance(rs, 2, 2);
  for (OfflineEngine engine : {OfflineEngine::kPacked, OfflineEngine::kReference}) {
    FtfOptions opts;
    opts.engine = engine;
    opts.max_states = 5;
    try {
      (void)solve_ftf(inst, opts);
      FAIL() << "expected ModelError";
    } catch (const ModelError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("states_expanded="), std::string::npos) << what;
      EXPECT_NE(what.find("states_stored="), std::string::npos) << what;
      if (engine == OfflineEngine::kPacked) {
        // The packed engine knows its memory story: the abort message alone
        // must be enough to size the retry (budget, reserve hint, or limit).
        EXPECT_NE(what.find("arena_bytes="), std::string::npos) << what;
        EXPECT_NE(what.find("peak_bytes_in_ram="), std::string::npos) << what;
        EXPECT_NE(what.find("table_load_factor="), std::string::npos) << what;
        EXPECT_NE(what.find("bytes_spilled="), std::string::npos) << what;
      }
    }
  }
}

TEST(OfflineDifferential, UnsupportedInstanceFallsBackToReference) {
  // 140 distinct pages blow the 128-page packed universe; the packed engine
  // must silently fall back rather than fail.
  RequestSequence seq;
  for (PageId page = 0; page < 140; ++page) seq.push_back(page);
  RequestSet rs;
  rs.add_sequence(std::move(seq));
  const OfflineInstance inst = make_instance(std::move(rs), 2, 1);
  ASSERT_FALSE(PackedTransitionSystem::supports(inst));
  const FtfResult result = solve_ftf(inst);  // default engine = kPacked
  EXPECT_EQ(result.min_faults, 140u);        // cold faults only
}

}  // namespace
}  // namespace mcp
