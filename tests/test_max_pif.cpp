// Tests for the exact MAX-PIF solver (offline/max_pif_solver.hpp).
#include "offline/max_pif_solver.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "core/error.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;

PifInstance make_pif(RequestSet rs, std::size_t k, Time tau, Time deadline,
                     std::vector<Count> bounds) {
  PifInstance inst;
  inst.base.requests = std::move(rs);
  inst.base.cache_size = k;
  inst.base.tau = tau;
  inst.deadline = deadline;
  inst.bounds = std::move(bounds);
  return inst;
}

TEST(MaxPif, AllSatisfiableWhenPifFeasible) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1});
  rs.add_sequence(RequestSequence{5, 6});
  const PifInstance inst = make_pif(std::move(rs), 2, 1, 50, {3, 2});
  const MaxPifResult result = solve_max_pif(inst);
  EXPECT_EQ(result.max_satisfied, 2u);
  const std::vector<CoreId> expected = {0, 1};
  EXPECT_EQ(result.witness, expected);
}

TEST(MaxPif, PartialSatisfactionCountsCorrectly) {
  // Core 0's bound of 0 is hopeless (its first request faults); core 1's is
  // generous: exactly one sequence can be kept within bounds.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1});
  rs.add_sequence(RequestSequence{5, 6});
  const PifInstance inst = make_pif(std::move(rs), 2, 1, 50, {0, 2});
  const MaxPifResult result = solve_max_pif(inst);
  EXPECT_EQ(result.max_satisfied, 1u);
  const std::vector<CoreId> expected = {1};
  EXPECT_EQ(result.witness, expected);
}

TEST(MaxPif, ZeroWhenEveryBoundIsHopeless) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  rs.add_sequence(RequestSequence{5});
  const PifInstance inst = make_pif(std::move(rs), 2, 0, 10, {0, 0});
  const MaxPifResult result = solve_max_pif(inst);
  EXPECT_EQ(result.max_satisfied, 0u);
  EXPECT_TRUE(result.witness.empty());
}

TEST(MaxPif, AgreesWithPifOnFullSubset) {
  // MAX-PIF == p exactly when the PIF decision is YES.
  Rng rng(8642);
  for (int trial = 0; trial < 12; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 5);
    const PifInstance inst =
        make_pif(rs, 2, 1, 3 + rng.below(9), {rng.below(4), rng.below(4)});
    const bool pif = solve_pif(inst).feasible;
    const MaxPifResult max = solve_max_pif(inst);
    EXPECT_EQ(max.max_satisfied == 2, pif) << "trial=" << trial;
    EXPECT_EQ(max.witness.size(), max.max_satisfied);
  }
}

TEST(MaxPif, MonotonicityPruningNeverChangesTheAnswer) {
  // Cross-check against a pruning-free reference: enumerate subsets
  // directly via solve_pif.
  Rng rng(11111);
  for (int trial = 0; trial < 6; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 2, 4);
    const PifInstance inst =
        make_pif(rs, 3, 1, 3 + rng.below(6),
                 {rng.below(3), rng.below(3), rng.below(3)});
    const MaxPifResult fast = solve_max_pif(inst);

    std::size_t reference = 0;
    for (std::uint32_t subset = 0; subset < 8; ++subset) {
      PifInstance relaxed = inst;
      for (std::size_t j = 0; j < 3; ++j) {
        if (!((subset >> j) & 1u)) relaxed.bounds[j] = 1000;
      }
      if (solve_pif(relaxed).feasible) {
        reference = std::max(
            reference,
            static_cast<std::size_t>(std::popcount(subset)));
      }
    }
    EXPECT_EQ(fast.max_satisfied, reference) << "trial=" << trial;
  }
}

TEST(MaxPif, RejectsTooManyCores) {
  RequestSet rs(21);
  for (CoreId j = 0; j < 21; ++j) rs.sequence(j).push_back(j);
  const PifInstance inst =
      make_pif(std::move(rs), 21, 0, 5, std::vector<Count>(21, 1));
  EXPECT_THROW((void)solve_max_pif(inst), ModelError);
}

}  // namespace
}  // namespace mcp
