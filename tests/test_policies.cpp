// Unit tests for the eviction policies (policies/policies.hpp), driven
// directly through the EvictionPolicy interface.
#include "policies/policies.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"

namespace mcp {
namespace {

AccessContext at(Time now, PageId page = kInvalidPage, CoreId core = 0) {
  return AccessContext{core, page, now, static_cast<std::size_t>(now)};
}

const auto kAll = [](PageId) { return true; };

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.on_insert(1, at(0, 1));
  lru.on_insert(2, at(1, 2));
  lru.on_insert(3, at(2, 3));
  lru.on_hit(1, at(3, 1));
  EXPECT_EQ(lru.victim(at(4), kAll), 2u);
}

TEST(LruPolicy, VictimRespectsEvictablePredicate) {
  LruPolicy lru;
  lru.on_insert(1, at(0, 1));
  lru.on_insert(2, at(1, 2));
  const auto not_one = [](PageId p) { return p != 1; };
  EXPECT_EQ(lru.victim(at(2), not_one), 2u);
  const auto none = [](PageId) { return false; };
  EXPECT_EQ(lru.victim(at(2), none), kInvalidPage);
}

TEST(LruPolicy, RemoveUntrackedThrows) {
  LruPolicy lru;
  EXPECT_THROW(lru.on_remove(9), ModelError);
}

TEST(LruPolicy, DoubleInsertThrows) {
  LruPolicy lru;
  lru.on_insert(1, at(0, 1));
  EXPECT_THROW(lru.on_insert(1, at(1, 1)), ModelError);
}

TEST(LruPolicy, LastUseAndLeastRecent) {
  LruPolicy lru;
  lru.on_insert(1, at(0, 1));
  lru.on_insert(2, at(5, 2));
  EXPECT_EQ(lru.last_use(1), 0u);
  EXPECT_EQ(lru.last_use(2), 5u);
  EXPECT_EQ(lru.last_use(3), kTimeNever);
  EXPECT_EQ(lru.least_recent(), 1u);
  lru.on_hit(1, at(9, 1));
  EXPECT_EQ(lru.least_recent(), 2u);
}

TEST(FifoPolicy, EvictsOldestArrivalRegardlessOfHits) {
  FifoPolicy fifo;
  fifo.on_insert(1, at(0, 1));
  fifo.on_insert(2, at(1, 2));
  fifo.on_hit(1, at(2, 1));  // no effect on FIFO order
  EXPECT_EQ(fifo.victim(at(3), kAll), 1u);
}

TEST(FifoPolicy, RemoveReordersNothing) {
  FifoPolicy fifo;
  fifo.on_insert(1, at(0, 1));
  fifo.on_insert(2, at(1, 2));
  fifo.on_insert(3, at(2, 3));
  fifo.on_remove(1);
  EXPECT_EQ(fifo.victim(at(3), kAll), 2u);
}

TEST(MruPolicy, EvictsMostRecentlyUsed) {
  MruPolicy mru;
  mru.on_insert(1, at(0, 1));
  mru.on_insert(2, at(1, 2));
  mru.on_hit(1, at(2, 1));
  EXPECT_EQ(mru.victim(at(3), kAll), 1u);
}

TEST(LfuPolicy, EvictsLeastFrequentlyUsed) {
  LfuPolicy lfu;
  lfu.on_insert(1, at(0, 1));
  lfu.on_insert(2, at(1, 2));
  lfu.on_insert(3, at(2, 3));
  lfu.on_hit(1, at(3, 1));
  lfu.on_hit(1, at(4, 1));
  lfu.on_hit(2, at(5, 2));
  EXPECT_EQ(lfu.victim(at(6), kAll), 3u);  // only one use
}

TEST(LfuPolicy, TieBreaksByLeastRecentUse) {
  LfuPolicy lfu;
  lfu.on_insert(1, at(0, 1));
  lfu.on_insert(2, at(1, 2));  // both have 1 use; page 1 used earlier
  EXPECT_EQ(lfu.victim(at(2), kAll), 1u);
}

TEST(ClockPolicy, GivesSecondChanceToReferencedPages) {
  ClockPolicy clock;
  clock.on_insert(1, at(0, 1));
  clock.on_insert(2, at(1, 2));
  // Pages arrive referenced; one sweep clears both bits.
  (void)clock.victim(at(2), kAll);
  clock.on_hit(1, at(3, 1));  // re-reference 1
  EXPECT_EQ(clock.victim(at(4), kAll), 2u);  // 1 earned a second chance
}

TEST(ClockPolicy, SweepClearsBitsAndTerminates) {
  ClockPolicy clock;
  clock.on_insert(1, at(0, 1));
  clock.on_insert(2, at(1, 2));
  clock.on_hit(1, at(2, 1));
  clock.on_hit(2, at(3, 2));
  // All referenced: first sweep clears, second finds a victim.
  const PageId victim = clock.victim(at(4), kAll);
  EXPECT_NE(victim, kInvalidPage);
}

TEST(ClockPolicy, RespectsEvictablePredicate) {
  ClockPolicy clock;
  clock.on_insert(1, at(0, 1));
  clock.on_insert(2, at(1, 2));
  const auto not_two = [](PageId p) { return p != 2; };
  EXPECT_EQ(clock.victim(at(2), not_two), 1u);
  const auto none = [](PageId) { return false; };
  EXPECT_EQ(clock.victim(at(2), none), kInvalidPage);
}

TEST(ClockPolicy, RemoveKeepsRingConsistent) {
  ClockPolicy clock;
  for (PageId p = 1; p <= 5; ++p) clock.on_insert(p, at(p, p));
  clock.on_remove(3);
  clock.on_remove(1);
  EXPECT_EQ(clock.size(), 3u);
  std::set<PageId> evicted;
  for (int i = 0; i < 3; ++i) {
    const PageId v = clock.victim(at(10), kAll);
    ASSERT_NE(v, kInvalidPage);
    evicted.insert(v);
    clock.on_remove(v);
  }
  const std::set<PageId> expected = {2, 4, 5};
  EXPECT_EQ(evicted, expected);
}

TEST(RandomPolicy, OnlyReturnsTrackedEvictablePages) {
  RandomPolicy random(42);
  random.on_insert(1, at(0, 1));
  random.on_insert(2, at(1, 2));
  random.on_insert(3, at(2, 3));
  const auto odd = [](PageId p) { return p % 2 == 1; };
  for (int i = 0; i < 50; ++i) {
    const PageId v = random.victim(at(3), odd);
    EXPECT_TRUE(v == 1 || v == 3);
  }
}

TEST(RandomPolicy, SameSeedSameChoices) {
  RandomPolicy a(7);
  RandomPolicy b(7);
  for (PageId p = 1; p <= 8; ++p) {
    a.on_insert(p, at(p, p));
    b.on_insert(p, at(p, p));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.victim(at(9), kAll), b.victim(at(9), kAll));
  }
}

TEST(MarkingPolicy, NewPhaseWhenAllMarked) {
  MarkingPolicy mark;
  mark.on_insert(1, at(0, 1));  // insert marks
  mark.on_insert(2, at(1, 2));
  EXPECT_EQ(mark.phases(), 0u);
  // All marked: requesting a victim starts a new phase and evicts the LRU
  // (now unmarked) page.
  EXPECT_EQ(mark.victim(at(2), kAll), 1u);
  EXPECT_EQ(mark.phases(), 1u);
}

TEST(MarkingPolicy, PrefersUnmarkedPages) {
  MarkingPolicy mark;
  mark.on_insert(1, at(0, 1));
  mark.on_insert(2, at(1, 2));
  (void)mark.victim(at(2), kAll);  // phase reset: both unmarked
  mark.on_hit(2, at(3, 2));        // marks 2
  EXPECT_EQ(mark.victim(at(4), kAll), 1u);
}

TEST(SlruPolicy, HitPromotesToProtected) {
  SlruPolicy slru;
  slru.set_capacity(4);  // protected cap 2
  slru.on_insert(1, at(0, 1));
  slru.on_insert(2, at(1, 2));
  EXPECT_EQ(slru.protected_size(), 0u);
  slru.on_hit(1, at(2, 1));
  EXPECT_EQ(slru.protected_size(), 1u);
  // Victim comes from probation: 2 is the only page there.
  EXPECT_EQ(slru.victim(at(3), kAll), 2u);
}

TEST(SlruPolicy, ProtectedOverflowDemotes) {
  SlruPolicy slru;
  slru.set_capacity(4);  // protected cap 2
  for (PageId p = 1; p <= 3; ++p) slru.on_insert(p, at(p, p));
  slru.on_hit(1, at(4, 1));
  slru.on_hit(2, at(5, 2));
  EXPECT_EQ(slru.protected_size(), 2u);
  slru.on_hit(3, at(6, 3));  // promotes 3, demotes LRU-protected (1)
  EXPECT_EQ(slru.protected_size(), 2u);
  // Demoted 1 sits at probation front; victim is still probation LRU = 1
  // (only probation page).
  EXPECT_EQ(slru.victim(at(7), kAll), 1u);
}

TEST(SlruPolicy, ScanResistance) {
  // Hot pair {1,2} gets hit; a one-shot scan of pages 10..15 must not evict
  // the protected hot pages under SLRU (while plain LRU would).
  const auto run = [](const char* policy) {
    RequestSequence seq{1, 2, 1, 2, 1, 2};
    for (PageId p = 10; p <= 15; ++p) seq.push_back(p);
    seq.push_back(1);
    seq.push_back(2);
    return single_core_policy_faults(seq, 4, make_policy_factory(policy));
  };
  const Count slru = run("slru");
  const Count lru = run("lru");
  EXPECT_LT(slru, lru);  // SLRU keeps 1 and 2 through the scan
}

TEST(SlruPolicy, FallsBackToProtectedWhenProbationEmpty) {
  SlruPolicy slru;
  slru.set_capacity(2);
  slru.on_insert(1, at(0, 1));
  slru.on_hit(1, at(1, 1));  // 1 protected, probation empty
  EXPECT_EQ(slru.victim(at(2), kAll), 1u);
}

TEST(SlruPolicy, RemoveFromEitherSegment) {
  SlruPolicy slru;
  slru.set_capacity(4);
  slru.on_insert(1, at(0, 1));
  slru.on_insert(2, at(1, 2));
  slru.on_hit(1, at(2, 1));
  slru.on_remove(1);  // from protected
  slru.on_remove(2);  // from probation
  EXPECT_EQ(slru.size(), 0u);
  EXPECT_EQ(slru.protected_size(), 0u);
  EXPECT_THROW(slru.on_remove(1), ModelError);
}

TEST(RandomizedMarking, PicksUniformlyAmongUnmarked) {
  MarkingPolicy mark(MarkingPolicy::TieBreak::kRandom, 99);
  mark.on_insert(1, at(0, 1));
  mark.on_insert(2, at(1, 2));
  mark.on_insert(3, at(2, 3));
  (void)mark.victim(at(3), kAll);  // phase reset: all unmarked
  mark.on_hit(2, at(4, 2));        // 2 is marked again
  std::set<PageId> seen;
  for (int i = 0; i < 60; ++i) {
    const PageId v = mark.victim(at(5), kAll);
    EXPECT_TRUE(v == 1 || v == 3) << v;  // never the marked page
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 2u);  // both unmarked pages get picked eventually
}

TEST(RandomizedMarking, SameSeedSameChoices) {
  MarkingPolicy a(MarkingPolicy::TieBreak::kRandom, 7);
  MarkingPolicy b(MarkingPolicy::TieBreak::kRandom, 7);
  for (PageId p = 1; p <= 6; ++p) {
    a.on_insert(p, at(p, p));
    b.on_insert(p, at(p, p));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.victim(at(9), kAll), b.victim(at(9), kAll));
  }
}

TEST(RandomizedMarking, PhaseBoundStillHolds) {
  // Any marking algorithm faults at most k times per phase: on a cyclic
  // scan of k+1 pages with k cells, phases advance once per lap.
  MarkingPolicy mark(MarkingPolicy::TieBreak::kRandom, 3);
  // Simulate k=3 cells over pages {1,2,3,4} cyclically, 5 laps.
  std::set<PageId> resident;
  Time now = 0;
  Count faults = 0;
  for (int lap = 0; lap < 5; ++lap) {
    for (PageId page = 1; page <= 4; ++page) {
      ++now;
      if (resident.contains(page)) {
        mark.on_hit(page, at(now, page));
        continue;
      }
      ++faults;
      if (resident.size() == 3) {
        const PageId victim = mark.victim(at(now), kAll);
        ASSERT_NE(victim, kInvalidPage);
        mark.on_remove(victim);
        resident.erase(victim);
      }
      mark.on_insert(page, at(now, page));
      resident.insert(page);
    }
  }
  // Phase length is k distinct pages => at least ~4 laps' worth of phases,
  // and faults <= k per phase + compulsory.
  EXPECT_GE(mark.phases(), 4u);
  EXPECT_LE(faults, 3u * (mark.phases() + 1) + 4u);
}

TEST(FitfPolicy, EvictsFurthestInFuture) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3, 1, 2});
  FutureOracle oracle;
  oracle.attach(rs);
  FitfPolicy fitf(&oracle);
  fitf.on_insert(1, at(0, 1));
  fitf.on_insert(2, at(1, 2));
  oracle.advance(0, 2);  // about to serve index 2 (page 3)
  // next use: page 1 at index 3 (distance 1), page 2 at index 4 (distance 2).
  EXPECT_EQ(fitf.victim(at(2), kAll), 2u);
}

TEST(FitfPolicy, NeverUsedAgainRanksFurthest) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3, 1, 3});
  FutureOracle oracle;
  oracle.attach(rs);
  FitfPolicy fitf(&oracle);
  fitf.on_insert(1, at(0, 1));
  fitf.on_insert(2, at(1, 2));
  oracle.advance(0, 2);
  EXPECT_EQ(fitf.victim(at(2), kAll), 2u);  // page 2 never requested again
}

TEST(FutureOracle, PerCoreAndAnyCoreDistances) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1});
  rs.add_sequence(RequestSequence{2, 3});
  FutureOracle oracle;
  oracle.attach(rs);
  EXPECT_EQ(oracle.next_use_in(0, 1), 0u);
  EXPECT_EQ(oracle.next_use_in(0, 2), 1u);
  EXPECT_EQ(oracle.next_use_in(1, 2), 0u);
  EXPECT_EQ(oracle.next_use_in(1, 1), kNeverAgain);
  EXPECT_EQ(oracle.next_use_any(2), 0u);
  oracle.advance(0, 1);
  oracle.advance(1, 1);
  EXPECT_EQ(oracle.next_use_in(0, 1), 1u);   // index 2, pos 1
  EXPECT_EQ(oracle.next_use_in(1, 2), kNeverAgain);
  EXPECT_EQ(oracle.next_use_any(2), 0u);     // core 0's index-1 occurrence
}

TEST(FutureOracle, PositionsMustAdvance) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  FutureOracle oracle;
  oracle.attach(rs);
  oracle.advance(0, 1);
  EXPECT_THROW(oracle.advance(0, 0), ModelError);
}

TEST(LruScanPolicy, MatchesListLruWithUniqueTimestamps) {
  // Differential: both LRU implementations must agree decision-for-decision
  // when timestamps are unique (single driver, strictly increasing time).
  LruPolicy list_lru;
  LruScanPolicy scan_lru;
  Rng rng(314159);
  std::set<PageId> tracked;
  Time now = 0;
  for (int step = 0; step < 4000; ++step) {
    ++now;
    const std::uint64_t op = tracked.empty() ? 0 : rng.below(4);
    if (op == 0) {
      PageId page = static_cast<PageId>(rng.below(500));
      while (tracked.contains(page)) ++page;
      list_lru.on_insert(page, at(now, page));
      scan_lru.on_insert(page, at(now, page));
      tracked.insert(page);
    } else if (op == 1) {
      auto it = tracked.begin();
      std::advance(it, static_cast<long>(rng.below(tracked.size())));
      list_lru.on_hit(*it, at(now, *it));
      scan_lru.on_hit(*it, at(now, *it));
    } else if (op == 2) {
      auto it = tracked.begin();
      std::advance(it, static_cast<long>(rng.below(tracked.size())));
      list_lru.on_remove(*it);
      scan_lru.on_remove(*it);
      tracked.erase(it);
    } else {
      ASSERT_EQ(list_lru.victim(at(now), kAll), scan_lru.victim(at(now), kAll))
          << "step=" << step;
    }
    ASSERT_EQ(list_lru.size(), scan_lru.size());
  }
}

TEST(PolicyRegistry, BuildsEveryAdvertisedPolicy) {
  for (const std::string& name : online_policy_names()) {
    const PolicyFactory factory = make_policy_factory(name);
    const auto policy = factory();
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->size(), 0u);
  }
}

TEST(PolicyRegistry, CaseInsensitive) {
  EXPECT_EQ(make_policy_factory("LRU")()->name(), "LRU");
}

TEST(PolicyRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)make_policy_factory("belady2000"), InputError);
  EXPECT_THROW((void)make_policy_factory("fitf"), InputError);
}

}  // namespace
}  // namespace mcp
