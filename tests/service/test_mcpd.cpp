// mcpd end-to-end: shard determinism (the acceptance property — per-session
// results bit-identical to a direct library simulation at every shard
// count), query semantics against the library oracles, and protocol error
// tolerance.  CONCURRENCY label: the daemon's shard workers + client
// threads run under ThreadSanitizer in the tsan-full CI job.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "policies/mattson.hpp"
#include "policies/policy_registry.hpp"
#include "service/mcpd.hpp"
#include "strategies/partition.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp::service {
namespace {

using wire::SessionParams;
using wire::StrategyKind;

struct Tenant {
  std::uint64_t session = 0;
  RequestSet trace;
  SessionParams params;
};

std::vector<Tenant> make_tenants(std::size_t count, Rng& rng) {
  std::vector<Tenant> tenants(count);
  for (std::size_t t = 0; t < count; ++t) {
    const std::size_t cores = 1 + t % 4;
    tenants[t].session = t + 1;
    tenants[t].trace =
        testing::random_disjoint_workload(rng, cores, 12, 80 + 13 * t);
    tenants[t].params =
        SessionParams{static_cast<std::uint32_t>(cores), 8, 3,
                      t % 2 == 0 ? StrategyKind::kSharedLru
                                 : StrategyKind::kStaticEvenLru};
  }
  return tenants;
}

/// The library-side oracle for one tenant: a direct Simulator::run with
/// the strategy the daemon instantiates for its StrategyKind.
RunStats oracle_run(const Tenant& tenant) {
  SimConfig config;
  config.cache_size = tenant.params.cache_size;
  config.fault_penalty = tenant.params.fault_penalty;
  config.record_fault_timeline = false;
  Simulator sim(config);
  if (tenant.params.strategy == StrategyKind::kSharedLru) {
    SharedStrategy strategy(make_policy_factory("lru"));
    return sim.run(tenant.trace, strategy);
  }
  StaticPartitionStrategy strategy(
      even_partition(tenant.params.cache_size, tenant.trace.num_cores()),
      make_policy_factory("lru"));
  return sim.run(tenant.trace, strategy);
}

/// Identically-configured tenants (one cohort per shard under the batched
/// path) with traces of different lengths, so lanes end raggedly.
std::vector<Tenant> make_homogeneous_tenants(std::size_t count, Rng& rng) {
  std::vector<Tenant> tenants(count);
  for (std::size_t t = 0; t < count; ++t) {
    tenants[t].session = t + 1;
    tenants[t].trace =
        testing::random_disjoint_workload(rng, 4, 10, 60 + 17 * t);
    tenants[t].params = SessionParams{4, 8, 3, StrategyKind::kSharedLru};
  }
  return tenants;
}

/// Drives every tenant through a daemon with `shards` shards using small
/// chunks, queries fault counts, and checks the replies against the
/// library oracle field by field.  Returns the daemon's merged counters.
ShardStats expect_shard_determinism(std::size_t shards,
                                    const std::vector<Tenant>& tenants,
                                    std::size_t chunk_pairs,
                                    bool enable_batching = true,
                                    bool use_run_frames = false) {
  McpdConfig daemon_config;
  daemon_config.num_shards = shards;
  daemon_config.enable_batching = enable_batching;
  Mcpd daemon(daemon_config);
  McpdClient client(daemon);
  for (const Tenant& tenant : tenants) {
    client.open(tenant.session, tenant.params);
  }
  // Interleave all tenants' chunks to scramble arrival order across shards.
  std::vector<std::vector<std::size_t>> cursor(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    cursor[t].assign(tenants[t].trace.num_cores(), 0);
  }
  bool emitted = true;
  while (emitted) {
    emitted = false;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const Tenant& tenant = tenants[t];
      for (CoreId core = 0; core < tenant.trace.num_cores(); ++core) {
        const RequestSequence& seq = tenant.trace.sequence(core);
        if (cursor[t][core] >= seq.size()) continue;
        const std::size_t n =
            std::min(chunk_pairs, seq.size() - cursor[t][core]);
        const std::span<const PageId> slice =
            seq.pages().subspan(cursor[t][core], n);
        if (use_run_frames) {
          client.send_core_run(tenant.session,
                               static_cast<std::uint32_t>(core), slice);
        } else {
          client.send_core_pages(tenant.session,
                                 static_cast<std::uint32_t>(core), slice);
        }
        cursor[t][core] += n;
        emitted = true;
      }
    }
  }
  for (const Tenant& tenant : tenants) client.close(tenant.session);

  for (const Tenant& tenant : tenants) {
    const wire::FaultCountsReply reply =
        client.query_faults(tenant.session, 1000 + tenant.session);
    const RunStats want = oracle_run(tenant);
    SCOPED_TRACE("session " + std::to_string(tenant.session) + " shards " +
                 std::to_string(shards));
    EXPECT_TRUE(reply.finished);
    EXPECT_EQ(reply.requests_served, want.total_requests());
    EXPECT_EQ(reply.end_time, want.end_time);
    EXPECT_EQ(reply.per_core_faults.size(), want.num_cores());
    for (CoreId j = 0; j < want.num_cores() &&
                       j < static_cast<CoreId>(reply.per_core_faults.size());
         ++j) {
      EXPECT_EQ(reply.per_core_faults[j], want.core(j).faults) << "core " << j;
      EXPECT_EQ(reply.completion_times[j], want.core(j).completion_time)
          << "core " << j;
    }
  }
  daemon.stop();
  const ShardStats total = daemon.total_stats();
  EXPECT_EQ(total.bad_frames, 0u);
  return total;
}

TEST(Mcpd, ShardCountNeverChangesResults) {
  Rng rng(0xDEED);
  const std::vector<Tenant> tenants = make_tenants(9, rng);
  for (const std::size_t shards : {1u, 2u, 8u}) {
    expect_shard_determinism(shards, tenants, /*chunk_pairs=*/7);
  }
  // Chunk size must be equally irrelevant.
  expect_shard_determinism(2, tenants, /*chunk_pairs=*/1);
  expect_shard_determinism(2, tenants, /*chunk_pairs=*/1000);
}

TEST(Mcpd, HomogeneousCohortMatchesOracleAtEveryShardAndChunkSize) {
  // The cohort scheduler's home turf: identical tenants, one cohort per
  // shard.  Every reply is checked against the direct Simulator oracle, so
  // passing at all grid points proves the batched path bit-identical to the
  // library regardless of sharding or arrival chunking.
  Rng rng(0xBEEF);
  const std::vector<Tenant> tenants = make_homogeneous_tenants(10, rng);
  for (const std::size_t shards : {1u, 2u, 8u}) {
    for (const std::size_t chunk : {1u, 7u, 1000u}) {
      const ShardStats total =
          expect_shard_determinism(shards, tenants, chunk);
      EXPECT_EQ(total.batched_sessions, tenants.size());
      EXPECT_EQ(total.scalar_sessions, 0u);
      EXPECT_GT(total.lane_steps, 0u);
      EXPECT_EQ(total.sessions_finished, tenants.size());
    }
  }
}

TEST(Mcpd, RunFramesIngestIdenticallyOnBothSteppingPaths) {
  // The compact kRequestRun framing must be indistinguishable from
  // kRequestChunk once ingested: every reply is oracle-checked on the
  // batched and the scalar path, at run lengths that do and do not hit the
  // alignment pad.
  Rng rng(0xF00D);
  const std::vector<Tenant> mixed = make_tenants(9, rng);
  const std::vector<Tenant> cohort = make_homogeneous_tenants(10, rng);
  for (const std::size_t chunk : {1u, 7u, 1000u}) {
    expect_shard_determinism(2, mixed, chunk, /*enable_batching=*/true,
                             /*use_run_frames=*/true);
    const ShardStats batched =
        expect_shard_determinism(2, cohort, chunk, /*enable_batching=*/true,
                                 /*use_run_frames=*/true);
    EXPECT_EQ(batched.batched_sessions, cohort.size());
    const ShardStats scalar =
        expect_shard_determinism(2, cohort, chunk, /*enable_batching=*/false,
                                 /*use_run_frames=*/true);
    EXPECT_EQ(scalar.scalar_sessions, cohort.size());
  }
}

TEST(Mcpd, BatchingOffForcesTheScalarPathWithIdenticalResults) {
  // enable_batching=false is the differential baseline: same replies (both
  // sides are oracle-checked), none of the cohort counters move.
  Rng rng(0xBEEF);
  const std::vector<Tenant> tenants = make_homogeneous_tenants(10, rng);
  const ShardStats scalar =
      expect_shard_determinism(2, tenants, 7, /*enable_batching=*/false);
  EXPECT_EQ(scalar.batched_sessions, 0u);
  EXPECT_EQ(scalar.scalar_sessions, tenants.size());
  EXPECT_EQ(scalar.lane_steps, 0u);
}

TEST(Mcpd, CohortHandlesMidStreamFinishersAndLateJoiners) {
  // Sessions that finish while the rest of their cohort is mid-flight must
  // detach cleanly (their lane slot is recycled), and a session opened
  // after the cohort has been stepping must attach to the live group and
  // still produce oracle-exact results.
  Rng rng(0xACE1);
  std::vector<Tenant> tenants = make_homogeneous_tenants(6, rng);
  McpdConfig daemon_config;
  daemon_config.num_shards = 2;
  Mcpd daemon(daemon_config);
  McpdClient client(daemon);

  const auto send_slice = [&client](const Tenant& tenant, std::size_t num,
                                    std::size_t den) {
    for (CoreId core = 0; core < tenant.trace.num_cores(); ++core) {
      const std::span<const PageId> pages =
          tenant.trace.sequence(core).pages();
      const std::size_t mid = pages.size() * num / den;
      client.send_core_pages(tenant.session, static_cast<std::uint32_t>(core),
                             num == 1 ? pages.first(mid) : pages.subspan(mid / 2));
    }
  };
  const auto finish_and_check = [&client](const Tenant& tenant) {
    client.close(tenant.session);
    const wire::FaultCountsReply reply =
        client.query_faults(tenant.session, 500 + tenant.session);
    const RunStats want = oracle_run(tenant);
    SCOPED_TRACE("session " + std::to_string(tenant.session));
    EXPECT_TRUE(reply.finished);
    EXPECT_EQ(reply.requests_served, want.total_requests());
    EXPECT_EQ(reply.end_time, want.end_time);
    for (CoreId j = 0; j < want.num_cores(); ++j) {
      EXPECT_EQ(reply.per_core_faults[j], want.core(j).faults) << "core " << j;
    }
  };

  for (const Tenant& tenant : tenants) client.open(tenant.session, tenant.params);
  // Everyone gets the first half of their trace and stalls on an open feed.
  for (const Tenant& tenant : tenants) send_slice(tenant, 1, 2);
  // Tenants 0 and 1 run to the end and leave the cohort early.
  for (std::size_t t : {0u, 1u}) {
    send_slice(tenants[t], 2, 2);
    finish_and_check(tenants[t]);
  }
  // A new session joins the (still live) cohort and completes.
  Tenant late;
  late.session = 100;
  late.trace = testing::random_disjoint_workload(rng, 4, 10, 140);
  late.params = tenants[0].params;
  client.open(late.session, late.params);
  send_slice(late, 1, 2);
  send_slice(late, 2, 2);
  finish_and_check(late);
  // The stragglers finish last.
  for (std::size_t t = 2; t < tenants.size(); ++t) {
    send_slice(tenants[t], 2, 2);
    finish_and_check(tenants[t]);
  }

  daemon.stop();
  const ShardStats total = daemon.total_stats();
  EXPECT_EQ(total.bad_frames, 0u);
  EXPECT_EQ(total.batched_sessions, tenants.size() + 1);
  EXPECT_EQ(total.sessions_finished, tenants.size() + 1);
}

TEST(Mcpd, FaultCurveMatchesMattsonKernel) {
  Rng rng(0xCAFE);
  Tenant tenant;
  tenant.session = 5;
  tenant.trace = testing::random_disjoint_workload(rng, 3, 16, 200);
  tenant.params = SessionParams{3, 8, 2, StrategyKind::kSharedLru};

  Mcpd daemon(McpdConfig{2});
  McpdClient client(daemon);
  client.open(tenant.session, tenant.params);
  for (CoreId core = 0; core < 3; ++core) {
    client.send_core_pages(tenant.session, core,
                           tenant.trace.sequence(core).pages());
  }
  client.close(tenant.session);

  const std::uint32_t max_k = 12;
  const wire::FaultCurveReply reply =
      client.query_fault_curve(tenant.session, 77, max_k);
  EXPECT_EQ(reply.max_k, max_k);
  EXPECT_EQ(reply.curves, lru_fault_curve_batch(tenant.trace, max_k));
}

TEST(Mcpd, PartitionAdviceMatchesOfflineSearch) {
  Rng rng(0xF00D);
  Tenant tenant;
  tenant.session = 6;
  tenant.trace = testing::random_disjoint_workload(rng, 3, 10, 150);
  tenant.params = SessionParams{3, 9, 2, StrategyKind::kSharedLru};

  Mcpd daemon(McpdConfig{1});
  McpdClient client(daemon);
  client.open(tenant.session, tenant.params);
  for (CoreId core = 0; core < 3; ++core) {
    client.send_core_pages(tenant.session, core,
                           tenant.trace.sequence(core).pages());
  }
  client.close(tenant.session);

  const wire::PartitionAdviceReply reply =
      client.query_partition(tenant.session, 88);
  const PartitionSearchResult want = optimal_partition_from_curves(
      lru_fault_curve_batch(tenant.trace, 9), 9);
  EXPECT_EQ(reply.predicted_faults, want.faults);
  ASSERT_EQ(reply.cells_per_core.size(), want.partition.size());
  for (std::size_t j = 0; j < want.partition.size(); ++j) {
    EXPECT_EQ(reply.cells_per_core[j], want.partition[j]);
  }
}

TEST(Mcpd, QueryBeforeCloseIsParkedUntilFinish) {
  Rng rng(0x5555);
  Tenant tenant;
  tenant.session = 7;
  tenant.trace = testing::random_disjoint_workload(rng, 2, 8, 60);
  tenant.params = SessionParams{2, 6, 1, StrategyKind::kSharedLru};

  Mcpd daemon(McpdConfig{2});
  McpdClient client(daemon);
  client.open(tenant.session, tenant.params);
  // Query first, then the data: the reply must still be the finished one.
  client.post_query_faults(tenant.session, 99);
  for (CoreId core = 0; core < 2; ++core) {
    client.send_core_pages(tenant.session, core,
                           tenant.trace.sequence(core).pages());
  }
  client.close(tenant.session);

  std::vector<std::byte> storage;
  const wire::FrameView frame = client.wait_reply(storage);
  ASSERT_EQ(frame.type, wire::FrameType::kFaultCounts);
  const wire::FaultCountsReply reply = wire::decode_fault_counts(frame);
  EXPECT_EQ(reply.query_id, 99u);
  EXPECT_TRUE(reply.finished);
  const RunStats want = oracle_run(tenant);
  EXPECT_EQ(reply.requests_served, want.total_requests());
}

TEST(Mcpd, ProtocolErrorsAreCountedNotFatal) {
  Mcpd daemon(McpdConfig{2});
  McpdClient client(daemon);
  const SessionParams params{2, 4, 1, StrategyKind::kSharedLru};

  client.open(1, params);
  client.open(1, params);  // duplicate open: dropped, counted
  const PageId pages[] = {1, 2, 3};
  client.send_core_pages(2, 0, pages);  // unknown session: dropped
  client.send_core_pages(1, 0, pages);
  client.send_core_pages(1, 1, pages);
  client.close(1);
  const wire::FaultCountsReply reply = client.query_faults(1, 1);
  EXPECT_TRUE(reply.finished);
  EXPECT_EQ(reply.requests_served, 6u);

  daemon.stop();
  EXPECT_EQ(daemon.total_stats().bad_frames, 2u);
  EXPECT_EQ(daemon.total_stats().sessions_opened, 1u);
  EXPECT_EQ(daemon.total_stats().sessions_finished, 1u);
}

TEST(Mcpd, FailedSessionOpenDoesNotPoisonTheShard) {
  Mcpd daemon(McpdConfig{1});
  McpdClient client(daemon);
  // Static partition needs cache_size >= num_cores, so this open's Session
  // construction throws inside the shard.  The frame must be counted and
  // dropped without leaving a null session entry behind.
  client.open(1, SessionParams{4, 2, 1, StrategyKind::kStaticEvenLru});
  const PageId pages[] = {1, 2, 3};
  client.send_core_pages(1, 0, pages);  // session 1 never opened: dropped
  // The shard keeps serving healthy sessions afterwards.
  client.open(2, SessionParams{1, 2, 1, StrategyKind::kSharedLru});
  client.send_core_pages(2, 0, pages);
  client.close(2);
  const wire::FaultCountsReply reply = client.query_faults(2, 9);
  EXPECT_TRUE(reply.finished);
  EXPECT_EQ(reply.requests_served, 3u);
  daemon.stop();
  EXPECT_EQ(daemon.total_stats().bad_frames, 2u);  // bad open + orphan chunk
  EXPECT_EQ(daemon.total_stats().sessions_opened, 1u);
}

TEST(Mcpd, InfeasiblePartitionQueryFailsInsteadOfHanging) {
  // A shared-strategy session with cache_size < num_cores opens fine, but
  // partition advice needs >= 1 cell per core: the daemon must send a
  // kError reply (surfaced as InputError) rather than dropping the query
  // and deadlocking the blocking client.
  Mcpd daemon(McpdConfig{1});
  McpdClient client(daemon);
  client.open(1, SessionParams{4, 2, 1, StrategyKind::kSharedLru});
  const PageId pages[] = {1, 2};
  for (CoreId core = 0; core < 4; ++core) {
    client.send_core_pages(1, static_cast<std::uint32_t>(core), pages);
  }
  client.close(1);
  EXPECT_THROW((void)client.query_partition(1, 7), InputError);
  // The session itself stays healthy: other queries still answer.
  const wire::FaultCountsReply reply = client.query_faults(1, 8);
  EXPECT_TRUE(reply.finished);
  daemon.stop();
  EXPECT_EQ(daemon.total_stats().bad_frames, 0u);
}

TEST(Mcpd, RejectedQueryDoesNotLoseLaterReplies) {
  Mcpd daemon(McpdConfig{1});
  McpdClient client(daemon);
  client.open(1, SessionParams{2, 1, 1, StrategyKind::kSharedLru});
  // Infeasible partition query posted before any data: the error reply is
  // immediate, and the session must still answer the fault-count query
  // that follows.
  client.post_query_partition(1, 70);
  const PageId pages[] = {1, 2, 3};
  client.send_core_pages(1, 0, pages);
  client.send_core_pages(1, 1, pages);
  client.close(1);
  const wire::FaultCountsReply ok = client.query_faults(1, 71);
  EXPECT_TRUE(ok.finished);
  EXPECT_EQ(ok.requests_served, 6u);
  // The stashed out-of-order reply for query 70 is the error frame.
  std::vector<std::byte> storage;
  const wire::FrameView frame = client.wait_reply(storage);
  ASSERT_EQ(frame.type, wire::FrameType::kError);
  const wire::ErrorReply error = wire::decode_error(frame);
  EXPECT_EQ(error.query_id, 70u);
  EXPECT_NE(error.message.find("cache_size >= num_cores"), std::string::npos);
  daemon.stop();
  EXPECT_EQ(daemon.total_stats().bad_frames, 0u);
}

TEST(Mcpd, ClientMayBeDestroyedWithQueriesOutstanding) {
  // post_query_* is fire-and-forget: a client that dies before its reply
  // arrives must not leave the shard delivering into freed memory.  The
  // parked query's mailbox reference goes weak, so the reply is dropped.
  Mcpd daemon(McpdConfig{2});
  const SessionParams params{1, 2, 1, StrategyKind::kSharedLru};
  {
    McpdClient doomed(daemon);
    doomed.open(1, params);
    doomed.post_query_faults(1, 5);  // parks: no data buffered yet
  }
  McpdClient client(daemon);
  const PageId pages[] = {1, 2, 1};
  client.send_core_pages(1, 0, pages);
  client.close(1);
  // Replies go to the querying frame's mailbox, so a second client can
  // still query the session the first one opened.
  const wire::FaultCountsReply reply = client.query_faults(1, 6);
  EXPECT_TRUE(reply.finished);
  EXPECT_EQ(reply.requests_served, 3u);
  daemon.stop();
  EXPECT_EQ(daemon.total_stats().bad_frames, 0u);
}

TEST(Mcpd, StatsAccountForAllPairs) {
  Rng rng(0x123);
  const std::vector<Tenant> tenants = make_tenants(4, rng);
  std::uint64_t expected_pairs = 0;

  Mcpd daemon(McpdConfig{4});
  McpdClient client(daemon);
  for (const Tenant& tenant : tenants) {
    client.open(tenant.session, tenant.params);
    for (CoreId core = 0; core < tenant.trace.num_cores(); ++core) {
      client.send_core_pages(tenant.session, core,
                             tenant.trace.sequence(core).pages());
      expected_pairs += tenant.trace.sequence(core).size();
    }
    client.close(tenant.session);
  }
  for (const Tenant& tenant : tenants) {
    (void)client.query_faults(tenant.session, tenant.session);
  }
  daemon.stop();
  const ShardStats total = daemon.total_stats();
  EXPECT_EQ(total.pairs, expected_pairs);
  EXPECT_EQ(total.sessions_opened, tenants.size());
  EXPECT_EQ(total.sessions_finished, tenants.size());
  EXPECT_EQ(total.bad_frames, 0u);
  EXPECT_GT(total.epochs, 0u);
  EXPECT_EQ(total.epoch_latency.count(), total.epochs);
}

}  // namespace
}  // namespace mcp::service
