// MpscQueue: multi-producer stress (no loss, no duplication, per-producer
// FIFO preserved) and single-threaded edge behaviour.  Runs under the
// CONCURRENCY ctest label, so the tsan-full CI job revalidates the
// queue's memory ordering with ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "service/mpsc_queue.hpp"

namespace mcp::service {
namespace {

struct TestMsg : MpscHook {
  std::size_t producer = 0;
  std::size_t sequence = 0;
};

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<TestMsg> queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pop(), nullptr);

  std::vector<std::unique_ptr<TestMsg>> owned;
  for (std::size_t i = 0; i < 100; ++i) {
    owned.push_back(std::make_unique<TestMsg>());
    owned.back()->sequence = i;
    queue.push(owned.back().get());
  }
  EXPECT_FALSE(queue.empty());
  for (std::size_t i = 0; i < 100; ++i) {
    TestMsg* msg = queue.pop();
    ASSERT_NE(msg, nullptr);
    EXPECT_EQ(msg->sequence, i);
  }
  EXPECT_EQ(queue.pop(), nullptr);
  EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, InterleavedPushPop) {
  MpscQueue<TestMsg> queue;
  std::vector<std::unique_ptr<TestMsg>> owned;
  std::size_t next_expected = 0;
  for (std::size_t round = 0; round < 50; ++round) {
    for (std::size_t i = 0; i < 3; ++i) {
      owned.push_back(std::make_unique<TestMsg>());
      owned.back()->sequence = owned.size() - 1;
      queue.push(owned.back().get());
    }
    for (std::size_t i = 0; i < 2; ++i) {
      TestMsg* msg = queue.pop();
      ASSERT_NE(msg, nullptr);
      EXPECT_EQ(msg->sequence, next_expected++);
    }
  }
  while (TestMsg* msg = queue.pop()) {
    EXPECT_EQ(msg->sequence, next_expected++);
  }
  EXPECT_EQ(next_expected, owned.size());
}

TEST(MpscQueue, MultiProducerStress) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 20000;

  MpscQueue<TestMsg> queue;
  // Pre-allocate every message so producer threads only push (the queue
  // itself is allocation-free; keep the test that way too).  TestMsg is
  // pinned (atomic hook, not movable), so each message gets its own slot.
  std::vector<std::vector<std::unique_ptr<TestMsg>>> messages(kProducers);
  for (std::size_t producer = 0; producer < kProducers; ++producer) {
    messages[producer].reserve(kPerProducer);
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      auto msg = std::make_unique<TestMsg>();
      msg->producer = producer;
      msg->sequence = i;
      messages[producer].push_back(std::move(msg));
    }
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t producer = 0; producer < kProducers; ++producer) {
    producers.emplace_back([&, producer] {
      go.wait(false, std::memory_order_acquire);
      for (const auto& msg : messages[producer]) queue.push(msg.get());
    });
  }

  go.store(true, std::memory_order_release);
  go.notify_all();

  // Consume concurrently with production; verify per-producer FIFO.
  std::vector<std::size_t> next_seq(kProducers, 0);
  std::size_t received = 0;
  while (received < kProducers * kPerProducer) {
    TestMsg* msg = queue.pop();
    if (msg == nullptr) continue;  // empty or push mid-flight: retry
    ASSERT_LT(msg->producer, kProducers);
    EXPECT_EQ(msg->sequence, next_seq[msg->producer])
        << "producer " << msg->producer;
    ++next_seq[msg->producer];
    ++received;
  }
  for (std::thread& thread : producers) thread.join();

  EXPECT_EQ(queue.pop(), nullptr);
  EXPECT_TRUE(queue.empty());
  for (std::size_t producer = 0; producer < kProducers; ++producer) {
    EXPECT_EQ(next_seq[producer], kPerProducer);
  }
}

}  // namespace
}  // namespace mcp::service
