// mcpwire v1: bit-exact round trips (binary <-> RequestSet, matching the
// text readers), reply payload round trips, malformed-input rejection with
// byte offsets, and a seeded mutation fuzz pass (every corruption must
// surface as InputError, never UB or a wrong silent decode).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "core/rng.hpp"
#include "core/trace_io.hpp"
#include "service/wire_format.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using wire::DecodedTrace;
using wire::FrameType;
using wire::FrameView;
using wire::SessionParams;
using wire::StrategyKind;
using wire::WirePair;
using wire::WireReader;
using wire::WireWriter;

SessionParams params_for(const RequestSet& requests, std::uint32_t cache) {
  return SessionParams{static_cast<std::uint32_t>(requests.num_cores()), cache,
                       3, StrategyKind::kSharedLru};
}

TEST(WireFormat, TraceRoundTripIsBitExact) {
  Rng rng(0x31415);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSet original =
        testing::random_disjoint_workload(
            rng, 1 + static_cast<std::size_t>(trial) % 4, 32, 200);
    for (const std::size_t chunk : {1u, 7u, 256u, 100000u}) {
      const std::vector<std::byte> doc = wire::encode_trace(
          original, 42, params_for(original, 16), chunk);
      const DecodedTrace back = wire::decode_trace(doc);
      EXPECT_EQ(back.session, 42u);
      EXPECT_EQ(back.params, params_for(original, 16));
      EXPECT_TRUE(back.closed);
      EXPECT_EQ(back.requests, original) << "chunk=" << chunk;
    }
  }
}

TEST(WireFormat, EncodeIsDeterministic) {
  Rng rng(0x99);
  const RequestSet requests = testing::random_shared_workload(rng, 3, 20, 64);
  const auto a = wire::encode_trace(requests, 7, params_for(requests, 8), 16);
  const auto b = wire::encode_trace(requests, 7, params_for(requests, 8), 16);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(WireFormat, MatchesTextReaderThroughConversion) {
  // text trace -> read_trace -> encode -> decode == the same RequestSet the
  // text reader produced: the converter bridges the two formats bit-exactly.
  std::stringstream text("mcptrace 1\ncores 2\nseq 0 3 5 6 5\nseq 1 2 9 9\n");
  const RequestSet from_text = read_trace(text);
  const DecodedTrace back = wire::decode_trace(
      wire::encode_trace(from_text, 1, params_for(from_text, 4)));
  EXPECT_EQ(back.requests, from_text);
}

TEST(WireFormat, FileRoundTrip) {
  Rng rng(0x77);
  const RequestSet requests = testing::random_disjoint_workload(rng, 2, 8, 50);
  const std::string path = ::testing::TempDir() + "/mcp_wire_test.bin";
  wire::save_wire_trace(path, requests, 9, params_for(requests, 6));
  const DecodedTrace back = wire::load_wire_trace(path);
  EXPECT_EQ(back.session, 9u);
  EXPECT_EQ(back.requests, requests);
}

TEST(WireFormat, ReplyRoundTrips) {
  WireWriter writer;
  wire::FaultCountsReply counts;
  counts.query_id = 11;
  counts.finished = true;
  counts.requests_served = 1234;
  counts.per_core_faults = {5, 0, 19};
  counts.completion_times = {100, 7, 360};
  counts.end_time = 361;
  writer.fault_counts(3, counts);

  wire::FaultCurveReply curve;
  curve.query_id = 12;
  curve.max_k = 2;
  curve.curves = {{9, 4, 2}, {7, 7, 1}};
  writer.fault_curve(3, curve);

  wire::PartitionAdviceReply advice;
  advice.query_id = 13;
  advice.predicted_faults = 88;
  advice.cells_per_core = {5, 2, 1};
  writer.partition_advice(3, advice);

  WireReader reader(writer.bytes());
  FrameView frame;
  ASSERT_TRUE(reader.next(frame));
  ASSERT_EQ(frame.type, FrameType::kFaultCounts);
  EXPECT_EQ(frame.session, 3u);
  const wire::FaultCountsReply counts_back = wire::decode_fault_counts(frame);
  EXPECT_EQ(counts_back.query_id, counts.query_id);
  EXPECT_EQ(counts_back.finished, counts.finished);
  EXPECT_EQ(counts_back.requests_served, counts.requests_served);
  EXPECT_EQ(counts_back.per_core_faults, counts.per_core_faults);
  EXPECT_EQ(counts_back.completion_times, counts.completion_times);
  EXPECT_EQ(counts_back.end_time, counts.end_time);

  ASSERT_TRUE(reader.next(frame));
  ASSERT_EQ(frame.type, FrameType::kFaultCurve);
  const wire::FaultCurveReply curve_back = wire::decode_fault_curve(frame);
  EXPECT_EQ(curve_back.query_id, curve.query_id);
  EXPECT_EQ(curve_back.max_k, curve.max_k);
  EXPECT_EQ(curve_back.curves, curve.curves);

  ASSERT_TRUE(reader.next(frame));
  ASSERT_EQ(frame.type, FrameType::kPartitionAdvice);
  const wire::PartitionAdviceReply advice_back =
      wire::decode_partition_advice(frame);
  EXPECT_EQ(advice_back.query_id, advice.query_id);
  EXPECT_EQ(advice_back.predicted_faults, advice.predicted_faults);
  EXPECT_EQ(advice_back.cells_per_core, advice.cells_per_core);

  EXPECT_FALSE(reader.next(frame));
}

TEST(WireFormat, QueryFramesRoundTrip) {
  WireWriter writer;
  writer.query_faults(1, 100);
  writer.query_fault_curve(1, 101, 32);
  writer.query_partition(1, 102);
  WireReader reader(writer.bytes());
  FrameView frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kQueryFaults);
  EXPECT_EQ(wire::decode_query(frame).query_id, 100u);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kQueryFaultCurve);
  EXPECT_EQ(wire::decode_query(frame).query_id, 101u);
  EXPECT_EQ(wire::decode_query(frame).max_k, 32u);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kQueryPartition);
  EXPECT_EQ(wire::decode_query(frame).query_id, 102u);
}

TEST(WireFormat, ErrorReplyRoundTrips) {
  wire::ErrorReply error;
  error.query_id = 42;
  error.message = "mcpd: partition advice needs cache_size >= num_cores";
  WireWriter writer;
  writer.error_reply(9, error);
  WireReader reader(writer.bytes());
  FrameView frame;
  ASSERT_TRUE(reader.next(frame));
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.session, 9u);
  const wire::ErrorReply back = wire::decode_error(frame);
  EXPECT_EQ(back.query_id, error.query_id);
  EXPECT_EQ(back.message, error.message);
  EXPECT_FALSE(reader.next(frame));

  // The empty message still frames and round-trips (payload is header-only).
  WireWriter empty_writer;
  empty_writer.error_reply(1, wire::ErrorReply{7, ""});
  WireReader empty_reader(empty_writer.bytes());
  ASSERT_TRUE(empty_reader.next(frame));
  const wire::ErrorReply empty_back = wire::decode_error(frame);
  EXPECT_EQ(empty_back.query_id, 7u);
  EXPECT_TRUE(empty_back.message.empty());
}

std::string wire_error_message(const std::vector<std::byte>& doc) {
  try {
    (void)wire::decode_trace(doc);
  } catch (const InputError& err) {
    return err.what();
  }
  return {};
}

TEST(WireFormat, BadMagicNamesByteZero) {
  std::vector<std::byte> doc(8, std::byte{0x41});
  const std::string message = wire_error_message(doc);
  EXPECT_NE(message.find("byte 0"), std::string::npos) << message;
  EXPECT_NE(message.find("magic"), std::string::npos) << message;
}

TEST(WireFormat, TruncatedHeaderNamesItsOffset) {
  WireWriter writer;
  writer.session_close(1);
  std::vector<std::byte> doc(writer.bytes().begin(), writer.bytes().end());
  doc.resize(doc.size() - 4);  // cut into the frame header
  const std::string message = wire_error_message(doc);
  EXPECT_NE(message.find("byte 8"), std::string::npos) << message;
  EXPECT_NE(message.find("truncated"), std::string::npos) << message;
}

TEST(WireFormat, PayloadOverrunRejected) {
  WireWriter writer;
  writer.query_faults(1, 5);
  std::vector<std::byte> doc(writer.bytes().begin(), writer.bytes().end());
  // Inflate the declared payload length beyond the buffer.
  wire::store_u32(doc.data() + wire::kMagicSize + 4, 1 << 20);
  const std::string message = wire_error_message(doc);
  EXPECT_NE(message.find("overruns"), std::string::npos) << message;
}

TEST(WireFormat, MisalignedPayloadRejected) {
  WireWriter writer;
  writer.query_faults(1, 5);
  std::vector<std::byte> doc(writer.bytes().begin(), writer.bytes().end());
  wire::store_u32(doc.data() + wire::kMagicSize + 4, 12);  // not % 8
  const std::string message = wire_error_message(doc);
  EXPECT_NE(message.find("multiple of 8"), std::string::npos) << message;
}

TEST(WireFormat, UnknownFrameTypeRejected) {
  WireWriter writer;
  writer.session_close(1);
  std::vector<std::byte> doc(writer.bytes().begin(), writer.bytes().end());
  wire::store_u32(doc.data() + wire::kMagicSize, 999);
  const std::string message = wire_error_message(doc);
  EXPECT_NE(message.find("unknown frame type 999"), std::string::npos)
      << message;
}

TEST(WireFormat, ProtocolViolationsRejected) {
  Rng rng(0x5);
  const RequestSet requests = testing::random_disjoint_workload(rng, 2, 4, 10);
  const SessionParams params = params_for(requests, 4);
  {  // chunk before open
    WireWriter writer;
    const WirePair pair{0, 1};
    writer.request_chunk(8, std::span<const WirePair>(&pair, 1));
    EXPECT_THROW((void)wire::decode_trace(writer.bytes()), InputError);
  }
  {  // two sessions in one document
    WireWriter writer;
    writer.session_open(1, params);
    writer.session_open(2, params);
    EXPECT_THROW((void)wire::decode_trace(writer.bytes()), InputError);
  }
  {  // frames after close
    WireWriter writer;
    writer.session_open(1, params);
    writer.session_close(1);
    writer.session_close(1);
    EXPECT_THROW((void)wire::decode_trace(writer.bytes()), InputError);
  }
  {  // pair core out of range
    WireWriter writer;
    writer.session_open(1, params);
    const WirePair pair{7, 1};
    writer.request_chunk(1, std::span<const WirePair>(&pair, 1));
    EXPECT_THROW((void)wire::decode_trace(writer.bytes()), InputError);
  }
}

TEST(WireFormat, RunFramesDecodeLikeChunks) {
  // A document built from compact kRequestRun frames decodes to the same
  // RequestSet as its kRequestChunk equivalent.  Odd run lengths exercise
  // the trailing alignment pad; the zero-length run is legal and empty.
  Rng rng(0x777);
  const RequestSet original =
      testing::random_disjoint_workload(rng, 3, 32, 201);
  const SessionParams params = params_for(original, 16);
  WireWriter writer;
  writer.session_open(9, params);
  for (CoreId core = 0; core < original.num_cores(); ++core) {
    const std::span<const PageId> pages = original.sequence(core).pages();
    // Uneven split: a 1-page run, a 7-page run, then the remainder.
    std::size_t at = 0;
    for (const std::size_t want : {std::size_t{1}, std::size_t{7}}) {
      const std::size_t n = std::min(want, pages.size() - at);
      writer.request_run(9, static_cast<std::uint32_t>(core),
                         pages.subspan(at, n));
      at += n;
    }
    writer.request_run(9, static_cast<std::uint32_t>(core),
                       pages.subspan(at));
    writer.request_run(9, static_cast<std::uint32_t>(core),
                       pages.subspan(pages.size()));  // empty run
  }
  writer.session_close(9);
  const DecodedTrace back = wire::decode_trace(writer.bytes());
  EXPECT_EQ(back.session, 9u);
  EXPECT_TRUE(back.closed);
  EXPECT_EQ(back.requests, original);
}

TEST(WireFormat, RunFrameViolationsRejected) {
  Rng rng(0x778);
  const RequestSet requests = testing::random_disjoint_workload(rng, 2, 4, 10);
  const SessionParams params = params_for(requests, 4);
  const PageId page = 1;
  {  // run before open
    WireWriter writer;
    writer.request_run(8, 0, std::span<const PageId>(&page, 1));
    EXPECT_THROW((void)wire::decode_trace(writer.bytes()), InputError);
  }
  {  // run core out of range
    WireWriter writer;
    writer.session_open(1, params);
    writer.request_run(1, 7, std::span<const PageId>(&page, 1));
    EXPECT_THROW((void)wire::decode_trace(writer.bytes()), InputError);
  }
  {  // declared count disagrees with the payload length
    WireWriter writer;
    writer.session_open(1, params);
    writer.request_run(1, 0, std::span<const PageId>(&page, 1));
    std::vector<std::byte> doc(writer.bytes().begin(), writer.bytes().end());
    // The run frame follows the 32-byte open frame; its count field sits 4
    // bytes into the payload (after the core word).
    const std::size_t run_payload =
        wire::kMagicSize + wire::kFrameHeaderSize + 16 + wire::kFrameHeaderSize;
    wire::store_u32(doc.data() + run_payload + 4, 3);
    const std::string message = wire_error_message(doc);
    EXPECT_NE(message.find("request run declares"), std::string::npos)
        << message;
  }
}

TEST(WireFormat, MutationFuzzNeverCrashes) {
  // Seeded corruption sweep: flip bytes / truncate a valid document and
  // require every outcome to be either a clean decode or InputError —
  // nothing else may escape (UB would surface under ASan/UBSan CI).
  Rng rng(0xF022);
  const RequestSet requests = testing::random_disjoint_workload(rng, 3, 8, 40);
  const std::vector<std::byte> clean =
      wire::encode_trace(requests, 6, params_for(requests, 8), 16);

  int decoded = 0;
  int rejected = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<std::byte> doc = clean;
    if (trial % 4 == 0) {
      doc.resize(rng.below(doc.size() + 1));  // truncation
    } else {
      const std::size_t flips = 1 + rng.below(4);
      for (std::size_t f = 0; f < flips; ++f) {
        doc[rng.below(doc.size())] ^= static_cast<std::byte>(1 + rng.below(255));
      }
    }
    try {
      const DecodedTrace back = wire::decode_trace(doc);
      (void)back;
      ++decoded;
    } catch (const InputError&) {
      ++rejected;
    }
  }
  // The exact split is corruption-dependent; both paths must be exercised.
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 500);
}

TEST(WireFormat, ReaderOffsetTracksFrames) {
  WireWriter writer;
  writer.session_close(4);   // 16-byte frame
  writer.query_faults(4, 1); // 32-byte frame
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.offset(), wire::kMagicSize);
  FrameView frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(reader.offset(), wire::kMagicSize + 16);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(reader.offset(), wire::kMagicSize + 16 + 32);
  EXPECT_FALSE(reader.next(frame));
}

}  // namespace
}  // namespace mcp
