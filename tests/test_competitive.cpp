// Tests for the empirical competitive-ratio harness
// (offline/competitive.hpp).
#include "offline/competitive.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

OfflineInstance tiny_instance(std::size_t trial, std::size_t cores = 1) {
  Rng rng(900 + trial);
  OfflineInstance inst;
  for (std::size_t j = 0; j < cores; ++j) {
    RequestSequence seq;
    const PageId base = static_cast<PageId>(j * 4);
    for (int i = 0; i < 6; ++i) {
      seq.push_back(base + static_cast<PageId>(rng.below(3)));
    }
    inst.requests.add_sequence(std::move(seq));
  }
  inst.cache_size = 2;
  inst.tau = 1;
  return inst;
}

TEST(Competitive, SingleCoreFitfIsAlwaysOptimal) {
  // p=1: shared FITF == Belady == the optimum; every ratio must be 1.
  const CompetitiveReport report = measure_competitive_ratio(
      [] { return SharedStrategy::fitf(); },
      [](std::size_t trial) { return tiny_instance(trial, 1); }, 15);
  EXPECT_EQ(report.samples, 15u);
  EXPECT_DOUBLE_EQ(report.max_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_ratio, 1.0);
  EXPECT_EQ(report.optimal_hits, 15u);
}

TEST(Competitive, RatiosAreAtLeastOne) {
  for (const char* name : {"lru", "fifo", "mru"}) {
    const CompetitiveReport report = measure_competitive_ratio(
        [name] {
          return std::make_unique<SharedStrategy>(make_policy_factory(name));
        },
        [](std::size_t trial) { return tiny_instance(trial, 2); }, 12);
    EXPECT_GE(report.max_ratio, 1.0) << name;
    EXPECT_GE(report.mean_ratio, 1.0) << name;
    EXPECT_GE(report.max_ratio, report.mean_ratio) << name;
    EXPECT_LE(report.optimal_hits, report.samples) << name;
  }
}

TEST(Competitive, WorstTrialIsReproducible) {
  const auto gen = [](std::size_t trial) { return tiny_instance(trial, 2); };
  const auto strat = [] {
    return std::make_unique<SharedStrategy>(make_policy_factory("mru"));
  };
  const CompetitiveReport a = measure_competitive_ratio(strat, gen, 12);
  const CompetitiveReport b = measure_competitive_ratio(strat, gen, 12);
  EXPECT_EQ(a.worst_trial, b.worst_trial);
  EXPECT_DOUBLE_EQ(a.max_ratio, b.max_ratio);
}

TEST(Competitive, RejectsZeroTrials) {
  EXPECT_THROW(
      (void)measure_competitive_ratio(
          [] { return SharedStrategy::fitf(); },
          [](std::size_t trial) { return tiny_instance(trial); }, 0),
      ModelError);
}

TEST(Competitive, AllEmptyInstancesThrow) {
  EXPECT_THROW((void)measure_competitive_ratio(
                   [] { return SharedStrategy::fitf(); },
                   [](std::size_t) {
                     OfflineInstance inst;
                     inst.requests.add_sequence(RequestSequence{});
                     inst.cache_size = 2;
                     return inst;
                   },
                   3),
               ModelError);
}

}  // namespace
}  // namespace mcp
