// Tests for the offline optimal static partition search
// (strategies/partition_search.hpp): the curve-based DP against the
// exhaustive simulate-everything reference.
#include "strategies/partition_search.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

TEST(PartitionSearch, CurveDpMatchesBruteForceOverCurves) {
  // Hand-built curves with a known optimum.
  FaultCurves curves = {
      {100, 50, 10, 5, 5, 5},   // core 0: wants 2-3 cells
      {100, 80, 70, 20, 10, 5}, // core 1: wants many cells
  };
  const auto result = optimal_partition_from_curves(curves, 5);
  // Enumerate by hand: {1,4}=50+10=60, {2,3}=10+20=30, {3,2}=5+70=75,
  // {4,1}=5+80=85.  Best is {2,3}.
  const Partition expected = {2, 3};
  EXPECT_EQ(result.partition, expected);
  EXPECT_EQ(result.faults, 30u);
}

TEST(PartitionSearch, CurveDpAgreesWithEnumeration) {
  Rng rng(808);
  for (int trial = 0; trial < 6; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 5, 80);
    const std::size_t K = 7;
    const FaultCurves curves = belady_fault_curves(rs, K);
    const auto dp = optimal_partition_from_curves(curves, K);
    // Reference: scan Pi(K,p) directly.
    Count best = ~Count{0};
    for (const Partition& part : enumerate_partitions(K, 3)) {
      Count total = 0;
      for (CoreId j = 0; j < 3; ++j) total += curves[j][part[j]];
      best = std::min(best, total);
    }
    EXPECT_EQ(dp.faults, best) << "trial=" << trial;
    // The DP's partition must realize its claimed value.
    Count realized = 0;
    for (CoreId j = 0; j < 3; ++j) realized += curves[j][dp.partition[j]];
    EXPECT_EQ(realized, dp.faults);
  }
}

TEST(PartitionSearch, OptimalPartitionOptMatchesSimulatedFitf) {
  // The decomposition claim end-to-end: the curve-based sP^OPT_OPT value
  // equals the full multicore simulation of sP^B_FITF at the chosen B.
  Rng rng(909);
  for (int trial = 0; trial < 5; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 5, 100);
    const std::size_t K = 6;
    const auto result = optimal_partition_opt(rs, K);
    auto strategy = StaticPartitionStrategy::fitf(result.partition);
    const RunStats stats = simulate(sim_config(K, 2), rs, *strategy);
    EXPECT_EQ(stats.total_faults(), result.faults) << "trial=" << trial;
  }
}

TEST(PartitionSearch, SimulationSearchAgreesWithCurvesForLru) {
  Rng rng(333);
  for (int trial = 0; trial < 4; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 4, 60);
    const std::size_t K = 5;
    const PolicyFactory lru = make_policy_factory("lru");
    const auto by_curves = optimal_partition_for_policy(rs, K, lru);
    const auto by_sim =
        optimal_partition_by_simulation(sim_config(K, 1), rs, lru);
    EXPECT_EQ(by_sim.faults, by_curves.faults) << "trial=" << trial;
  }
}

TEST(PartitionSearch, OptimalIsNoWorseThanEvenSplit) {
  Rng rng(111);
  for (int trial = 0; trial < 6; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 3, 6, 90);
    const std::size_t K = 9;
    const auto result = optimal_partition_opt(rs, K);
    Count even_total = 0;
    const Partition even = even_partition(K, 3);
    for (CoreId j = 0; j < 3; ++j) {
      even_total += belady_faults(rs.sequence(j), even[j]);
    }
    EXPECT_LE(result.faults, even_total) << "trial=" << trial;
  }
}

TEST(PartitionSearch, SkewedDemandGetsSkewedPartition) {
  // Core 0 cycles 5 pages, core 1 uses 1: the optimum gives core 0 the bulk.
  RequestSet rs;
  RequestSequence big;
  const std::vector<PageId> cyc = {1, 2, 3, 4, 5};
  big.append_repeated(cyc, 20);
  rs.add_sequence(std::move(big));
  RequestSequence small;
  const std::vector<PageId> solo = {9};
  small.append_repeated(solo, 100);
  rs.add_sequence(std::move(small));

  const auto result = optimal_partition_opt(rs, 6);
  const Partition expected = {5, 1};
  EXPECT_EQ(result.partition, expected);
  EXPECT_EQ(result.faults, 6u);  // compulsory only
}

TEST(PartitionSearch, RejectsNonDisjointForCurveMethods) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  rs.add_sequence(RequestSequence{1});
  EXPECT_THROW((void)optimal_partition_opt(rs, 4), ModelError);
  EXPECT_THROW((void)optimal_partition_for_policy(rs, 4,
                                                  make_policy_factory("lru")),
               ModelError);
}

TEST(PartitionSearch, RejectsTooSmallCache) {
  FaultCurves curves = {{5, 1}, {5, 1}, {5, 1}};
  EXPECT_THROW((void)optimal_partition_from_curves(curves, 1), ModelError);
}

TEST(PartitionSearch, PolicyCurvesDominateBeladyCurves) {
  Rng rng(121);
  const RequestSet rs = random_disjoint_workload(rng, 2, 6, 120);
  const std::size_t K = 6;
  const FaultCurves opt = belady_fault_curves(rs, K);
  for (const char* name : {"lru", "fifo", "mark"}) {
    const FaultCurves online =
        policy_fault_curves(rs, K, make_policy_factory(name));
    for (CoreId j = 0; j < 2; ++j) {
      for (std::size_t k = 0; k <= K; ++k) {
        EXPECT_GE(online[j][k], opt[j][k]) << name << " j=" << j << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace mcp
