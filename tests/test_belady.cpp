// Tests for sequential Belady and the single-core policy runner
// (policies/belady.hpp), including the property that Belady lower-bounds
// every online policy.
#include "policies/belady.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "policies/policy_registry.hpp"

namespace mcp {
namespace {

TEST(Belady, TextbookExample) {
  // 1 2 3 1 2 4 1 2 3 with k=3: faults on 1,2,3 then 4 (evict 3) then 3.
  const RequestSequence seq{1, 2, 3, 1, 2, 4, 1, 2, 3};
  EXPECT_EQ(belady_faults(seq, 3), 5u);
}

TEST(Belady, CacheLargerThanWorkingSet) {
  const RequestSequence seq{1, 2, 3, 1, 2, 3, 1, 2, 3};
  EXPECT_EQ(belady_faults(seq, 3), 3u);   // compulsory only
  EXPECT_EQ(belady_faults(seq, 10), 3u);  // extra space doesn't help
}

TEST(Belady, SingleCell) {
  const RequestSequence seq{1, 2, 1, 2};
  EXPECT_EQ(belady_faults(seq, 1), 4u);
  const RequestSequence repeats{5, 5, 5};
  EXPECT_EQ(belady_faults(repeats, 1), 1u);
}

TEST(Belady, ZeroCellsFaultsEverything) {
  const RequestSequence seq{1, 1, 1};
  EXPECT_EQ(belady_faults(seq, 0), 3u);
}

TEST(Belady, EmptySequence) {
  EXPECT_EQ(belady_faults(RequestSequence{}, 4), 0u);
}

TEST(Belady, CyclicScanSteadyStateRate) {
  // (1..C)^x with cache k: after the C compulsory misses, the optimal
  // steady-state fault rate on a cyclic scan is (C-k)/(C-1) — each fault
  // buys k-1 hits.  C=5, k=4, 45 post-warmup requests: 5 + floor(45/4) = 16.
  RequestSequence seq;
  const std::vector<PageId> cycle = {1, 2, 3, 4, 5};
  seq.append_repeated(cycle, 10);
  EXPECT_EQ(belady_faults(seq, 4), 16u);
  // k=5: everything fits.
  EXPECT_EQ(belady_faults(seq, 5), 5u);
}

TEST(Belady, MonotoneInCacheSize) {
  Rng rng(2024);
  RequestSequence seq;
  for (int i = 0; i < 400; ++i) {
    seq.push_back(static_cast<PageId>(rng.below(12)));
  }
  Count prev = belady_faults(seq, 0);
  for (std::size_t k = 1; k <= 13; ++k) {
    const Count now = belady_faults(seq, k);
    EXPECT_LE(now, prev) << "k=" << k;
    prev = now;
  }
  // At k >= distinct pages, only compulsory misses remain.
  EXPECT_EQ(belady_faults(seq, 12), static_cast<Count>(seq.distinct_pages()));
}

TEST(SingleCorePolicyFaults, LruOnTextbookExample) {
  const RequestSequence seq{1, 2, 3, 1, 2, 4, 1, 2, 3};
  // LRU with k=3: 1,2,3 faults; 1,2 hits; 4 evicts 3; 1,2 hits; 3 evicts 4.
  EXPECT_EQ(single_core_policy_faults(seq, 3, make_policy_factory("lru")), 5u);
}

TEST(SingleCorePolicyFaults, LruThrashesOnCyclicScan) {
  RequestSequence seq;
  const std::vector<PageId> cycle = {1, 2, 3, 4};
  seq.append_repeated(cycle, 5);
  // Sequence of k+1 distinct pages cycled with cache k: LRU faults always.
  EXPECT_EQ(single_core_policy_faults(seq, 3, make_policy_factory("lru")), 20u);
  // MRU handles the scan far better.
  EXPECT_LT(single_core_policy_faults(seq, 3, make_policy_factory("mru")), 20u);
}

TEST(SingleCorePolicyFaults, ZeroCells) {
  const RequestSequence seq{1, 1};
  EXPECT_EQ(single_core_policy_faults(seq, 0, make_policy_factory("lru")), 2u);
}

// Property: Belady <= every online policy, and every policy's fault count
// lies between compulsory misses and sequence length.
class BeladyDominance : public ::testing::TestWithParam<std::string> {};

TEST_P(BeladyDominance, BeladyLowerBoundsPolicy) {
  const PolicyFactory factory = make_policy_factory(GetParam(), /*seed=*/7);
  Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    RequestSequence seq;
    const std::size_t universe = 4 + rng.below(12);
    const std::size_t length = 50 + rng.below(200);
    for (std::size_t i = 0; i < length; ++i) {
      seq.push_back(static_cast<PageId>(rng.below(universe)));
    }
    for (std::size_t k = 1; k <= universe + 1; k += 3) {
      const Count opt = belady_faults(seq, k);
      const Count online = single_core_policy_faults(seq, k, factory);
      EXPECT_LE(opt, online) << GetParam() << " trial=" << trial << " k=" << k;
      EXPECT_GE(opt, static_cast<Count>(
                         k >= universe ? seq.distinct_pages() : 1));
      EXPECT_LE(online, seq.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BeladyDominance,
                         ::testing::Values("lru", "lru-scan", "slru", "fifo",
                                           "clock", "lfu", "mru", "random",
                                           "mark", "mark-random"));

// Property: LRU never faults more than k times the optimum plus compulsory
// slack (the classic k-competitiveness, checked loosely on random traces).
TEST(SingleCorePolicyFaults, LruIsKCompetitiveOnRandomTraces) {
  Rng rng(999);
  for (int trial = 0; trial < 10; ++trial) {
    RequestSequence seq;
    for (int i = 0; i < 300; ++i) {
      seq.push_back(static_cast<PageId>(rng.below(10)));
    }
    for (std::size_t k = 2; k <= 8; k += 2) {
      const Count opt = belady_faults(seq, k);
      const Count lru = single_core_policy_faults(seq, k, make_policy_factory("lru"));
      EXPECT_LE(lru, static_cast<Count>(k) * opt + static_cast<Count>(k));
    }
  }
}

}  // namespace
}  // namespace mcp
