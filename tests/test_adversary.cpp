// Tests for the adversarial constructions (adversary/adversary.hpp): each
// lower-bound family must actually produce the bad behaviour its lemma
// proves, at small scale.
#include "adversary/adversary.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::sim_config;

// ---------------------------------------------------------------------------
// Lemma 1 (lower bound): the adaptive adversary makes any online policy on a
// fixed static partition fault on ~every request of the big part, while the
// per-part optimum faults ~1/k_max as often.
// ---------------------------------------------------------------------------

struct Lemma1Outcome {
  Count online_faults = 0;
  Count opt_faults = 0;
  RequestSet trace;
};

Lemma1Outcome run_lemma1(const Partition& partition, const std::string& policy,
                         std::size_t requests_per_core) {
  const std::size_t p = partition.size();
  const CoreId victim = static_cast<CoreId>(
      std::max_element(partition.begin(), partition.end()) - partition.begin());
  Lemma1AdversaryStream adversary(p, victim, partition[victim] + 1,
                                  requests_per_core);
  RecordingStream recorder(adversary);
  StaticPartitionStrategy strategy(partition, make_policy_factory(policy));
  std::size_t cache = 0;
  for (std::size_t k : partition) cache += k;
  Simulator sim(sim_config(cache, 1));
  const RunStats stats = sim.run_stream(recorder, strategy, nullptr);

  Lemma1Outcome outcome;
  outcome.online_faults = stats.total_faults();
  outcome.trace = recorder.recorded();
  // sP^B_OPT on the recorded trace = per-part Belady.
  for (CoreId j = 0; j < p; ++j) {
    outcome.opt_faults += belady_faults(outcome.trace.sequence(j), partition[j]);
  }
  return outcome;
}

TEST(Lemma1Adversary, LruFaultsOnEveryAdversarialRequest) {
  const Partition partition = {4, 2};
  const Lemma1Outcome outcome = run_lemma1(partition, "lru", 200);
  // Victim core: 200 faults; background core: 1 compulsory fault.
  EXPECT_EQ(outcome.online_faults, 201u);
  // Belady with 4 cells over 5 adversarial pages faults at most every
  // (cache-size)-th request in steady state plus compulsory.
  EXPECT_LE(outcome.opt_faults, 200u / 4 + 6);
}

TEST(Lemma1Adversary, RatioApproachesMaxPartSize) {
  for (const char* policy : {"lru", "fifo", "clock", "mark"}) {
    const Partition partition = {5, 3};
    const Lemma1Outcome outcome = run_lemma1(partition, policy, 400);
    const double ratio = static_cast<double>(outcome.online_faults) /
                         static_cast<double>(outcome.opt_faults);
    EXPECT_GE(ratio, 2.5) << policy;  // Theta(max k_j) with k_max = 5
    // Lemma 1 upper bound: the ratio can never exceed max_j k_j for
    // marking/conservative policies.
    if (std::string(policy) == "lru" || std::string(policy) == "fifo") {
      EXPECT_LE(ratio, 5.0 + 0.5) << policy;
    }
  }
}

TEST(Lemma1Adversary, RecordedTraceIsDisjointAndBounded) {
  const Partition partition = {3, 2, 2};
  const Lemma1Outcome outcome = run_lemma1(partition, "lru", 100);
  EXPECT_TRUE(outcome.trace.is_disjoint());
  EXPECT_EQ(outcome.trace.total_requests(), 300u);
}

// ---------------------------------------------------------------------------
// Lemma 2: any fixed online static partition loses Omega(n) against the
// offline-optimal partition.
// ---------------------------------------------------------------------------

TEST(Lemma2Family, OnlinePartitionLosesLinearly) {
  const Partition online = {2, 2};  // K = 4
  double prev_ratio = 0.0;
  for (std::size_t n : {400u, 1600u}) {
    const RequestSet rs = lemma2_request_set(online, n);
    StaticPartitionStrategy fixed(online, make_policy_factory("lru"));
    const Count fixed_faults =
        simulate(sim_config(4, 1), rs, fixed).total_faults();
    // Offline-optimal partition for LRU on this input.
    Count best = ~Count{0};
    for (const Partition& candidate : enumerate_partitions(4, 2)) {
      Count total = 0;
      for (CoreId j = 0; j < 2; ++j) {
        total += single_core_policy_faults(rs.sequence(j), candidate[j],
                                           make_policy_factory("lru"));
      }
      best = std::min(best, total);
    }
    const double ratio =
        static_cast<double>(fixed_faults) / static_cast<double>(best);
    EXPECT_GT(ratio, prev_ratio) << "n=" << n;  // grows with n
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 50.0);  // clearly super-constant by n=1600
}

// ---------------------------------------------------------------------------
// Theorem 1.1: shared LRU beats every static partition by Omega(n) on the
// distinct-period family.
// ---------------------------------------------------------------------------

TEST(Theorem1Family, SharedLruFaultsOnlyCompulsory) {
  const RequestSet rs = theorem1_distinct_period_set(2, 4, /*tau=*/1, /*x=*/10);
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(4, 1), rs, lru);
  // The paper's count: K + p compulsory faults (universe = p(K/p + 1)).
  EXPECT_EQ(stats.total_faults(), 6u);
}

TEST(Theorem1Family, BestStaticPartitionLosesLinearlyInX) {
  double prev_ratio = 0.0;
  for (std::size_t x : {8u, 32u}) {
    const RequestSet rs = theorem1_distinct_period_set(2, 4, /*tau=*/1, x);
    SharedStrategy lru(make_policy_factory("lru"));
    const Count shared = simulate(sim_config(4, 1), rs, lru).total_faults();
    // sP^OPT_OPT: optimal partition with per-part Belady.
    Count part_opt = ~Count{0};
    for (const Partition& candidate : enumerate_partitions(4, 2)) {
      Count total = 0;
      for (CoreId j = 0; j < 2; ++j) {
        total += belady_faults(rs.sequence(j), candidate[j]);
      }
      part_opt = std::min(part_opt, total);
    }
    const double ratio =
        static_cast<double>(part_opt) / static_cast<double>(shared);
    EXPECT_GT(ratio, prev_ratio) << "x=" << x;
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 2.0);
}

// ---------------------------------------------------------------------------
// Theorem 1.3: a rarely-changing dynamic partition loses unboundedly against
// shared LRU on the staged adversary.
// ---------------------------------------------------------------------------

TEST(StagedAdversaryTest, StaticEvenPartitionLosesToSharedLru) {
  const std::size_t p = 2;
  const std::size_t K = 4;
  StagedAdversaryStream adversary(p, /*pages_per_core=*/K / p + 1,
                                  /*turn_length=*/50, /*laps=*/2);
  RecordingStream recorder(adversary);
  StaticPartitionStrategy even(even_partition(K, p), make_policy_factory("lru"));
  Simulator sim(sim_config(K, 1));
  const Count partition_faults =
      sim.run_stream(recorder, even, nullptr).total_faults();

  SharedStrategy lru(make_policy_factory("lru"));
  const Count shared_faults =
      simulate(sim_config(K, 1), recorder.recorded(), lru).total_faults();
  EXPECT_GT(partition_faults, 3 * shared_faults);
}

// ---------------------------------------------------------------------------
// Lemma 4: S_LRU / S_OFF = Omega(p(tau+1)), and FITF is not optimal for
// tau > K/p.
// ---------------------------------------------------------------------------

TEST(Lemma4Family, SharedLruThrashes) {
  const RequestSet rs = lemma4_request_set(2, 4, 300);
  SharedStrategy lru(make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(4, 3), rs, lru);
  // Universe = p(K/p + 1) = K + p > K and perfectly cyclic: LRU faults on
  // every single request.
  EXPECT_EQ(stats.total_faults(), stats.total_requests());
}

TEST(Lemma4Family, SacrificeStrategyServesOthersFromCache) {
  const std::size_t p = 2;
  const std::size_t K = 4;
  const Time tau = 3;
  const RequestSet rs = lemma4_request_set(p, K, 300);
  SacrificeStrategy off(/*sacrifice=*/1);
  const RunStats stats = simulate(sim_config(K, tau), rs, off);
  // Core 0 keeps its K/p + 1 pages cached after warmup.
  EXPECT_LE(stats.core(0).faults, 8u);
  // The sacrifice core faults roughly every tau+1 steps while core 0 runs.
  EXPECT_LT(stats.total_faults(), 150u);
}

TEST(Lemma4Family, RatioGrowsWithPandTau) {
  const auto ratio_for = [](std::size_t p, std::size_t K, Time tau) {
    const RequestSet rs = lemma4_request_set(p, K, 240);
    SharedStrategy lru(make_policy_factory("lru"));
    const Count shared = simulate(sim_config(K, tau), rs, lru).total_faults();
    SacrificeStrategy off(static_cast<CoreId>(p - 1));
    const Count sacrifice = simulate(sim_config(K, tau), rs, off).total_faults();
    return static_cast<double>(shared) / static_cast<double>(sacrifice);
  };
  const double small = ratio_for(2, 4, 1);
  const double bigger_tau = ratio_for(2, 4, 7);
  EXPECT_GT(bigger_tau, small);
  EXPECT_GE(bigger_tau, 4.0);  // Omega(p(tau+1)) with p=2, tau=7
}

TEST(Lemma4Family, FitfIsNotOptimalForLargeTau) {
  // tau > K/p: shared FITF loses to the sacrifice strategy (the paper's
  // counterexample to furthest-in-the-future optimality in multicore).
  const std::size_t p = 2;
  const std::size_t K = 4;
  const Time tau = 5;  // > K/p = 2
  const RequestSet rs = lemma4_request_set(p, K, 240);
  auto fitf = SharedStrategy::fitf();
  const Count fitf_faults = simulate(sim_config(K, tau), rs, *fitf).total_faults();
  SacrificeStrategy off(1);
  const Count off_faults = simulate(sim_config(K, tau), rs, off).total_faults();
  EXPECT_GT(fitf_faults, off_faults);
}

}  // namespace
}  // namespace mcp
