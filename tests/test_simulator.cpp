// Integration tests pinning down the simulator's model semantics
// (core/simulator.hpp): tau delays, reserved cells, logical service order,
// shared-fetch modes and observer event ordering.
#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

namespace mcp {
namespace {

SimConfig config(std::size_t k, Time tau) {
  SimConfig cfg;
  cfg.cache_size = k;
  cfg.fault_penalty = tau;
  return cfg;
}

SharedStrategy lru_strategy() {
  return SharedStrategy(make_policy_factory("lru"));
}

TEST(Simulator, SingleCoreTimingWithTau) {
  // K=2, tau=2, R = a b a c: faults at t=0,3,7 (hit at t=6), completion 9.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1, 3});
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(2, 2), rs, strategy);

  EXPECT_EQ(stats.core(0).faults, 3u);
  EXPECT_EQ(stats.core(0).hits, 1u);
  const std::vector<Time> expected_fault_times = {0, 3, 7};
  EXPECT_EQ(stats.core(0).fault_times, expected_fault_times);
  EXPECT_EQ(stats.core(0).completion_time, 9u);
  EXPECT_EQ(stats.makespan(), 9u);
}

TEST(Simulator, TauZeroStillCostsOneStepPerRequest) {
  // With tau=0 a fault still occupies its own step; page usable next step.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 1, 1});
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(1, 0), rs, strategy);
  EXPECT_EQ(stats.core(0).faults, 1u);
  EXPECT_EQ(stats.core(0).hits, 2u);
  EXPECT_EQ(stats.core(0).completion_time, 2u);  // t=0 fault, t=1,2 hits
}

TEST(Simulator, AllHitsAfterWarmup) {
  RequestSet rs;
  RequestSequence seq;
  const std::vector<PageId> block = {1, 2, 3};
  seq.append_repeated(block, 10);
  rs.add_sequence(std::move(seq));
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(3, 5), rs, strategy);
  EXPECT_EQ(stats.core(0).faults, 3u);  // compulsory misses only
  EXPECT_EQ(stats.core(0).hits, 27u);
}

TEST(Simulator, CoresProceedInParallel) {
  // Two disjoint cores, each all-distinct: both finish as if alone.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  rs.add_sequence(RequestSequence{11, 12, 13});
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(8, 4), rs, strategy);
  EXPECT_EQ(stats.core(0).faults, 3u);
  EXPECT_EQ(stats.core(1).faults, 3u);
  // Each fault takes tau+1 = 5 steps: issue times 0,5,10, finish 14.
  EXPECT_EQ(stats.core(0).completion_time, 14u);
  EXPECT_EQ(stats.core(1).completion_time, 14u);
}

TEST(Simulator, FaultDelaysOnlyTheFaultingCore) {
  // Core 0 faults everything; core 1 hits after a single warm fault.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3, 4});        // all distinct
  rs.add_sequence(RequestSequence{9, 9, 9, 9, 9, 9});  // one page
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(8, 3), rs, strategy);
  EXPECT_EQ(stats.core(0).faults, 4u);
  EXPECT_EQ(stats.core(1).faults, 1u);
  EXPECT_EQ(stats.core(1).hits, 5u);
  // Core 1: fault at 0 finishing at 3, then 5 hits at 4..8.
  EXPECT_EQ(stats.core(1).completion_time, 8u);
  // Core 0: faults at 0,4,8,12, finishing at 15.
  EXPECT_EQ(stats.core(0).completion_time, 15u);
}

TEST(Simulator, LogicalOrderLowerCoreActsFirst) {
  // K=2, tau=0.  At t=1 core 0 faults on page 3 and (LRU) evicts page 1,
  // *then* core 1 requests page 2 — still present, so it hits.
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 3});
  rs.add_sequence(RequestSequence{2, 2});
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(2, 0), rs, strategy);
  EXPECT_EQ(stats.core(0).faults, 2u);
  EXPECT_EQ(stats.core(1).faults, 1u);
  EXPECT_EQ(stats.core(1).hits, 1u);
}

TEST(Simulator, SharedFetchCountsAsFaultByDefault) {
  // Both cores request the same page at t=0; second core joins the fetch
  // but is charged a fault and the full tau delay.
  RequestSet rs;
  rs.add_sequence(RequestSequence{5});
  rs.add_sequence(RequestSequence{5});
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(4, 7), rs, strategy);
  EXPECT_EQ(stats.total_faults(), 2u);
  EXPECT_EQ(stats.core(1).completion_time, 7u);
}

TEST(Simulator, SharedFetchJoinsFetchModeScoresHit) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{5});
  rs.add_sequence(RequestSequence{5});
  SimConfig cfg = config(4, 7);
  cfg.shared_fetch = SharedFetchMode::kJoinsFetch;
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(cfg, rs, strategy);
  EXPECT_EQ(stats.total_faults(), 1u);
  EXPECT_EQ(stats.core(1).hits, 1u);
  // Fetch lands at t=8; core 1 hits it that step.
  EXPECT_EQ(stats.core(1).completion_time, 8u);
}

TEST(Simulator, EmptySequencesFinishImmediately) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{});
  rs.add_sequence(RequestSequence{1});
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(config(2, 1), rs, strategy);
  EXPECT_EQ(stats.core(0).requests, 0u);
  EXPECT_EQ(stats.core(0).completion_time, 0u);
  EXPECT_EQ(stats.core(1).faults, 1u);
}

TEST(Simulator, MaxStepsGuardFires) {
  RequestSet rs;
  RequestSequence seq;
  const std::vector<PageId> block = {1, 2};
  seq.append_repeated(block, 1000);
  rs.add_sequence(std::move(seq));
  SimConfig cfg = config(1, 0);
  cfg.max_steps = 10;
  SharedStrategy strategy = lru_strategy();
  Simulator sim(cfg);
  EXPECT_THROW((void)sim.run(rs, strategy), ModelError);
}

TEST(Simulator, FaultTimelineDisabledSkipsRecording) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  SimConfig cfg = config(2, 1);
  cfg.record_fault_timeline = false;
  SharedStrategy strategy = lru_strategy();
  const RunStats stats = simulate(cfg, rs, strategy);
  EXPECT_EQ(stats.core(0).faults, 3u);
  EXPECT_TRUE(stats.core(0).fault_times.empty());
}

// Observer that records the order of events it sees.
class EventLog : public SimObserver {
 public:
  void on_hit(const AccessContext& ctx) override {
    log.push_back("hit c" + std::to_string(ctx.core) + " p" +
                  std::to_string(ctx.page) + " t" + std::to_string(ctx.now));
  }
  void on_fault(const AccessContext& ctx) override {
    log.push_back("fault c" + std::to_string(ctx.core) + " p" +
                  std::to_string(ctx.page) + " t" + std::to_string(ctx.now));
  }
  void on_evict(PageId page, CoreId core, Time now, EvictionCause) override {
    log.push_back("evict p" + std::to_string(page) + " by c" +
                  std::to_string(core) + " t" + std::to_string(now));
  }
  std::vector<std::string> log;
};

TEST(Simulator, ObserverSeesEventsInModelOrder) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});  // K=2: third request evicts
  SharedStrategy strategy = lru_strategy();
  EventLog events;
  Simulator sim(config(2, 0));
  sim.add_observer(&events);
  (void)sim.run(rs, strategy);
  const std::vector<std::string> expected = {
      "fault c0 p1 t0",
      "fault c0 p2 t1",
      "fault c0 p3 t2",
      "evict p1 by c0 t2",
  };
  EXPECT_EQ(events.log, expected);
}

TEST(Simulator, DeterministicReplay) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 1, 3, 2, 1});
  rs.add_sequence(RequestSequence{7, 8, 7, 9, 8, 7});
  SharedStrategy s1 = lru_strategy();
  SharedStrategy s2 = lru_strategy();
  const RunStats a = simulate(config(3, 2), rs, s1);
  const RunStats b = simulate(config(3, 2), rs, s2);
  EXPECT_EQ(a.total_faults(), b.total_faults());
  for (CoreId j = 0; j < 2; ++j) {
    EXPECT_EQ(a.core(j).fault_times, b.core(j).fault_times);
    EXPECT_EQ(a.core(j).completion_time, b.core(j).completion_time);
  }
}

TEST(Simulator, RecordingStreamCapturesTrace) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1, 2, 3});
  FixedStream inner(rs);
  RecordingStream recorder(inner);
  SharedStrategy strategy = lru_strategy();
  Simulator sim(config(2, 1));
  (void)sim.run_stream(recorder, strategy);
  EXPECT_EQ(recorder.recorded(), rs);
}

}  // namespace
}  // namespace mcp
