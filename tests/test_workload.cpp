// Tests for the synthetic workload generators (workload/workload.hpp).
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/error.hpp"

namespace mcp {
namespace {

CoreWorkload basic(AccessPattern pattern, std::size_t pages = 16,
                   std::size_t length = 500) {
  CoreWorkload core;
  core.pattern = pattern;
  core.num_pages = pages;
  core.length = length;
  return core;
}

TEST(Workload, DeterministicBySeed) {
  const WorkloadSpec spec =
      homogeneous_spec(3, basic(AccessPattern::kZipf), true, 99);
  EXPECT_EQ(make_workload(spec), make_workload(spec));
  WorkloadSpec other = spec;
  other.seed = 100;
  EXPECT_NE(make_workload(spec), make_workload(other));
}

TEST(Workload, CoresGetIndependentStreams) {
  const WorkloadSpec spec =
      homogeneous_spec(2, basic(AccessPattern::kUniform), false, 7);
  const RequestSet rs = make_workload(spec);
  EXPECT_NE(rs.sequence(0), rs.sequence(1));
}

TEST(Workload, LengthsAndRanges) {
  for (AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kZipf,
        AccessPattern::kWorkingSet, AccessPattern::kScan, AccessPattern::kLoop}) {
    const WorkloadSpec spec = homogeneous_spec(2, basic(pattern, 16, 300), true);
    const RequestSet rs = make_workload(spec);
    ASSERT_EQ(rs.num_cores(), 2u);
    for (CoreId j = 0; j < 2; ++j) {
      EXPECT_EQ(rs.sequence(j).size(), 300u) << to_string(pattern);
      for (PageId page : rs.sequence(j)) {
        EXPECT_GE(page, j * 16u) << to_string(pattern);
        EXPECT_LT(page, (j + 1) * 16u) << to_string(pattern);
      }
    }
    EXPECT_TRUE(rs.is_disjoint()) << to_string(pattern);
  }
}

TEST(Workload, SharedUniverseOverlaps) {
  const WorkloadSpec spec =
      homogeneous_spec(3, basic(AccessPattern::kUniform, 8, 200), false);
  const RequestSet rs = make_workload(spec);
  EXPECT_FALSE(rs.is_disjoint());
  EXPECT_LE(rs.page_bound(), 8u);
}

TEST(Workload, ZipfIsSkewed) {
  Rng rng(5);
  const CoreWorkload core = basic(AccessPattern::kZipf, 32, 5000);
  const RequestSequence seq = generate_sequence(core, 0, rng);
  std::map<PageId, int> counts;
  for (PageId page : seq) ++counts[page];
  int top = 0;
  for (const auto& [page, count] : counts) top = std::max(top, count);
  // Zipf(0.8) over 32 pages: the most popular page takes a large share,
  // far above the uniform 5000/32 ~ 156.
  EXPECT_GT(top, 400);
}

TEST(Workload, ZipfAlphaZeroIsUniform) {
  Rng rng(6);
  CoreWorkload core = basic(AccessPattern::kZipf, 8, 8000);
  core.zipf_alpha = 0.0;
  const RequestSequence seq = generate_sequence(core, 0, rng);
  std::map<PageId, int> counts;
  for (PageId page : seq) ++counts[page];
  for (const auto& [page, count] : counts) {
    EXPECT_NEAR(count, 1000, 150);
  }
}

TEST(Workload, WorkingSetPhasesAreSmall) {
  Rng rng(8);
  CoreWorkload core = basic(AccessPattern::kWorkingSet, 64, 512);
  core.working_set = 4;
  core.phase_length = 64;
  const RequestSequence seq = generate_sequence(core, 0, rng);
  for (std::size_t phase = 0; phase < 8; ++phase) {
    std::set<PageId> distinct;
    for (std::size_t i = phase * 64; i < (phase + 1) * 64; ++i) {
      distinct.insert(seq[i]);
    }
    EXPECT_LE(distinct.size(), 4u) << "phase " << phase;
  }
}

TEST(Workload, ScanSweepsSequentially) {
  Rng rng(9);
  const RequestSequence seq =
      generate_sequence(basic(AccessPattern::kScan, 5, 12), 10, rng);
  const RequestSequence expected{10, 11, 12, 13, 14, 10, 11, 12, 13, 14, 10, 11};
  EXPECT_EQ(seq, expected);
}

TEST(Workload, LoopCycles) {
  Rng rng(10);
  CoreWorkload core = basic(AccessPattern::kLoop, 16, 9);
  core.loop_length = 3;
  const RequestSequence seq = generate_sequence(core, 0, rng);
  const RequestSequence expected{0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(seq, expected);
}

TEST(Workload, MarkovWalkStaysInRangeAndIsLocal) {
  Rng rng(21);
  CoreWorkload core = basic(AccessPattern::kMarkov, 64, 2000);
  core.markov_locality = 0.95;
  const RequestSequence seq = generate_sequence(core, 100, rng);
  ASSERT_EQ(seq.size(), 2000u);
  std::size_t neighbour_steps = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_GE(seq[i], 100u);
    EXPECT_LT(seq[i], 164u);
    if (i > 0) {
      const auto delta = seq[i] > seq[i - 1] ? seq[i] - seq[i - 1]
                                             : seq[i - 1] - seq[i];
      if (delta == 1 || delta == 63) ++neighbour_steps;  // wrap counts
    }
  }
  // ~95% of transitions should be single-page steps.
  EXPECT_GT(neighbour_steps, 1700u);
}

TEST(Workload, MarkovLocalityZeroIsUniformish) {
  Rng rng(22);
  CoreWorkload core = basic(AccessPattern::kMarkov, 8, 4000);
  core.markov_locality = 0.0;
  const RequestSequence seq = generate_sequence(core, 0, rng);
  std::map<PageId, int> counts;
  for (PageId page : seq) ++counts[page];
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [page, count] : counts) EXPECT_NEAR(count, 500, 120);
}

TEST(Workload, MarkovRejectsBadLocality) {
  Rng rng(23);
  CoreWorkload core = basic(AccessPattern::kMarkov, 8, 10);
  core.markov_locality = 1.5;
  EXPECT_THROW((void)generate_sequence(core, 0, rng), ModelError);
}

TEST(Workload, ZipfSamplerBounds) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 10u);
  EXPECT_THROW(ZipfSampler(0, 1.0), ModelError);
}

TEST(Workload, RejectsEmptySpecs) {
  WorkloadSpec empty;
  EXPECT_THROW((void)make_workload(empty), ModelError);
  Rng rng(1);
  CoreWorkload zero;
  zero.num_pages = 0;
  EXPECT_THROW((void)generate_sequence(zero, 0, rng), ModelError);
}

TEST(Workload, PatternNames) {
  EXPECT_EQ(to_string(AccessPattern::kUniform), "uniform");
  EXPECT_EQ(to_string(AccessPattern::kWorkingSet), "working-set");
}

}  // namespace
}  // namespace mcp
