// Tests for dynamic partition strategies (strategies/dynamic_partition.hpp):
// the Lemma-3 controller's exact equivalence with shared LRU, and the staged
// (piecewise-constant) partition schedule.
#include "strategies/dynamic_partition.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/simulator.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;
using testing::sim_config;

// ---------------------------------------------------------------------------
// Lemma 3: exists dynamic partition D with dP^D_LRU(R) = S_LRU(R) for all
// disjoint R.  We check fault-for-fault equality (counts, per-core fault
// times, completion times) over a randomized grid.
// ---------------------------------------------------------------------------

struct Lemma3Case {
  std::size_t cores;
  std::size_t cache;
  Time tau;
};

class Lemma3Equivalence : public ::testing::TestWithParam<Lemma3Case> {};

TEST_P(Lemma3Equivalence, MatchesSharedLruExactly) {
  const auto& param = GetParam();
  Rng rng(9000 + param.cores * 100 + param.cache + param.tau);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSet rs =
        random_disjoint_workload(rng, param.cores, 5, 120);
    SharedStrategy shared(make_policy_factory("lru"));
    Lemma3DynamicPartition dynamic;
    const SimConfig cfg = sim_config(param.cache, param.tau);
    const RunStats shared_stats = simulate(cfg, rs, shared);
    const RunStats dynamic_stats = simulate(cfg, rs, dynamic);

    EXPECT_EQ(dynamic_stats.total_faults(), shared_stats.total_faults())
        << "trial=" << trial;
    for (CoreId j = 0; j < param.cores; ++j) {
      EXPECT_EQ(dynamic_stats.core(j).fault_times,
                shared_stats.core(j).fault_times)
          << "trial=" << trial << " core=" << j;
      EXPECT_EQ(dynamic_stats.core(j).completion_time,
                shared_stats.core(j).completion_time)
          << "trial=" << trial << " core=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma3Equivalence,
    ::testing::Values(Lemma3Case{2, 4, 0}, Lemma3Case{2, 4, 3},
                      Lemma3Case{2, 8, 1}, Lemma3Case{3, 6, 0},
                      Lemma3Case{3, 6, 2}, Lemma3Case{4, 8, 1},
                      Lemma3Case{4, 12, 4}));

TEST(Lemma3Dynamic, TracksPartitionSizes) {
  // Core 0 needs 3 pages, core 1 only 1: the partition drifts toward core 0.
  RequestSet rs;
  RequestSequence heavy;
  const std::vector<PageId> tri = {1, 2, 3};
  heavy.append_repeated(tri, 10);
  rs.add_sequence(std::move(heavy));
  RequestSequence light;
  const std::vector<PageId> solo = {9};
  light.append_repeated(solo, 30);
  rs.add_sequence(std::move(light));

  Lemma3DynamicPartition dynamic;
  const RunStats stats = simulate(sim_config(4, 1), rs, dynamic);
  EXPECT_EQ(stats.total_faults(), 4u);  // compulsory only: K covers both
  EXPECT_EQ(dynamic.sizes()[0], 3u);
  EXPECT_EQ(dynamic.sizes()[1], 1u);
  EXPECT_GE(dynamic.partition_changes(), 1u);
}

// ---------------------------------------------------------------------------
// Staged partitions.
// ---------------------------------------------------------------------------

TEST(StagedPartition, SingleStageBehavesLikeStaticPartition) {
  Rng rng(17);
  const RequestSet rs = random_disjoint_workload(rng, 2, 4, 60);
  StagedPartitionStrategy staged({{0, {3, 3}}}, make_policy_factory("lru"));
  const RunStats staged_stats = simulate(sim_config(6, 2), rs, staged);
  // With one stage the strategy is a static partition, so the single-core
  // decomposition gives the exact expected fault counts.
  Count expected = 0;
  for (CoreId j = 0; j < 2; ++j) {
    expected += single_core_policy_faults(rs.sequence(j), 3,
                                          make_policy_factory("lru"));
  }
  EXPECT_EQ(staged_stats.total_faults(), expected);
}

TEST(StagedPartition, ShrinkEvictsVoluntarily) {
  // Stage 1 gives core 0 three cells; stage 2 (from t=50) shrinks it to 1.
  RequestSet rs;
  RequestSequence warm;
  const std::vector<PageId> tri = {1, 2, 3};
  warm.append_repeated(tri, 40);  // working set 3: hits after warmup
  rs.add_sequence(std::move(warm));
  RequestSequence other;
  const std::vector<PageId> solo = {9};
  other.append_repeated(solo, 120);
  rs.add_sequence(std::move(other));

  class VoluntaryCounter : public SimObserver {
   public:
    void on_evict(PageId, CoreId, Time, EvictionCause cause) override {
      if (cause == EvictionCause::kVoluntary) ++voluntary;
    }
    int voluntary = 0;
  } counter;

  StagedPartitionStrategy staged(
      {{0, {3, 1}}, {50, {1, 3}}}, make_policy_factory("lru"));
  Simulator sim(sim_config(4, 0));
  sim.add_observer(&counter);
  const RunStats stats = sim.run(rs, staged);
  EXPECT_EQ(counter.voluntary, 2);  // part shrank 3 -> 1
  // After the shrink, core 0 cycles 3 pages through 1 cell: faults resume.
  EXPECT_GT(stats.core(0).faults, 3u);
}

TEST(StagedPartition, ScheduleValidation) {
  EXPECT_THROW(StagedPartitionStrategy({}, make_policy_factory("lru")),
               ModelError);
  EXPECT_THROW(StagedPartitionStrategy({{5, {2, 2}}},
                                       make_policy_factory("lru")),
               ModelError);  // first stage must start at 0
  EXPECT_THROW(StagedPartitionStrategy({{0, {2, 2}}, {0, {1, 3}}},
                                       make_policy_factory("lru")),
               ModelError);  // strictly ascending starts
}

TEST(StagedPartition, StageSizesValidatedAtAttach) {
  RequestSet rs;
  rs.add_sequence(RequestSequence{1});
  rs.add_sequence(RequestSequence{2});
  StagedPartitionStrategy bad({{0, {2, 1}}}, make_policy_factory("lru"));
  EXPECT_THROW((void)simulate(sim_config(4, 0), rs, bad), ModelError);
}

TEST(StagedPartition, GrowthDuringPendingShrinkEvictsOverBudgetPart) {
  // Core 0 holds 3 resident pages; at t=10 the schedule flips the partition.
  // Core 1's next fault must find room by evicting core 0's excess.
  RequestSet rs;
  RequestSequence warm;
  const std::vector<PageId> tri = {1, 2, 3};
  warm.append_repeated(tri, 4);  // 12 requests, resident by t<10
  rs.add_sequence(std::move(warm));
  RequestSequence burst;
  const std::vector<PageId> duo = {8, 9};
  burst.append_repeated(duo, 10);
  rs.add_sequence(std::move(burst));

  StagedPartitionStrategy staged(
      {{0, {3, 1}}, {10, {1, 3}}}, make_policy_factory("lru"));
  const RunStats stats = simulate(sim_config(4, 0), rs, staged);
  // Before the flip core 1 thrashes its single cell; after it, both pages
  // stay resident, so its faults are far below its 20 requests.
  EXPECT_GE(stats.core(1).faults, 2u);
  EXPECT_LE(stats.core(1).faults, 14u);
  EXPECT_EQ(staged.current_stage(), 1u);
}

}  // namespace
}  // namespace mcp
