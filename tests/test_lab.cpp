// Unit tests for the mcp::lab harness: registry invariants, the result
// builder, JSON escaping/parsing, the record schema round-trip, experiment
// selection, and the --check shape diff.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "lab/json.hpp"
#include "lab/record.hpp"
#include "lab/registry.hpp"
#include "lab/runner.hpp"

namespace mcp::lab {
namespace {

Experiment tiny_experiment(const std::string& id) {
  Experiment e;
  e.id = id;
  e.title = "tiny experiment " + id;
  e.claim = "a claim with \"quotes\" and a \\ backslash";
  e.reference = "tests";
  e.tags = {"test", "tiny"};
  e.default_grid = "n=1";
  e.run = [](const RunContext& ctx) {
    ResultBuilder b;
    auto& t = b.series("counts", "Counts:", {"n", "ratio", "label"});
    t.row(std::uint64_t{4}, 1.5, "up");
    t.row(ctx.master_seed, 2.5, "seeded");
    b.note("a note");
    SweepTiming timing;
    timing.cells = 3;
    timing.wall_seconds = 0.25;
    b.sweep("tiny.sweep", timing);
    b.stats("stats", "{\"total\":{\"requests\":0}}");
    return std::move(b).finish(true, "always passes");
  };
  return e;
}

TEST(LabRegistry, RejectsDuplicateIds) {
  ExperimentRegistry registry;
  registry.add(tiny_experiment("E1"));
  EXPECT_THROW(registry.add(tiny_experiment("E1")), ModelError);
}

TEST(LabRegistry, RejectsIncompleteDescriptors) {
  ExperimentRegistry registry;
  Experiment no_id = tiny_experiment("E1");
  no_id.id.clear();
  EXPECT_THROW(registry.add(no_id), ModelError);
  Experiment no_run = tiny_experiment("E2");
  no_run.run = nullptr;
  EXPECT_THROW(registry.add(no_run), ModelError);
}

TEST(LabRegistry, AllSortsNumerically) {
  ExperimentRegistry registry;
  registry.add(tiny_experiment("E10"));
  registry.add(tiny_experiment("E2"));
  registry.add(tiny_experiment("E1"));
  const auto all = registry.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->id, "E1");
  EXPECT_EQ(all[1]->id, "E2");
  EXPECT_EQ(all[2]->id, "E10");
}

TEST(LabRegistry, WithTagFilters) {
  ExperimentRegistry registry;
  registry.add(tiny_experiment("E1"));
  Experiment other = tiny_experiment("E2");
  other.tags = {"other"};
  registry.add(other);
  EXPECT_EQ(registry.with_tag("tiny").size(), 1u);
  EXPECT_EQ(registry.with_tag("other").size(), 1u);
  EXPECT_TRUE(registry.with_tag("absent").empty());
}

TEST(LabBuilder, RowWidthMismatchThrows) {
  ResultBuilder b;
  auto& t = b.series("s", "", {"a", "b"});
  EXPECT_THROW(t.row(std::uint64_t{1}), ModelError);
}

TEST(LabBuilder, OrderPreservesInterleaving) {
  const Experiment e = tiny_experiment("E1");
  const ExperimentResult result = e.run(RunContext{});
  ASSERT_EQ(result.order.size(), 4u);
  EXPECT_EQ(result.order[0].first, ExperimentResult::BlockKind::kSeries);
  EXPECT_EQ(result.order[1].first, ExperimentResult::BlockKind::kNote);
  EXPECT_EQ(result.order[2].first, ExperimentResult::BlockKind::kSweep);
  EXPECT_EQ(result.order[3].first, ExperimentResult::BlockKind::kStats);
  ASSERT_NE(result.find_series("counts"), nullptr);
  EXPECT_EQ(result.find_series("counts")->rows.size(), 2u);
  EXPECT_EQ(result.find_series("absent"), nullptr);
}

TEST(LabJson, EscapeCoversControlAndQuote) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
}

TEST(LabJson, ParseRoundTripsTypicalDocument) {
  const JsonValue v = json_parse(
      "{\"a\":1.5,\"b\":[true,false,null],\"c\":{\"d\":\"x\\ny\"}}");
  ASSERT_TRUE(v.is(JsonValue::Type::kObject));
  EXPECT_DOUBLE_EQ(v.get("a")->number, 1.5);
  ASSERT_TRUE(v.get("b")->is(JsonValue::Type::kArray));
  EXPECT_EQ(v.get("b")->array.size(), 3u);
  EXPECT_TRUE(v.get("b")->array[0].boolean);
  EXPECT_EQ(v.get("c")->get("d")->string, "x\ny");
  EXPECT_EQ(v.get("absent"), nullptr);
}

TEST(LabJson, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)json_parse("{\"a\":}"), InputError);
  EXPECT_THROW((void)json_parse("[1,"), InputError);
  EXPECT_THROW((void)json_parse("{\"a\":1} trailing"), InputError);
}

TEST(LabRecord, RoundTripsThroughTheParser) {
  const Experiment e = tiny_experiment("E1");
  ExperimentResult result = e.run(RunContext{});
  result.wall_seconds = 0.125;
  RunContext context;
  context.master_seed = 42;
  context.workers = 2;
  Environment env;
  env.hostname = "testhost";
  env.hardware_threads = 8;
  env.git_sha = "abc123def";

  const std::string record = to_record(e, result, context, env);
  EXPECT_EQ(record.find('\n'), std::string::npos) << "record must be one line";

  const JsonValue v = json_parse(record);
  EXPECT_EQ(v.get("schema")->string, kRecordSchema);
  EXPECT_EQ(static_cast<int>(v.get("version")->number), kRecordVersion);
  EXPECT_EQ(v.get("experiment")->string, "E1");
  EXPECT_EQ(v.get("claim")->string, e.claim);
  EXPECT_EQ(v.get("params")->get("master_seed")->number, 42.0);
  EXPECT_EQ(v.get("params")->get("workers")->number, 2.0);
  EXPECT_TRUE(v.get("verdict")->get("pass")->boolean);
  EXPECT_EQ(v.get("verdict")->get("criterion")->string, "always passes");
  EXPECT_EQ(v.get("host")->get("hostname")->string, "testhost");
  EXPECT_EQ(v.get("git_sha")->string, "abc123def");

  const JsonValue* series = v.get("series");
  ASSERT_TRUE(series != nullptr && series->is(JsonValue::Type::kArray));
  ASSERT_EQ(series->array.size(), 1u);
  const JsonValue& counts = series->array[0];
  EXPECT_EQ(counts.get("name")->string, "counts");
  EXPECT_EQ(counts.get("columns")->array.size(), 3u);
  ASSERT_EQ(counts.get("rows")->array.size(), 2u);
  const JsonValue& row0 = counts.get("rows")->array[0];
  EXPECT_DOUBLE_EQ(row0.array[0].number, 4.0);
  EXPECT_DOUBLE_EQ(row0.array[1].number, 1.5);
  EXPECT_EQ(row0.array[2].string, "up");

  // Embedded sub-documents survive as structure, not strings.
  EXPECT_EQ(v.get("sweeps")->array.size(), 1u);
  EXPECT_EQ(v.get("run_stats")->array.size(), 1u);
}

TEST(LabRunner, SelectExperimentsUnionInCanonicalOrder) {
  ExperimentRegistry registry;
  registry.add(tiny_experiment("E1"));
  registry.add(tiny_experiment("E2"));
  Experiment tagged = tiny_experiment("E3");
  tagged.tags = {"special"};
  registry.add(tagged);

  const auto sel =
      select_experiments(registry, {"E2"}, {"special"}, /*all=*/false);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0]->id, "E2");
  EXPECT_EQ(sel[1]->id, "E3");

  const auto everything = select_experiments(registry, {}, {}, /*all=*/true);
  EXPECT_EQ(everything.size(), 3u);

  EXPECT_THROW((void)select_experiments(registry, {"E9"}, {}, false),
               InputError);
  EXPECT_THROW((void)select_experiments(registry, {}, {"absent"}, false),
               InputError);
}

TEST(LabRunner, CheckAgainstReferenceFlagsShapeDrift) {
  ExperimentRegistry registry;
  registry.add(tiny_experiment("E1"));
  const auto selection = select_experiments(registry, {}, {}, true);
  std::ostringstream render;
  const auto reports = run_experiments(selection, RunContext{}, render);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(any_failed(reports));

  const std::string dir = testing::TempDir();
  const std::string good = dir + "/lab_ref_good.jsonl";
  write_records(good, reports, RunContext{});
  std::ostringstream diag;
  EXPECT_EQ(check_against_reference(reports, good, diag), 0u) << diag.str();

  // A reference whose series grew a row must be flagged.
  ExperimentRegistry drifted;
  Experiment wide = tiny_experiment("E1");
  auto original_run = wide.run;
  wide.run = [original_run](const RunContext& ctx) {
    ExperimentResult r = original_run(ctx);
    r.series[0].row(std::uint64_t{9}, 9.0, "extra");
    return r;
  };
  drifted.add(wide);
  const auto drifted_reports = run_experiments(
      select_experiments(drifted, {}, {}, true), RunContext{}, render);
  const std::string bad = dir + "/lab_ref_bad.jsonl";
  write_records(bad, drifted_reports, RunContext{});
  std::ostringstream diag2;
  EXPECT_GT(check_against_reference(reports, bad, diag2), 0u);
  EXPECT_NE(diag2.str().find("row count changed"), std::string::npos)
      << diag2.str();
}

TEST(LabRunner, CheckFlagsVerdictFlip) {
  ExperimentRegistry registry;
  Experiment failing = tiny_experiment("E1");
  auto original_run = failing.run;
  failing.run = [original_run](const RunContext& ctx) {
    ExperimentResult r = original_run(ctx);
    r.verdict.pass = false;
    return r;
  };
  registry.add(failing);
  std::ostringstream render;
  const auto reports = run_experiments(
      select_experiments(registry, {}, {}, true), RunContext{}, render);
  EXPECT_TRUE(any_failed(reports));

  ExperimentRegistry passing;
  passing.add(tiny_experiment("E1"));
  const auto pass_reports = run_experiments(
      select_experiments(passing, {}, {}, true), RunContext{}, render);
  const std::string ref = testing::TempDir() + "/lab_ref_verdict.jsonl";
  write_records(ref, pass_reports, RunContext{});

  std::ostringstream diag;
  EXPECT_EQ(check_against_reference(reports, ref, diag), 1u);
  EXPECT_NE(diag.str().find("verdict changed"), std::string::npos)
      << diag.str();
}

}  // namespace
}  // namespace mcp::lab
