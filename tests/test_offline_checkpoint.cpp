// Checkpoint/resume tests: the container format round-trips and rejects
// every corruption mode with InputError, and both packed solvers — killed
// (via the deterministic halt hook) after any number of settled boundaries
// — resume to results bit-equal to an uninterrupted solve, across a seeded
// p x k x tau grid.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "offline/checkpoint.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/pif_solver.hpp"
#include "offline/replay.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;

OfflineInstance make_instance(RequestSet rs, std::size_t k, Time tau) {
  OfflineInstance inst;
  inst.requests = std::move(rs);
  inst.cache_size = k;
  inst.tau = tau;
  return inst;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "mcp-" + name + ".ckpt";
}

/// Flips one byte at `offset` (from the start, or from the end if negative).
void corrupt_file(const std::string& path, std::ptrdiff_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const std::ptrdiff_t size = f.tellg();
  const std::ptrdiff_t pos = offset >= 0 ? offset : size + offset;
  ASSERT_GE(pos, 0);
  ASSERT_LT(pos, size);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(pos);
  f.write(&byte, 1);
}

void truncate_file(const std::string& path, std::size_t drop_bytes) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), drop_bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - drop_bytes));
}

// ---------------------------------------------------------------------------
// Container format.
// ---------------------------------------------------------------------------

TEST(CheckpointFormat, PackU32RoundTrips) {
  for (const std::size_t n : {0u, 1u, 2u, 3u, 17u}) {
    std::vector<std::uint32_t> values;
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(static_cast<std::uint32_t>(i * 2654435761u));
    }
    std::vector<std::uint32_t> back;
    checkpoint::unpack_u32(checkpoint::pack_u32(values), back);
    EXPECT_EQ(back, values) << "n=" << n;
  }
}

TEST(CheckpointFormat, WriterReaderRoundTrip) {
  const std::string path = temp_path("roundtrip");
  checkpoint::Writer writer(checkpoint::kKindFtf, 0x1234u);
  const std::vector<std::uint64_t> alpha = {1, 2, 3};
  const std::vector<std::uint64_t> empty;
  writer.section(7, alpha);
  writer.section(9, empty);
  writer.write(path);

  const checkpoint::Reader reader(path, checkpoint::kKindFtf, 0x1234u);
  EXPECT_TRUE(reader.has(7));
  EXPECT_TRUE(reader.has(9));
  EXPECT_FALSE(reader.has(8));
  EXPECT_EQ(reader.section(7), alpha);
  EXPECT_EQ(reader.section(9), empty);
  EXPECT_THROW((void)reader.section(8), InputError);
  std::remove(path.c_str());
}

TEST(CheckpointFormat, RejectsEveryCorruptionMode) {
  const std::string path = temp_path("corrupt");
  const auto fresh = [&] {
    checkpoint::Writer writer(checkpoint::kKindFtf, 0xfeedu);
    const std::vector<std::uint64_t> body = {10, 20, 30, 40};
    writer.section(1, body);
    writer.write(path);
  };
  const auto expect_rejected = [&](const char* what) {
    try {
      const checkpoint::Reader reader(path, checkpoint::kKindFtf, 0xfeedu);
      FAIL() << "expected InputError: " << what;
    } catch (const InputError&) {
    }
  };

  // Missing file.
  std::remove(path.c_str());
  expect_rejected("missing file");

  // Bad magic.
  fresh();
  corrupt_file(path, 0);
  expect_rejected("bad magic");

  // Flipped body word -> checksum mismatch.
  fresh();
  corrupt_file(path, 5 * 8);
  expect_rejected("checksum mismatch");

  // Truncation to a non-word boundary, and to a word boundary (which must
  // fail the checksum instead of parsing a shorter file).
  fresh();
  truncate_file(path, 3);
  expect_rejected("ragged truncation");
  fresh();
  truncate_file(path, 8);
  expect_rejected("word-aligned truncation");

  // Wrong solver kind and wrong fingerprint on an intact file.
  fresh();
  EXPECT_THROW(checkpoint::Reader(path, checkpoint::kKindPif, 0xfeedu),
               InputError);
  EXPECT_THROW(checkpoint::Reader(path, checkpoint::kKindFtf, 0xbeefu),
               InputError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Kill-and-resume: every boundary, bit-equal continuation.
// ---------------------------------------------------------------------------

TEST(FtfCheckpoint, KillAndResumeAtEveryBucketBitEqual) {
  Rng rng(20260809);
  int interruptions = 0;
  for (const std::size_t p : {1u, 2u}) {
    for (const Time tau : {1u, 2u}) {
      const RequestSet rs = random_disjoint_workload(rng, p, 3, 7);
      const OfflineInstance inst = make_instance(rs, 3, tau);

      FtfOptions base;
      base.build_schedule = true;
      const FtfResult clean = solve_ftf(inst, base);

      const std::string path =
          temp_path("ftf-" + std::to_string(p) + "-" + std::to_string(tau));
      for (std::uint32_t halt = 1; halt < 64; ++halt) {
        std::remove(path.c_str());
        FtfOptions interrupted = base;
        interrupted.checkpoint.path = path;
        interrupted.checkpoint.halt_after_checkpoints = halt;
        bool killed = false;
        try {
          const FtfResult full = solve_ftf(inst, interrupted);
          // Ran past the last checkpoint boundary: uninterrupted result.
          EXPECT_EQ(full.min_faults, clean.min_faults);
          EXPECT_EQ(full.schedule, clean.schedule);
        } catch (const SolveInterrupted&) {
          killed = true;
          ++interruptions;
        }
        if (!killed) break;  // no boundary left to kill at

        FtfOptions resume = base;
        resume.checkpoint.path = path;
        resume.checkpoint.resume = true;
        const FtfResult resumed = solve_ftf(inst, resume);
        EXPECT_TRUE(resumed.resumed);
        EXPECT_EQ(resumed.min_faults, clean.min_faults) << "halt=" << halt;
        EXPECT_EQ(resumed.states_expanded, clean.states_expanded)
            << "halt=" << halt;
        EXPECT_EQ(resumed.states_stored, clean.states_stored)
            << "halt=" << halt;
        // Bit-equal schedule, not merely an equivalent optimum.
        EXPECT_EQ(resumed.schedule, clean.schedule) << "halt=" << halt;
      }
      std::remove(path.c_str());
    }
  }
  // The grid must actually exercise mid-solve kills.
  EXPECT_GT(interruptions, 4);
}

TEST(FtfCheckpoint, ResumeComposesWithSpillBudget) {
  Rng rng(31337);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 8);
  const OfflineInstance inst = make_instance(rs, 3, 2);

  FtfOptions base;
  base.build_schedule = true;
  base.storage.segment_bytes = 256;
  base.storage.ram_bytes = 512;
  const FtfResult clean = solve_ftf(inst, base);
  ASSERT_GT(clean.bytes_spilled, 0u);

  const std::string path = temp_path("ftf-spill");
  std::remove(path.c_str());
  FtfOptions interrupted = base;
  interrupted.checkpoint.path = path;
  interrupted.checkpoint.halt_after_checkpoints = 1;
  EXPECT_THROW((void)solve_ftf(inst, interrupted), SolveInterrupted);

  FtfOptions resume = base;
  resume.checkpoint.path = path;
  resume.checkpoint.resume = true;
  const FtfResult resumed = solve_ftf(inst, resume);
  EXPECT_EQ(resumed.min_faults, clean.min_faults);
  EXPECT_EQ(resumed.schedule, clean.schedule);
  EXPECT_GT(resumed.bytes_spilled, 0u);
  std::remove(path.c_str());
}

TEST(FtfCheckpoint, ResumeRejectsMismatchedSolve) {
  Rng rng(606060);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 7);
  const OfflineInstance inst = make_instance(rs, 3, 1);

  const std::string path = temp_path("ftf-mismatch");
  std::remove(path.c_str());
  FtfOptions interrupted;
  interrupted.build_schedule = true;
  interrupted.checkpoint.path = path;
  interrupted.checkpoint.halt_after_checkpoints = 1;
  EXPECT_THROW((void)solve_ftf(inst, interrupted), SolveInterrupted);

  // Different instance -> fingerprint mismatch.
  const RequestSet other_rs = random_disjoint_workload(rng, 2, 3, 7);
  const OfflineInstance other = make_instance(other_rs, 3, 1);
  FtfOptions resume = interrupted;
  resume.checkpoint.halt_after_checkpoints = 0;
  resume.checkpoint.resume = true;
  EXPECT_THROW((void)solve_ftf(other, resume), InputError);

  // Different trajectory-affecting option -> fingerprint mismatch.
  FtfOptions no_schedule = resume;
  no_schedule.build_schedule = false;
  EXPECT_THROW((void)solve_ftf(inst, no_schedule), InputError);

  // Corrupted file -> InputError, never a bad resume.
  corrupt_file(path, -9);
  EXPECT_THROW((void)solve_ftf(inst, resume), InputError);
  std::remove(path.c_str());
}

TEST(PifCheckpoint, KillAndResumeAtEveryLayerBitEqual) {
  Rng rng(80808);
  int interruptions = 0;
  for (const bool schedule : {true, false}) {
    for (const std::size_t p : {1u, 2u}) {
      const RequestSet rs = random_disjoint_workload(rng, p, 3, 6);
      PifInstance inst;
      inst.base = make_instance(rs, 3, 1);
      inst.deadline = 10;
      inst.bounds.assign(p, 3);

      PifOptions base;
      base.build_schedule = schedule;
      const PifResult clean = solve_pif(inst, base);

      const std::string path =
          temp_path("pif-" + std::to_string(p) +
                    (schedule ? "-sched" : "-plain"));
      for (std::uint32_t halt = 1; halt < 32; ++halt) {
        std::remove(path.c_str());
        PifOptions interrupted = base;
        interrupted.checkpoint.path = path;
        interrupted.checkpoint.halt_after_checkpoints = halt;
        bool killed = false;
        try {
          (void)solve_pif(inst, interrupted);
        } catch (const SolveInterrupted&) {
          killed = true;
          ++interruptions;
        }
        if (!killed) break;

        PifOptions resume = base;
        resume.checkpoint.path = path;
        resume.checkpoint.resume = true;
        const PifResult resumed = solve_pif(inst, resume);
        EXPECT_TRUE(resumed.resumed);
        EXPECT_EQ(resumed.feasible, clean.feasible) << "halt=" << halt;
        EXPECT_EQ(resumed.decided_at, clean.decided_at) << "halt=" << halt;
        EXPECT_EQ(resumed.states_expanded, clean.states_expanded)
            << "halt=" << halt;
        EXPECT_EQ(resumed.peak_layer_width, clean.peak_layer_width)
            << "halt=" << halt;
        EXPECT_EQ(resumed.schedule, clean.schedule) << "halt=" << halt;
        if (clean.feasible && schedule) {
          EXPECT_TRUE(verify_pif_witness(inst, resumed.schedule));
        }
      }
      std::remove(path.c_str());
    }
  }
  EXPECT_GT(interruptions, 4);
}

TEST(PifCheckpoint, RejectsCheckpointFromOtherSolver) {
  Rng rng(5555);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 6);
  const OfflineInstance base = make_instance(rs, 3, 1);

  const std::string path = temp_path("kind-mismatch");
  std::remove(path.c_str());
  FtfOptions ftf;
  ftf.checkpoint.path = path;
  ftf.checkpoint.halt_after_checkpoints = 1;
  EXPECT_THROW((void)solve_ftf(base, ftf), SolveInterrupted);

  PifInstance inst;
  inst.base = base;
  inst.deadline = 8;
  inst.bounds = {3, 3};
  PifOptions pif;
  pif.checkpoint.path = path;
  pif.checkpoint.resume = true;
  EXPECT_THROW((void)solve_pif(inst, pif), InputError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcp
