// Empirical validation of Theorem 4: forcing faults (voluntary evictions)
// can never push the total below the honest optimum on disjoint inputs.
//
// We wrap online strategies in a randomized dishonest layer that evicts a
// present page "for no reason" with probability q per step, sweep many
// seeds, and check no run ever beats the honest optimum from Algorithm 1.
#include <gtest/gtest.h>

#include <memory>

#include "core/simulator.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/honesty.hpp"
#include "policies/policy_registry.hpp"
#include "policies/policies.hpp"
#include "strategies/shared.hpp"
#include "test_support.hpp"

namespace mcp {
namespace {

using testing::random_disjoint_workload;

/// LRU plus "forced faults": evicts a uniformly random present page with
/// probability `q` at the start of each step (a voluntary eviction in the
/// paper's Theorem-4 sense).  Manages its own LRU bookkeeping so the
/// voluntary removals stay consistent.
class SelfContainedDishonestLru final : public CacheStrategy {
 public:
  SelfContainedDishonestLru(double q, std::uint64_t seed) : q_(q), rng_(seed) {}

  void attach(const SimConfig& config, std::size_t /*num_cores*/,
              const RequestSet* /*requests*/) override {
    cache_size_ = config.cache_size;
    lru_ = std::make_unique<LruPolicy>();
    lru_->reset();
  }
  void on_hit(const AccessContext& ctx) override { lru_->on_hit(ctx.page, ctx); }
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override {
    if (!needs_cell) return;
    if (cache.occupied() == cache_size_) {
      const PageId victim = lru_->victim(
          ctx, [&cache](PageId page) { return cache.contains(page); });
      MCP_REQUIRE(victim != kInvalidPage, "no evictable page");
      lru_->on_remove(victim);
      evictions.push_back(victim);
    }
    lru_->on_insert(ctx.page, ctx);
  }
  void on_step_begin(Time /*now*/, const CacheState& cache,
                     std::vector<PageId>& evictions) override {
    if (!rng_.chance(q_)) return;
    // Sorted order keeps the random choice reproducible across engines.
    const std::vector<PageId> present = cache.present_pages();
    if (present.empty()) return;
    const PageId victim = present[rng_.below(present.size())];
    lru_->on_remove(victim);
    evictions.push_back(victim);
  }
  [[nodiscard]] std::string name() const override { return "dishonest-LRU"; }

 private:
  double q_;
  Rng rng_;
  std::size_t cache_size_ = 0;
  std::unique_ptr<LruPolicy> lru_;
};

TEST(Theorem4, ForcedFaultsNeverBeatTheHonestOptimum) {
  Rng rng(20260707);
  for (int trial = 0; trial < 6; ++trial) {
    const RequestSet rs = random_disjoint_workload(rng, 2, 3, 6);
    OfflineInstance inst;
    inst.requests = rs;
    inst.cache_size = 2;
    inst.tau = 1 + rng.below(2);
    const Count honest_opt = solve_ftf(inst).min_faults;

    for (double q : {0.05, 0.2, 0.5}) {
      for (int seed = 0; seed < 8; ++seed) {
        SelfContainedDishonestLru dishonest(
            q, 1000 + static_cast<std::uint64_t>(seed));
        HonestyChecker checker;
        Simulator sim(inst.sim_config());
        sim.add_observer(&checker);
        const RunStats stats = sim.run(rs, dishonest);
        EXPECT_GE(stats.total_faults(), honest_opt)
            << "trial=" << trial << " q=" << q << " seed=" << seed;
        // Sanity: the wrapper really is dishonest (at q=0.5 some voluntary
        // evictions must occur on these instances).
        if (q >= 0.5) {
          EXPECT_FALSE(checker.honest());
        }
      }
    }
  }
}

TEST(Theorem4, DishonestyHurtsOnAverage) {
  // Not just "never better": on a hit-friendly workload, random voluntary
  // evictions strictly add faults.
  Rng rng(11);
  const RequestSet rs = random_disjoint_workload(rng, 2, 3, 200);
  SimConfig cfg;
  cfg.cache_size = 6;  // everything fits: honest LRU = compulsory only
  cfg.fault_penalty = 2;

  SelfContainedDishonestLru honest(0.0, 1);
  const Count base = simulate(cfg, rs, honest).total_faults();
  SelfContainedDishonestLru noisy(0.3, 2);
  const Count disturbed = simulate(cfg, rs, noisy).total_faults();
  EXPECT_EQ(base, 6u);  // compulsory
  EXPECT_GT(disturbed, 4 * base);
}

}  // namespace
}  // namespace mcp
