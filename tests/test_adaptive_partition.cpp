// Tests for the adaptive partition controllers
// (strategies/adaptive_partition.hpp): utility-driven (UCP-lite) and
// fairness-driven repartitioning.
#include "strategies/adaptive_partition.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/static_partition.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace mcp {
namespace {

using testing::sim_config;

/// Skewed demand: core 0 loops over 6 pages, core 1 over 2 — an even split
/// (4/4) starves core 0; adaptive controllers should drift toward {6, 2}.
RequestSet skewed_workload(std::size_t length) {
  RequestSet rs;
  RequestSequence heavy;
  const std::vector<PageId> six = {0, 1, 2, 3, 4, 5};
  heavy.append_repeated(six, length / 6);
  rs.add_sequence(std::move(heavy));
  RequestSequence light;
  const std::vector<PageId> two = {10, 11};
  light.append_repeated(two, length / 2);
  rs.add_sequence(std::move(light));
  return rs;
}

TEST(UtilityPartition, LearnsSkewedAllocation) {
  const RequestSet rs = skewed_workload(3000);
  UtilityPartitionStrategy ucp(make_policy_factory("lru"), /*interval=*/128);
  const RunStats adaptive = simulate(sim_config(8, 2), rs, ucp);

  StaticPartitionStrategy even({4, 4}, make_policy_factory("lru"));
  const RunStats fixed = simulate(sim_config(8, 2), rs, even);

  // The learned partition must give core 0 its six cells eventually...
  EXPECT_GE(ucp.current_sizes()[0], 6u);
  // ...and beat the even split decisively (even: core 0 thrashes forever).
  EXPECT_LT(adaptive.total_faults() * 4, fixed.total_faults());
  EXPECT_GE(ucp.repartitions(), 1u);
}

TEST(UtilityPartition, MatchesEvenSplitOnSymmetricLoad) {
  Rng rng(99);
  const RequestSet rs = testing::random_disjoint_workload(rng, 2, 6, 1500);
  UtilityPartitionStrategy ucp(make_policy_factory("lru"), 128);
  const RunStats adaptive = simulate(sim_config(8, 1), rs, ucp);
  StaticPartitionStrategy even({4, 4}, make_policy_factory("lru"));
  const RunStats fixed = simulate(sim_config(8, 1), rs, even);
  // Symmetric load: adaptive shouldn't lose more than a repartition tax.
  EXPECT_LE(adaptive.total_faults(),
            fixed.total_faults() + fixed.total_faults() / 4 + 16);
}

TEST(UtilityPartition, RespectsMinimumOneCell) {
  // Core 1 is idle after a single request; core 0 wants everything.  The
  // allocator must still leave core 1 one cell.
  RequestSet rs;
  RequestSequence heavy;
  const std::vector<PageId> pages = {0, 1, 2, 3, 4, 5, 6, 7};
  heavy.append_repeated(pages, 200);
  rs.add_sequence(std::move(heavy));
  rs.add_sequence(RequestSequence{20});
  UtilityPartitionStrategy ucp(make_policy_factory("lru"), 64);
  (void)simulate(sim_config(8, 1), rs, ucp);
  EXPECT_GE(ucp.current_sizes()[1], 1u);
  EXPECT_EQ(ucp.current_sizes()[0] + ucp.current_sizes()[1], 8u);
}

TEST(UtilityPartition, ValidatesParameters) {
  EXPECT_THROW(UtilityPartitionStrategy(make_policy_factory("lru"), 0),
               ModelError);
  EXPECT_THROW(UtilityPartitionStrategy(make_policy_factory("lru"), 10, 1.5),
               ModelError);
}

TEST(FairnessPartition, HelpsTheSlowedCore) {
  const RequestSet rs = skewed_workload(3000);
  FairnessPartitionStrategy fair(make_policy_factory("lru"), /*interval=*/64);
  const RunStats adaptive = simulate(sim_config(8, 4), rs, fair);

  StaticPartitionStrategy even({4, 4}, make_policy_factory("lru"));
  const RunStats fixed = simulate(sim_config(8, 4), rs, even);

  // Cell migration flows toward the thrashing core.
  EXPECT_GT(fair.current_sizes()[0], 4u);
  EXPECT_GE(fair.repartitions(), 1u);
  // Fairness improves (core 0's slowdown drops, core 1 stays fine).
  EXPECT_GE(adaptive.jain_fairness(), fixed.jain_fairness());
}

TEST(FairnessPartition, StableWhenBalanced) {
  // Two identical cores: after warmup neither should monopolize the cache.
  Rng rng(123);
  const RequestSet rs = testing::random_disjoint_workload(rng, 2, 6, 2000);
  FairnessPartitionStrategy fair(make_policy_factory("lru"), 64);
  (void)simulate(sim_config(8, 2), rs, fair);
  EXPECT_GE(fair.current_sizes()[0], 2u);
  EXPECT_GE(fair.current_sizes()[1], 2u);
}

TEST(FairnessPartition, ValidatesParameters) {
  EXPECT_THROW(FairnessPartitionStrategy(make_policy_factory("lru"), 0),
               ModelError);
}

TEST(BudgetedBase, RepartitionCountsOnlyRealChanges) {
  // A schedule that "changes" to the same sizes must not count.
  Rng rng(5);
  const RequestSet rs = testing::random_disjoint_workload(rng, 2, 4, 500);
  UtilityPartitionStrategy ucp(make_policy_factory("lru"), 100, /*decay=*/1.0);
  (void)simulate(sim_config(4, 1), rs, ucp);
  // With symmetric random cores and full memory, allocations stabilize; the
  // count stays far below the number of intervals.
  EXPECT_LT(ucp.repartitions(), 6u);
}

}  // namespace
}  // namespace mcp
