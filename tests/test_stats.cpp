// Unit tests for RunStats (core/stats.hpp): totals, PIF-style fault-vector
// queries and fairness.
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/error.hpp"

namespace mcp {
namespace {

RunStats sample() {
  RunStats stats(2);
  CoreStats& c0 = stats.core(0);
  c0.hits = 3;
  c0.faults = 2;
  c0.requests = 5;
  c0.completion_time = 10;
  c0.fault_times = {0, 6};
  CoreStats& c1 = stats.core(1);
  c1.hits = 1;
  c1.faults = 1;
  c1.requests = 2;
  c1.completion_time = 4;
  c1.fault_times = {0};
  return stats;
}

TEST(RunStats, Totals) {
  const RunStats stats = sample();
  EXPECT_EQ(stats.total_faults(), 3u);
  EXPECT_EQ(stats.total_hits(), 4u);
  EXPECT_EQ(stats.total_requests(), 7u);
  EXPECT_EQ(stats.makespan(), 10u);
  EXPECT_DOUBLE_EQ(stats.overall_fault_rate(), 3.0 / 7.0);
}

TEST(RunStats, FaultsBeforeCountsStrictlyEarlierIssues) {
  const RunStats stats = sample();
  EXPECT_EQ(stats.faults_before(0, 0), 0u);
  EXPECT_EQ(stats.faults_before(0, 1), 1u);
  EXPECT_EQ(stats.faults_before(0, 6), 1u);
  EXPECT_EQ(stats.faults_before(0, 7), 2u);
  EXPECT_EQ(stats.faults_before(0, 1000), 2u);
}

TEST(RunStats, FaultVectorAt) {
  const RunStats stats = sample();
  const std::vector<Count> at1 = {1, 1};
  const std::vector<Count> at7 = {2, 1};
  EXPECT_EQ(stats.fault_vector_at(1), at1);
  EXPECT_EQ(stats.fault_vector_at(7), at7);
}

TEST(RunStats, WithinBounds) {
  const RunStats stats = sample();
  EXPECT_TRUE(stats.within_bounds_at(7, {2, 1}));
  EXPECT_FALSE(stats.within_bounds_at(7, {1, 1}));
  EXPECT_TRUE(stats.within_bounds_at(7, {5, 5}));
}

TEST(RunStats, WithinBoundsRejectsWrongSize) {
  const RunStats stats = sample();
  EXPECT_THROW((void)stats.within_bounds_at(7, {1}), ModelError);
}

TEST(RunStats, FaultsBeforeRequiresTimeline) {
  RunStats stats(1);
  stats.core(0).faults = 2;  // but no fault_times recorded
  EXPECT_THROW((void)stats.faults_before(0, 1), ModelError);
}

TEST(RunStats, JainFairnessPerfectlyFair) {
  RunStats stats(2);
  for (CoreId j = 0; j < 2; ++j) {
    stats.core(j).requests = 10;
    stats.core(j).completion_time = 9;  // all hits: ideal
  }
  EXPECT_NEAR(stats.jain_fairness(), 1.0, 1e-12);
}

TEST(RunStats, JainFairnessUnfairRun) {
  RunStats stats(2);
  stats.core(0).requests = 10;
  stats.core(0).completion_time = 9;   // slowdown 1
  stats.core(1).requests = 10;
  stats.core(1).completion_time = 90;  // slowdown 10
  const double jain = stats.jain_fairness();
  EXPECT_LT(jain, 0.65);
  EXPECT_GE(jain, 0.5);  // floor is 1/p = 0.5
}

TEST(RunStats, ReportMentionsCounts) {
  const std::string report = sample().report("label");
  EXPECT_NE(report.find("label"), std::string::npos);
  EXPECT_NE(report.find("faults=3"), std::string::npos);
  EXPECT_NE(report.find("core 1"), std::string::npos);
}

TEST(RunStats, ToJsonSerializedShape) {
  RunStats stats = sample();
  stats.end_time = 12;
  const std::string json = stats.to_json();
  // Exact serialization is the contract: lab JSONL records embed this string
  // verbatim, so the field set and ordering must stay stable.
  char jain[32];
  std::snprintf(jain, sizeof(jain), "%.6f", stats.jain_fairness());
  EXPECT_EQ(json,
            "{\"total\":{\"requests\":7,\"faults\":3,\"hits\":4,"
            "\"fault_rate\":0.428571},"
            "\"makespan\":10,\"jain_fairness\":" +
                std::string(jain) +
                ",\"end_time\":12,\"cores\":["
                "{\"requests\":5,\"hits\":3,\"faults\":2,"
                "\"completion_time\":10},"
                "{\"requests\":2,\"hits\":1,\"faults\":1,"
                "\"completion_time\":4}]}");
}

TEST(RunStats, ToJsonEmptyRun) {
  const RunStats stats(0);
  EXPECT_EQ(stats.to_json(),
            "{\"total\":{\"requests\":0,\"faults\":0,\"hits\":0,"
            "\"fault_rate\":0.000000},\"makespan\":0,"
            "\"jain_fairness\":1.000000,\"end_time\":0,\"cores\":[]}");
}

TEST(RunStats, EmptyStatsAreSane) {
  RunStats stats(0);
  EXPECT_EQ(stats.total_faults(), 0u);
  EXPECT_EQ(stats.makespan(), 0u);
  EXPECT_DOUBLE_EQ(stats.overall_fault_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.jain_fairness(), 1.0);
}

}  // namespace
}  // namespace mcp
