// Unit tests for RunStats (core/stats.hpp): totals, PIF-style fault-vector
// queries and fairness.
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mcp {
namespace {

RunStats sample() {
  RunStats stats(2);
  CoreStats& c0 = stats.core(0);
  c0.hits = 3;
  c0.faults = 2;
  c0.requests = 5;
  c0.completion_time = 10;
  c0.fault_times = {0, 6};
  CoreStats& c1 = stats.core(1);
  c1.hits = 1;
  c1.faults = 1;
  c1.requests = 2;
  c1.completion_time = 4;
  c1.fault_times = {0};
  return stats;
}

TEST(RunStats, Totals) {
  const RunStats stats = sample();
  EXPECT_EQ(stats.total_faults(), 3u);
  EXPECT_EQ(stats.total_hits(), 4u);
  EXPECT_EQ(stats.total_requests(), 7u);
  EXPECT_EQ(stats.makespan(), 10u);
  EXPECT_DOUBLE_EQ(stats.overall_fault_rate(), 3.0 / 7.0);
}

TEST(RunStats, FaultsBeforeCountsStrictlyEarlierIssues) {
  const RunStats stats = sample();
  EXPECT_EQ(stats.faults_before(0, 0), 0u);
  EXPECT_EQ(stats.faults_before(0, 1), 1u);
  EXPECT_EQ(stats.faults_before(0, 6), 1u);
  EXPECT_EQ(stats.faults_before(0, 7), 2u);
  EXPECT_EQ(stats.faults_before(0, 1000), 2u);
}

TEST(RunStats, FaultVectorAt) {
  const RunStats stats = sample();
  const std::vector<Count> at1 = {1, 1};
  const std::vector<Count> at7 = {2, 1};
  EXPECT_EQ(stats.fault_vector_at(1), at1);
  EXPECT_EQ(stats.fault_vector_at(7), at7);
}

TEST(RunStats, WithinBounds) {
  const RunStats stats = sample();
  EXPECT_TRUE(stats.within_bounds_at(7, {2, 1}));
  EXPECT_FALSE(stats.within_bounds_at(7, {1, 1}));
  EXPECT_TRUE(stats.within_bounds_at(7, {5, 5}));
}

TEST(RunStats, WithinBoundsRejectsWrongSize) {
  const RunStats stats = sample();
  EXPECT_THROW((void)stats.within_bounds_at(7, {1}), ModelError);
}

TEST(RunStats, FaultsBeforeRequiresTimeline) {
  RunStats stats(1);
  stats.core(0).faults = 2;  // but no fault_times recorded
  EXPECT_THROW((void)stats.faults_before(0, 1), ModelError);
}

TEST(RunStats, JainFairnessPerfectlyFair) {
  RunStats stats(2);
  for (CoreId j = 0; j < 2; ++j) {
    stats.core(j).requests = 10;
    stats.core(j).completion_time = 9;  // all hits: ideal
  }
  EXPECT_NEAR(stats.jain_fairness(), 1.0, 1e-12);
}

TEST(RunStats, JainFairnessUnfairRun) {
  RunStats stats(2);
  stats.core(0).requests = 10;
  stats.core(0).completion_time = 9;   // slowdown 1
  stats.core(1).requests = 10;
  stats.core(1).completion_time = 90;  // slowdown 10
  const double jain = stats.jain_fairness();
  EXPECT_LT(jain, 0.65);
  EXPECT_GE(jain, 0.5);  // floor is 1/p = 0.5
}

TEST(RunStats, ReportMentionsCounts) {
  const std::string report = sample().report("label");
  EXPECT_NE(report.find("label"), std::string::npos);
  EXPECT_NE(report.find("faults=3"), std::string::npos);
  EXPECT_NE(report.find("core 1"), std::string::npos);
}

TEST(RunStats, ToJsonSerializedShape) {
  RunStats stats = sample();
  stats.end_time = 12;
  const std::string json = stats.to_json();
  // Exact serialization is the contract: lab JSONL records embed this string
  // verbatim, so the field set and ordering must stay stable.
  char jain[32];
  std::snprintf(jain, sizeof(jain), "%.6f", stats.jain_fairness());
  EXPECT_EQ(json,
            "{\"total\":{\"requests\":7,\"faults\":3,\"hits\":4,"
            "\"fault_rate\":0.428571},"
            "\"makespan\":10,\"jain_fairness\":" +
                std::string(jain) +
                ",\"end_time\":12,\"cores\":["
                "{\"requests\":5,\"hits\":3,\"faults\":2,"
                "\"completion_time\":10},"
                "{\"requests\":2,\"hits\":1,\"faults\":1,"
                "\"completion_time\":4}]}");
}

TEST(RunStats, ToJsonEmptyRun) {
  const RunStats stats(0);
  EXPECT_EQ(stats.to_json(),
            "{\"total\":{\"requests\":0,\"faults\":0,\"hits\":0,"
            "\"fault_rate\":0.000000},\"makespan\":0,"
            "\"jain_fairness\":1.000000,\"end_time\":0,\"cores\":[]}");
}

TEST(RunStats, EmptyStatsAreSane) {
  RunStats stats(0);
  EXPECT_EQ(stats.total_faults(), 0u);
  EXPECT_EQ(stats.makespan(), 0u);
  EXPECT_DOUBLE_EQ(stats.overall_fault_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.jain_fairness(), 1.0);
}

TEST(LatencyHistogram, EmptyHistogramIsZero) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.max_value(), 0u);
  EXPECT_EQ(hist.p50(), 0u);
  EXPECT_EQ(hist.p99(), 0u);
  EXPECT_EQ(hist.to_json(),
            "{\"count\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"max\":0}");
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Row 0 buckets (values < 32) hold exactly one value each, so quantiles
  // of small samples are exact.
  LatencyHistogram hist;
  for (std::uint64_t v = 1; v <= 20; ++v) hist.record(v);
  EXPECT_EQ(hist.count(), 20u);
  EXPECT_EQ(hist.max_value(), 20u);
  EXPECT_EQ(hist.p50(), 10u);
  EXPECT_EQ(hist.p90(), 18u);
  EXPECT_EQ(hist.quantile(1.0), 20u);
  EXPECT_EQ(hist.quantile(0.0), 1u);  // lowest recorded sample's bucket
}

TEST(LatencyHistogram, QuantileErrorIsBounded) {
  // Each bucket of row r spans 2^r values, so the relative error of a
  // quantile is below 2^(1-kSubBucketBits) (~6% at 32 sub-buckets).
  LatencyHistogram hist;
  Rng rng(0xABCD);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = 1 + rng.below(1'000'000'000);
    samples.push_back(v);
    hist.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const std::uint64_t exact =
        samples[static_cast<std::size_t>(
            q * static_cast<double>(samples.size() - 1))];
    const auto approx = static_cast<double>(hist.quantile(q));
    EXPECT_GE(approx, static_cast<double>(exact) * 0.99) << q;
    EXPECT_LE(approx, static_cast<double>(exact) * 1.07) << q;
  }
}

TEST(LatencyHistogram, QuantilesAreDeterministic) {
  // Same samples in any order -> identical quantiles (bucket upper edges,
  // no interpolation) — required for reproducible lab verdicts.
  LatencyHistogram forward;
  for (std::uint64_t v = 0; v < 5000; v += 7) forward.record(v);
  LatencyHistogram exact_backward;
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 5000; v += 7) values.push_back(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    exact_backward.record(*it);
  }
  EXPECT_EQ(forward.p50(), exact_backward.p50());
  EXPECT_EQ(forward.p90(), exact_backward.p90());
  EXPECT_EQ(forward.p99(), exact_backward.p99());
  EXPECT_EQ(forward.to_json(), exact_backward.to_json());
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  Rng rng(0x777);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng.below(1u << 20);
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max_value(), combined.max_value());
  EXPECT_EQ(a.p50(), combined.p50());
  EXPECT_EQ(a.p99(), combined.p99());
}

TEST(LatencyHistogram, ExtremeValuesBucketSafely) {
  LatencyHistogram hist;
  hist.record(0);
  hist.record(~std::uint64_t{0});  // top bucket: bit 63
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.max_value(), ~std::uint64_t{0});
  EXPECT_EQ(hist.quantile(1.0), ~std::uint64_t{0});  // clamped to max
  EXPECT_EQ(hist.quantile(0.25), 0u);
}

TEST(LatencyHistogram, RecordSecondsConvertsToNanoseconds) {
  LatencyHistogram hist;
  hist.record_seconds(1.5e-6);   // 1500 ns
  hist.record_seconds(-3.0);     // clamped to 0
  hist.record_seconds(0.0);
  EXPECT_EQ(hist.count(), 3u);
  // 1500 lands in a row-5 bucket (width 32): upper edge 1503.
  EXPECT_GE(hist.max_value(), 1500u);
  EXPECT_GE(hist.quantile(1.0), 1500u);
  EXPECT_LE(hist.quantile(1.0), 1503u);
}

}  // namespace
}  // namespace mcp
