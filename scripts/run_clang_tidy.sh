#!/usr/bin/env bash
# Runs clang-tidy (.clang-tidy profile) over the source tree against a
# compile_commands.json build.  Part of the checked-build analysis matrix
# (DESIGN.md section 10); advisory for local development, see
# CONTRIBUTING.md's pre-PR checklist.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Environment:
#   CLANG_TIDY  override the binary (default: first of clang-tidy,
#               clang-tidy-18 .. clang-tidy-14 on PATH)
#
# Exits 0 with a notice when no clang-tidy binary is installed (the repo's
# container ships only gcc; CI installs pinned LLVM tooling).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build-tidy"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
      clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "run_clang_tidy: no clang-tidy on PATH; skipping (install LLVM" \
       "tooling or set CLANG_TIDY)" >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DMCP_WERROR=OFF
fi

# Lint every first-party translation unit the compile database knows about.
mapfile -t FILES < <(python3 - "${BUILD_DIR}/compile_commands.json" <<'EOF'
import json, pathlib, sys
repo = pathlib.Path.cwd()
seen = set()
for entry in json.load(open(sys.argv[1])):
    path = pathlib.Path(entry["file"])
    try:
        rel = path.resolve().relative_to(repo)
    except ValueError:
        continue
    if rel.parts[0] in ("src", "tests", "bench", "examples"):
        seen.add(str(rel))
print("\n".join(sorted(seen)))
EOF
)

echo "run_clang_tidy: ${TIDY} over ${#FILES[@]} files (${BUILD_DIR})"
"${TIDY}" -p "${BUILD_DIR}" --quiet "$@" "${FILES[@]}"
