#!/usr/bin/env python3
"""Gate the perf-smoke CI job on the committed E13 baseline.

Compares a fresh google-benchmark JSON run (bench_baseline.sh output)
against the committed baseline and fails when the simulator's steps/sec
median regresses by more than the tolerance (default 25%).  Improvements
and regressions within tolerance pass; other counters are reported for
context but do not gate.

Usage:
  scripts/check_perf_regression.py CURRENT.json [BASELINE.json] [--tolerance 0.25]
"""
from __future__ import annotations

import argparse
import json
import sys

GATED_COUNTER = "steps_per_sec"
GATED_BENCHMARK = "BM_SharedPolicy/lru/4"
CONTEXT_COUNTERS = ("faults_per_sec", "curve_cells_per_sec", "cells_per_sec")


def load_medians(path: str) -> dict[str, dict[str, float]]:
    """Map benchmark name -> {counter: value} for median aggregates."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    medians: dict[str, dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("aggregate_name") != "median":
            continue
        name = bench["name"].removesuffix("_median")
        counters = {
            key: value
            for key, value in bench.items()
            if key == GATED_COUNTER or key in CONTEXT_COUNTERS
        }
        if counters:
            medians[name] = counters
    return medians


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench_baseline.sh JSON output")
    parser.add_argument(
        "baseline",
        nargs="?",
        default="bench/baseline/BENCH_E13.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default: %(default)s)",
    )
    args = parser.parse_args()

    current = load_medians(args.current)
    baseline = load_medians(args.baseline)

    failed = False
    for name in sorted(baseline):
        base_counters = baseline[name]
        cur_counters = current.get(name)
        if cur_counters is None:
            print(f"MISSING  {name}: benchmark absent from current run")
            failed = True
            continue
        for counter, base in sorted(base_counters.items()):
            cur = cur_counters.get(counter)
            if cur is None:
                print(f"MISSING  {name}.{counter}: counter absent")
                failed = True
                continue
            ratio = cur / base if base > 0 else float("inf")
            gated = name == GATED_BENCHMARK and counter == GATED_COUNTER
            regressed = ratio < 1.0 - args.tolerance
            tag = "GATE" if gated else "info"
            verdict = "FAIL" if (gated and regressed) else "ok"
            print(
                f"{verdict:4s} [{tag}] {name}.{counter}: "
                f"{cur:,.0f} vs baseline {base:,.0f} ({ratio:.2f}x)"
            )
            if gated and regressed:
                failed = True

    if failed:
        print(
            f"\nperf regression: {GATED_BENCHMARK}.{GATED_COUNTER} fell more "
            f"than {args.tolerance:.0%} below the committed baseline "
            f"({args.baseline}).  If the slowdown is intentional, regenerate "
            "the baseline with scripts/bench_baseline.sh and commit it.",
            file=sys.stderr,
        )
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
