#!/usr/bin/env python3
"""Gate the perf-smoke CI job on a committed benchmark baseline.

Compares a fresh google-benchmark JSON run (bench_baseline.sh output)
against the committed baseline and fails when any gated counter's median
regresses by more than the tolerance (default 25%).  Improvements and
regressions within tolerance pass; other counters are reported for context
but do not gate.

Gates are `BENCHMARK:COUNTER` pairs, repeatable:

  # E13 simulator gate (the default when no --gate is given)
  scripts/check_perf_regression.py CURRENT.json
  # offline engine gate (BENCH_OFFLINE.json)
  scripts/check_perf_regression.py CURRENT.json bench/baseline/BENCH_OFFLINE.json \
      --gate 'BM_FtfSolver/packed/48:states_per_sec' \
      --gate 'BM_PifSolver/packed/128:states_per_sec'
  # mcpd service gate (BENCH_MCPD.json, mcpd-loadgen output: daemon ingest
  # throughput at 1 shard plus aggregate shard capacity at 8 shards)
  scripts/check_perf_regression.py CURRENT.json bench/baseline/BENCH_MCPD.json \
      --gate 'mcpd_loadgen/shards/1:requests_per_sec' \
      --gate 'mcpd_loadgen/shards/8:capacity_rps'

Usage:
  scripts/check_perf_regression.py CURRENT.json [BASELINE.json]
      [--tolerance 0.25] [--gate NAME:COUNTER]...
"""
from __future__ import annotations

import argparse
import json
import sys

DEFAULT_GATES = (
    "BM_SharedPolicy/lru/4:steps_per_sec",
    # The batched lockstep sweep's aggregate throughput (BatchEngine under
    # SweepRunner::run_jobs); 25% default tolerance like every other gate.
    "BM_BatchSweep/64:cells_per_sec",
)
CONTEXT_COUNTERS = (
    "steps_per_sec",
    "faults_per_sec",
    "curve_cells_per_sec",
    "cells_per_sec",
    "lane_steps_per_sec",
    "states_per_sec",
    # Offline solver storage/parallel counters (BENCH_OFFLINE.json): the
    # projected W-worker solve rate (states / (serial_ns + busy_ns / W))
    # gated by the perf-smoke --speedup pair, and the interner's peak
    # resident bytes per stored state.
    "capacity_states_per_sec",
    "bytes_per_state",
    # Service layer (BM_McpdIngest and the mcpd-loadgen BENCH_MCPD.json):
    # daemon ingest pairs/sec, loadgen wall throughput, aggregate per-shard
    # capacity, and the epoch-latency tail.
    "pairs_per_sec",
    "requests_per_sec",
    "capacity_rps",
    "epoch_p99_ns",
)


def load_medians(path: str, counters: set[str]) -> dict[str, dict[str, float]]:
    """Map benchmark name -> {counter: value} for median aggregates."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    medians: dict[str, dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("aggregate_name") != "median":
            continue
        name = bench["name"].removesuffix("_median")
        found = {key: value for key, value in bench.items() if key in counters}
        if found:
            medians[name] = found
    return medians


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench_baseline.sh JSON output")
    parser.add_argument(
        "baseline",
        nargs="?",
        default="bench/baseline/BENCH_E13.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default: %(default)s)",
    )
    parser.add_argument(
        "--gate",
        action="append",
        metavar="NAME:COUNTER",
        help="gated benchmark/counter pair; repeatable "
        f"(default: {' '.join(DEFAULT_GATES)})",
    )
    parser.add_argument(
        "--speedup",
        action="append",
        nargs=3,
        metavar=("FAST", "SLOW", "MIN"),
        help="within-run ratio gate: fail unless the current run's median "
        "FAST counter is at least MIN times its SLOW counter (both "
        "NAME:COUNTER).  Unlike --gate this compares two scenarios of the "
        "same run, so it is immune to machine-speed drift; repeatable",
    )
    args = parser.parse_args()

    gates: set[tuple[str, str]] = set()
    for spec in args.gate or DEFAULT_GATES:
        name, sep, counter = spec.rpartition(":")
        if not sep or not name or not counter:
            parser.error(f"--gate must be NAME:COUNTER, got {spec!r}")
        gates.add((name, counter))

    speedups: list[tuple[str, str, str, str, float]] = []
    for fast_spec, slow_spec, min_spec in args.speedup or ():
        fast_name, fast_sep, fast_counter = fast_spec.rpartition(":")
        slow_name, slow_sep, slow_counter = slow_spec.rpartition(":")
        if not (fast_sep and fast_name and slow_sep and slow_name):
            parser.error(
                f"--speedup operands must be NAME:COUNTER, got "
                f"{fast_spec!r} {slow_spec!r}"
            )
        try:
            minimum = float(min_spec)
        except ValueError:
            parser.error(f"--speedup MIN must be a number, got {min_spec!r}")
        speedups.append(
            (fast_name, fast_counter, slow_name, slow_counter, minimum)
        )

    counters = (
        set(CONTEXT_COUNTERS)
        | {counter for _, counter in gates}
        | {c for _, fc, _, sc, _ in speedups for c in (fc, sc)}
    )
    current = load_medians(args.current, counters)
    baseline = load_medians(args.baseline, counters)

    failed = False
    failed_gates: list[str] = []
    for name in sorted(baseline):
        base_counters = baseline[name]
        cur_counters = current.get(name)
        if cur_counters is None:
            gated_bench = any(gate_name == name for gate_name, _ in gates)
            print(f"MISSING  {name}: benchmark absent from current run")
            failed = failed or gated_bench
            continue
        for counter, base in sorted(base_counters.items()):
            gated = (name, counter) in gates
            cur = cur_counters.get(counter)
            if cur is None:
                print(f"MISSING  {name}.{counter}: counter absent")
                failed = failed or gated
                continue
            ratio = cur / base if base > 0 else float("inf")
            regressed = ratio < 1.0 - args.tolerance
            tag = "GATE" if gated else "info"
            verdict = "FAIL" if (gated and regressed) else "ok"
            print(
                f"{verdict:4s} [{tag}] {name}.{counter}: "
                f"{cur:,.0f} vs baseline {base:,.0f} ({ratio:.2f}x)"
            )
            if gated and regressed:
                failed = True
                failed_gates.append(f"{name}.{counter}")

    for gate_name, _gate_counter in sorted(gates):
        if gate_name not in baseline:
            print(f"MISSING  {gate_name}: gated benchmark absent from baseline")
            failed = True

    for fast_name, fast_counter, slow_name, slow_counter, minimum in speedups:
        fast = current.get(fast_name, {}).get(fast_counter)
        slow = current.get(slow_name, {}).get(slow_counter)
        if fast is None or slow is None or slow <= 0:
            print(
                f"MISSING  speedup {fast_name}.{fast_counter} / "
                f"{slow_name}.{slow_counter}: data absent from current run"
            )
            failed = True
            failed_gates.append(f"{fast_name}.{fast_counter} speedup")
            continue
        ratio = fast / slow
        ok = ratio >= minimum
        print(
            f"{'ok' if ok else 'FAIL':4s} [GATE] {fast_name}.{fast_counter} / "
            f"{slow_name}.{slow_counter}: {ratio:.2f}x (need >= {minimum:g}x)"
        )
        if not ok:
            failed = True
            failed_gates.append(
                f"{fast_name}.{fast_counter} speedup {ratio:.2f}x < {minimum:g}x"
            )

    if failed:
        print(
            f"\nperf regression: {', '.join(failed_gates) or 'gated data missing'} "
            f"(baseline {args.baseline}, tolerance {args.tolerance:.0%}).  If "
            "the slowdown is intentional, regenerate the baseline with "
            "scripts/bench_baseline.sh and commit it.",
            file=sys.stderr,
        )
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
