#!/usr/bin/env bash
# Records the E13 engine perf baseline (bench/baseline/BENCH_E13.json).
#
# Builds the google-benchmark suite in Release and captures the benchmarks
# that gate the perf-smoke CI job: shared-LRU simulator throughput
# (steps/sec), the LRU fault-curve kernel (curve cells/sec), and the
# partition sweep (cells/sec).  Usage:
#
#   scripts/bench_baseline.sh [output.json]
#
# Environment: BUILD_DIR overrides the build directory (default:
# build-bench), BENCH_FILTER overrides the benchmark selection.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-bench/baseline/BENCH_E13.json}
BUILD=${BUILD_DIR:-build-bench}
FILTER=${BENCH_FILTER:-'BM_SharedPolicy/lru/4$|BM_LruFaultCurve/64$|BM_PartitionSweep/0$'}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
  -DMCP_BUILD_TESTS=OFF -DMCP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD" --target bench_sim_throughput -j "$(nproc)" >/dev/null

mkdir -p "$(dirname "$OUT")"
"$BUILD"/bench/bench_sim_throughput \
  --benchmark_filter="$FILTER" \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$OUT"
echo "wrote $OUT"
