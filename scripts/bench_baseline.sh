#!/usr/bin/env bash
# Records the engine perf baselines:
#
#   bench/baseline/BENCH_E13.json     — simulator/sweep counters (steps/sec,
#                                       fault-curve cells/sec, sweep cells/sec)
#   bench/baseline/BENCH_OFFLINE.json — offline solver engines (states/sec for
#                                       the packed and reference FTF/PIF
#                                       engines, the packed-speedup record)
#   bench/baseline/BENCH_MCPD.json    — mcpd service layer (mcpd-loadgen
#                                       requests/sec, capacity_rps and epoch
#                                       latency quantiles across shard counts;
#                                       mixed replay plus the homogeneous
#                                       batched/scalar cohort pair)
#
# Builds the google-benchmark suite and the loadgen in Release and captures
# the benchmarks that gate the perf-smoke CI job.  Usage:
#
#   scripts/bench_baseline.sh [e13_output.json [offline_output.json [mcpd_output.json]]]
#
# Environment: BUILD_DIR overrides the build directory (default:
# build-bench); BENCH_FILTER / OFFLINE_FILTER override the benchmark
# selections; LOADGEN_ARGS overrides the mcpd-loadgen invocation.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-bench/baseline/BENCH_E13.json}
OFFLINE_OUT=${2:-bench/baseline/BENCH_OFFLINE.json}
MCPD_OUT=${3:-bench/baseline/BENCH_MCPD.json}
BUILD=${BUILD_DIR:-build-bench}
FILTER=${BENCH_FILTER:-'BM_SharedPolicy/lru/4$|BM_LruFaultCurve/64$|BM_PartitionSweep/0$|BM_BatchSweep/(1|64)$|BM_McpdIngest/(1|4)$'}
OFFLINE_FILTER=${OFFLINE_FILTER:-'BM_FtfSolver/(packed|reference)/(24|40|48)$|BM_FtfSolverParallel/(1|8)$|BM_PifSolver/(packed|reference)/(32|64|128)$'}
LOADGEN_ARGS=${LOADGEN_ARGS:---shards=1,2,4,8 --tenants=64 --producers=2 --repetitions=5 --homogeneous}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
  -DMCP_BUILD_TESTS=OFF -DMCP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD" --target bench_sim_throughput mcpd-loadgen \
  -j "$(nproc)" >/dev/null

mkdir -p "$(dirname "$OUT")" "$(dirname "$OFFLINE_OUT")" "$(dirname "$MCPD_OUT")"

# Snapshot the outgoing baselines as *.before.json so a regeneration always
# leaves the previous medians next to the new ones for review (diffing the
# two is how an intentional perf change is documented in the PR).
for existing in "$OUT" "$OFFLINE_OUT" "$MCPD_OUT"; do
  if [ -f "$existing" ]; then
    cp "$existing" "${existing%.json}.before.json"
    echo "snapshotted ${existing%.json}.before.json"
  fi
done
"$BUILD"/bench/bench_sim_throughput \
  --benchmark_filter="$FILTER" \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$OUT"
echo "wrote $OUT"

"$BUILD"/bench/bench_sim_throughput \
  --benchmark_filter="$OFFLINE_FILTER" \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$OFFLINE_OUT"
echo "wrote $OFFLINE_OUT"

# shellcheck disable=SC2086  # LOADGEN_ARGS is intentionally word-split.
"$BUILD"/src/service/mcpd-loadgen $LOADGEN_ARGS >"$MCPD_OUT"
echo "wrote $MCPD_OUT"
