#!/usr/bin/env python3
"""Project lint — thin delegator to tools/verify/mcp_verify.py.

The four original rules (rng, builtin, hot-path, console) were absorbed
into mcp-verify in the static-analysis PR; their scopes and exemption
lists now live in tools/verify/rules.toml, so this script and the
`analyze` CI job cannot drift apart.  The CI `lint` job keeps calling
this entry point (after clang-format) with the same CLI:

  scripts/lint_project.py          # lint the tracked tree
  scripts/lint_project.py FILES... # lint specific files

Everything beyond the four classic rules (unordered-iter, wall-clock,
atomic-order, alloc-guard) runs in the `analyze` job via
`tools/verify/mcp_verify.py` directly.
"""
from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
MCP_VERIFY = REPO / "tools" / "verify" / "mcp_verify.py"
ABSORBED_RULES = "rng,builtin,hot-path,console"


def main(argv: list[str]) -> int:
    cmd = [sys.executable, str(MCP_VERIFY), "--rules", ABSORBED_RULES,
           *argv[1:]]
    return subprocess.run(cmd, cwd=REPO).returncode


if __name__ == "__main__":
    sys.exit(main(sys.argv))
