#!/usr/bin/env python3
"""Project-specific lint rules the generic tools don't cover.

Part of the checked-build analysis matrix (DESIGN.md section 10); the CI
`lint` job runs this after clang-format.  Each rule encodes a repo
convention with an explicit, justified exemption list — a new exemption is
a review decision, not a lint tweak.

Rules:
  rng        no `rand()` / `std::random_device` outside core/rng.hpp —
             every experiment must draw from the seed-stable SplitMix/PCG
             streams or sweeps stop being reproducible.
  builtin    no `__builtin_*` where C++20 <bit> has the portable spelling
             (popcount, countl_zero, countr_zero, bit_width, ...).
  hot-path   no `std::function` and no naked `new` in the engine hot paths
             (src/core + src/offline minus the declared control-plane /
             reference-engine files) — type-erased calls and untracked
             ownership are exactly what PR 3/4 removed.
  console    no console writes (<iostream>, std::cout/cerr/clog, printf
             family) under src/ outside src/lab — engines report through
             return values and ModelError; only the lab/driver layer talks
             to the terminal.  snprintf-into-buffer is fine.

Usage:
  scripts/lint_project.py          # lint the tracked tree
  scripts/lint_project.py FILES... # lint specific files
"""
from __future__ import annotations

import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# --- rule scopes -----------------------------------------------------------

LINT_SUFFIXES = {".hpp", ".cpp"}
LINT_ROOTS = ("src", "tests", "bench", "examples")

# rng: the one file allowed to name the underlying sources of randomness.
RNG_EXEMPT = {"src/core/rng.hpp"}

# hot-path: src/core + src/offline minus declared exemptions.
HOT_PATH_EXEMPT = {
    # Control plane: the pool's task queue and the sweep dispatch hold
    # type-erased callables by design; they run once per task, not per step.
    "src/core/thread_pool.hpp",
    "src/core/thread_pool.cpp",
    "src/core/parallel.hpp",
    # Reference engines / differential oracles: heap-backed by design,
    # retained for clarity, never on the measured path.
    "src/offline/state_space.hpp",
    "src/offline/state_space.cpp",
    "src/offline/exhaustive.cpp",
    "src/offline/competitive.hpp",
    # Defines the replacement operator new/delete themselves.
    "src/core/sentry.cpp",
}

# console: the lab/driver layer owns the terminal; sentry's nothrow-new
# violation path cannot throw, so it reports on stderr before aborting.
# Service CLI entry points (src/service/*_main.cpp) are driver executables
# — they emit benchmark JSON on stdout by design.  The service library
# itself (wire format, queue, shards, loadgen harness) stays covered.
CONSOLE_ALLOWED_PREFIXES = ("src/lab/",)
CONSOLE_EXEMPT = {"src/core/sentry.cpp"}
CONSOLE_EXEMPT_MAIN = re.compile(r"^src/service/[^/]*_main\.cpp$")

# --- rule patterns ---------------------------------------------------------

RE_RAND = re.compile(r"\b(?:std::)?random_device\b|(?<![\w:])rand\s*\(\s*\)")
RE_BUILTIN = re.compile(
    r"__builtin_(?:popcount(?:ll?)?|clz(?:ll?)?|ctz(?:ll?)?|"
    r"bswap(?:16|32|64)|rotateleft|rotateright)\b")
RE_STD_FUNCTION = re.compile(r"\bstd::function\s*<")
# Naked `new Foo`, `new (nothrow) Foo`, `new Foo[` — but not `operator new`
# (the sentry definitions) and not `new_handler`-style identifiers.
RE_NAKED_NEW = re.compile(r"(?<![\w:])new\s+[\w:(<]")
RE_OPERATOR_NEW = re.compile(r"operator\s+new")
RE_CONSOLE = re.compile(
    r"#\s*include\s*<iostream>|\bstd::(?:cout|cerr|clog)\b|"
    r"(?<![\w:])(?:fprintf|printf|puts|fputs)\s*\(")

RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')


def tracked_files() -> list[pathlib.Path]:
    out = subprocess.run(
        ["git", "ls-files", "--", *LINT_ROOTS],
        cwd=REPO, capture_output=True, text=True, check=True).stdout
    return [REPO / line for line in out.splitlines()
            if pathlib.Path(line).suffix in LINT_SUFFIXES]


def strip_noise(line: str) -> str:
    """Drop string literals and // comments so patterns see only code."""
    return RE_LINE_COMMENT.sub("", RE_STRING.sub('""', line))


def lint_file(path: pathlib.Path) -> list[str]:
    rel = path.relative_to(REPO).as_posix()
    in_src = rel.startswith("src/")
    hot_path = (rel.startswith(("src/core/", "src/offline/"))
                and rel not in HOT_PATH_EXEMPT)
    console_checked = (in_src
                       and not rel.startswith(CONSOLE_ALLOWED_PREFIXES)
                       and rel not in CONSOLE_EXEMPT
                       and not CONSOLE_EXEMPT_MAIN.match(rel))
    errors = []
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line, in_block_comment = strip_block_comments(raw, in_block_comment)
        line = strip_noise(line)

        def err(rule: str, msg: str) -> None:
            errors.append(f"{rel}:{lineno}: [{rule}] {msg}")

        if rel not in RNG_EXEMPT and RE_RAND.search(line):
            err("rng", "rand()/std::random_device outside core/rng.hpp "
                "(use the seed-stable mcp::Rng streams)")
        if RE_BUILTIN.search(line):
            err("builtin", "__builtin_* intrinsic; use the <bit> equivalent "
                "(std::popcount, std::countr_zero, ...)")
        if hot_path:
            if RE_STD_FUNCTION.search(line):
                err("hot-path", "std::function in an engine hot path; use a "
                    "template sink or a concrete callable")
            if (RE_NAKED_NEW.search(line)
                    and not RE_OPERATOR_NEW.search(line)):
                err("hot-path", "naked new in an engine hot path; use "
                    "containers or std::make_unique at the control plane")
        if console_checked and RE_CONSOLE.search(line):
            err("console", "console write outside src/lab (engines report "
                "through return values and ModelError)")
    return errors


def strip_block_comments(line: str, in_block: bool) -> tuple[str, bool]:
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block = False
        else:
            start = line.find("/*", i)
            if start == -1:
                out.append(line[i:])
                break
            out.append(line[i:start])
            i = start + 2
            in_block = True
    return "".join(out), in_block


def main(argv: list[str]) -> int:
    files = ([pathlib.Path(a).resolve() for a in argv[1:]]
             if len(argv) > 1 else tracked_files())
    errors = []
    for path in files:
        errors.extend(lint_file(path))
    for line in errors:
        print(line)
    if errors:
        print(f"lint_project: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_project: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
