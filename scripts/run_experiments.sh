#!/usr/bin/env bash
# Builds everything, runs the test suite and every experiment binary,
# capturing outputs next to the repo root (the files EXPERIMENTS.md cites).
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
status=0
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==> $b" | tee -a bench_output.txt
  if ! "$b" >> bench_output.txt 2>&1; then
    echo "FAILED: $b" | tee -a bench_output.txt
    status=1
  fi
done
exit $status
