#!/usr/bin/env bash
# Builds everything, runs the test suite and the full experiment suite via
# mcpaging-lab, capturing outputs next to the repo root (the files
# EXPERIMENTS.md cites) plus the machine-readable JSONL record ledger.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt
status=${PIPESTATUS[0]}

# One driver runs E1..E18, renders every table, writes one JSONL record per
# experiment, and exits nonzero if any claim's shape FAILs.
if ! ./build/bench/mcpaging-lab --all --json lab_results.jsonl 2>&1 \
    | tee bench_output.txt; then
  status=1
fi
exit "$status"
