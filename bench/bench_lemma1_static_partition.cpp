// Experiment E1 — Lemma 1: with a fixed static partition B, any
// deterministic online eviction policy is Theta(max_j k_j)-competitive
// against the per-part offline optimum sP^B_OPT.
//
// Lower bound: the adaptive adversary (request whatever the algorithm just
// evicted) drives the measured ratio toward max_j k_j as k grows.
// Upper bound: on random locality workloads the ratio never exceeds
// max_j k_j for marking/conservative policies (LRU, FIFO).
#include <algorithm>

#include "adversary/adversary.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

double random_workload_ratio(const Partition& partition,
                             const std::string& policy, std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kZipf;
  core.num_pages = 24;
  core.length = 3000;
  const RequestSet rs =
      make_workload(homogeneous_spec(partition.size(), core, true, seed));
  Count online = 0;
  Count opt = 0;
  for (CoreId j = 0; j < partition.size(); ++j) {
    online += single_core_policy_faults(rs.sequence(j), partition[j],
                                        make_policy_factory(policy));
    opt += belady_faults(rs.sequence(j), partition[j]);
  }
  return static_cast<double>(online) / static_cast<double>(opt);
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& lower = b.series(
      "adversarial_ratio_vs_k",
      "Lower bound (adaptive adversary, p=2, n/core=600):",
      {"max_k", "LRU", "FIFO", "CLOCK", "MARK"});
  // The adversarial fault curves are constructed by the parallel sweep in
  // lemma1_fault_curve (one independent simulation per k_max cell).
  const std::vector<std::size_t> k_values = {2, 4, 8, 12, 16};
  std::vector<std::vector<AdversaryCurvePoint>> curves;
  for (const char* policy : {"lru", "fifo", "clock", "mark"}) {
    curves.push_back(lemma1_fault_curve(k_values, policy, 600));
  }
  std::vector<double> lru_series;
  for (std::size_t row = 0; row < k_values.size(); ++row) {
    lab::Row cells;
    cells.emplace_back(static_cast<std::uint64_t>(k_values[row]));
    for (std::size_t c = 0; c < curves.size(); ++c) {
      const double ratio = curves[c][row].ratio();
      cells.emplace_back(ratio);
      if (c == 0) lru_series.push_back(ratio);
    }
    lower.add_row(std::move(cells));
  }

  auto& upper = b.series(
      "zipf_upper_bound",
      "Upper bound (Zipf workloads, ratio must stay <= max_j k_j):",
      {"partition", "LRU", "FIFO", "bound"});
  bool upper_ok = true;
  for (const Partition& partition :
       {Partition{4, 4}, Partition{8, 4}, Partition{12, 2}}) {
    const double bound =
        static_cast<double>(*std::max_element(partition.begin(), partition.end()));
    lab::Row cells;
    cells.emplace_back(partition_to_string(partition));
    for (const char* policy : {"lru", "fifo"}) {
      const double ratio = random_workload_ratio(partition, policy, 42);
      cells.emplace_back(ratio);
      upper_ok = upper_ok && ratio <= bound + 1e-9;
    }
    cells.emplace_back(bound);
    upper.add_row(std::move(cells));
  }

  const bool lower_ok = lru_series.back() > 3.0 * lru_series.front() &&
                        lru_series.back() > 10.0;
  return std::move(b).finish(lower_ok && upper_ok,
                             "adversarial ratio scales with max k_j and random-"
                             "workload ratios respect the k_max upper bound");
}

}  // namespace

void mcp::experiments::register_e1(lab::ExperimentRegistry& registry) {
  registry.add({
      "E1",
      "Lemma 1 — online policy vs sP^B_OPT on a fixed partition",
      "adversarial ratio grows ~linearly with max_j k_j; on any input the "
      "ratio stays <= max_j k_j (upper bound)",
      "EXPERIMENTS.md §E1; paper Lemma 1",
      {"lemma", "online", "partition", "adversary"},
      "p=2, n/core=600, max_k in {2,4,8,12,16}; Zipf partitions [4,4] [8,4] "
      "[12,2]",
      run,
  });
}
