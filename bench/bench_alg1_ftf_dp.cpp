// Experiment E8 — Theorem 6 / Algorithm 1: the optimal FTF solver is
// polynomial in the sequence length n (for constant K, p) but exponential
// in K and p.  We measure states stored and wall time on both axes, and
// re-verify exactness against the simulator-driven exhaustive search.
#include <chrono>

#include "core/rng.hpp"
#include "experiments.hpp"
#include "offline/exhaustive.hpp"
#include "offline/ftf_solver.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

OfflineInstance random_instance(std::size_t p, std::size_t pages_per_core,
                                std::size_t per_core, std::size_t K, Time tau,
                                std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = pages_per_core;
  core.length = per_core;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(p, core, true, seed));
  inst.cache_size = K;
  inst.tau = tau;
  return inst;
}

double solve_ms(const OfflineInstance& inst, OfflineEngine engine,
                FtfResult* out) {
  FtfOptions options;
  options.engine = engine;
  const auto start = std::chrono::steady_clock::now();
  *out = solve_ftf(inst, options);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// States stored per second, in thousands (the perf-gate unit).
double kstates_per_sec(std::size_t states, double ms) {
  return ms <= 0.0 ? 0.0 : static_cast<double>(states) / ms;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& n_table = b.series(
      "states_vs_n", "Scaling in n (p=2, K=2, tau=1, 3 pages/core):",
      {"n/core", "faults", "states", "ms", "kstates/s", "states/n^2"});
  std::vector<double> per_n2;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const OfflineInstance inst = random_instance(2, 3, n, 2, 1, 77);
    FtfResult result;
    const double ms = solve_ms(inst, OfflineEngine::kPacked, &result);
    const double nn = static_cast<double>(n);
    per_n2.push_back(static_cast<double>(result.states_stored) / (nn * nn));
    n_table.row(static_cast<std::uint64_t>(n), result.min_faults,
                static_cast<std::uint64_t>(result.states_stored), ms,
                kstates_per_sec(result.states_stored, ms), per_n2.back());
  }

  auto& k_table = b.series(
      "states_vs_k", "Scaling in K (p=2, n/core=16, 5 pages/core, tau=1):",
      {"K", "faults", "states", "ms", "kstates/s"});
  std::vector<std::size_t> states_by_k;
  for (std::size_t K : {2u, 3u, 4u, 5u}) {
    const OfflineInstance inst = random_instance(2, 5, 16, K, 1, 78);
    FtfResult result;
    const double ms = solve_ms(inst, OfflineEngine::kPacked, &result);
    states_by_k.push_back(result.states_stored);
    k_table.row(static_cast<std::uint64_t>(K), result.min_faults,
                static_cast<std::uint64_t>(result.states_stored), ms,
                kstates_per_sec(result.states_stored, ms));
  }

  // Packed vs reference: same optimum, states/sec ratio (BENCH_OFFLINE.json
  // carries the regression-gated medians; these are single-shot).
  auto& engine_table = b.series(
      "engine_speedup",
      "Packed (interned bitsets + Dial) vs reference (heap Dijkstra):",
      {"n/core", "ref_ms", "packed_ms", "ref_kst/s", "packed_kst/s",
       "speedup"});
  bool engines_agree = true;
  for (std::size_t n : {40u, 48u, 64u}) {
    // Denser instances than the scaling series (5 pages/core, K=4, tau=2):
    // wide victim branching is where the packed encoding pays off most.
    const OfflineInstance inst = random_instance(2, 5, n, 4, 2, 78);
    FtfResult packed;
    FtfResult ref;
    const double packed_ms = solve_ms(inst, OfflineEngine::kPacked, &packed);
    const double ref_ms = solve_ms(inst, OfflineEngine::kReference, &ref);
    engines_agree = engines_agree && packed.min_faults == ref.min_faults;
    engine_table.row(static_cast<std::uint64_t>(n), ref_ms, packed_ms,
                     kstates_per_sec(ref.states_stored, ref_ms),
                     kstates_per_sec(packed.states_stored, packed_ms),
                     packed_ms <= 0.0 ? 0.0 : ref_ms / packed_ms);
  }

  b.note("Exactness spot-check vs exhaustive search (10 instances):");
  Rng rng(99);
  bool exact = true;
  for (int trial = 0; trial < 10; ++trial) {
    const OfflineInstance inst =
        random_instance(2, 3, 5, 2, rng.below(3), 200 + static_cast<std::uint64_t>(trial));
    const Count dp = solve_ftf(inst).min_faults;
    const Count brute = exhaustive_ftf(inst).min_faults;
    if (dp != brute) {
      exact = false;
      b.notef("  MISMATCH trial %d: dp=%llu brute=%llu", trial,
              static_cast<unsigned long long>(dp),
              static_cast<unsigned long long>(brute));
    }
  }
  b.notef("  %s", exact ? "all exact" : "MISMATCH FOUND");

  // Polynomial in n: states/n^2 must not explode (allow slack for small-n
  // noise).  Exponential-ish in K: strictly increasing states.
  const bool poly_n = per_n2.back() < 4.0 * per_n2.front();
  const bool grows_k = states_by_k.back() > 4 * states_by_k.front();
  return std::move(b).finish(poly_n && grows_k && exact && engines_agree,
                             "poly-in-n, exponential-in-K scaling; exact "
                             "optimum; engines agree");
}

}  // namespace

void mcp::experiments::register_e8(lab::ExperimentRegistry& registry) {
  registry.add({
      "E8",
      "Theorem 6 / Algorithm 1 — optimal FTF solver scaling",
      "polynomial in n for fixed K,p; exponential in K and p; always exact "
      "(== exhaustive search)",
      "EXPERIMENTS.md §E8; paper Theorem 6 / Algorithm 1",
      {"theorem", "offline", "solver", "scaling"},
      "n in {8..128} at K=2; K in {2..5} at n=16; 10 exactness trials",
      run,
  });
}
