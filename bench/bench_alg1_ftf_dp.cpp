// Experiment E8 — Theorem 6 / Algorithm 1: the optimal FTF solver is
// polynomial in the sequence length n (for constant K, p) but exponential
// in K and p.  We measure states stored and wall time on both axes, and
// re-verify exactness against the simulator-driven exhaustive search.
#include <algorithm>
#include <array>
#include <chrono>

#include "core/rng.hpp"
#include "experiments.hpp"
#include "offline/exhaustive.hpp"
#include "offline/ftf_solver.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

OfflineInstance random_instance(std::size_t p, std::size_t pages_per_core,
                                std::size_t per_core, std::size_t K, Time tau,
                                std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = pages_per_core;
  core.length = per_core;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(p, core, true, seed));
  inst.cache_size = K;
  inst.tau = tau;
  return inst;
}

double solve_ms(const OfflineInstance& inst, OfflineEngine engine,
                FtfResult* out) {
  FtfOptions options;
  options.engine = engine;
  const auto start = std::chrono::steady_clock::now();
  *out = solve_ftf(inst, options);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// States stored per second, in thousands (the perf-gate unit).
double kstates_per_sec(std::size_t states, double ms) {
  return ms <= 0.0 ? 0.0 : static_cast<double>(states) / ms;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& n_table = b.series(
      "states_vs_n", "Scaling in n (p=2, K=2, tau=1, 3 pages/core):",
      {"n/core", "faults", "states", "ms", "kstates/s", "states/n^2"});
  std::vector<double> per_n2;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const OfflineInstance inst = random_instance(2, 3, n, 2, 1, 77);
    FtfResult result;
    const double ms = solve_ms(inst, OfflineEngine::kPacked, &result);
    const double nn = static_cast<double>(n);
    per_n2.push_back(static_cast<double>(result.states_stored) / (nn * nn));
    n_table.row(static_cast<std::uint64_t>(n), result.min_faults,
                static_cast<std::uint64_t>(result.states_stored), ms,
                kstates_per_sec(result.states_stored, ms), per_n2.back());
  }

  auto& k_table = b.series(
      "states_vs_k", "Scaling in K (p=2, n/core=16, 5 pages/core, tau=1):",
      {"K", "faults", "states", "ms", "kstates/s"});
  std::vector<std::size_t> states_by_k;
  for (std::size_t K : {2u, 3u, 4u, 5u}) {
    const OfflineInstance inst = random_instance(2, 5, 16, K, 1, 78);
    FtfResult result;
    const double ms = solve_ms(inst, OfflineEngine::kPacked, &result);
    states_by_k.push_back(result.states_stored);
    k_table.row(static_cast<std::uint64_t>(K), result.min_faults,
                static_cast<std::uint64_t>(result.states_stored), ms,
                kstates_per_sec(result.states_stored, ms));
  }

  // Packed vs reference: same optimum, states/sec ratio (BENCH_OFFLINE.json
  // carries the regression-gated medians; these are single-shot).
  auto& engine_table = b.series(
      "engine_speedup",
      "Packed (interned bitsets + Dial) vs reference (heap Dijkstra):",
      {"n/core", "ref_ms", "packed_ms", "ref_kst/s", "packed_kst/s",
       "speedup"});
  bool engines_agree = true;
  for (std::size_t n : {40u, 48u, 64u}) {
    // Denser instances than the scaling series (5 pages/core, K=4, tau=2):
    // wide victim branching is where the packed encoding pays off most.
    const OfflineInstance inst = random_instance(2, 5, n, 4, 2, 78);
    FtfResult packed;
    FtfResult ref;
    const double packed_ms = solve_ms(inst, OfflineEngine::kPacked, &packed);
    const double ref_ms = solve_ms(inst, OfflineEngine::kReference, &ref);
    engines_agree = engines_agree && packed.min_faults == ref.min_faults;
    engine_table.row(static_cast<std::uint64_t>(n), ref_ms, packed_ms,
                     kstates_per_sec(ref.states_stored, ref_ms),
                     kstates_per_sec(packed.states_stored, packed_ms),
                     packed_ms <= 0.0 ? 0.0 : ref_ms / packed_ms);
  }

  // Bucket-synchronous parallel expansion: schedules are bit-identical at
  // any worker count, so the series re-checks the invariants and reports
  // the projected capacity at W dedicated workers — states / (serial_ns +
  // expand_busy_ns / W), with serial_ns the solve wall minus the parallel
  // expansion/dedup passes and expand_busy_ns their summed thread CPU time
  // (the capacity_rps convention; the wall clock itself cannot show the
  // speedup on a small or oversubscribed machine).  Every row projects the
  // same measured split at that row's W — busy is CPU time, so the split
  // does not depend on the executing worker count — making the w=1 row the
  // engine's own single-worker projection, the Amdahl denominator of
  // speedup8.  The w=1 wall columns show the serial reference path for
  // scale.
  auto& par_table = b.series(
      "ftf_parallel_speedup",
      "Chunked-wave expansion (3 cores, 20 req/core, 5 pages/core, K=5, "
      "tau=2):",
      {"workers", "ms", "kstates/s", "capacity_kst/s", "speedup"});
  bool parallel_agrees = true;
  double speedup8 = 0.0;
  {
    const OfflineInstance inst = random_instance(3, 5, 20, 5, 2, 78);
    FtfOptions options;
    options.engine = OfflineEngine::kPacked;
    options.workers = 1;
    const auto s0 = std::chrono::steady_clock::now();
    const FtfResult serial = solve_ftf(inst, options);
    const auto s1 = std::chrono::steady_clock::now();
    const double serial_wall_ns =
        std::chrono::duration<double, std::nano>(s1 - s0).count();
    double split_serial_ns = 0.0;
    double split_busy_ns = 0.0;
    std::array<double, 4> wall_by_row{serial_wall_ns, 0.0, 0.0, 0.0};
    for (std::size_t row = 1; row < 4; ++row) {
      const std::size_t w = std::size_t{1} << row;
      options.workers = w;
      const auto start = std::chrono::steady_clock::now();
      const FtfResult result = solve_ftf(inst, options);
      const auto stop = std::chrono::steady_clock::now();
      const double wall_ns =
          std::chrono::duration<double, std::nano>(stop - start).count();
      wall_by_row[row] = wall_ns;
      parallel_agrees = parallel_agrees &&
                        result.min_faults == serial.min_faults &&
                        result.states_expanded == serial.states_expanded &&
                        result.states_stored == serial.states_stored;
      // Every chunked run measures the same underlying split; scheduler
      // noise only inflates either side, so keep the smallest estimates.
      const double run_serial_ns =
          wall_ns - static_cast<double>(result.expand_wall_ns);
      if (split_serial_ns == 0.0 || run_serial_ns < split_serial_ns) {
        split_serial_ns = run_serial_ns;
      }
      const double run_busy_ns = static_cast<double>(result.expand_busy_ns);
      if (split_busy_ns == 0.0 || run_busy_ns < split_busy_ns) {
        split_busy_ns = run_busy_ns;
      }
    }
    const auto capacity = [&](std::size_t w) {
      const double projected_ns =
          split_serial_ns + split_busy_ns / static_cast<double>(w);
      return kstates_per_sec(serial.states_stored, projected_ns / 1e6);
    };
    for (std::size_t row = 0; row < 4; ++row) {
      const std::size_t w = std::size_t{1} << row;
      const double speedup = capacity(w) / capacity(1);
      if (w == 8) speedup8 = speedup;
      par_table.row(static_cast<std::uint64_t>(w), wall_by_row[row] / 1e6,
                    kstates_per_sec(serial.states_stored,
                                    wall_by_row[row] / 1e6),
                    capacity(w), speedup);
    }
  }

  // Out-of-core storage: rerun an instance under a RAM budget of a quarter
  // of its state-arena footprint (the spillable quantity — side arrays
  // never spill) and check the spilled solve stays bit-equal while
  // actually evicting.
  auto& spill_table = b.series(
      "bytes_per_state",
      "Interner footprint, unbounded vs quarter-RAM spill budget:",
      {"n/core", "states", "bytes/state", "peak_kb", "budget_kb", "spill_kb"});
  bool spill_agrees = true;
  for (std::size_t n : {32u, 48u}) {
    const OfflineInstance inst = random_instance(2, 5, n, 4, 2, 78);
    FtfOptions clean_options;
    clean_options.engine = OfflineEngine::kPacked;
    clean_options.workers = 1;
    const FtfResult clean = solve_ftf(inst, clean_options);
    FtfOptions budget_options = clean_options;
    budget_options.expected_states = clean.states_stored;
    budget_options.storage.segment_bytes = 1024;
    budget_options.storage.ram_bytes =
        std::max<std::size_t>(clean.arena_bytes / 4, 2048);
    const FtfResult budgeted = solve_ftf(inst, budget_options);
    spill_agrees = spill_agrees && budgeted.min_faults == clean.min_faults &&
                   budgeted.states_stored == clean.states_stored &&
                   budgeted.bytes_spilled > 0;
    spill_table.row(
        static_cast<std::uint64_t>(n),
        static_cast<std::uint64_t>(clean.states_stored),
        static_cast<double>(clean.peak_bytes_in_ram) /
            static_cast<double>(clean.states_stored),
        static_cast<double>(clean.peak_bytes_in_ram) / 1024.0,
        static_cast<double>(budget_options.storage.ram_bytes) / 1024.0,
        static_cast<double>(budgeted.bytes_spilled) / 1024.0);
  }

  b.note("Exactness spot-check vs exhaustive search (10 instances):");
  Rng rng(99);
  bool exact = true;
  for (int trial = 0; trial < 10; ++trial) {
    const OfflineInstance inst =
        random_instance(2, 3, 5, 2, rng.below(3), 200 + static_cast<std::uint64_t>(trial));
    const Count dp = solve_ftf(inst).min_faults;
    const Count brute = exhaustive_ftf(inst).min_faults;
    if (dp != brute) {
      exact = false;
      b.notef("  MISMATCH trial %d: dp=%llu brute=%llu", trial,
              static_cast<unsigned long long>(dp),
              static_cast<unsigned long long>(brute));
    }
  }
  b.notef("  %s", exact ? "all exact" : "MISMATCH FOUND");

  // Polynomial in n: states/n^2 must not explode (allow slack for small-n
  // noise).  Exponential-ish in K: strictly increasing states.
  const bool poly_n = per_n2.back() < 4.0 * per_n2.front();
  const bool grows_k = states_by_k.back() > 4 * states_by_k.front();
  // The 8-worker capacity projection must clear the same 3x floor the
  // perf-smoke --speedup gate enforces on BENCH_OFFLINE.json.
  const bool parallel_ok = parallel_agrees && speedup8 >= 3.0;
  return std::move(b).finish(
      poly_n && grows_k && exact && engines_agree && parallel_ok &&
          spill_agrees,
      "poly-in-n, exponential-in-K scaling; exact optimum; engines agree; "
      "parallel waves bit-equal with >=3x projected capacity at 8 workers; "
      "quarter-budget spill bit-equal");
}

}  // namespace

void mcp::experiments::register_e8(lab::ExperimentRegistry& registry) {
  registry.add({
      "E8",
      "Theorem 6 / Algorithm 1 — optimal FTF solver scaling",
      "polynomial in n for fixed K,p; exponential in K and p; always exact "
      "(== exhaustive search)",
      "EXPERIMENTS.md §E8; paper Theorem 6 / Algorithm 1",
      {"theorem", "offline", "solver", "scaling"},
      "n in {8..128} at K=2; K in {2..5} at n=16; workers in {1..8}; "
      "quarter-budget spill reruns; 10 exactness trials",
      run,
  });
}
