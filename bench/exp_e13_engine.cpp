// Experiment E13 — engine throughput, lab edition.  The full
// google-benchmark microbenchmark suite lives in bench_sim_throughput
// (run it directly; pass --benchmark_format=json for machine-readable
// counters).  This registration measures a compact single-pass version of
// the same quantities so the lab driver can record them in the JSONL
// trajectory: simulator requests/sec per strategy family, and the sweep
// engine's cells/sec with a worker-count determinism check (results must be
// bit-identical at 1, 2 and all hardware workers — the PR-1 contract).
#include <chrono>

#include "core/batch_state.hpp"
#include "core/simulator.hpp"
#include "core/stats.hpp"
#include "core/sweep.hpp"
#include "experiments.hpp"
#include "policies/belady.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/partition.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

RequestSet zipf_workload(std::size_t p, std::size_t pages, std::size_t length,
                         std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kZipf;
  core.num_pages = pages;
  core.length = length;
  return make_workload(homogeneous_spec(p, core, true, seed));
}

lab::ExperimentResult run(const lab::RunContext& ctx) {
  lab::ResultBuilder b;

  auto& throughput = b.series(
      "strategy_throughput",
      "Simulator throughput (p=4, K=64, tau=4, zipf, single pass):",
      {"strategy", "faults", "Mreq/s", "Msteps/s", "Mfaults/s"});
  const RequestSet rs = zipf_workload(4, 64, 4000, 5);
  SimConfig cfg;
  cfg.cache_size = 64;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  bool rates_positive = true;
  const auto measure = [&](const std::string& name, CacheStrategy& strategy) {
    const auto start = std::chrono::steady_clock::now();
    const RunStats stats = simulate(cfg, rs, strategy);
    const auto stop = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(stop - start).count();
    const auto rate = [secs](Count n) {
      return secs > 0.0 ? static_cast<double>(n) / secs / 1e6 : 0.0;
    };
    const double mreq_s = rate(rs.total_requests());
    rates_positive = rates_positive && mreq_s > 0.0;
    throughput.row(name, stats.total_faults(), mreq_s, rate(stats.sim_steps),
                   rate(stats.total_faults()));
  };
  SharedStrategy lru(make_policy_factory("lru", 7));
  measure("S_LRU", lru);
  StaticPartitionStrategy even(even_partition(64, 4),
                               make_policy_factory("lru"));
  measure("sP_even_LRU", even);
  Lemma3DynamicPartition lemma3;
  measure("dP_lemma3", lemma3);
  auto fitf = SharedStrategy::fitf();
  measure("S_FITF", *fitf);

  // Sweep-engine determinism: the 105-cell partition sweep from the
  // microbenchmark, run at worker caps 1 / 2 / all — the fault vectors must
  // match bit-for-bit (PR-1 contract, tested again here from the driver's
  // master seed).
  auto& sweep_table = b.series(
      "sweep_worker_scaling",
      "Partition sweep (K=16, p=3, 105 cells) across worker caps:",
      {"workers", "cells", "wall_s", "cells/s", "identical"});
  const RequestSet sweep_rs = zipf_workload(3, 48, 1500, 11);
  SimConfig sweep_cfg;
  sweep_cfg.cache_size = 16;
  sweep_cfg.fault_penalty = 4;
  sweep_cfg.record_fault_timeline = false;
  const PolicyFactory lru_factory = make_policy_factory("lru");
  const std::vector<Partition> grid = enumerate_partitions(16, 3, 1);
  std::vector<Count> baseline;
  bool deterministic = true;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    SweepRunner sweep(SweepOptions{ctx.master_seed, workers});
    const std::vector<Count> faults =
        sweep.run(grid.size(), [&](std::size_t i, Rng& /*rng*/) {
          StaticPartitionStrategy strategy(grid[i], lru_factory);
          return simulate(sweep_cfg, sweep_rs, strategy).total_faults();
        });
    if (baseline.empty()) baseline = faults;
    const bool identical = faults == baseline;
    deterministic = deterministic && identical;
    const SweepTiming& t = sweep.last_timing();
    sweep_table.row(workers == 0 ? "all" : std::to_string(workers),
                    static_cast<std::uint64_t>(t.cells), t.wall_seconds,
                    t.cells_per_second(), identical ? "yes" : "NO");
    b.sweep("E13.partition_sweep.w" +
                (workers == 0 ? std::string("all") : std::to_string(workers)),
            t);
  }

  // Batched sweep: the same 105 partition jobs as lockstep lanes through
  // the batch engine (SweepRunner::run_jobs).  The fault vector must match
  // the scalar sweep bit-for-bit at every batch width — the batch engine's
  // differential contract, re-checked here from the driver's seed — and the
  // Mcells/s column quantifies the structure-of-arrays win over the
  // per-cell strategy objects above.
  auto& batch_table = b.series(
      "batch_sweep",
      "Batched partition sweep (same 105 cells, lockstep lanes):",
      {"B", "cells", "wall_s", "Mcells/s", "Mlane_steps/s", "identical"});
  std::vector<SimJob> batch_jobs(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    batch_jobs[i].config = sweep_cfg;
    batch_jobs[i].requests = &sweep_rs;
    batch_jobs[i].strategy =
        BatchStrategySpec::static_partition(grid[i], BatchPolicy::kLru);
  }
  bool batch_identical = true;
  for (const std::size_t width : {std::size_t{1}, std::size_t{32}}) {
    SweepRunner sweep(SweepOptions{ctx.master_seed, ctx.workers});
    const std::vector<RunStats> stats = sweep.run_jobs(batch_jobs, width);
    std::vector<Count> faults(stats.size());
    Count lane_steps = 0;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      faults[i] = stats[i].total_faults();
      lane_steps += stats[i].sim_steps;
    }
    const bool identical = faults == baseline;
    batch_identical = batch_identical && identical;
    const SweepTiming& t = sweep.last_timing();
    const double rate = t.wall_seconds > 0.0
                            ? static_cast<double>(lane_steps) / t.wall_seconds
                            : 0.0;
    batch_table.row(std::to_string(width),
                    static_cast<std::uint64_t>(t.cells), t.wall_seconds,
                    t.cells_per_second() / 1e6, rate / 1e6,
                    identical ? "yes" : "NO");
    b.sweep("E13.batch_sweep.b" + std::to_string(width), t);
  }

  // LRU fault-curve kernel: the single-pass Mattson path of
  // policy_fault_curves against the per-k reference loop it replaced; the
  // curves must agree cell-for-cell.
  auto& curve_table = b.series(
      "lru_fault_curve",
      "LRU fault curves f_j(0..K), p=4, K=64, zipf n=4x20000:",
      {"path", "cells", "wall_s", "cells/s"});
  const RequestSet curve_rs = zipf_workload(4, 96, 20000, 12);
  const std::size_t curve_k = 64;
  const PolicyFactory curve_lru = make_policy_factory("lru");
  const auto time_curves = [&](const char* label, auto&& build) {
    const auto start = std::chrono::steady_clock::now();
    FaultCurves curves = build();
    const auto stop = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(stop - start).count();
    const std::uint64_t cells =
        static_cast<std::uint64_t>(curves.size()) * (curve_k + 1);
    curve_table.row(label, cells, secs,
                    secs > 0.0 ? static_cast<double>(cells) / secs : 0.0);
    return curves;
  };
  const FaultCurves mattson = time_curves("mattson_single_pass", [&] {
    return policy_fault_curves(curve_rs, curve_k, curve_lru);
  });
  const FaultCurves per_k = time_curves("per_k_reference", [&] {
    FaultCurves curves(curve_rs.num_cores());
    for (CoreId j = 0; j < curve_rs.num_cores(); ++j) {
      curves[j].resize(curve_k + 1);
      for (std::size_t k = 0; k <= curve_k; ++k) {
        curves[j][k] =
            single_core_policy_faults(curve_rs.sequence(j), k, curve_lru);
      }
    }
    return curves;
  });
  const bool curves_agree = mattson == per_k;

  // Per-cell latency distribution: every cell of the 105-cell sweep timed
  // individually into the log-bucketed LatencyHistogram (core/stats.hpp) —
  // the same helper mcpd's shards and the loadgen use for epoch latency.
  // The verdict checks the histogram's invariants (count == cells, ordered
  // quantiles, max >= p99): cell wall times vary by host, the shape must
  // not.
  auto& latency_table = b.series(
      "cell_latency",
      "Per-cell simulate() latency over the 105-cell grid (log buckets):",
      {"cells", "p50_ns", "p90_ns", "p99_ns", "max_ns"});
  LatencyHistogram cell_latency;
  for (const Partition& cell : grid) {
    const auto start = std::chrono::steady_clock::now();
    StaticPartitionStrategy strategy(cell, lru_factory);
    const RunStats stats = simulate(sweep_cfg, sweep_rs, strategy);
    const auto stop = std::chrono::steady_clock::now();
    (void)stats;
    cell_latency.record_seconds(
        std::chrono::duration<double>(stop - start).count());
  }
  latency_table.row(cell_latency.count(), cell_latency.p50(),
                    cell_latency.p90(), cell_latency.p99(),
                    cell_latency.max_value());
  const bool latency_sane =
      cell_latency.count() == grid.size() &&
      cell_latency.p50() <= cell_latency.p90() &&
      cell_latency.p90() <= cell_latency.p99() &&
      cell_latency.p99() <= cell_latency.max_value() &&
      cell_latency.p50() > 0;

  b.note("Full microbenchmark suite: build target bench_sim_throughput "
         "(google-benchmark; not driven by mcpaging-lab).");

  return std::move(b).finish(
      rates_positive && deterministic && batch_identical && curves_agree &&
          latency_sane,
      "simulator sustains positive throughput on every strategy family; "
      "sweep results bit-identical across worker counts and batch widths; "
      "Mattson curve matches the per-k reference; per-cell latency "
      "histogram is well-formed (ordered quantiles over all cells)");
}

}  // namespace

void mcp::experiments::register_e13(lab::ExperimentRegistry& registry) {
  registry.add({
      "E13",
      "Engine throughput & sweep determinism (lab edition)",
      "simulator steps/faults/requests per second per strategy family; "
      "partition sweep bit-identical at 1/2/all workers; batched lockstep "
      "sweep (Mcells/s) bit-identical at B=1/32; Mattson vs per-k LRU "
      "fault-curve cells/sec (see bench_sim_throughput for the full "
      "google-benchmark suite)",
      "EXPERIMENTS.md §E13; PR-1 sweep contract",
      {"engine", "throughput", "sweep", "batch", "fault-curve"},
      "p=4, K=64 zipf single-pass; 105-cell partition sweep at worker caps "
      "{1,2,all} and batch widths {1,32}; K=64 LRU fault curves both paths",
      run,
  });
}
