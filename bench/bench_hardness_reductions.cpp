// Experiment E10 — Theorems 2 and 3: the hardness reductions, executed.
//   * forward: k-PARTITION solutions, played as the proof's schedule, meet
//     every per-sequence fault bound with equality;
//   * no-instances: the certificate mechanics cannot meet the bounds under
//     any wrong grouping (exhausted over all groupings at small n), and an
//     oblivious baseline (shared LRU) misses the bounds on yes-instances;
//   * cost: reduction + certificate run time as instances grow.
#include <algorithm>
#include <chrono>
#include <functional>

#include "core/simulator.hpp"
#include "experiments.hpp"
#include "hardness/reduction.hpp"
#include "offline/max_pif_solver.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

namespace {

using namespace mcp;

/// All ways to split {0..n-1} into groups of k (first element anchored):
/// enumerate and test the certificate mechanics on each.
void for_each_grouping(
    std::size_t n, std::size_t k,
    const std::function<void(const std::vector<std::vector<std::size_t>>&)>& fn) {
  std::vector<std::vector<std::size_t>> groups;
  std::vector<bool> used(n, false);
  const std::function<void()> rec = [&]() {
    std::size_t first = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i]) {
        first = i;
        break;
      }
    }
    if (first == n) {
      fn(groups);
      return;
    }
    used[first] = true;
    std::vector<std::size_t> members = {first};
    const std::function<void(std::size_t)> pick = [&](std::size_t from) {
      if (members.size() == k) {
        groups.push_back(members);
        rec();
        groups.pop_back();
        return;
      }
      for (std::size_t i = from; i < n; ++i) {
        if (used[i]) continue;
        used[i] = true;
        members.push_back(i);
        pick(i + 1);
        members.pop_back();
        used[i] = false;
      }
    };
    pick(first + 1);
    used[first] = false;
  };
  rec();
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& forward = b.series(
      "forward_reduction", "Forward direction (random YES instances):",
      {"k", "tau", "p", "deadline", "bounds_ok", "exact", "ms"});
  Rng rng(2026);
  bool all_exact = true;
  for (std::size_t k : {3u, 4u}) {
    for (Time tau : {Time{1}, Time{4}}) {
      const KPartitionInstance source = random_yes_instance(
          rng, /*num_groups=*/3, k, k == 3 ? 30 : 40);
      const auto solution = solve_kpartition(source);
      if (!solution) {
        all_exact = false;
        continue;
      }
      const auto start = std::chrono::steady_clock::now();
      const PifReduction red = reduce_kpartition_to_pif(source, tau);
      const RunStats stats = play_certificate(red, *solution);
      const auto stop = std::chrono::steady_clock::now();
      bool exact = true;
      for (CoreId i = 0; i < source.values.size(); ++i) {
        exact = exact &&
                stats.faults_before(i, red.pif.deadline) == red.pif.bounds[i];
      }
      all_exact = all_exact && exact;
      forward.row(
          static_cast<std::uint64_t>(k), static_cast<std::uint64_t>(tau),
          static_cast<std::uint64_t>(source.values.size()),
          static_cast<std::uint64_t>(red.pif.deadline),
          stats.within_bounds_at(red.pif.deadline, red.pif.bounds) ? "yes"
                                                                   : "NO",
          exact ? "==b_i" : "NO",
          std::chrono::duration<double, std::milli>(stop - start).count());
    }
  }

  b.note("NO instance {4,4,4,4,4,6}, B=13: certificate mechanics over "
         "ALL groupings (none may satisfy the bounds):");
  const KPartitionInstance no_inst = smallest_no_instance_3partition();
  const PifReduction no_red = reduce_kpartition_to_pif(no_inst, /*tau=*/1);
  std::size_t groupings = 0;
  std::size_t satisfied = 0;
  for_each_grouping(no_inst.values.size(), 3, [&](const auto& groups) {
    ++groupings;
    CertificateStrategy strategy(no_red, groups);
    Simulator sim(no_red.pif.base.sim_config());
    const RunStats stats = sim.run(no_red.pif.base.requests, strategy);
    if (stats.within_bounds_at(no_red.pif.deadline, no_red.pif.bounds)) {
      ++satisfied;
    }
  });
  b.notef("  groupings tried: %zu, bounds satisfied: %zu", groupings,
          satisfied);

  b.note("MAX-PIF (Theorem 3's objective) on the single-triple instance, "
         "exact subset search:");
  KPartitionInstance tiny;
  tiny.values = {4, 4, 4};
  tiny.target = 12;
  tiny.group_size = 3;
  const PifReduction tiny_red = reduce_kpartition_to_pif(tiny, /*tau=*/0);
  const MaxPifResult full = solve_max_pif(tiny_red.pif);
  b.notef("  intact bounds: max satisfied = %zu/3 (expect 3)",
          full.max_satisfied);
  PifInstance broken = tiny_red.pif;
  broken.bounds[0] = 0;  // sequence 0 can never stay within 0 faults
  const MaxPifResult partial = solve_max_pif(broken);
  b.notef("  bound[0] broken to 0: max satisfied = %zu/3 (expect 2)",
          partial.max_satisfied);
  const bool maxpif_ok = full.max_satisfied == 3 && partial.max_satisfied == 2;

  b.note("Oblivious baseline on a YES instance (shared LRU):");
  KPartitionInstance yes3;
  yes3.values = {4, 4, 4};
  yes3.target = 12;
  yes3.group_size = 3;
  const PifReduction yes_red = reduce_kpartition_to_pif(yes3, 1);
  SharedStrategy lru(make_policy_factory("lru"));
  Simulator sim(yes_red.pif.base.sim_config());
  const RunStats lru_stats = sim.run(yes_red.pif.base.requests, lru);
  const bool lru_misses =
      !lru_stats.within_bounds_at(yes_red.pif.deadline, yes_red.pif.bounds);
  b.notef("  shared LRU within bounds: %s (expected: no)",
          lru_misses ? "no" : "yes");

  return std::move(b).finish(
      all_exact && satisfied == 0 && lru_misses && maxpif_ok,
      "yes-certificates hit b_i exactly; no-instance groupings and oblivious "
      "LRU all miss; exact MAX-PIF counts partial satisfaction correctly");
}

}  // namespace

void mcp::experiments::register_e10(lab::ExperimentRegistry& registry) {
  registry.add({
      "E10",
      "Theorems 2 & 3 — hardness reductions, executed",
      "certificates from k-PARTITION solutions meet every bound with "
      "equality; wrong groupings and oblivious policies miss",
      "EXPERIMENTS.md §E10; paper Theorems 2 & 3",
      {"theorem", "hardness", "reduction"},
      "3- and 4-PARTITION (3 groups, tau in {1,4}); NO instance "
      "{4,4,4,4,4,6} B=13; MAX-PIF on the single-triple instance",
      run,
  });
}
