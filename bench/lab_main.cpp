// mcpaging-lab — the single driver for the E-series experiment suite.
//
//   mcpaging-lab --list                      enumerate registered experiments
//   mcpaging-lab --run E1,E3 [--run E7]      run a selection
//   mcpaging-lab --tag lemma                 run everything carrying a tag
//   mcpaging-lab --all                       run the whole suite
//   mcpaging-lab --seed N --workers W        sweep determinism knobs
//   mcpaging-lab --json results.jsonl        one schema-versioned record per
//                                            experiment (docs/LAB.md)
//   mcpaging-lab --check reference.jsonl     shape-regression diff vs a
//                                            committed reference run
//
// Exit status: 0 = every selected experiment PASSed (and --check matched);
// 1 = at least one FAIL verdict or --check mismatch; 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "lab/runner.hpp"

namespace {

using namespace mcp;

void usage(std::ostream& os) {
  os << "usage: mcpaging-lab [--list] [--all] [--run E1,E2,...] [--tag TAG]\n"
        "                    [--seed N] [--workers W] [--json PATH]\n"
        "                    [--check REFERENCE.jsonl]\n"
        "\n"
        "  --list         list registered experiments (id, title, tags) and "
        "exit\n"
        "  --all          select every registered experiment\n"
        "  --run IDS      comma-separated experiment ids (repeatable)\n"
        "  --tag TAG      select every experiment carrying TAG (repeatable)\n"
        "  --seed N       master seed for sweep RNG splitting (default "
        "0x5EED)\n"
        "  --workers W    sweep worker cap; 0 = all hardware workers "
        "(default)\n"
        "  --json PATH    write one JSONL record per experiment (schema: "
        "docs/LAB.md)\n"
        "  --check PATH   shape-diff this run against a reference JSONL "
        "file\n"
        "\n"
        "exit status: 0 all PASS (and check clean), 1 FAIL or check "
        "mismatch, 2 usage\n";
}

/// Splits "E1,E3,E10" into its ids, dropping empty fragments.
std::vector<std::string> split_ids(const std::string& list) {
  std::vector<std::string> ids;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      if (!current.empty()) ids.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) ids.push_back(current);
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcp;

  bool list = false;
  bool all = false;
  std::vector<std::string> ids;
  std::vector<std::string> tags;
  lab::RunContext context;
  std::string json_path;
  std::string check_path;

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "mcpaging-lab: " << flag << " requires a value\n";
      usage(std::cerr);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--run") {
      for (std::string& id : split_ids(need_value(i, "--run"))) {
        ids.push_back(std::move(id));
      }
    } else if (arg == "--tag") {
      tags.emplace_back(need_value(i, "--tag"));
    } else if (arg == "--seed") {
      context.master_seed =
          std::strtoull(need_value(i, "--seed"), nullptr, 0);
    } else if (arg == "--workers") {
      context.workers = std::strtoull(need_value(i, "--workers"), nullptr, 10);
    } else if (arg == "--json") {
      json_path = need_value(i, "--json");
    } else if (arg == "--check") {
      check_path = need_value(i, "--check");
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "mcpaging-lab: unknown argument '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  lab::ExperimentRegistry& registry = lab::ExperimentRegistry::instance();
  experiments::register_all(registry);

  if (list) {
    for (const lab::Experiment* e : registry.all()) {
      std::printf("%-4s  %s\n", e->id.c_str(), e->title.c_str());
      std::printf("      claim: %s\n", e->claim.c_str());
      std::string tag_line;
      for (const std::string& tag : e->tags) {
        if (!tag_line.empty()) tag_line += ", ";
        tag_line += tag;
      }
      std::printf("      tags: %s\n", tag_line.c_str());
      std::printf("      grid: %s\n", e->default_grid.c_str());
    }
    std::printf("%zu experiments registered\n", registry.size());
    return 0;
  }

  if (!all && ids.empty() && tags.empty()) {
    std::cerr << "mcpaging-lab: nothing selected (use --all, --run or "
                 "--tag; --list to enumerate)\n";
    usage(std::cerr);
    return 2;
  }

  try {
    const auto selection = lab::select_experiments(registry, ids, tags, all);
    const auto reports = lab::run_experiments(selection, context, std::cout);

    if (!json_path.empty()) {
      lab::write_records(json_path, reports, context);
      std::printf("wrote %zu record(s) to %s\n", reports.size(),
                  json_path.c_str());
    }

    std::size_t mismatches = 0;
    if (!check_path.empty()) {
      mismatches = lab::check_against_reference(reports, check_path, std::cout);
    }

    std::size_t failed = 0;
    for (const lab::RunReport& report : reports) {
      if (!report.result.verdict.pass) ++failed;
    }
    std::printf("suite: %zu/%zu PASS\n", reports.size() - failed,
                reports.size());
    return (failed > 0 || mismatches > 0) ? 1 : 0;
  } catch (const InputError& e) {
    std::cerr << "mcpaging-lab: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mcpaging-lab: internal error: " << e.what() << '\n';
    return 2;
  }
}
