// Shared output helpers for the experiment harness.
//
// Every bench binary regenerates one experiment from DESIGN.md's index and
// prints a self-describing table: the claim under test, the measured series,
// and a PASS/FAIL verdict on the claim's *shape* (growth order, dominance,
// crossover) — absolute numbers are simulator-specific by design.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace mcp::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void columns(const std::vector<std::string>& names) {
  for (const auto& name : names) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < names.size(); ++i) std::printf("%14s", "------------");
  std::printf("\n");
}

inline void cell(double value) { std::printf("%14.3f", value); }
inline void cell(std::uint64_t value) {
  std::printf("%14llu", static_cast<unsigned long long>(value));
}
inline void cell(const std::string& value) { std::printf("%14s", value.c_str()); }
inline void end_row() { std::printf("\n"); }

/// Emits a sweep's wall-clock and cells/sec as a one-line JSON record.  The
/// records are the repo's perf-baseline channel: scripts/run_experiments.sh
/// captures bench output, so a trajectory of cells/sec per sweep can be
/// grepped out of bench_output.txt across commits.
inline void sweep_json(const std::string& name, const SweepTiming& timing) {
  std::printf("%s\n", timing.json(name).c_str());
}

/// Prints the verdict and returns the process exit code (0 pass, 1 fail) so
/// a CI loop over bench binaries notices broken claims.
inline int verdict(bool pass, const std::string& what) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("%s: %s\n\n", pass ? "PASS" : "FAIL", what.c_str());
  return pass ? 0 : 1;
}

}  // namespace mcp::bench
