// Experiment E13 — engine microbenchmarks (google-benchmark): simulator
// request throughput across core counts, cache sizes, eviction policies and
// strategy families, plus the victim-selection ablation (list-backed LRU vs
// scan-based LFU) and the offline solver's cost per state.
#include <benchmark/benchmark.h>

#include "core/simulator.hpp"
#include "offline/ftf_solver.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

RequestSet zipf_workload(std::size_t p, std::size_t pages, std::size_t length,
                         std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kZipf;
  core.num_pages = pages;
  core.length = length;
  return make_workload(homogeneous_spec(p, core, true, seed));
}

void BM_SharedPolicy(benchmark::State& state, const char* policy) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(p, 64, 4000, 5);
  SimConfig cfg;
  cfg.cache_size = 16 * p;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  for (auto _ : state) {
    SharedStrategy strategy(make_policy_factory(policy, 7));
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.total_faults());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_StaticPartition(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(p, 64, 4000, 6);
  SimConfig cfg;
  cfg.cache_size = 16 * p;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  for (auto _ : state) {
    StaticPartitionStrategy strategy(even_partition(cfg.cache_size, p),
                                     make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.total_faults());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_Lemma3Dynamic(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(p, 64, 4000, 7);
  SimConfig cfg;
  cfg.cache_size = 16 * p;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  for (auto _ : state) {
    Lemma3DynamicPartition strategy;
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.total_faults());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_SharedFitf(benchmark::State& state) {
  const RequestSet rs = zipf_workload(4, 64, 4000, 8);
  SimConfig cfg;
  cfg.cache_size = 64;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  for (auto _ : state) {
    auto strategy = SharedStrategy::fitf();
    const RunStats stats = simulate(cfg, rs, *strategy);
    benchmark::DoNotOptimize(stats.total_faults());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_FtfSolver(benchmark::State& state) {
  const std::size_t per_core = static_cast<std::size_t>(state.range(0));
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = per_core;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(2, core, true, 9));
  inst.cache_size = 2;
  inst.tau = 1;
  for (auto _ : state) {
    const FtfResult result = solve_ftf(inst);
    benchmark::DoNotOptimize(result.min_faults);
    state.counters["states"] = static_cast<double>(result.states_stored);
  }
}

void BM_BigFleetThroughput(benchmark::State& state) {
  // Wide configuration: 16 cores, large shared cache, timeline recording on
  // (the full-featured path a user measures).
  const RequestSet rs = zipf_workload(16, 128, 2000, 10);
  SimConfig cfg;
  cfg.cache_size = 256;  // K = p^2
  cfg.fault_penalty = 8;
  for (auto _ : state) {
    SharedStrategy strategy(make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_SharedPolicy, lru, "lru")->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_SharedPolicy, lru_scan, "lru-scan")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, fifo, "fifo")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, clock, "clock")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, lfu, "lfu")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, mark, "mark")->Arg(4);
BENCHMARK(BM_StaticPartition)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_Lemma3Dynamic)->Arg(4);
BENCHMARK(BM_SharedFitf);
BENCHMARK(BM_FtfSolver)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_BigFleetThroughput);

BENCHMARK_MAIN();
