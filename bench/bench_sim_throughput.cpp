// Experiment E13 — engine microbenchmarks (google-benchmark): simulator
// request throughput across core counts, cache sizes, eviction policies and
// strategy families, plus the victim-selection ablation (list-backed LRU vs
// scan-based LFU), the offline solver's cost per state, and the parallel
// sweep engine's cells/sec across worker counts (the repo's perf baseline;
// pass --benchmark_format=json to capture the counters machine-readably).
#include <benchmark/benchmark.h>

#include <chrono>

#include "core/batch_state.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/pif_solver.hpp"
#include "policies/policy_registry.hpp"
#include "service/mcpd.hpp"
#include "service/wire_format.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/partition.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

RequestSet zipf_workload(std::size_t p, std::size_t pages, std::size_t length,
                         std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kZipf;
  core.num_pages = pages;
  core.length = length;
  return make_workload(homogeneous_spec(p, core, true, seed));
}

void BM_SharedPolicy(benchmark::State& state, const char* policy) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(p, 64, 4000, 5);
  SimConfig cfg;
  cfg.cache_size = 16 * p;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  Count steps = 0;
  Count faults = 0;
  for (auto _ : state) {
    SharedStrategy strategy(make_policy_factory(policy, 7));
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.total_faults());
    steps += stats.sim_steps;
    faults += stats.total_faults();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
  state.counters["steps_per_sec"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.counters["faults_per_sec"] = benchmark::Counter(
      static_cast<double>(faults), benchmark::Counter::kIsRate);
}

void BM_StaticPartition(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(p, 64, 4000, 6);
  SimConfig cfg;
  cfg.cache_size = 16 * p;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  for (auto _ : state) {
    StaticPartitionStrategy strategy(even_partition(cfg.cache_size, p),
                                     make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.total_faults());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_Lemma3Dynamic(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(p, 64, 4000, 7);
  SimConfig cfg;
  cfg.cache_size = 16 * p;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  for (auto _ : state) {
    Lemma3DynamicPartition strategy;
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.total_faults());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_SharedFitf(benchmark::State& state) {
  const RequestSet rs = zipf_workload(4, 64, 4000, 8);
  SimConfig cfg;
  cfg.cache_size = 64;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  for (auto _ : state) {
    auto strategy = SharedStrategy::fitf();
    const RunStats stats = simulate(cfg, rs, *strategy);
    benchmark::DoNotOptimize(stats.total_faults());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_FtfSolver(benchmark::State& state, OfflineEngine engine) {
  // states_per_sec is the offline perf-smoke gate (BENCH_OFFLINE.json):
  // packed must stay well ahead of the retained reference engine.
  const std::size_t per_core = static_cast<std::size_t>(state.range(0));
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 5;
  core.length = per_core;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(2, core, true, 78));
  inst.cache_size = 4;
  inst.tau = 2;
  FtfOptions options;
  options.engine = engine;
  options.workers = 1;  // serial path: comparable to pre-parallel baselines
  std::size_t states = 0;
  for (auto _ : state) {
    const FtfResult result = solve_ftf(inst, options);
    benchmark::DoNotOptimize(result.min_faults);
    states += result.states_stored;
    state.counters["states"] = static_cast<double>(result.states_stored);
    state.counters["bytes_per_state"] =
        static_cast<double>(result.peak_bytes_in_ram) /
        static_cast<double>(result.states_stored);
  }
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}

void BM_FtfSolverParallel(benchmark::State& state) {
  // Bucket-synchronous parallel FTF expansion, projected at W workers
  // (Arg).  The wall clock cannot show the parallel speedup on an
  // oversubscribed or small machine, so the gated counter is
  // capacity_states_per_sec — the solve rate projected at W dedicated
  // workers, states / (serial_ns + expand_busy_ns / W), the same
  // oversubscription-immune convention as mcpd's capacity_rps.  Every Arg
  // runs the *same* instrumented chunked solve (workers = 8) and projects
  // its measured split at Arg workers: serial_ns is the solve wall minus
  // the parallel expansion/dedup passes, expand_busy_ns sums those passes'
  // thread CPU time (worker-count independent), so Arg(1) is the chunked
  // engine's own single-worker projection — the Amdahl denominator.  The
  // perf-smoke job gates parallel/8 capacity >= 3x parallel/1 within the
  // same run, so the gate is immune to machine-speed drift.  (The serial
  // reference path is benchmarked separately as BM_FtfSolver.)
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 5;
  core.length = 20;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(3, core, true, 78));
  inst.cache_size = 5;
  inst.tau = 2;
  FtfOptions options;
  options.engine = OfflineEngine::kPacked;
  options.workers = 8;
  std::size_t states = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t expand_wall_ns = 0;
  std::uint64_t busy_ns = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const FtfResult result = solve_ftf(inst, options);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.min_faults);
    states += result.states_stored;
    wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
    expand_wall_ns += result.expand_wall_ns;
    busy_ns += result.expand_busy_ns;
  }
  const double serial_ns =
      static_cast<double>(wall_ns) - static_cast<double>(expand_wall_ns);
  const double projected_ns =
      serial_ns + static_cast<double>(busy_ns) / static_cast<double>(workers);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["capacity_states_per_sec"] =
      projected_ns > 0.0 ? static_cast<double>(states) * 1e9 / projected_ns
                         : 0.0;
}

void BM_PifSolver(benchmark::State& state, OfflineEngine engine) {
  const Time deadline = static_cast<Time>(state.range(0));
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = static_cast<std::size_t>(deadline);
  PifInstance inst;
  inst.base.requests = make_workload(homogeneous_spec(2, core, true, 31));
  inst.base.cache_size = 2;
  inst.base.tau = 1;
  inst.deadline = deadline;
  inst.bounds = {deadline, deadline};
  PifOptions options;
  options.engine = engine;
  std::size_t states = 0;
  for (auto _ : state) {
    const PifResult result = solve_pif(inst, options);
    benchmark::DoNotOptimize(result.feasible);
    states += result.states_expanded;
    state.counters["peak_width"] =
        static_cast<double>(result.peak_layer_width);
  }
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}

void BM_BigFleetThroughput(benchmark::State& state) {
  // Wide configuration: 16 cores, large shared cache, timeline recording on
  // (the full-featured path a user measures).
  const RequestSet rs = zipf_workload(16, 128, 2000, 10);
  SimConfig cfg;
  cfg.cache_size = 256;  // K = p^2
  cfg.fault_penalty = 8;
  for (auto _ : state) {
    SharedStrategy strategy(make_policy_factory("lru"));
    const RunStats stats = simulate(cfg, rs, strategy);
    benchmark::DoNotOptimize(stats.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.total_requests()));
}

void BM_LruFaultCurve(benchmark::State& state) {
  // Per-core LRU fault-curve construction, the kernel behind partition
  // search (sP^OPT_LRU): p full curves f_j(k) for k = 0..K.  cells/sec is
  // the perf-smoke gate for the fault-curve path.
  const std::size_t K = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(4, 96, 20000, 12);
  const PolicyFactory lru = make_policy_factory("lru");
  std::size_t cells = 0;
  for (auto _ : state) {
    const FaultCurves curves = policy_fault_curves(rs, K, lru);
    benchmark::DoNotOptimize(curves.data());
    cells += curves.size() * (K + 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["curve_cells_per_sec"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}

void BM_PartitionSweep(benchmark::State& state) {
  // The sweep engine's perf baseline: simulate every static partition of
  // K=16 over p=3 cores (105 cells) on the pool, at the worker cap given by
  // the benchmark argument (0 = all hardware workers).  The cells/sec and
  // wall-clock counters come straight from the SweepRunner timing that the
  // table benches also emit, so the JSON output doubles as the baseline.
  const std::size_t max_threads = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(3, 48, 1500, 11);
  SimConfig cfg;
  cfg.cache_size = 16;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  const PolicyFactory lru = make_policy_factory("lru");
  const std::vector<Partition> grid = enumerate_partitions(16, 3, 1);
  std::size_t cells = 0;
  double wall = 0.0;
  for (auto _ : state) {
    SweepRunner sweep(SweepOptions{/*master_seed=*/13, max_threads});
    const std::vector<Count> faults =
        sweep.run(grid.size(), [&](std::size_t i, Rng& /*rng*/) {
          StaticPartitionStrategy strategy(grid[i], lru);
          return simulate(cfg, rs, strategy).total_faults();
        });
    benchmark::DoNotOptimize(faults.data());
    cells += sweep.last_timing().cells;
    wall += sweep.last_timing().wall_seconds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["cells_per_sec"] =
      benchmark::Counter(static_cast<double>(cells), benchmark::Counter::kIsRate);
  state.counters["sweep_wall_s"] = wall;
}

void BM_BatchSweep(benchmark::State& state) {
  // The same 105-cell partition grid as BM_PartitionSweep, but run as
  // lockstep lanes through the batch engine (SweepRunner::run_jobs) instead
  // of per-cell strategy objects.  Arg = batch width B.  cells_per_sec here
  // against BM_PartitionSweep's counter is the batched-vs-scalar aggregate
  // speedup; the perf-smoke job gates on this counter staying put.
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const RequestSet rs = zipf_workload(3, 48, 1500, 11);
  SimConfig cfg;
  cfg.cache_size = 16;
  cfg.fault_penalty = 4;
  cfg.record_fault_timeline = false;
  const std::vector<Partition> grid = enumerate_partitions(16, 3, 1);
  std::vector<SimJob> jobs(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    jobs[i].config = cfg;
    jobs[i].requests = &rs;
    jobs[i].strategy =
        BatchStrategySpec::static_partition(grid[i], BatchPolicy::kLru);
  }
  std::size_t cells = 0;
  Count lane_steps = 0;
  double wall = 0.0;
  for (auto _ : state) {
    SweepRunner sweep(SweepOptions{/*master_seed=*/13, /*max_threads=*/0});
    const std::vector<RunStats> stats = sweep.run_jobs(jobs, width);
    benchmark::DoNotOptimize(stats.data());
    cells += sweep.last_timing().cells;
    wall += sweep.last_timing().wall_seconds;
    for (const RunStats& s : stats) lane_steps += s.sim_steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["cells_per_sec"] =
      benchmark::Counter(static_cast<double>(cells), benchmark::Counter::kIsRate);
  state.counters["lane_steps_per_sec"] = benchmark::Counter(
      static_cast<double>(lane_steps), benchmark::Counter::kIsRate);
  state.counters["sweep_wall_s"] = wall;
}

void BM_McpdIngest(benchmark::State& state) {
  // End-to-end daemon ingest for one epoch-batched round: submit eight
  // pre-encoded tenant documents (open + chunks + close + fault query) and
  // wait for every reply.  Measures wire decode, shard routing, session
  // stepping and response publication together; encoding is hoisted out of
  // the loop.  Arg = shard count.  pairs_per_sec is the perf-smoke gate for
  // the service layer (BENCH_MCPD.json holds the loadgen-side baseline).
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTenants = 8;
  std::vector<std::shared_ptr<const std::vector<std::byte>>> traces;
  std::vector<std::shared_ptr<const std::vector<std::byte>>> queries;
  std::size_t pairs_per_round = 0;
  for (std::size_t t = 0; t < kTenants; ++t) {
    const RequestSet rs = zipf_workload(4, 64, 500, 20 + t);
    const wire::SessionParams params{4, 16, 4, wire::StrategyKind::kSharedLru};
    traces.push_back(std::make_shared<const std::vector<std::byte>>(
        wire::encode_trace(rs, t + 1, params, 256)));
    wire::WireWriter writer;
    writer.query_faults(t + 1, t + 1);
    queries.push_back(std::make_shared<const std::vector<std::byte>>(
        std::move(writer).take()));
    pairs_per_round += rs.total_requests();
  }
  std::size_t pairs = 0;
  for (auto _ : state) {
    service::Mcpd daemon(service::McpdConfig{shards});
    const auto mailbox = std::make_shared<service::ResponseMailbox>();
    for (std::size_t t = 0; t < kTenants; ++t) {
      daemon.submit_document(traces[t], mailbox);
      daemon.submit_document(queries[t], mailbox);
    }
    for (std::size_t t = 0; t < kTenants; ++t) {
      benchmark::DoNotOptimize(mailbox->wait());
    }
    daemon.stop();
    pairs += pairs_per_round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_SharedPolicy, lru, "lru")->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_SharedPolicy, lru_scan, "lru-scan")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, fifo, "fifo")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, clock, "clock")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, lfu, "lfu")->Arg(4);
BENCHMARK_CAPTURE(BM_SharedPolicy, mark, "mark")->Arg(4);
BENCHMARK(BM_StaticPartition)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_Lemma3Dynamic)->Arg(4);
BENCHMARK(BM_SharedFitf);
// Arg = requests per core; the instance family matches E8's engine_speedup
// series (5 pages/core, K=4, tau=2 — wide victim branching).
BENCHMARK_CAPTURE(BM_FtfSolver, packed, mcp::OfflineEngine::kPacked)
    ->Arg(24)->Arg(40)->Arg(48);
BENCHMARK_CAPTURE(BM_FtfSolver, reference, mcp::OfflineEngine::kReference)
    ->Arg(24)->Arg(40)->Arg(48);
// Arg = worker count for the projected-capacity pair (48 requests/core
// instance, same family as above): the perf-smoke --speedup gate requires
// parallel/8 capacity_states_per_sec >= 3x parallel/1.
BENCHMARK(BM_FtfSolverParallel)->Arg(1)->Arg(8);
// Arg = deadline; matches E9's engine_speedup series.
BENCHMARK_CAPTURE(BM_PifSolver, packed, mcp::OfflineEngine::kPacked)
    ->Arg(32)->Arg(64)->Arg(128);
BENCHMARK_CAPTURE(BM_PifSolver, reference, mcp::OfflineEngine::kReference)
    ->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_BigFleetThroughput);
BENCHMARK(BM_LruFaultCurve)->Arg(64);
// Arg = sweep worker cap: serial, two workers, all hardware workers (0).
BENCHMARK(BM_PartitionSweep)->Arg(1)->Arg(2)->Arg(0);
// Arg = batch width B: degenerate single-lane batches vs full lockstep.
BENCHMARK(BM_BatchSweep)->Arg(1)->Arg(64);
// Arg = shard count: single-shard baseline vs the sharded daemon.
BENCHMARK(BM_McpdIngest)->Arg(1)->Arg(4);

BENCHMARK_MAIN();
