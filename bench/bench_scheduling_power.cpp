// Experiment E18 (extension) — the cross-model comparison the paper's
// Section 2 argues about, executed: what does Hassidim's scheduling power
// (delaying sequences) buy over this paper's serve-as-they-arrive rule?
//
// On working sets that don't fit together, a time-multiplexing scheduler
// converts capacity thrash into compulsory misses.  The cost is serialized
// makespan — and the fault-time tradeoff flips with tau: concurrency wins
// the makespan when faults are cheap, scheduling wins both metrics once
// faults are expensive.
#include "adversary/scheduling.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

namespace {

using namespace mcp;

RequestSet overfull_cycles(std::size_t p, std::size_t cycle, std::size_t laps) {
  RequestSet rs;
  for (std::size_t j = 0; j < p; ++j) {
    RequestSequence seq;
    const std::vector<PageId> pages =
        page_block(static_cast<PageId>(j * cycle), cycle);
    seq.append_repeated(pages, laps);
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  // 4 cores, each cycling 3 private pages; K = 4 holds any one working set
  // but not two.
  const std::size_t p = 4;
  const std::size_t K = 4;
  const RequestSet rs = overfull_cycles(p, 3, 60);

  auto& table = b.series("scheduling_crossover", "",
                         {"tau", "LRU_faults", "MUX_faults", "LRU_mksp",
                          "MUX_mksp", "mksp_winner"});
  bool fault_reduction_everywhere = true;
  bool crossover_seen_low = false;
  bool crossover_seen_high = false;
  for (Time tau : {Time{0}, Time{1}, Time{2}, Time{4}, Time{8}, Time{16}}) {
    SimConfig cfg;
    cfg.cache_size = K;
    cfg.fault_penalty = tau;
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats shared = simulate(cfg, rs, lru);
    TimeMultiplexStrategy mux;
    const RunStats muxed = simulate(cfg, rs, mux);

    fault_reduction_everywhere =
        fault_reduction_everywhere &&
        muxed.total_faults() * 10 < shared.total_faults();
    const bool mux_wins = muxed.makespan() < shared.makespan();
    if (tau == 0 && !mux_wins) crossover_seen_low = true;
    if (tau >= 8 && mux_wins) crossover_seen_high = true;
    if (tau == 8) {
      b.stats("S_LRU tau=8 run_stats", shared.to_json());
      b.stats("MUX tau=8 run_stats", muxed.to_json());
    }

    table.row(static_cast<std::uint64_t>(tau), shared.total_faults(),
              muxed.total_faults(), shared.makespan(), muxed.makespan(),
              mux_wins ? "scheduling" : "concurrency");
  }

  b.note(
      "Reading: the scheduler pays serialization but never thrashes; the\n"
      "paper's model must serve everyone concurrently and eats the conflict\n"
      "faults.  This is why competitive ratios differ across the models\n"
      "(paper Section 2) — the offline comparators have different powers.");

  return std::move(b).finish(
      fault_reduction_everywhere && crossover_seen_low && crossover_seen_high,
      "scheduling cuts faults 10x+ at every tau; concurrency wins the "
      "makespan at tau=0, scheduling wins it at large tau");
}

}  // namespace

void mcp::experiments::register_e18(lab::ExperimentRegistry& registry) {
  registry.add({
      "E18",
      "Scheduling power (Hassidim's model vs this paper's), executed",
      "time-multiplexing (illegal here, legal there) removes capacity "
      "thrash; the makespan crossover moves with tau",
      "EXPERIMENTS.md §E18; paper §2; Hassidim SPAA'10",
      {"extension", "scheduling", "cross-model"},
      "p=4, K=4, 3-page cycles x 60 laps; tau in {0,1,2,4,8,16}",
      run,
  });
}
