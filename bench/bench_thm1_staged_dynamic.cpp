// Experiment E5 — Theorem 1.3: a dynamic partition that changes rarely
// (o(n) stages; here: a single static stage, the worst case) loses
// unboundedly against shared LRU on the staged adversary: the adversary's
// loss ratio grows with the stage/turn length ell.
#include "adversary/adversary.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/shared.hpp"

namespace {

using namespace mcp;

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  const std::size_t p = 2;
  const std::size_t K = 4;
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = 1;

  auto& loss = b.series("loss_vs_turn_length", "",
                        {"turn_len", "n", "dP_even", "S_LRU", "ratio"});
  std::vector<double> ratios;
  for (std::size_t turn : {25u, 50u, 100u, 200u, 400u}) {
    StagedAdversaryStream adversary(p, K / p + 1, turn, /*laps=*/2);
    RecordingStream recorder(adversary);
    // One-stage schedule: the even partition never changes (the theorem's
    // "long stage" in its purest form).
    StagedPartitionStrategy staged({{0, even_partition(K, p)}},
                                   make_policy_factory("lru"));
    Simulator sim(cfg);
    const Count partition_faults =
        sim.run_stream(recorder, staged, nullptr).total_faults();

    SharedStrategy lru(make_policy_factory("lru"));
    const Count shared_faults =
        simulate(cfg, recorder.recorded(), lru).total_faults();
    const double ratio = static_cast<double>(partition_faults) /
                         static_cast<double>(shared_faults);
    ratios.push_back(ratio);
    loss.row(static_cast<std::uint64_t>(turn),
             static_cast<std::uint64_t>(recorder.recorded().total_requests()),
             partition_faults, shared_faults, ratio);
  }

  const bool grows = ratios.back() > 3.0 * ratios.front() && ratios.back() > 8.0;

  // Flip side: more stages (partition changes) shrink the loss.  Re-run the
  // recorded worst trace against staged schedules that re-balance toward
  // the active core more and more often.
  auto& stages_table =
      b.series("more_stages_help", "More stages help (same adversary, turn_len=200):",
               {"stages", "dP faults", "S_LRU", "ratio"});
  StagedAdversaryStream adversary(p, K / p + 1, 200, /*laps=*/2);
  RecordingStream recorder(adversary);
  {
    StagedPartitionStrategy probe({{0, even_partition(K, p)}},
                                  make_policy_factory("lru"));
    Simulator sim(cfg);
    (void)sim.run_stream(recorder, probe, nullptr);
  }
  const RequestSet trace = recorder.recorded();
  SharedStrategy shared_ref(make_policy_factory("lru"));
  const Count shared_ref_faults =
      simulate(cfg, trace, shared_ref).total_faults();
  std::vector<double> staged_ratios;
  for (std::size_t stages : {1u, 4u, 16u, 64u}) {
    // Evenly spaced stages alternating which core gets the big share.
    std::vector<PartitionStage> schedule;
    const Time horizon = 2000;
    for (std::size_t s = 0; s < stages; ++s) {
      Partition sizes(p, 1);
      sizes[s % p] = K - (p - 1);
      schedule.push_back({s * (horizon / stages), sizes});
    }
    schedule.front().start = 0;
    StagedPartitionStrategy staged(schedule, make_policy_factory("lru"));
    const Count faults = simulate(cfg, trace, staged).total_faults();
    const double ratio =
        static_cast<double>(faults) / static_cast<double>(shared_ref_faults);
    staged_ratios.push_back(ratio);
    stages_table.row(static_cast<std::uint64_t>(stages), faults,
                     shared_ref_faults, ratio);
  }
  const bool more_stages_help = staged_ratios.back() < staged_ratios.front();

  return std::move(b).finish(grows && more_stages_help,
                             "loss ratio grows with the stage length; more "
                             "frequent repartitioning shrinks it");
}

}  // namespace

void mcp::experiments::register_e5(lab::ExperimentRegistry& registry) {
  registry.add({
      "E5",
      "Theorem 1.3 — rarely-changing dynamic partition vs shared LRU",
      "dP^D_A(R)/S_LRU(R) = omega(1): grows with the stage length ell "
      "(constant-stage partitions are Omega(n) behind)",
      "EXPERIMENTS.md §E5; paper Theorem 1.3",
      {"theorem", "dynamic-partition", "adversary"},
      "p=2, K=4, turn length in {25,50,100,200,400}; stage counts {1,4,16,64}",
      run,
  });
}
