// Experiment E2 — Lemma 2: no online static partition is competitive once
// the offline partition may depend on the input: on the lemma's family, the
// ratio sP^B_LRU / sP^OPT_LRU grows linearly with n.
#include "adversary/adversary.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/static_partition.hpp"

namespace {

using namespace mcp;

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  const Partition online = {2, 2, 2};  // K = 6, p = 3
  const std::size_t K = 6;
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = 1;

  auto& table = b.series("ratio_vs_n", "",
                         {"n", "sP^B_LRU", "sP^OPT_LRU", "ratio", "ratio/n"});
  std::vector<double> ratios;
  std::vector<double> normalized;
  for (std::size_t n : {600u, 1200u, 2400u, 4800u, 9600u}) {
    const RequestSet rs = lemma2_request_set(online, n);
    StaticPartitionStrategy fixed(online, make_policy_factory("lru"));
    const Count fixed_faults = simulate(cfg, rs, fixed).total_faults();
    const auto opt = optimal_partition_for_policy(rs, K, make_policy_factory("lru"));
    const double ratio =
        static_cast<double>(fixed_faults) / static_cast<double>(opt.faults);
    ratios.push_back(ratio);
    normalized.push_back(ratio / static_cast<double>(n));
    table.row(static_cast<std::uint64_t>(n), fixed_faults, opt.faults, ratio,
              ratio / static_cast<double>(n));
  }

  // Linear growth: ratio roughly doubles when n doubles (ratio/n flat).
  const bool grows = ratios.back() > 6.0 * ratios.front();
  const bool linear = normalized.back() > 0.4 * normalized.front();
  return std::move(b).finish(grows && linear,
                             "ratio grows ~linearly in n (ratio/n stays flat)");
}

}  // namespace

void mcp::experiments::register_e2(lab::ExperimentRegistry& registry) {
  registry.add({
      "E2",
      "Lemma 2 — online static partition vs offline-optimal partition",
      "sP^B_LRU / sP^OPT_LRU = Omega(n) on the lemma's request family",
      "EXPERIMENTS.md §E2; paper Lemma 2",
      {"lemma", "online", "partition"},
      "p=3, K=6, n in {600,1200,2400,4800,9600}",
      run,
  });
}
