// Experiment E6 — Lemma 3: the Lemma-3 dynamic partition controller makes
// dP^D_LRU indistinguishable from shared LRU on disjoint inputs: identical
// fault counts, per-core fault timelines and completion times, across a
// randomized workload grid.
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/shared.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& grid = b.series(
      "equivalence_grid", "",
      {"p", "K", "tau", "pattern", "faults", "mismatch", "changes"});
  std::size_t mismatches = 0;
  std::size_t runs = 0;
  for (std::size_t p : {2u, 4u}) {
    for (std::size_t K : {8u, 16u}) {
      for (Time tau : {Time{0}, Time{3}}) {
        for (AccessPattern pattern :
             {AccessPattern::kUniform, AccessPattern::kZipf,
              AccessPattern::kWorkingSet, AccessPattern::kLoop}) {
          CoreWorkload core;
          core.pattern = pattern;
          core.num_pages = 12;
          core.length = 1500;
          core.working_set = 4;
          core.loop_length = K / p + 1;
          const RequestSet rs = make_workload(
              homogeneous_spec(p, core, true, 7000 + runs));
          SimConfig cfg;
          cfg.cache_size = K;
          cfg.fault_penalty = tau;

          SharedStrategy shared(make_policy_factory("lru"));
          Lemma3DynamicPartition dynamic;
          const RunStats a = simulate(cfg, rs, shared);
          const RunStats c = simulate(cfg, rs, dynamic);
          bool equal = a.total_faults() == c.total_faults();
          for (CoreId j = 0; j < p && equal; ++j) {
            equal = a.core(j).fault_times == c.core(j).fault_times &&
                    a.core(j).completion_time == c.core(j).completion_time;
          }
          if (!equal) ++mismatches;
          ++runs;
          grid.row(static_cast<std::uint64_t>(p), static_cast<std::uint64_t>(K),
                   static_cast<std::uint64_t>(tau), to_string(pattern),
                   c.total_faults(), equal ? "no" : "YES",
                   dynamic.partition_changes());
        }
      }
    }
  }

  b.notef("%zu runs, %zu mismatches", runs, mismatches);
  return std::move(b).finish(mismatches == 0,
                             "dynamic partition replays shared LRU exactly");
}

}  // namespace

void mcp::experiments::register_e6(lab::ExperimentRegistry& registry) {
  registry.add({
      "E6",
      "Lemma 3 — dP^D_LRU == S_LRU fault-for-fault (disjoint R)",
      "0 mismatches over the whole randomized grid; the partition changes "
      "often (that is the point)",
      "EXPERIMENTS.md §E6; paper Lemma 3",
      {"lemma", "dynamic-partition", "shared"},
      "p in {2,4}, K in {8,16}, tau in {0,3}, 4 access patterns (32 runs)",
      run,
  });
}
