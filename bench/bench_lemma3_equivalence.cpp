// Experiment E6 — Lemma 3: the Lemma-3 dynamic partition controller makes
// dP^D_LRU indistinguishable from shared LRU on disjoint inputs: identical
// fault counts, per-core fault timelines and completion times, across a
// randomized workload grid.
#include <cstdio>

#include "bench_util.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/shared.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace mcp;
  bench::header("E6  Lemma 3 — dP^D_LRU == S_LRU fault-for-fault (disjoint R)",
                "0 mismatches over the whole randomized grid; the partition "
                "changes often (that is the point)");

  bench::columns({"p", "K", "tau", "pattern", "faults", "mismatch", "changes"});
  std::size_t mismatches = 0;
  std::size_t runs = 0;
  for (std::size_t p : {2u, 4u}) {
    for (std::size_t K : {8u, 16u}) {
      for (Time tau : {Time{0}, Time{3}}) {
        for (AccessPattern pattern :
             {AccessPattern::kUniform, AccessPattern::kZipf,
              AccessPattern::kWorkingSet, AccessPattern::kLoop}) {
          CoreWorkload core;
          core.pattern = pattern;
          core.num_pages = 12;
          core.length = 1500;
          core.working_set = 4;
          core.loop_length = K / p + 1;
          const RequestSet rs = make_workload(
              homogeneous_spec(p, core, true, 7000 + runs));
          SimConfig cfg;
          cfg.cache_size = K;
          cfg.fault_penalty = tau;

          SharedStrategy shared(make_policy_factory("lru"));
          Lemma3DynamicPartition dynamic;
          const RunStats a = simulate(cfg, rs, shared);
          const RunStats b = simulate(cfg, rs, dynamic);
          bool equal = a.total_faults() == b.total_faults();
          for (CoreId j = 0; j < p && equal; ++j) {
            equal = a.core(j).fault_times == b.core(j).fault_times &&
                    a.core(j).completion_time == b.core(j).completion_time;
          }
          if (!equal) ++mismatches;
          ++runs;
          bench::cell(static_cast<std::uint64_t>(p));
          bench::cell(static_cast<std::uint64_t>(K));
          bench::cell(static_cast<std::uint64_t>(tau));
          bench::cell(to_string(pattern));
          bench::cell(b.total_faults());
          bench::cell(std::string(equal ? "no" : "YES"));
          bench::cell(dynamic.partition_changes());
          bench::end_row();
        }
      }
    }
  }

  std::printf("\n%zu runs, %zu mismatches\n", runs, mismatches);
  return bench::verdict(mismatches == 0,
                        "dynamic partition replays shared LRU exactly");
}
