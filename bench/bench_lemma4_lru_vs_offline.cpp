// Experiment E7 — Lemma 4: on the cyclic family, S_LRU / S_OFF =
// Omega(p(tau+1)) — the offline strategy sacrifices one core and serves the
// rest from cache.  Side claim: shared FITF is *not* optimal once
// tau > K/p (it loses to S_OFF).
#include <cstdio>

#include "adversary/adversary.hpp"
#include "bench_util.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

namespace {

using namespace mcp;

struct Row {
  Count lru = 0;
  Count fitf = 0;
  Count off = 0;
};

Row run_family(std::size_t p, std::size_t K, Time tau, std::size_t per_core) {
  const RequestSet rs = lemma4_request_set(p, K, per_core);
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = tau;
  Row row;
  SharedStrategy lru(make_policy_factory("lru"));
  row.lru = simulate(cfg, rs, lru).total_faults();
  auto fitf = SharedStrategy::fitf();
  row.fitf = simulate(cfg, rs, *fitf).total_faults();
  SacrificeStrategy off(static_cast<CoreId>(p - 1));
  row.off = simulate(cfg, rs, off).total_faults();
  return row;
}

}  // namespace

int main() {
  using namespace mcp;
  bench::header("E7  Lemma 4 — S_LRU vs the sacrificing offline strategy",
                "S_LRU/S_OFF = Omega(p(tau+1)); S_FITF > S_OFF when tau > K/p");

  std::printf("Sweep over tau (p=2, K=4, n/core=600; K/p = 2):\n");
  bench::columns({"tau", "S_LRU", "S_FITF", "S_OFF", "LRU/OFF", "p(tau+1)"});
  std::vector<double> ratio_by_tau;
  bool fitf_suboptimal_seen = false;
  bool fitf_optimal_small_tau = true;
  for (Time tau : {Time{0}, Time{1}, Time{3}, Time{7}, Time{15}}) {
    const Row row = run_family(2, 4, tau, 600);
    const double ratio =
        static_cast<double>(row.lru) / static_cast<double>(row.off);
    ratio_by_tau.push_back(ratio);
    if (tau > 2 && row.fitf > row.off) fitf_suboptimal_seen = true;
    bench::cell(static_cast<std::uint64_t>(tau));
    bench::cell(row.lru);
    bench::cell(row.fitf);
    bench::cell(row.off);
    bench::cell(ratio);
    bench::cell(static_cast<std::uint64_t>(2 * (tau + 1)));
    bench::end_row();
  }

  std::printf("\nSweep over p (K=p^2, tau=3, n/core=600):\n");
  bench::columns({"p", "K", "S_LRU", "S_OFF", "LRU/OFF", "p(tau+1)"});
  std::vector<double> ratio_by_p;
  for (std::size_t p : {2u, 3u, 4u, 6u}) {
    const std::size_t K = p * p;
    const Row row = run_family(p, K, 3, 600);
    const double ratio =
        static_cast<double>(row.lru) / static_cast<double>(row.off);
    ratio_by_p.push_back(ratio);
    bench::cell(static_cast<std::uint64_t>(p));
    bench::cell(static_cast<std::uint64_t>(K));
    bench::cell(row.lru);
    bench::cell(row.off);
    bench::cell(ratio);
    bench::cell(static_cast<std::uint64_t>(p * 4));
    bench::end_row();
  }

  const bool tau_growth = ratio_by_tau.back() > 2.5 * ratio_by_tau.front();
  const bool p_growth = ratio_by_p.back() > 1.5 * ratio_by_p.front();
  (void)fitf_optimal_small_tau;
  return bench::verdict(tau_growth && p_growth && fitf_suboptimal_seen,
                        "ratio grows with tau and with p; FITF beaten by "
                        "S_OFF once tau > K/p");
}
