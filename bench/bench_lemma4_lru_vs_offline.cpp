// Experiment E7 — Lemma 4: on the cyclic family, S_LRU / S_OFF =
// Omega(p(tau+1)) — the offline strategy sacrifices one core and serves the
// rest from cache.  Side claim: shared FITF is *not* optimal once
// tau > K/p (it loses to S_OFF).
#include "adversary/adversary.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"

namespace {

using namespace mcp;

struct FamilyRow {
  Count lru = 0;
  Count fitf = 0;
  Count off = 0;
};

FamilyRow run_family(std::size_t p, std::size_t K, Time tau,
                     std::size_t per_core) {
  const RequestSet rs = lemma4_request_set(p, K, per_core);
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = tau;
  FamilyRow row;
  SharedStrategy lru(make_policy_factory("lru"));
  row.lru = simulate(cfg, rs, lru).total_faults();
  auto fitf = SharedStrategy::fitf();
  row.fitf = simulate(cfg, rs, *fitf).total_faults();
  SacrificeStrategy off(static_cast<CoreId>(p - 1));
  row.off = simulate(cfg, rs, off).total_faults();
  return row;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& tau_table = b.series(
      "ratio_vs_tau", "Sweep over tau (p=2, K=4, n/core=600; K/p = 2):",
      {"tau", "S_LRU", "S_FITF", "S_OFF", "LRU/OFF", "p(tau+1)"});
  std::vector<double> ratio_by_tau;
  bool fitf_suboptimal_seen = false;
  for (Time tau : {Time{0}, Time{1}, Time{3}, Time{7}, Time{15}}) {
    const FamilyRow row = run_family(2, 4, tau, 600);
    const double ratio =
        static_cast<double>(row.lru) / static_cast<double>(row.off);
    ratio_by_tau.push_back(ratio);
    if (tau > 2 && row.fitf > row.off) fitf_suboptimal_seen = true;
    tau_table.row(static_cast<std::uint64_t>(tau), row.lru, row.fitf, row.off,
                  ratio, static_cast<std::uint64_t>(2 * (tau + 1)));
  }

  auto& p_table = b.series(
      "ratio_vs_p", "Sweep over p (K=p^2, tau=3, n/core=600):",
      {"p", "K", "S_LRU", "S_OFF", "LRU/OFF", "p(tau+1)"});
  std::vector<double> ratio_by_p;
  for (std::size_t p : {2u, 3u, 4u, 6u}) {
    const std::size_t K = p * p;
    const FamilyRow row = run_family(p, K, 3, 600);
    const double ratio =
        static_cast<double>(row.lru) / static_cast<double>(row.off);
    ratio_by_p.push_back(ratio);
    p_table.row(static_cast<std::uint64_t>(p), static_cast<std::uint64_t>(K),
                row.lru, row.off, ratio, static_cast<std::uint64_t>(p * 4));
  }

  const bool tau_growth = ratio_by_tau.back() > 2.5 * ratio_by_tau.front();
  const bool p_growth = ratio_by_p.back() > 1.5 * ratio_by_p.front();
  return std::move(b).finish(tau_growth && p_growth && fitf_suboptimal_seen,
                             "ratio grows with tau and with p; FITF beaten by "
                             "S_OFF once tau > K/p");
}

}  // namespace

void mcp::experiments::register_e7(lab::ExperimentRegistry& registry) {
  registry.add({
      "E7",
      "Lemma 4 — S_LRU vs the sacrificing offline strategy",
      "S_LRU/S_OFF = Omega(p(tau+1)); S_FITF > S_OFF when tau > K/p",
      "EXPERIMENTS.md §E7; paper Lemma 4",
      {"lemma", "offline", "shared", "adversary"},
      "tau sweep at p=2, K=4; p sweep at K=p^2, tau=3; n/core=600",
      run,
  });
}
