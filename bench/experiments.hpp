// Registration entry points for every experiment definition TU in bench/.
//
// Each bench_*.cpp defines one experiment (id, claim, tags, run function)
// and exposes a register_* hook; register_all() wires them into a registry
// in index order.  Explicit calls — not static initializers — so the set of
// registered experiments is deterministic and independent of link order.
#pragma once

#include "lab/registry.hpp"

namespace mcp::experiments {

void register_e1(lab::ExperimentRegistry& registry);
void register_e2(lab::ExperimentRegistry& registry);
void register_e3(lab::ExperimentRegistry& registry);
void register_e4(lab::ExperimentRegistry& registry);
void register_e5(lab::ExperimentRegistry& registry);
void register_e6(lab::ExperimentRegistry& registry);
void register_e7(lab::ExperimentRegistry& registry);
void register_e8(lab::ExperimentRegistry& registry);
void register_e9(lab::ExperimentRegistry& registry);
void register_e10(lab::ExperimentRegistry& registry);
void register_e11(lab::ExperimentRegistry& registry);
void register_e12(lab::ExperimentRegistry& registry);
void register_e13(lab::ExperimentRegistry& registry);
void register_e14(lab::ExperimentRegistry& registry);
void register_e15(lab::ExperimentRegistry& registry);
void register_e16(lab::ExperimentRegistry& registry);
void register_e17(lab::ExperimentRegistry& registry);
void register_e18(lab::ExperimentRegistry& registry);

/// Registers the complete E-series (the index EXPERIMENTS.md documents).
void register_all(lab::ExperimentRegistry& registry);

}  // namespace mcp::experiments
