// Experiment E16 (extension) — empirical competitive ratios against the
// true optimum (Algorithm 1) on batches of tiny random instances, plus the
// Lemma-4 adversarial family for contrast.  Quantifies the paper's
// qualitative picture: shared FITF sits near (but not at) 1; online
// policies trail it; adversarial inputs blow the random-input ratios away.
#include <algorithm>

#include "adversary/adversary.hpp"
#include "core/batch_state.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "offline/competitive.hpp"
#include "offline/ftf_solver.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/shared.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

OfflineInstance random_tiny(std::size_t trial) {
  Rng rng(0xE16 + trial * 77);
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = 4 + rng.below(4);
  OfflineInstance inst;
  inst.requests =
      make_workload(homogeneous_spec(2, core, true, 0xABC + trial));
  inst.cache_size = 2 + rng.below(2);
  inst.tau = rng.below(4);
  return inst;
}

StrategyFactory shared_policy(const char* name) {
  return [name] {
    return std::make_unique<SharedStrategy>(make_policy_factory(name, 5));
  };
}

lab::ExperimentResult run(const lab::RunContext& ctx) {
  lab::ResultBuilder b;

  const std::size_t kTrials = 60;
  auto& ratio_table = b.series(
      "random_instance_ratios",
      "Random instances (p=2, K in {2,3}, tau in 0..3, " +
          std::to_string(kTrials) + " trials):",
      {"strategy", "mean", "max", "opt_hits"});
  double fitf_mean = 0.0;
  double fitf_max = 0.0;
  double best_online_mean = 1e9;
  bool all_sane = true;
  // The policy grid rides the sweep engine too: each cell is a full
  // measure_competitive_ratio batch (itself a nested sweep of its trials).
  const std::vector<std::string> policies = {"lru",  "fifo", "clock",
                                             "lfu",  "mark", "mark-random"};
  SweepOptions sweep_opts;
  sweep_opts.master_seed = ctx.master_seed;
  sweep_opts.max_threads = ctx.workers;
  SweepRunner sweep(sweep_opts);
  const std::vector<CompetitiveReport> reports =
      sweep.run(policies.size(), [&](std::size_t i, Rng& /*rng*/) {
        // S_LRU and S_FIFO are batchable: their trials run as lockstep
        // lanes through the batch engine, bit-identical to the per-trial
        // strategy objects the other policies keep.
        if (policies[i] == "lru") {
          return measure_competitive_ratio(
              BatchStrategySpec::shared(BatchPolicy::kLru), random_tiny,
              kTrials);
        }
        if (policies[i] == "fifo") {
          return measure_competitive_ratio(
              BatchStrategySpec::shared(BatchPolicy::kFifo), random_tiny,
              kTrials);
        }
        return measure_competitive_ratio(shared_policy(policies[i].c_str()),
                                         random_tiny, kTrials);
      });
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const CompetitiveReport& report = reports[i];
    all_sane = all_sane && report.max_ratio >= 1.0 - 1e-9;
    best_online_mean = std::min(best_online_mean, report.mean_ratio);
    ratio_table.row("S_" + policies[i], report.mean_ratio, report.max_ratio,
                    static_cast<std::uint64_t>(report.optimal_hits));
  }
  b.sweep("E16.policy_grid", sweep.last_timing());
  {
    const CompetitiveReport report = measure_competitive_ratio(
        [] { return SharedStrategy::fitf(); }, random_tiny, kTrials);
    fitf_mean = report.mean_ratio;
    fitf_max = report.max_ratio;
    ratio_table.row("S_FITF", report.mean_ratio, report.max_ratio,
                    static_cast<std::uint64_t>(report.optimal_hits));
  }

  auto& adversarial = b.series(
      "adversarial_contrast",
      "Lemma-4 adversarial family (p=2, K=4) for contrast:",
      {"tau", "S_LRU/OPT-proxy"});
  // The exact solver cannot handle the full family; use S_OFF as the upper
  // bound on OPT (any strategy's faults upper-bound the optimum's).
  double adversarial_ratio = 0.0;
  for (Time tau : {Time{1}, Time{7}}) {
    const RequestSet rs = lemma4_request_set(2, 4, 240);
    SimConfig cfg;
    cfg.cache_size = 4;
    cfg.fault_penalty = tau;
    SharedStrategy lru(make_policy_factory("lru"));
    const Count lru_faults = simulate(cfg, rs, lru).total_faults();
    SacrificeStrategy off(1);
    const Count off_faults = simulate(cfg, rs, off).total_faults();
    const double ratio =
        static_cast<double>(lru_faults) / static_cast<double>(off_faults);
    adversarial_ratio = std::max(adversarial_ratio, ratio);
    adversarial.row(static_cast<std::uint64_t>(tau), ratio);
  }

  const bool fitf_leads = fitf_mean <= best_online_mean + 1e-9;
  const bool fitf_not_optimal = fitf_max > 1.0;  // Lemma 4 in the wild
  const bool adversaries_dominate = adversarial_ratio > 3.0 * fitf_max;
  return std::move(b).finish(
      all_sane && fitf_leads && fitf_not_optimal && adversaries_dominate,
      "FITF leads online policies but is provably and measurably "
      "non-optimal; adversarial ratios dwarf random-input ratios");
}

}  // namespace

void mcp::experiments::register_e16(lab::ExperimentRegistry& registry) {
  registry.add({
      "E16",
      "Empirical competitive ratios vs the exact optimum",
      "on random tiny instances: FITF ~1 but not always 1 (Lemma 4); online "
      "policies trail; every ratio >= 1",
      "EXPERIMENTS.md §E16; paper Lemma 4 context",
      {"extension", "competitive", "sweep"},
      "60 random tiny instances x 6 policies + FITF; Lemma-4 family at tau "
      "in {1,7}",
      run,
  });
}
