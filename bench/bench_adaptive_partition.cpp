// Experiment E14 (extension) — adaptive partition controllers: the paper's
// future-work direction made concrete.  Utility-driven (UCP-lite) and
// fairness-driven repartitioning vs the paper's static/shared/Lemma-3
// strategies on workloads with skewed and phase-shifting demand.
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/adaptive_partition.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

/// Demand shifts between halves: cores swap hot-set sizes mid-run, so any
/// single static partition is wrong half the time.
RequestSet phase_shift_workload(std::size_t p, std::size_t half) {
  RequestSet rs;
  for (std::size_t j = 0; j < p; ++j) {
    const PageId base = static_cast<PageId>(j * 32);
    const std::size_t big = 12;
    const std::size_t small = 2;
    const std::size_t first = (j % 2 == 0) ? big : small;
    const std::size_t second = (j % 2 == 0) ? small : big;
    RequestSequence seq;
    const std::vector<PageId> first_set = page_block(base, first);
    seq.append_repeated(first_set, half / first);
    const std::vector<PageId> second_set = page_block(base + 16, second);
    seq.append_repeated(second_set, half / second);
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  const std::size_t p = 4;
  const std::size_t K = 32;
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = 4;

  const RequestSet rs = phase_shift_workload(p, 3000);
  b.notef("workload: per-core hot set flips 12<->2 pages mid-run (%s)",
          rs.describe().c_str());

  auto& table = b.series("strategy_comparison", "",
                         {"strategy", "faults", "rate", "jain", "repart"});
  const auto add_row = [&](const std::string& name, CacheStrategy& strategy,
                           Count reparts) {
    const RunStats stats = simulate(cfg, rs, strategy);
    table.row(name, stats.total_faults(), stats.overall_fault_rate(),
              stats.jain_fairness(), reparts);
    return stats;
  };

  SharedStrategy shared(make_policy_factory("lru"));
  const Count shared_faults = add_row("S_LRU", shared, 0).total_faults();

  StaticPartitionStrategy even(even_partition(K, p),
                               make_policy_factory("lru"));
  const Count even_faults = add_row("sP_even_LRU", even, 0).total_faults();

  const auto tuned =
      optimal_partition_for_policy(rs, K, make_policy_factory("lru"));
  StaticPartitionStrategy best_static(tuned.partition,
                                      make_policy_factory("lru"));
  const Count tuned_faults =
      add_row("sP^OPT_LRU " + partition_to_string(tuned.partition),
              best_static, 0)
          .total_faults();

  UtilityPartitionStrategy ucp(make_policy_factory("lru"), /*interval=*/128);
  const RunStats ucp_stats = simulate(cfg, rs, ucp);
  table.row("dP[utility]", ucp_stats.total_faults(),
            ucp_stats.overall_fault_rate(), ucp_stats.jain_fairness(),
            ucp.repartitions());
  const Count ucp_faults = ucp_stats.total_faults();
  b.stats("dP[utility] run_stats", ucp_stats.to_json());

  FairnessPartitionStrategy fair(make_policy_factory("lru"), 128);
  const RunStats fair_stats = simulate(cfg, rs, fair);
  table.row("dP[fairness]", fair_stats.total_faults(),
            fair_stats.overall_fault_rate(), fair_stats.jain_fairness(),
            fair.repartitions());

  Lemma3DynamicPartition lemma3;
  const Count lemma3_faults = add_row("dP[lemma3]", lemma3, 0).total_faults();

  // Ablation: repartition cadence (temporal granularity).  Too coarse and
  // the controller misses the demand flip; too fine costs churn with no
  // further gain.
  auto& cadence =
      b.series("repartition_interval_ablation",
               "Utility controller repartition-interval ablation:",
               {"interval", "faults", "repartitions"});
  for (Time interval : {Time{32}, Time{128}, Time{512}, Time{2048}}) {
    UtilityPartitionStrategy sweep(make_policy_factory("lru"), interval);
    const RunStats stats = simulate(cfg, rs, sweep);
    cadence.row(static_cast<std::uint64_t>(interval), stats.total_faults(),
                sweep.repartitions());
  }

  // Decisive wins over static (even the offline-tuned one), and within a
  // small constant of shared LRU, which sits at the compulsory floor here.
  const bool ucp_beats_static =
      4 * ucp_faults < even_faults && 2 * ucp_faults < tuned_faults;
  const bool near_shared = ucp_faults < 8 * shared_faults;
  const bool lemma3_equals_shared = lemma3_faults == shared_faults;
  return std::move(b).finish(
      ucp_beats_static && near_shared && lemma3_equals_shared,
      "utility controller beats every static partition on shifting demand; "
      "Lemma-3 controller stays identical to S_LRU");
}

}  // namespace

void mcp::experiments::register_e14(lab::ExperimentRegistry& registry) {
  registry.add({
      "E14",
      "Adaptive partitions (extension): utility & fairness controllers",
      "on shifting demand, adaptive repartitioning beats every static "
      "partition (incl. the offline-tuned one) and approaches shared LRU",
      "EXPERIMENTS.md §E14; paper §4 future work",
      {"extension", "adaptive", "partition"},
      "p=4, K=32, tau=4; hot set flips 12<->2 mid-run; interval ablation "
      "{32,128,512,2048}",
      run,
  });
}
