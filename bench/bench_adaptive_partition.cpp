// Experiment E14 (extension) — adaptive partition controllers: the paper's
// future-work direction made concrete.  Utility-driven (UCP-lite) and
// fairness-driven repartitioning vs the paper's static/shared/Lemma-3
// strategies on workloads with skewed and phase-shifting demand.
#include <cstdio>

#include "bench_util.hpp"
#include "core/simulator.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/adaptive_partition.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

/// Demand shifts between halves: cores swap hot-set sizes mid-run, so any
/// single static partition is wrong half the time.
RequestSet phase_shift_workload(std::size_t p, std::size_t half) {
  RequestSet rs;
  for (std::size_t j = 0; j < p; ++j) {
    const PageId base = static_cast<PageId>(j * 32);
    const std::size_t big = 12;
    const std::size_t small = 2;
    const std::size_t first = (j % 2 == 0) ? big : small;
    const std::size_t second = (j % 2 == 0) ? small : big;
    RequestSequence seq;
    const std::vector<PageId> first_set = page_block(base, first);
    seq.append_repeated(first_set, half / first);
    const std::vector<PageId> second_set = page_block(base + 16, second);
    seq.append_repeated(second_set, half / second);
    rs.add_sequence(std::move(seq));
  }
  return rs;
}

}  // namespace

int main() {
  using namespace mcp;
  const std::size_t p = 4;
  const std::size_t K = 32;
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = 4;

  bench::header("E14  Adaptive partitions (extension): utility & fairness "
                "controllers",
                "on shifting demand, adaptive repartitioning beats every "
                "static partition (incl. the offline-tuned one) and "
                "approaches shared LRU");

  const RequestSet rs = phase_shift_workload(p, 3000);
  std::printf("workload: per-core hot set flips 12<->2 pages mid-run (%s)\n\n",
              rs.describe().c_str());

  bench::columns({"strategy", "faults", "rate", "jain", "repart"});
  const auto row = [&](const std::string& name, CacheStrategy& strategy,
                       Count reparts) {
    const RunStats stats = simulate(cfg, rs, strategy);
    bench::cell(name);
    bench::cell(stats.total_faults());
    bench::cell(stats.overall_fault_rate());
    bench::cell(stats.jain_fairness());
    bench::cell(reparts);
    bench::end_row();
    return stats.total_faults();
  };

  SharedStrategy shared(make_policy_factory("lru"));
  const Count shared_faults = row("S_LRU", shared, 0);

  StaticPartitionStrategy even(even_partition(K, p), make_policy_factory("lru"));
  const Count even_faults = row("sP_even_LRU", even, 0);

  const auto tuned =
      optimal_partition_for_policy(rs, K, make_policy_factory("lru"));
  StaticPartitionStrategy best_static(tuned.partition,
                                      make_policy_factory("lru"));
  const Count tuned_faults =
      row("sP^OPT_LRU " + partition_to_string(tuned.partition), best_static, 0);

  UtilityPartitionStrategy ucp(make_policy_factory("lru"), /*interval=*/128);
  const Count ucp_faults = row("dP[utility]", ucp, 0);
  std::printf("%14s repartitions: %llu\n", "",
              static_cast<unsigned long long>(ucp.repartitions()));

  FairnessPartitionStrategy fair(make_policy_factory("lru"), 128);
  const Count fair_faults = row("dP[fairness]", fair, 0);
  std::printf("%14s repartitions: %llu\n", "",
              static_cast<unsigned long long>(fair.repartitions()));

  Lemma3DynamicPartition lemma3;
  const Count lemma3_faults = row("dP[lemma3]", lemma3, 0);

  // Ablation: repartition cadence (temporal granularity).  Too coarse and
  // the controller misses the demand flip; too fine costs churn with no
  // further gain.
  std::printf("\nUtility controller repartition-interval ablation:\n");
  bench::columns({"interval", "faults", "repartitions"});
  for (Time interval : {Time{32}, Time{128}, Time{512}, Time{2048}}) {
    UtilityPartitionStrategy sweep(make_policy_factory("lru"), interval);
    const RunStats stats = simulate(cfg, rs, sweep);
    bench::cell(static_cast<std::uint64_t>(interval));
    bench::cell(stats.total_faults());
    bench::cell(sweep.repartitions());
    bench::end_row();
  }

  // Decisive wins over static (even the offline-tuned one), and within a
  // small constant of shared LRU, which sits at the compulsory floor here.
  const bool ucp_beats_static = 4 * ucp_faults < even_faults &&
                                2 * ucp_faults < tuned_faults;
  const bool near_shared = ucp_faults < 8 * shared_faults;
  const bool lemma3_equals_shared = lemma3_faults == shared_faults;
  (void)fair_faults;
  return bench::verdict(
      ucp_beats_static && near_shared && lemma3_equals_shared,
      "utility controller beats every static partition on shifting demand; "
      "Lemma-3 controller stays identical to S_LRU");
}
