// Experiment E9 — Theorem 7 / Algorithm 2: the PIF decision procedure runs
// in time polynomial in the sequence length (layer width stays bounded by
// the Pareto frontier), and agrees with the exhaustive search.
#include <chrono>

#include "core/rng.hpp"
#include "experiments.hpp"
#include "offline/exhaustive.hpp"
#include "offline/pif_solver.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

PifInstance random_pif(std::size_t per_core, Time deadline, Count bound,
                       std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = per_core;
  PifInstance inst;
  inst.base.requests = make_workload(homogeneous_spec(2, core, true, seed));
  inst.base.cache_size = 2;
  inst.base.tau = 1;
  inst.deadline = deadline;
  inst.bounds = {bound, bound};
  return inst;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& deadline_table = b.series(
      "width_vs_deadline",
      "Scaling in the deadline (p=2, K=2, tau=1, generous bounds):",
      {"deadline", "feasible", "peak_width", "expanded", "ms"});
  std::vector<std::size_t> widths;
  for (Time deadline : {Time{8}, Time{16}, Time{32}, Time{64}, Time{128}}) {
    const PifInstance inst =
        random_pif(/*per_core=*/deadline, deadline, deadline, 31);
    const auto start = std::chrono::steady_clock::now();
    const PifResult result = solve_pif(inst);
    const auto stop = std::chrono::steady_clock::now();
    widths.push_back(result.peak_layer_width);
    deadline_table.row(
        static_cast<std::uint64_t>(deadline), result.feasible ? "yes" : "no",
        static_cast<std::uint64_t>(result.peak_layer_width),
        static_cast<std::uint64_t>(result.states_expanded),
        std::chrono::duration<double, std::milli>(stop - start).count());
  }

  auto& bounds_table =
      b.series("tightening_bounds", "Tightening bounds (deadline=24, n/core=24):",
               {"bound", "feasible", "peak_width", "decided_at"});
  for (Count bound : {Count{24}, Count{12}, Count{8}, Count{6}, Count{4}, Count{2}}) {
    const PifInstance inst = random_pif(24, 24, bound, 32);
    const PifResult result = solve_pif(inst);
    bounds_table.row(bound, result.feasible ? "yes" : "no",
                     static_cast<std::uint64_t>(result.peak_layer_width),
                     static_cast<std::uint64_t>(result.decided_at));
  }

  b.note("Agreement with exhaustive search (20 random instances):");
  Rng rng(404);
  std::size_t agreements = 0;
  std::size_t total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const PifInstance inst =
        random_pif(5, 3 + rng.below(9), rng.below(5), 500 + static_cast<std::uint64_t>(trial));
    const bool dp = solve_pif(inst).feasible;
    const bool brute = exhaustive_pif(inst).feasible;
    agreements += dp == brute ? 1 : 0;
    ++total;
  }
  b.notef("  %zu/%zu agree", agreements, total);

  // Peak width growing sub-quadratically in deadline indicates Pareto
  // pruning is doing its job (worst case is much larger).
  const double growth = static_cast<double>(widths.back()) /
                        static_cast<double>(widths.front());
  return std::move(b).finish(agreements == total && growth < 256.0,
                             "decisions exact; layer width stays polynomial");
}

}  // namespace

void mcp::experiments::register_e9(lab::ExperimentRegistry& registry) {
  registry.add({
      "E9",
      "Theorem 7 / Algorithm 2 — PIF decision solver scaling",
      "layered search is polynomial in n for fixed K,p; decisions match the "
      "exhaustive search",
      "EXPERIMENTS.md §E9; paper Theorem 7 / Algorithm 2",
      {"theorem", "offline", "solver", "scaling"},
      "deadline in {8..128}; bounds in {24..2} at deadline=24; 20 agreement "
      "trials",
      run,
  });
}
