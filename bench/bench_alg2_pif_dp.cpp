// Experiment E9 — Theorem 7 / Algorithm 2: the PIF decision procedure runs
// in time polynomial in the sequence length (layer width stays bounded by
// the Pareto frontier), and agrees with the exhaustive search.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "offline/exhaustive.hpp"
#include "offline/pif_solver.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

PifInstance random_pif(std::size_t per_core, Time deadline, Count bound,
                       std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = per_core;
  PifInstance inst;
  inst.base.requests = make_workload(homogeneous_spec(2, core, true, seed));
  inst.base.cache_size = 2;
  inst.base.tau = 1;
  inst.deadline = deadline;
  inst.bounds = {bound, bound};
  return inst;
}

}  // namespace

int main() {
  using namespace mcp;
  bench::header("E9  Theorem 7 / Algorithm 2 — PIF decision solver scaling",
                "layered search is polynomial in n for fixed K,p; decisions "
                "match the exhaustive search");

  std::printf("Scaling in the deadline (p=2, K=2, tau=1, generous bounds):\n");
  bench::columns({"deadline", "feasible", "peak_width", "expanded", "ms"});
  std::vector<std::size_t> widths;
  for (Time deadline : {Time{8}, Time{16}, Time{32}, Time{64}, Time{128}}) {
    const PifInstance inst =
        random_pif(/*per_core=*/deadline, deadline, deadline, 31);
    const auto start = std::chrono::steady_clock::now();
    const PifResult result = solve_pif(inst);
    const auto stop = std::chrono::steady_clock::now();
    widths.push_back(result.peak_layer_width);
    bench::cell(static_cast<std::uint64_t>(deadline));
    bench::cell(std::string(result.feasible ? "yes" : "no"));
    bench::cell(result.peak_layer_width);
    bench::cell(result.states_expanded);
    bench::cell(std::chrono::duration<double, std::milli>(stop - start).count());
    bench::end_row();
  }

  std::printf("\nTightening bounds (deadline=24, n/core=24):\n");
  bench::columns({"bound", "feasible", "peak_width", "decided_at"});
  for (Count bound : {Count{24}, Count{12}, Count{8}, Count{6}, Count{4}, Count{2}}) {
    const PifInstance inst = random_pif(24, 24, bound, 32);
    const PifResult result = solve_pif(inst);
    bench::cell(bound);
    bench::cell(std::string(result.feasible ? "yes" : "no"));
    bench::cell(result.peak_layer_width);
    bench::cell(static_cast<std::uint64_t>(result.decided_at));
    bench::end_row();
  }

  std::printf("\nAgreement with exhaustive search (20 random instances):\n");
  Rng rng(404);
  std::size_t agreements = 0;
  std::size_t total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const PifInstance inst =
        random_pif(5, 3 + rng.below(9), rng.below(5), 500 + static_cast<std::uint64_t>(trial));
    const bool dp = solve_pif(inst).feasible;
    const bool brute = exhaustive_pif(inst).feasible;
    agreements += dp == brute ? 1 : 0;
    ++total;
  }
  std::printf("  %zu/%zu agree\n", agreements, total);

  // Peak width growing sub-quadratically in deadline indicates Pareto
  // pruning is doing its job (worst case is much larger).
  const double growth = static_cast<double>(widths.back()) /
                        static_cast<double>(widths.front());
  return bench::verdict(agreements == total && growth < 256.0,
                        "decisions exact; layer width stays polynomial");
}
