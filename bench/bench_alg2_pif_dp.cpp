// Experiment E9 — Theorem 7 / Algorithm 2: the PIF decision procedure runs
// in time polynomial in the sequence length (layer width stays bounded by
// the Pareto frontier), and agrees with the exhaustive search.
#include <chrono>

#include "core/rng.hpp"
#include "experiments.hpp"
#include "offline/exhaustive.hpp"
#include "offline/pif_solver.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

PifInstance random_pif(std::size_t per_core, Time deadline, Count bound,
                       std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = per_core;
  PifInstance inst;
  inst.base.requests = make_workload(homogeneous_spec(2, core, true, seed));
  inst.base.cache_size = 2;
  inst.base.tau = 1;
  inst.deadline = deadline;
  inst.bounds = {bound, bound};
  return inst;
}

double solve_ms(const PifInstance& inst, const PifOptions& options,
                PifResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = solve_pif(inst, options);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

lab::ExperimentResult run(const lab::RunContext& ctx) {
  lab::ResultBuilder b;
  PifOptions packed_opts;
  packed_opts.workers = ctx.workers;

  auto& deadline_table = b.series(
      "width_vs_deadline",
      "Scaling in the deadline (p=2, K=2, tau=1, generous bounds):",
      {"deadline", "feasible", "peak_width", "expanded", "ms", "kstates/s"});
  std::vector<std::size_t> widths;
  for (Time deadline : {Time{8}, Time{16}, Time{32}, Time{64}, Time{128}}) {
    const PifInstance inst =
        random_pif(/*per_core=*/deadline, deadline, deadline, 31);
    PifResult result;
    const double ms = solve_ms(inst, packed_opts, &result);
    widths.push_back(result.peak_layer_width);
    deadline_table.row(
        static_cast<std::uint64_t>(deadline), result.feasible ? "yes" : "no",
        static_cast<std::uint64_t>(result.peak_layer_width),
        static_cast<std::uint64_t>(result.states_expanded), ms,
        ms <= 0.0 ? 0.0 : static_cast<double>(result.states_expanded) / ms);
  }

  // Packed layer-parallel vs reference serial engine, and the determinism
  // contract: bit-identical witnesses at any worker count.
  auto& engine_table = b.series(
      "engine_speedup",
      "Packed (interned bitsets, layer-parallel) vs reference (serial):",
      {"deadline", "ref_ms", "packed_ms", "ref_kst/s", "packed_kst/s",
       "speedup"});
  bool engines_agree = true;
  for (Time deadline : {Time{32}, Time{64}, Time{128}}) {
    const PifInstance inst =
        random_pif(/*per_core=*/deadline, deadline, deadline, 31);
    PifOptions ref_opts;
    ref_opts.engine = OfflineEngine::kReference;
    PifResult packed;
    PifResult ref;
    const double packed_ms = solve_ms(inst, packed_opts, &packed);
    const double ref_ms = solve_ms(inst, ref_opts, &ref);
    engines_agree = engines_agree && packed.feasible == ref.feasible &&
                    packed.decided_at == ref.decided_at &&
                    packed.peak_layer_width == ref.peak_layer_width;
    const auto rate = [](std::size_t states, double ms) {
      return ms <= 0.0 ? 0.0 : static_cast<double>(states) / ms;
    };
    engine_table.row(static_cast<std::uint64_t>(deadline), ref_ms, packed_ms,
                     rate(ref.states_expanded, ref_ms),
                     rate(packed.states_expanded, packed_ms),
                     packed_ms <= 0.0 ? 0.0 : ref_ms / packed_ms);
  }

  bool deterministic = true;
  {
    PifInstance inst = random_pif(48, 48, 12, 33);
    PifOptions base;
    base.build_schedule = true;
    base.workers = 1;
    const PifResult serial = solve_pif(inst, base);
    for (std::size_t workers : {2u, 8u}) {
      base.workers = workers;
      const PifResult parallel = solve_pif(inst, base);
      deterministic = deterministic && parallel.feasible == serial.feasible &&
                      parallel.schedule == serial.schedule &&
                      parallel.peak_layer_width == serial.peak_layer_width;
    }
    b.notef("Worker determinism (workers 1/2/8): %s",
            deterministic ? "bit-identical" : "MISMATCH");
  }

  auto& bounds_table =
      b.series("tightening_bounds", "Tightening bounds (deadline=24, n/core=24):",
               {"bound", "feasible", "peak_width", "decided_at"});
  for (Count bound : {Count{24}, Count{12}, Count{8}, Count{6}, Count{4}, Count{2}}) {
    const PifInstance inst = random_pif(24, 24, bound, 32);
    const PifResult result = solve_pif(inst);
    bounds_table.row(bound, result.feasible ? "yes" : "no",
                     static_cast<std::uint64_t>(result.peak_layer_width),
                     static_cast<std::uint64_t>(result.decided_at));
  }

  b.note("Agreement with exhaustive search (20 random instances):");
  Rng rng(404);
  std::size_t agreements = 0;
  std::size_t total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const PifInstance inst =
        random_pif(5, 3 + rng.below(9), rng.below(5), 500 + static_cast<std::uint64_t>(trial));
    const bool dp = solve_pif(inst).feasible;
    const bool brute = exhaustive_pif(inst).feasible;
    agreements += dp == brute ? 1 : 0;
    ++total;
  }
  b.notef("  %zu/%zu agree", agreements, total);

  // Peak width growing sub-quadratically in deadline indicates Pareto
  // pruning is doing its job (worst case is much larger).
  const double growth = static_cast<double>(widths.back()) /
                        static_cast<double>(widths.front());
  return std::move(b).finish(
      agreements == total && growth < 256.0 && engines_agree && deterministic,
      "decisions exact; layer width stays polynomial; engines agree; "
      "worker-count independent");
}

}  // namespace

void mcp::experiments::register_e9(lab::ExperimentRegistry& registry) {
  registry.add({
      "E9",
      "Theorem 7 / Algorithm 2 — PIF decision solver scaling",
      "layered search is polynomial in n for fixed K,p; decisions match the "
      "exhaustive search",
      "EXPERIMENTS.md §E9; paper Theorem 7 / Algorithm 2",
      {"theorem", "offline", "solver", "scaling"},
      "deadline in {8..128}; bounds in {24..2} at deadline=24; 20 agreement "
      "trials",
      run,
  });
}
