// Experiment E15 (extension) — objectives across models: the paper's
// FINAL-TOTAL-FAULTS vs Hassidim's makespan, computed exactly on the same
// tiny instances by the two offline solvers.  Checks the structural
// relations (optimal-FTF schedules are makespan-feasible but not always
// makespan-optimal; with tau=0 makespan is schedule-independent) and
// reports how often the two optima diverge.
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "offline/ftf_solver.hpp"
#include "offline/makespan_solver.hpp"
#include "offline/replay.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

OfflineInstance random_instance(std::size_t per_core, Time tau,
                                std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = per_core;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(2, core, true, seed));
  inst.cache_size = 2;
  inst.tau = tau;
  return inst;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& table =
      b.series("objective_gap", "",
               {"trial", "tau", "ftf_opt", "ms_opt", "ftf_sched_ms", "gap"});
  Rng rng(1618);
  std::size_t divergences = 0;
  std::size_t violations = 0;
  const int trials = 16;
  for (int trial = 0; trial < trials; ++trial) {
    const Time tau = 1 + rng.below(3);
    const OfflineInstance inst = random_instance(
        4 + rng.below(3), tau, 3000 + static_cast<std::uint64_t>(trial));
    FtfOptions options;
    options.build_schedule = true;
    const FtfResult ftf = solve_ftf(inst, options);
    const MakespanResult ms = solve_min_makespan(inst);
    const RunStats replay = replay_schedule(inst, ftf.schedule);
    const Time gap = replay.makespan() - ms.min_makespan;
    if (gap > 0) ++divergences;
    if (replay.makespan() < ms.min_makespan) ++violations;
    table.row(static_cast<std::uint64_t>(trial),
              static_cast<std::uint64_t>(tau), ftf.min_faults,
              static_cast<std::uint64_t>(ms.min_makespan),
              static_cast<std::uint64_t>(replay.makespan()),
              static_cast<std::uint64_t>(gap));
  }
  b.notef("%zu/%d instances: the FTF-optimal schedule is strictly slower "
          "than the makespan optimum",
          divergences, trials);

  // tau = 0 sanity: makespan is eviction-independent (every request takes
  // one step), so ms_opt == longest sequence - 1 always.
  bool tau0_ok = true;
  for (int trial = 0; trial < 6; ++trial) {
    const OfflineInstance inst =
        random_instance(6, 0, 4000 + static_cast<std::uint64_t>(trial));
    const MakespanResult ms = solve_min_makespan(inst);
    tau0_ok =
        tau0_ok && ms.min_makespan == inst.requests.max_sequence_length() - 1;
  }
  b.notef("tau=0 check: makespan == n_max - 1 on all instances: %s",
          tau0_ok ? "yes" : "NO");

  return std::move(b).finish(violations == 0 && tau0_ok,
                             "makespan optimum lower-bounds every FTF-optimal "
                             "schedule; tau=0 degenerates as predicted");
}

}  // namespace

void mcp::experiments::register_e15(lab::ExperimentRegistry& registry) {
  registry.add({
      "E15",
      "FTF vs makespan objectives (cross-model, extension)",
      "optimal-FTF schedules are never better than the makespan optimum; "
      "the two optima coincide on some instances and diverge on others",
      "EXPERIMENTS.md §E15; Hassidim SPAA'10 cross-model",
      {"extension", "offline", "objective"},
      "16 random instances (p=2, K=2, tau in {1,2,3}); 6 tau=0 sanity "
      "instances",
      run,
  });
}
