// Experiment E17 (extension) — cache geometry: fault rate vs associativity.
// The paper's model is fully associative; this sweep measures what W-way
// set-associativity costs on locality workloads, per eviction policy —
// the classic conflict-miss curve, regenerated on our simulator.
#include <string>
#include <utility>

#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/set_associative.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  const std::size_t p = 4;
  const std::size_t K = 64;
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = 4;

  CoreWorkload core;
  core.pattern = AccessPattern::kZipf;
  core.num_pages = 48;
  core.length = 6000;
  const RequestSet zipf = make_workload(homogeneous_spec(p, core, true, 17));

  CoreWorkload walk;
  walk.pattern = AccessPattern::kMarkov;
  walk.num_pages = 48;
  walk.length = 6000;
  const RequestSet markov = make_workload(homogeneous_spec(p, walk, true, 18));

  bool shape_ok = true;
  for (const auto& [label, rs] :
       {std::pair<const char*, const RequestSet*>{"zipf", &zipf},
        std::pair<const char*, const RequestSet*>{"markov", &markov}}) {
    auto& table = b.series(std::string("associativity_") + label,
                           "workload: " + std::string(label),
                           {"ways", "LRU rate", "FIFO rate", "CLOCK rate"});
    double direct_lru = 0.0;
    double full_lru = 0.0;
    for (std::size_t ways : {1u, 2u, 4u, 8u, 16u, 64u}) {
      const std::size_t sets = K / ways;
      lab::Row row;
      row.emplace_back(static_cast<std::uint64_t>(ways));
      for (const char* policy : {"lru", "fifo", "clock"}) {
        SetAssociativeStrategy sa(sets, make_policy_factory(policy));
        const RunStats stats = simulate(cfg, *rs, sa);
        const double rate = stats.overall_fault_rate();
        row.emplace_back(rate);
        if (std::string(policy) == "lru") {
          if (ways == 1) direct_lru = rate;
          if (ways == 64) full_lru = rate;
        }
      }
      table.add_row(std::move(row));
    }
    shape_ok = shape_ok && full_lru <= direct_lru;
  }

  return std::move(b).finish(shape_ok,
                             "full associativity never loses to direct-mapped");
}

}  // namespace

void mcp::experiments::register_e17(lab::ExperimentRegistry& registry) {
  registry.add({
      "E17",
      "Associativity sweep (extension; p=4, K=64, tau=4)",
      "fault rate falls from direct-mapped toward fully associative; most "
      "of the win arrives by ~4-8 ways",
      "EXPERIMENTS.md §E17",
      {"extension", "geometry", "associativity"},
      "ways in {1,2,4,8,16,64} x {LRU,FIFO,CLOCK} on zipf and markov "
      "workloads",
      run,
  });
}
