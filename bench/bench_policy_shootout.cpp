// Experiment E12 — the practical shootout the paper's introduction
// motivates: eviction policies x cache-management strategies on locality
// workloads, reporting fault rates and Jain fairness.  Also the ablation of
// SharedFetchMode on a non-disjoint workload.
#include <algorithm>
#include <memory>

#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/dynamic_partition.hpp"
#include "strategies/shared.hpp"
#include "strategies/static_partition.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

RequestSet workload_named(const std::string& name, std::size_t p,
                          std::uint64_t seed) {
  CoreWorkload core;
  core.length = 4000;
  if (name == "zipf") {
    core.pattern = AccessPattern::kZipf;
    core.num_pages = 48;
  } else if (name == "phases") {
    core.pattern = AccessPattern::kWorkingSet;
    core.num_pages = 64;
    core.working_set = 6;
    core.phase_length = 200;
  } else if (name == "scan") {
    core.pattern = AccessPattern::kScan;
    core.num_pages = 24;
  } else {  // mixed: different pattern per core
    WorkloadSpec spec;
    spec.disjoint = true;
    spec.seed = seed;
    for (std::size_t j = 0; j < p; ++j) {
      CoreWorkload c;
      c.length = 4000;
      switch (j % 4) {
        case 0: c.pattern = AccessPattern::kZipf; c.num_pages = 48; break;
        case 1: c.pattern = AccessPattern::kWorkingSet; c.num_pages = 64;
                c.working_set = 6; c.phase_length = 200; break;
        case 2: c.pattern = AccessPattern::kScan; c.num_pages = 24; break;
        default: c.pattern = AccessPattern::kLoop; c.num_pages = 16;
                 c.loop_length = 6; break;
      }
      spec.cores.push_back(c);
    }
    return make_workload(spec);
  }
  return make_workload(homogeneous_spec(p, core, true, seed));
}

lab::ExperimentResult run(const lab::RunContext& ctx) {
  lab::ResultBuilder b;

  const std::size_t p = 4;
  const std::size_t K = 32;
  const Time tau = 4;
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = tau;

  bool fitf_wins = true;
  const std::vector<std::string> policies = {"lru",  "slru",   "fifo",
                                             "clock", "lfu",   "mru",
                                             "random", "mark", "mark-random"};
  // One row of the policy grid: every strategy family run on one policy.
  struct ShootoutRow {
    double shared_rate = 0.0;
    double shared_jain = 0.0;
    double even_rate = 0.0;
    double dynamic_rate = -1.0;  ///< < 0: not measured for this policy
  };
  for (const char* wl : {"zipf", "phases", "scan", "mixed"}) {
    const RequestSet rs = workload_named(wl, p, 1234);
    auto& table =
        b.series(std::string("shootout_") + wl,
                 "workload: " + std::string(wl) +
                     "  (n=" + std::to_string(rs.total_requests()) + ")",
                 {"policy", "S_A rate", "S_A jain", "sP_even", "dP_lemma3"});
    double fitf_shared = 1.0;
    double best_online_shared = 1.0;
    // The policy x strategy grid cells are independent simulations: sweep
    // them on the shared pool and print the rows in policy order.
    SweepOptions sweep_opts;
    sweep_opts.master_seed = ctx.master_seed;
    sweep_opts.max_threads = ctx.workers;
    SweepRunner sweep(sweep_opts);
    const std::vector<ShootoutRow> rows =
        sweep.run(policies.size(), [&](std::size_t i, Rng& /*rng*/) {
          const std::string& policy = policies[i];
          ShootoutRow row;
          SharedStrategy shared(make_policy_factory(policy, 99));
          const RunStats s = simulate(cfg, rs, shared);
          row.shared_rate = s.overall_fault_rate();
          row.shared_jain = s.jain_fairness();
          StaticPartitionStrategy even(even_partition(K, p),
                                       make_policy_factory(policy, 99));
          row.even_rate = simulate(cfg, rs, even).overall_fault_rate();
          if (policy == "lru") {
            Lemma3DynamicPartition dynamic;
            row.dynamic_rate = simulate(cfg, rs, dynamic).overall_fault_rate();
          }
          return row;
        });
    for (std::size_t i = 0; i < policies.size(); ++i) {
      if (rows[i].dynamic_rate >= 0.0) {
        table.row(policies[i], rows[i].shared_rate, rows[i].shared_jain,
                  rows[i].even_rate, rows[i].dynamic_rate);
      } else {
        table.row(policies[i], rows[i].shared_rate, rows[i].shared_jain,
                  rows[i].even_rate, "-");
      }
      best_online_shared = std::min(best_online_shared, rows[i].shared_rate);
    }
    b.sweep(std::string("E12.") + wl, sweep.last_timing());
    auto fitf = SharedStrategy::fitf();
    const RunStats f = simulate(cfg, rs, *fitf);
    fitf_shared = f.overall_fault_rate();
    auto fitf_part = StaticPartitionStrategy::fitf(even_partition(K, p));
    table.row("FITF", fitf_shared, f.jain_fairness(),
              simulate(cfg, rs, *fitf_part).overall_fault_rate(), "-");
    // FITF is a strong heuristic here, not the optimum (Lemma 4): allow a
    // whisker of slack but expect it to lead the shared column.
    fitf_wins = fitf_wins && fitf_shared <= best_online_shared * 1.05;
  }

  auto& ablation = b.series(
      "shared_fetch_ablation",
      "Ablation: SharedFetchMode on a non-disjoint Zipf workload:",
      {"mode", "faults", "rate", "makespan"});
  CoreWorkload shared_core;
  shared_core.pattern = AccessPattern::kZipf;
  shared_core.num_pages = 48;
  shared_core.length = 4000;
  const RequestSet overlap =
      make_workload(homogeneous_spec(p, shared_core, /*disjoint=*/false, 77));
  for (SharedFetchMode mode :
       {SharedFetchMode::kCountsAsFault, SharedFetchMode::kJoinsFetch}) {
    SimConfig ablate = cfg;
    ablate.shared_fetch = mode;
    SharedStrategy lru(make_policy_factory("lru"));
    const RunStats stats = simulate(ablate, overlap, lru);
    ablation.row(mode == SharedFetchMode::kCountsAsFault ? "counts-fault"
                                                         : "joins-fetch",
                 stats.total_faults(), stats.overall_fault_rate(),
                 stats.makespan());
  }

  return std::move(b).finish(
      fitf_wins, "offline FITF leads every online policy per workload");
}

}  // namespace

void mcp::experiments::register_e12(lab::ExperimentRegistry& registry) {
  registry.add({
      "E12",
      "Policy x strategy shootout (p=4, K=32, tau=4)",
      "fault rate by eviction policy and strategy family; FITF lower-bounds "
      "the online policies per strategy",
      "EXPERIMENTS.md §E12; paper §1 motivation",
      {"shootout", "policy", "strategy", "sweep"},
      "4 workloads x 9 policies x {S_A, sP_even, dP_lemma3}; SharedFetchMode "
      "ablation on non-disjoint Zipf",
      run,
  });
}
