// Experiment E3 — Theorem 1.1: on the distinct-period family even the best
// static partition with the best per-part eviction (sP^OPT_OPT) loses
// Omega(n) against plain shared LRU.
#include "adversary/adversary.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"

namespace {

using namespace mcp;

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  const std::size_t p = 4;
  const std::size_t K = 8;
  const Time tau = 1;
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = tau;

  auto& table = b.series(
      "partition_deficit_vs_x", "",
      {"x", "n", "S_LRU", "sP^OPT_OPT", "ratio", "ratio/n"});
  std::vector<double> normalized;
  bool shared_compulsory_only = true;
  for (std::size_t x : {4u, 8u, 16u, 32u, 64u}) {
    const RequestSet rs = theorem1_distinct_period_set(p, K, tau, x);
    SharedStrategy lru(make_policy_factory("lru"));
    const Count shared = simulate(cfg, rs, lru).total_faults();
    const auto part_opt = optimal_partition_opt(rs, K);
    const double ratio =
        static_cast<double>(part_opt.faults) / static_cast<double>(shared);
    const auto n = static_cast<double>(rs.total_requests());
    normalized.push_back(ratio / n);
    shared_compulsory_only = shared_compulsory_only && shared == K + p;
    table.row(static_cast<std::uint64_t>(x),
              static_cast<std::uint64_t>(rs.total_requests()), shared,
              part_opt.faults, ratio, ratio / n);
  }

  const bool linear = normalized.back() > 0.4 * normalized.front();
  return std::move(b).finish(
      shared_compulsory_only && linear,
      "shared LRU faults exactly K+p (compulsory); partition-OPT deficit "
      "grows ~linearly in n");
}

}  // namespace

void mcp::experiments::register_e3(lab::ExperimentRegistry& registry) {
  registry.add({
      "E3",
      "Theorem 1.1 — sP^OPT_OPT vs S_LRU on the distinct-period family",
      "sP^OPT_OPT(R) / S_LRU(R) = Omega(n): shared LRU pays only compulsory "
      "misses (K+p) while every static partition thrashes somewhere",
      "EXPERIMENTS.md §E3; paper Theorem 1.1",
      {"theorem", "shared", "partition", "adversary"},
      "p=4, K=8, tau=1, x in {4,8,16,32,64}",
      run,
  });
}
