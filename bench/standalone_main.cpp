// Shared main() for the per-experiment standalone shim binaries.  Each shim
// target compiles this TU with MCP_LAB_EXPERIMENT_ID set to its id; the
// binary keeps the historical behavior (render the tables, exit 0 on PASS,
// 1 on FAIL) while the actual experiment lives in the lab registry.
#include "experiments.hpp"
#include "lab/runner.hpp"

#ifndef MCP_LAB_EXPERIMENT_ID
#error "compile with -DMCP_LAB_EXPERIMENT_ID=\"En\""
#endif

int main() {
  mcp::experiments::register_all(mcp::lab::ExperimentRegistry::instance());
  return mcp::lab::standalone_main(MCP_LAB_EXPERIMENT_ID);
}
