// Experiment E4 — Theorem 1.2: the reverse direction is bounded:
// S_LRU(R) <= K * sP^OPT_OPT(R) for every input.  We sweep synthetic
// workloads (including the adversarial families) and report the worst
// observed ratio, which must stay below K.
#include <algorithm>

#include "adversary/adversary.hpp"
#include "core/simulator.hpp"
#include "experiments.hpp"
#include "policies/policy_registry.hpp"
#include "strategies/partition_search.hpp"
#include "strategies/shared.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

double lru_vs_partition_opt(const RequestSet& rs, std::size_t K, Time tau) {
  SimConfig cfg;
  cfg.cache_size = K;
  cfg.fault_penalty = tau;
  SharedStrategy lru(make_policy_factory("lru"));
  const Count shared = simulate(cfg, rs, lru).total_faults();
  const auto opt = optimal_partition_opt(rs, K);
  return static_cast<double>(shared) / static_cast<double>(opt.faults);
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;
  const std::size_t K = 8;
  const std::size_t p = 4;

  auto& table =
      b.series("workload_tau_sweep", "", {"workload", "tau", "ratio", "bound_K"});
  double worst = 0.0;
  const auto row = [&](const std::string& name, const RequestSet& rs, Time tau) {
    const double ratio = lru_vs_partition_opt(rs, K, tau);
    worst = std::max(worst, ratio);
    table.row(name, static_cast<std::uint64_t>(tau), ratio,
              static_cast<std::uint64_t>(K));
  };

  for (Time tau : {Time{0}, Time{2}, Time{8}}) {
    CoreWorkload zipf;
    zipf.pattern = AccessPattern::kZipf;
    zipf.num_pages = 16;
    zipf.length = 2500;
    row("zipf", make_workload(homogeneous_spec(p, zipf, true, 11)), tau);

    CoreWorkload phases;
    phases.pattern = AccessPattern::kWorkingSet;
    phases.num_pages = 32;
    phases.working_set = 3;
    phases.phase_length = 100;
    phases.length = 2500;
    row("working-set", make_workload(homogeneous_spec(p, phases, true, 12)), tau);

    CoreWorkload loops;
    loops.pattern = AccessPattern::kLoop;
    loops.num_pages = 16;
    loops.loop_length = 3;
    loops.length = 2500;
    row("loop", make_workload(homogeneous_spec(p, loops, true, 13)), tau);

    row("lemma4-adv", lemma4_request_set(p, K, 600), tau);
    row("thm1-adv", theorem1_distinct_period_set(p, K, tau, 16), tau);
  }

  b.notef("worst observed ratio: %.3f (bound: %zu)", worst, K);
  return std::move(b).finish(worst <= static_cast<double>(K),
                             "S_LRU / sP^OPT_OPT <= K across the sweep");
}

}  // namespace

void mcp::experiments::register_e4(lab::ExperimentRegistry& registry) {
  registry.add({
      "E4",
      "Theorem 1.2 — S_LRU <= K * sP^OPT_OPT on every input",
      "the worst observed S_LRU / sP^OPT_OPT ratio stays below K",
      "EXPERIMENTS.md §E4; paper Theorem 1.2",
      {"theorem", "shared", "partition", "workloads"},
      "p=4, K=8, tau in {0,2,8}; zipf / working-set / loop / adversarial "
      "families",
      run,
  });
}
