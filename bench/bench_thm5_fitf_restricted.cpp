// Experiment E11 — Theorem 5: restricting the optimal search to evict, for
// some core c, the page of R_c requested furthest in R_c's future, never
// costs optimality on disjoint inputs — and shrinks the search.
#include "core/rng.hpp"
#include "experiments.hpp"
#include "offline/ftf_solver.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcp;

OfflineInstance random_instance(std::size_t per_core, std::size_t K, Time tau,
                                std::uint64_t seed) {
  CoreWorkload core;
  core.pattern = AccessPattern::kUniform;
  core.num_pages = 3;
  core.length = per_core;
  OfflineInstance inst;
  inst.requests = make_workload(homogeneous_spec(2, core, true, seed));
  inst.cache_size = K;
  inst.tau = tau;
  return inst;
}

lab::ExperimentResult run(const lab::RunContext& /*ctx*/) {
  lab::ResultBuilder b;

  auto& table = b.series(
      "restriction_grid", "",
      {"n/core", "K", "tau", "opt_full", "opt_fitf", "st_full", "st_fitf"});
  Rng rng(11);
  std::size_t mismatches = 0;
  std::uint64_t full_states = 0;
  std::uint64_t fitf_states = 0;
  for (int trial = 0; trial < 14; ++trial) {
    const std::size_t n = 6 + rng.below(14);
    const std::size_t K = 2 + rng.below(2);
    const Time tau = rng.below(3);
    const OfflineInstance inst =
        random_instance(n, K, tau, 900 + static_cast<std::uint64_t>(trial));
    FtfOptions full;
    FtfOptions fitf;
    fitf.victim_rule = VictimRule::kFitfPerSequence;
    const FtfResult a = solve_ftf(inst, full);
    const FtfResult r = solve_ftf(inst, fitf);
    if (a.min_faults != r.min_faults) ++mismatches;
    full_states += a.states_stored;
    fitf_states += r.states_stored;
    table.row(static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(K),
              static_cast<std::uint64_t>(tau), a.min_faults, r.min_faults,
              static_cast<std::uint64_t>(a.states_stored),
              static_cast<std::uint64_t>(r.states_stored));
  }

  b.notef("state totals: full=%llu fitf-restricted=%llu (%.2fx smaller)",
          static_cast<unsigned long long>(full_states),
          static_cast<unsigned long long>(fitf_states),
          static_cast<double>(full_states) / static_cast<double>(fitf_states));
  return std::move(b).finish(mismatches == 0 && fitf_states <= full_states,
                             "Theorem-5 restriction preserves the optimum and "
                             "prunes the search");
}

}  // namespace

void mcp::experiments::register_e11(lab::ExperimentRegistry& registry) {
  registry.add({
      "E11",
      "Theorem 5 — FITF-within-a-sequence victim restriction",
      "restricted optimum == unrestricted optimum on every instance; "
      "restricted search stores fewer states",
      "EXPERIMENTS.md §E11; paper Theorem 5",
      {"theorem", "offline", "solver"},
      "14 random instances, n/core in [6,20), K in {2,3}, tau in {0,1,2}",
      run,
  });
}
