// Human rendering of structured experiment results.
//
// Reproduces the table layout the standalone benches used to printf (the
// %14-wide cells, the claim header, the PASS/FAIL footer), so a driver run
// keeps bench_output.txt reviewable while the JSONL record carries the same
// data machine-readably.
#pragma once

#include <iosfwd>

#include "lab/experiment.hpp"

namespace mcp::lab {

/// The "====" banner with the experiment's id, title and claim.
void render_header(std::ostream& os, const Experiment& experiment);

/// Tables, notes, sweep JSON lines and stats blocks in recorded order,
/// followed by the PASS/FAIL verdict footer.
void render_result(std::ostream& os, const ExperimentResult& result);

}  // namespace mcp::lab
