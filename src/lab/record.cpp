#include "lab/record.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <sstream>
#include <thread>

#include "lab/json.hpp"

namespace mcp::lab {

namespace {

std::string quoted(const std::string& s) { return '"' + json_escape(s) + '"'; }

void append_string_array(std::ostringstream& os,
                         const std::vector<std::string>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ',';
    os << quoted(items[i]);
  }
  os << ']';
}

void append_value(std::ostringstream& os, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt: os << v.as_int(); break;
    case Value::Kind::kReal: os << json_number(v.as_real()); break;
    case Value::Kind::kText: os << quoted(v.as_text()); break;
  }
}

std::string run_command_line(const char* command) {
  std::string out;
  FILE* pipe = ::popen(command, "r");
  if (pipe == nullptr) return out;
  char buffer[256];
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out = buffer;
  ::pclose(pipe);
  while (!out.empty() &&
         std::isspace(static_cast<unsigned char>(out.back())) != 0) {
    out.pop_back();
  }
  return out;
}

}  // namespace

Environment Environment::capture() {
  Environment env;
  char name[256] = {};
  if (::gethostname(name, sizeof(name) - 1) == 0 && name[0] != '\0') {
    env.hostname = name;
  }
  env.hardware_threads = std::thread::hardware_concurrency();
  const std::string sha = run_command_line("git rev-parse HEAD 2>/dev/null");
  if (sha.size() >= 7 &&
      sha.find_first_not_of("0123456789abcdef") == std::string::npos) {
    env.git_sha = sha;
  }
  return env;
}

std::string to_record(const Experiment& experiment,
                      const ExperimentResult& result,
                      const RunContext& context,
                      const Environment& environment) {
  std::ostringstream os;
  os << "{\"schema\":" << quoted(kRecordSchema)
     << ",\"version\":" << kRecordVersion
     << ",\"experiment\":" << quoted(experiment.id)
     << ",\"title\":" << quoted(experiment.title)
     << ",\"claim\":" << quoted(experiment.claim)
     << ",\"reference\":" << quoted(experiment.reference) << ",\"tags\":";
  append_string_array(os, experiment.tags);
  os << ",\"params\":{\"master_seed\":" << context.master_seed
     << ",\"workers\":" << context.workers << '}';

  os << ",\"series\":[";
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    const Series& s = result.series[i];
    if (i > 0) os << ',';
    os << "{\"name\":" << quoted(s.name) << ",\"caption\":" << quoted(s.caption)
       << ",\"columns\":";
    append_string_array(os, s.columns);
    os << ",\"rows\":[";
    for (std::size_t r = 0; r < s.rows.size(); ++r) {
      if (r > 0) os << ',';
      os << '[';
      for (std::size_t c = 0; c < s.rows[r].size(); ++c) {
        if (c > 0) os << ',';
        append_value(os, s.rows[r][c]);
      }
      os << ']';
    }
    os << "]}";
  }
  os << ']';

  os << ",\"notes\":";
  append_string_array(os, result.notes);

  os << ",\"sweeps\":[";
  for (std::size_t i = 0; i < result.sweeps.size(); ++i) {
    const SweepRecord& sweep = result.sweeps[i];
    if (i > 0) os << ',';
    os << "{\"name\":" << quoted(sweep.name)
       << ",\"cells\":" << sweep.timing.cells
       << ",\"wall_seconds\":" << json_number(sweep.timing.wall_seconds)
       << ",\"cells_per_second\":" << json_number(sweep.timing.cells_per_second())
       << ",\"max_threads\":" << sweep.timing.max_threads << '}';
  }
  os << ']';

  os << ",\"run_stats\":[";
  for (std::size_t i = 0; i < result.run_stats.size(); ++i) {
    if (i > 0) os << ',';
    // StatsRecord.json is RunStats::to_json() output — already a JSON object.
    os << "{\"label\":" << quoted(result.run_stats[i].label)
       << ",\"stats\":" << result.run_stats[i].json << '}';
  }
  os << ']';

  os << ",\"verdict\":{\"pass\":" << (result.verdict.pass ? "true" : "false")
     << ",\"criterion\":" << quoted(result.verdict.criterion) << '}'
     << ",\"wall_seconds\":" << json_number(result.wall_seconds)
     << ",\"host\":{\"hostname\":" << quoted(environment.hostname)
     << ",\"hardware_threads\":" << environment.hardware_threads << '}'
     << ",\"git_sha\":" << quoted(environment.git_sha) << '}';
  return os.str();
}

}  // namespace mcp::lab
