#include "lab/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "core/error.hpp"

namespace mcp::lab {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  std::string out(buf);
  // Guarantee the token re-parses as a number with a fractional part when it
  // happens to be integral (keeps real-valued cells typed as reals).
  if (out.find_first_of(".eEnN") == std::string::npos) out += ".0";
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw InputError("json parse error at byte " + std::to_string(pos_) + ": " +
                     why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // The lab only emits \u escapes for control characters; decode
            // the Basic Latin range and substitute elsewhere.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mcp::lab
