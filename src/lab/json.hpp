// Minimal JSON support for the lab harness: escaping for the record writer
// and a small recursive-descent parser for `mcpaging-lab --check`, which
// shape-diffs a fresh run against a committed reference JSONL.  Not a
// general-purpose JSON library — it handles exactly the documents the lab
// emits (no surrogate-pair escapes, numbers parsed as double).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcp::lab {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Formats a double the way the record writer does: fixed notation with
/// enough digits to round-trip the measurements we emit, trailing zeros
/// trimmed; integral values keep one decimal so the type survives re-parse.
[[nodiscard]] std::string json_number(double value);

/// Parsed JSON value.  Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* get(const std::string& key) const;

  [[nodiscard]] bool is(Type t) const noexcept { return type == t; }
};

/// Parses one JSON document.  Throws InputError (core/error.hpp) with a
/// byte-offset diagnostic on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace mcp::lab
