// The versioned JSONL record schema of the lab harness.
//
// Every experiment run serializes to exactly one line of JSON (see
// docs/LAB.md for the field-by-field specification).  The record is the
// repo's machine-readable claim ledger: experiment id + claim, the full
// parameter set (master seed, worker cap), every measured series, sweep
// throughput, the verdict, and the environment (host, hardware threads,
// git SHA) needed to reproduce or attribute a regression.
#pragma once

#include <string>

#include "lab/experiment.hpp"

namespace mcp::lab {

inline constexpr const char* kRecordSchema = "mcp.lab.result";
inline constexpr int kRecordVersion = 1;

/// Where and on what the record was produced.
struct Environment {
  std::string hostname = "unknown";
  unsigned hardware_threads = 0;
  std::string git_sha = "unknown";

  /// Best-effort capture: gethostname(2), hardware_concurrency, and
  /// `git rev-parse HEAD` (falls back to "unknown" outside a work tree).
  static Environment capture();
};

/// Serializes one run as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_record(const Experiment& experiment,
                                    const ExperimentResult& result,
                                    const RunContext& context,
                                    const Environment& environment);

}  // namespace mcp::lab
