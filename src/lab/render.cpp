#include "lab/render.hpp"

#include <cstdio>
#include <ostream>

namespace mcp::lab {

namespace {

constexpr const char* kThick =
    "==============================================================\n";
constexpr const char* kThin =
    "--------------------------------------------------------------\n";

void render_cell(std::ostream& os, const Value& v) {
  char buf[64];
  switch (v.kind()) {
    case Value::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%14llu",
                    static_cast<unsigned long long>(v.as_int()));
      os << buf;
      break;
    case Value::Kind::kReal:
      std::snprintf(buf, sizeof(buf), "%14.3f", v.as_real());
      os << buf;
      break;
    case Value::Kind::kText:
      std::snprintf(buf, sizeof(buf), "%14s", v.as_text().c_str());
      os << buf;
      break;
  }
}

void render_series(std::ostream& os, const Series& series) {
  if (!series.caption.empty()) os << series.caption << '\n';
  for (const auto& column : series.columns) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%14s", column.c_str());
    os << buf;
  }
  os << '\n';
  for (std::size_t i = 0; i < series.columns.size(); ++i) os << "  ------------";
  os << '\n';
  for (const Row& row : series.rows) {
    for (const Value& v : row) render_cell(os, v);
    os << '\n';
  }
  os << '\n';
}

}  // namespace

void render_header(std::ostream& os, const Experiment& experiment) {
  os << kThick << experiment.id << "  " << experiment.title << '\n'
     << "  claim: " << experiment.claim << '\n'
     << kThick;
}

void render_result(std::ostream& os, const ExperimentResult& result) {
  for (const auto& [kind, index] : result.order) {
    switch (kind) {
      case ExperimentResult::BlockKind::kSeries:
        render_series(os, result.series[index]);
        break;
      case ExperimentResult::BlockKind::kNote:
        os << result.notes[index] << '\n';
        break;
      case ExperimentResult::BlockKind::kSweep:
        os << result.sweeps[index].timing.json(result.sweeps[index].name)
           << '\n';
        break;
      case ExperimentResult::BlockKind::kStats:
        os << result.run_stats[index].label << ": "
           << result.run_stats[index].json << '\n';
        break;
    }
  }
  os << kThin << (result.verdict.pass ? "PASS" : "FAIL") << ": "
     << result.verdict.criterion << "\n\n";
}

}  // namespace mcp::lab
