#include "lab/registry.hpp"

#include <algorithm>

namespace mcp::lab {

namespace {

/// Numeric sort key for ids shaped "E<number>"; other ids sort after the
/// E-series, lexicographically.
std::pair<int, std::string> sort_key(const std::string& id) {
  if (id.size() > 1 && id[0] == 'E') {
    int number = 0;
    bool numeric = true;
    for (std::size_t i = 1; i < id.size(); ++i) {
      if (id[i] < '0' || id[i] > '9') {
        numeric = false;
        break;
      }
      number = number * 10 + (id[i] - '0');
    }
    if (numeric) return {number, {}};
  }
  return {1 << 20, id};
}

}  // namespace

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment experiment) {
  MCP_REQUIRE(!experiment.id.empty(), "experiment id must be non-empty");
  MCP_REQUIRE(!experiment.title.empty(),
              "experiment '" + experiment.id + "' needs a title");
  MCP_REQUIRE(static_cast<bool>(experiment.run),
              "experiment '" + experiment.id + "' needs a run function");
  MCP_REQUIRE(find(experiment.id) == nullptr,
              "duplicate experiment id '" + experiment.id + "'");
  experiments_.push_back(std::move(experiment));
}

const Experiment* ExperimentRegistry::find(const std::string& id) const {
  for (const auto& e : experiments_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return sort_key(a->id) < sort_key(b->id);
            });
  return out;
}

std::vector<const Experiment*> ExperimentRegistry::with_tag(
    const std::string& tag) const {
  std::vector<const Experiment*> out;
  for (const Experiment* e : all()) {
    if (std::find(e->tags.begin(), e->tags.end(), tag) != e->tags.end()) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace mcp::lab
