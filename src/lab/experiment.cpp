#include "lab/experiment.hpp"

#include <cstdio>

namespace mcp::lab {

Series& ResultBuilder::series(std::string name, std::string caption,
                              std::vector<std::string> columns) {
  MCP_REQUIRE(!name.empty(), "series name must be non-empty");
  MCP_REQUIRE(!columns.empty(), "series must have at least one column");
  for (const auto& existing : series_) {
    MCP_REQUIRE(existing.name != name, "duplicate series name '" + name + "'");
  }
  Series& s = series_.emplace_back();
  s.name = std::move(name);
  s.caption = std::move(caption);
  s.columns = std::move(columns);
  result_.order.emplace_back(ExperimentResult::BlockKind::kSeries,
                             series_.size() - 1);
  return s;
}

void ResultBuilder::note(std::string text) {
  result_.order.emplace_back(ExperimentResult::BlockKind::kNote,
                             result_.notes.size());
  result_.notes.push_back(std::move(text));
}

void ResultBuilder::notef(const char* fmt, ...) {
  char buffer[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  note(std::string(buffer));
}

void ResultBuilder::sweep(std::string name, const SweepTiming& timing) {
  result_.order.emplace_back(ExperimentResult::BlockKind::kSweep,
                             result_.sweeps.size());
  result_.sweeps.push_back(SweepRecord{std::move(name), timing});
}

void ResultBuilder::stats(std::string label, std::string stats_json) {
  result_.order.emplace_back(ExperimentResult::BlockKind::kStats,
                             result_.run_stats.size());
  result_.run_stats.push_back(StatsRecord{std::move(label), std::move(stats_json)});
}

ExperimentResult ResultBuilder::finish(bool pass, std::string criterion) && {
  result_.series.assign(std::make_move_iterator(series_.begin()),
                        std::make_move_iterator(series_.end()));
  series_.clear();
  result_.verdict.pass = pass;
  result_.verdict.criterion = std::move(criterion);
  return std::move(result_);
}

}  // namespace mcp::lab
