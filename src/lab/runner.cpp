#include "lab/runner.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>

#include "lab/json.hpp"
#include "lab/record.hpp"
#include "lab/render.hpp"

namespace mcp::lab {

std::vector<const Experiment*> select_experiments(
    const ExperimentRegistry& registry, const std::vector<std::string>& ids,
    const std::vector<std::string>& tags, bool all) {
  std::vector<const Experiment*> selection;
  const auto add = [&](const Experiment* e) {
    if (std::find(selection.begin(), selection.end(), e) == selection.end()) {
      selection.push_back(e);
    }
  };
  if (all) {
    for (const Experiment* e : registry.all()) add(e);
  }
  for (const std::string& id : ids) {
    const Experiment* e = registry.find(id);
    if (e == nullptr) {
      throw InputError("unknown experiment id '" + id +
                       "' (see mcpaging-lab --list)");
    }
    add(e);
  }
  for (const std::string& tag : tags) {
    const auto matches = registry.with_tag(tag);
    if (matches.empty()) {
      throw InputError("no experiment carries tag '" + tag + "'");
    }
    for (const Experiment* e : matches) add(e);
  }
  // Present the union in the registry's canonical (numeric id) order.
  const auto canonical = registry.all();
  std::sort(selection.begin(), selection.end(),
            [&](const Experiment* a, const Experiment* b) {
              return std::find(canonical.begin(), canonical.end(), a) <
                     std::find(canonical.begin(), canonical.end(), b);
            });
  return selection;
}

std::vector<RunReport> run_experiments(
    const std::vector<const Experiment*>& selection, const RunContext& context,
    std::ostream& os) {
  std::vector<RunReport> reports;
  reports.reserve(selection.size());
  for (const Experiment* experiment : selection) {
    render_header(os, *experiment);
    const auto start = std::chrono::steady_clock::now();
    ExperimentResult result = experiment->run(context);
    const auto stop = std::chrono::steady_clock::now();
    result.wall_seconds = std::chrono::duration<double>(stop - start).count();
    render_result(os, result);
    os.flush();
    reports.push_back(RunReport{experiment, std::move(result)});
  }
  return reports;
}

bool any_failed(const std::vector<RunReport>& reports) {
  return std::any_of(reports.begin(), reports.end(), [](const RunReport& r) {
    return !r.result.verdict.pass;
  });
}

void write_records(const std::string& path,
                   const std::vector<RunReport>& reports,
                   const RunContext& context) {
  std::ofstream os(path);
  if (!os) throw InputError("cannot open for writing: " + path);
  const Environment environment = Environment::capture();
  for (const RunReport& report : reports) {
    os << to_record(*report.experiment, report.result, context, environment)
       << '\n';
  }
  if (!os) throw InputError("write failed: " + path);
}

namespace {

/// Reference records by experiment id (last record wins on duplicates, so a
/// re-generated reference can simply be appended during review).
std::map<std::string, JsonValue> load_reference(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw InputError("cannot open reference: " + path);
  std::map<std::string, JsonValue> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue record;
    try {
      record = json_parse(line);
    } catch (const InputError& e) {
      throw InputError(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
    const JsonValue* id = record.get("experiment");
    if (id == nullptr || !id->is(JsonValue::Type::kString)) {
      throw InputError(path + ":" + std::to_string(lineno) +
                       ": record has no \"experiment\" field");
    }
    records[id->string] = std::move(record);
  }
  return records;
}

/// One experiment's shape mismatches, appended to `out` as diagnostics.
void diff_report(const RunReport& report, const JsonValue& reference,
                 std::vector<std::string>& out) {
  const std::string& id = report.experiment->id;
  const auto complain = [&](const std::string& what) {
    out.push_back(id + ": " + what);
  };

  const JsonValue* version = reference.get("version");
  if (version == nullptr || !version->is(JsonValue::Type::kNumber) ||
      static_cast<int>(version->number) != kRecordVersion) {
    complain("reference record is not schema version " +
             std::to_string(kRecordVersion));
    return;
  }

  const JsonValue* verdict = reference.get("verdict");
  const JsonValue* pass =
      verdict == nullptr ? nullptr : verdict->get("pass");
  if (pass == nullptr || !pass->is(JsonValue::Type::kBool)) {
    complain("reference record has no verdict.pass");
  } else if (pass->boolean != report.result.verdict.pass) {
    std::ostringstream os;
    os << "verdict changed: reference " << (pass->boolean ? "PASS" : "FAIL")
       << ", this run " << (report.result.verdict.pass ? "PASS" : "FAIL");
    complain(os.str());
  }

  const JsonValue* series = reference.get("series");
  if (series == nullptr || !series->is(JsonValue::Type::kArray)) {
    complain("reference record has no series array");
    return;
  }
  if (series->array.size() != report.result.series.size()) {
    std::ostringstream os;
    os << "series count changed: reference " << series->array.size()
       << ", this run " << report.result.series.size();
    complain(os.str());
    return;
  }
  for (std::size_t i = 0; i < series->array.size(); ++i) {
    const JsonValue& ref = series->array[i];
    const Series& got = report.result.series[i];
    const JsonValue* name = ref.get("name");
    if (name == nullptr || name->string != got.name) {
      complain("series " + std::to_string(i) + " name changed: reference '" +
               (name == nullptr ? std::string("?") : name->string) +
               "', this run '" + got.name + "'");
      continue;
    }
    const JsonValue* columns = ref.get("columns");
    std::vector<std::string> ref_columns;
    if (columns != nullptr && columns->is(JsonValue::Type::kArray)) {
      for (const JsonValue& c : columns->array) ref_columns.push_back(c.string);
    }
    if (ref_columns != got.columns) {
      complain("series '" + got.name + "' columns changed");
    }
    const JsonValue* rows = ref.get("rows");
    const std::size_t ref_rows =
        rows != nullptr && rows->is(JsonValue::Type::kArray)
            ? rows->array.size()
            : 0;
    if (ref_rows != got.rows.size()) {
      std::ostringstream os;
      os << "series '" << got.name << "' row count changed: reference "
         << ref_rows << ", this run " << got.rows.size();
      complain(os.str());
    }
  }
}

}  // namespace

std::size_t check_against_reference(const std::vector<RunReport>& reports,
                                    const std::string& reference_path,
                                    std::ostream& diag) {
  const auto reference = load_reference(reference_path);
  std::vector<std::string> mismatches;
  for (const RunReport& report : reports) {
    const auto it = reference.find(report.experiment->id);
    if (it == reference.end()) {
      mismatches.push_back(report.experiment->id +
                           ": missing from the reference file");
      continue;
    }
    diff_report(report, it->second, mismatches);
  }
  if (mismatches.empty()) {
    diag << "check: " << reports.size() << " experiment(s) match the reference "
         << reference_path << " (shape + verdict)\n";
  } else {
    diag << "check: " << mismatches.size() << " mismatch(es) against "
         << reference_path << ":\n";
    for (const std::string& m : mismatches) diag << "  " << m << '\n';
  }
  return mismatches.size();
}

int standalone_main(const char* id) {
  try {
    const Experiment* experiment = ExperimentRegistry::instance().find(id);
    if (experiment == nullptr) {
      std::cerr << "experiment '" << id << "' is not registered\n";
      return 2;
    }
    const auto reports =
        run_experiments({experiment}, RunContext{}, std::cout);
    return any_failed(reports) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace mcp::lab
