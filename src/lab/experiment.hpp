// The experiment model of the mcp::lab harness.
//
// An Experiment is a first-class descriptor of one reproducible claim: which
// lemma/theorem it validates (EXPERIMENTS.md / DESIGN.md reference), the
// default parameter grid, and a run function that returns *structured*
// results — tables (Series), free-form notes, sweep timings and a Verdict —
// instead of printing them.  The driver renders the same human tables from
// the structure and serializes every run to a versioned JSONL record
// (lab/record.hpp), so one artifact carries every theorem's measured shape.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "core/error.hpp"
#include "core/sweep.hpp"

namespace mcp::lab {

/// Parameters shared by every experiment run.  The defaults reproduce the
/// committed reference numbers exactly; the sweeps' determinism contract
/// (DESIGN.md §7) makes results independent of `workers`.
struct RunContext {
  /// Master seed for the experiment's top-level SweepRunner streams.
  /// Experiments whose constructions are deterministic by design keep their
  /// internal fixed seeds regardless (the claim families are not sampled).
  std::uint64_t master_seed = 0x5EED;
  /// Worker cap for the experiment's own sweeps (0 = all pool workers).
  std::size_t workers = 0;
};

/// One table cell: an integer count, a real measurement, or a label.
class Value {
 public:
  enum class Kind { kInt, kReal, kText };

  Value() : v_(std::uint64_t{0}) {}
  Value(std::uint64_t v) : v_(v) {}                       // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                              // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}              // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}            // NOLINT(runtime/explicit)

  [[nodiscard]] Kind kind() const noexcept {
    return static_cast<Kind>(v_.index());
  }
  [[nodiscard]] std::uint64_t as_int() const { return std::get<std::uint64_t>(v_); }
  [[nodiscard]] double as_real() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_text() const { return std::get<std::string>(v_); }

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::uint64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

/// One measured table: named for the JSONL record, captioned for humans.
struct Series {
  std::string name;                  ///< snake_case id, stable across runs.
  std::string caption;               ///< Human line above the table ("" = none).
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Appends a row; the cell count must match the column count.
  ///
  /// GCC 12's -Wmaybe-uninitialized mis-fires on the inlined move of the
  /// std::string alternative inside Value's variant here (the "may be used
  /// uninitialized" object is the freshly move-constructed temporary;
  /// upstream GCC PR105562 family).  Only some build configs tip the
  /// inliner into the warning path, so suppress it at this one site.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  template <typename... Ts>
  void row(Ts&&... cells) {
    Row r;
    r.reserve(sizeof...(cells));
    (r.emplace_back(Value(std::forward<Ts>(cells))), ...);
    add_row(std::move(r));
  }
#pragma GCC diagnostic pop

  void add_row(Row r) {
    MCP_REQUIRE(r.size() == columns.size(),
                "series '" + name + "': row width != column count");
    rows.push_back(std::move(r));
  }
};

/// The PASS/FAIL judgement on the claim's *shape* (growth order, dominance,
/// crossover) — absolute numbers are simulator-specific by design.
struct Verdict {
  bool pass = false;
  std::string criterion;  ///< What was checked, e.g. "ratio grows ~linearly".
};

/// A sweep's wall-clock record — the repo's perf-baseline channel.
struct SweepRecord {
  std::string name;
  SweepTiming timing;
};

/// A RunStats snapshot embedded in the record (core/stats.hpp to_json()).
struct StatsRecord {
  std::string label;
  std::string json;  ///< RunStats::to_json() output, embedded verbatim.
};

/// Structured output of one experiment run.  `order` preserves the
/// interleaving of tables, notes, sweeps and stats blocks so the renderer
/// reproduces the experiment's narrative layout.
struct ExperimentResult {
  enum class BlockKind { kSeries, kNote, kSweep, kStats };

  std::vector<Series> series;
  std::vector<std::string> notes;
  std::vector<SweepRecord> sweeps;
  std::vector<StatsRecord> run_stats;
  std::vector<std::pair<BlockKind, std::size_t>> order;
  Verdict verdict;
  double wall_seconds = 0.0;  ///< Filled by the runner, not the experiment.

  [[nodiscard]] const Series* find_series(const std::string& name) const {
    for (const auto& s : series) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

/// Incremental builder used by experiment run functions.  Series handed out
/// by series() stay valid until finish() (deque storage).
class ResultBuilder {
 public:
  /// Starts a new table; returns a reference that remains valid across
  /// subsequent builder calls.
  Series& series(std::string name, std::string caption,
                 std::vector<std::string> columns);

  void note(std::string text);

  /// printf-style note (measured summaries such as "worst ratio: %.3f").
  [[gnu::format(printf, 2, 3)]] void notef(const char* fmt, ...);

  void sweep(std::string name, const SweepTiming& timing);

  /// Embeds a RunStats snapshot (serialized via RunStats::to_json).
  void stats(std::string label, std::string stats_json);

  /// Seals the result with its verdict.
  [[nodiscard]] ExperimentResult finish(bool pass, std::string criterion) &&;

 private:
  std::deque<Series> series_;
  ExperimentResult result_;
};

/// A registered experiment: everything the driver needs to list, run,
/// render and serialize it.
struct Experiment {
  std::string id;           ///< "E1".."E18" — DESIGN.md's experiment index.
  std::string title;        ///< e.g. "Lemma 2 — online static partition ...".
  std::string claim;        ///< The paper claim under test, verbatim-ish.
  std::string reference;    ///< Pointer into EXPERIMENTS.md / DESIGN.md.
  std::vector<std::string> tags;
  std::string default_grid; ///< Human summary of the default parameter grid.
  std::function<ExperimentResult(const RunContext&)> run;
};

}  // namespace mcp::lab
