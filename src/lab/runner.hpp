// Execution engine of the lab harness: runs a selection of registered
// experiments, renders human output as it goes, serializes JSONL records,
// and shape-diffs a run against a committed reference (--check).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lab/experiment.hpp"
#include "lab/registry.hpp"

namespace mcp::lab {

/// One executed experiment.
struct RunReport {
  const Experiment* experiment = nullptr;
  ExperimentResult result;
};

/// Resolves a selection: `ids` (comma-separated, e.g. "E1,E3"), `tags`, or
/// everything (`all`).  The union is returned in numeric id order.  Throws
/// InputError on an unknown id or a tag matching nothing.
[[nodiscard]] std::vector<const Experiment*> select_experiments(
    const ExperimentRegistry& registry, const std::vector<std::string>& ids,
    const std::vector<std::string>& tags, bool all);

/// Runs every experiment in `selection` with `context`, rendering header,
/// tables and verdict to `os` as each finishes.  Fills wall_seconds.
[[nodiscard]] std::vector<RunReport> run_experiments(
    const std::vector<const Experiment*>& selection, const RunContext& context,
    std::ostream& os);

[[nodiscard]] bool any_failed(const std::vector<RunReport>& reports);

/// Writes one schema-versioned JSON line per report to `path`.
/// Throws InputError if the file cannot be written.
void write_records(const std::string& path,
                   const std::vector<RunReport>& reports,
                   const RunContext& context);

/// Shape-regression check: compares each report against the record with the
/// same experiment id in `reference_path` (a JSONL file from a previous
/// `--json` run).  Compared: schema/version, verdict.pass, and per-series
/// name, caption-independent column lists and row counts.  Timings, hosts
/// and cell values are ignored — the committed reference stays valid across
/// machines.  Returns the number of mismatches, describing each to `diag`.
[[nodiscard]] std::size_t check_against_reference(
    const std::vector<RunReport>& reports, const std::string& reference_path,
    std::ostream& diag);

/// Entry point for the per-experiment standalone shim binaries: runs `id`
/// with default parameters, renders to stdout, returns the process exit code
/// (0 pass, 1 fail, 2 unknown id / internal error).
[[nodiscard]] int standalone_main(const char* id);

}  // namespace mcp::lab
