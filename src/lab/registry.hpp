// Process-wide registry of experiments.
//
// Experiment definition TUs (bench/) register descriptors through explicit
// `register_*` functions collected by `mcp::experiments::register_all` — no
// static-initializer magic, so registration order is deterministic and
// static-library linking cannot silently drop an experiment.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lab/experiment.hpp"

namespace mcp::lab {

class ExperimentRegistry {
 public:
  /// The process-wide registry used by the driver and the standalone shims.
  static ExperimentRegistry& instance();

  /// Registers an experiment.  Throws ModelError on a duplicate id or a
  /// descriptor with a missing id/title/run function.
  void add(Experiment experiment);

  /// The experiment with the given id, or nullptr.
  [[nodiscard]] const Experiment* find(const std::string& id) const;

  /// All experiments ordered by numeric id (E1, E2, ..., E18).
  [[nodiscard]] std::vector<const Experiment*> all() const;

  /// All experiments carrying `tag`, in numeric id order.
  [[nodiscard]] std::vector<const Experiment*> with_tag(
      const std::string& tag) const;

  [[nodiscard]] std::size_t size() const noexcept { return experiments_.size(); }

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace mcp::lab
