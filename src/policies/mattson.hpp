// Single-pass LRU fault curves via Mattson's stack-distance algorithm.
//
// LRU has the inclusion (stack) property: the content of an LRU cache of k
// cells is always a subset of the content of an LRU cache of k+1 cells on
// the same sequence.  A request therefore hits at capacity k exactly when
// its *stack distance* — the number of distinct pages referenced since the
// previous request to the same page, inclusive — is at most k.  One pass
// that computes every request's stack distance yields the whole fault curve
// f(k) for k = 0..K at once, instead of K independent simulations.
//
// The distances are counted with a Fenwick tree over access positions
// (marking each page's most recent access), giving O(n log n) total for a
// sequence of length n — the engine behind the fast path of
// policy_fault_curves() for LRU (see partition_search.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp {

/// Full LRU fault curve of `seq` served alone: returns `curve` with
/// curve[k] = faults of single-core LRU at capacity k, for k = 0..max_k.
/// curve[0] = seq.size() (the k = 0 limit, matching
/// single_core_policy_faults); for k >= the number of distinct pages the
/// value is the cold-miss count.  Agrees with
/// single_core_policy_faults(seq, k, LRU) for every k — the per-k run is
/// kept as the test oracle.
[[nodiscard]] std::vector<Count> lru_fault_curve(const RequestSequence& seq,
                                                 std::size_t max_k);

/// Batched Mattson: per-core LRU fault curves for a whole request set in
/// one structure-of-arrays pass.  The Fenwick position trees, last-access
/// maps and stack-distance histograms of all cores are packed CSR-style
/// into shared lanes and advanced position-by-position in lockstep (lanes
/// ordered longest-first, so shorter sequences drop out of the active
/// prefix and ragged tails cost nothing); lanes are chunked over the shared
/// pool for large p.  curves[j] is identical to
/// lru_fault_curve(requests.sequence(j), max_k) for every core j.
[[nodiscard]] std::vector<std::vector<Count>> lru_fault_curve_batch(
    const RequestSet& requests, std::size_t max_k);

/// All requests' stack distances in sequence order: 0 for a first (cold)
/// access, otherwise the number of distinct pages touched since the
/// previous access to the same page (inclusive — a repeat of the
/// immediately preceding request has distance 1).  Exposed for tests and
/// locality diagnostics.
[[nodiscard]] std::vector<std::size_t> stack_distances(
    const RequestSequence& seq);

}  // namespace mcp
