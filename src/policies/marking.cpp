#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void MarkingPolicy::reset() {
  entries_.clear();
  marked_count_ = 0;
  phases_ = 0;
}

void MarkingPolicy::on_insert(PageId page, const AccessContext& ctx) {
  auto [it, inserted] = entries_.try_emplace(page, Entry{true, ctx.now});
  MCP_REQUIRE(inserted, "MARK: inserting tracked page");
  (void)it;
  ++marked_count_;
}

void MarkingPolicy::on_hit(PageId page, const AccessContext& ctx) {
  auto it = entries_.find(page);
  MCP_REQUIRE(it != entries_.end(), "MARK: hit on untracked page");
  if (!it->second.marked) {
    it->second.marked = true;
    ++marked_count_;
  }
  it->second.last_use = ctx.now;
}

void MarkingPolicy::on_remove(PageId page) {
  auto it = entries_.find(page);
  MCP_REQUIRE(it != entries_.end(), "MARK: removing untracked page");
  if (it->second.marked) --marked_count_;
  entries_.erase(it);
}

PageId MarkingPolicy::victim(const AccessContext& /*ctx*/,
                             const EvictablePredicate& evictable) {
  if (entries_.empty()) return kInvalidPage;
  if (marked_count_ == entries_.size()) {
    // Every page is marked: the phase ends, all marks clear.
    for (auto& [page, entry] : entries_) entry.marked = false;
    marked_count_ = 0;
    ++phases_;
  }
  if (tie_break_ == TieBreak::kRandom) {
    // Randomized marking: uniform over unmarked evictable pages; fall back
    // to a uniform marked evictable page only if none (reserved cells).
    std::vector<PageId> unmarked;
    std::vector<PageId> marked;
    for (const auto& [page, entry] : entries_) {
      if (!evictable(page)) continue;
      (entry.marked ? marked : unmarked).push_back(page);
    }
    std::vector<PageId>& pool = unmarked.empty() ? marked : unmarked;
    if (pool.empty()) return kInvalidPage;
    std::sort(pool.begin(), pool.end());  // iteration-order independence
    return pool[rng_.below(pool.size())];
  }
  // Evict the least recently used *unmarked* evictable page; fall back to a
  // marked page only if no unmarked page is evictable (reserved cells can
  // force this), preferring the least recently used again.
  PageId best_unmarked = kInvalidPage;
  Time best_unmarked_time = kTimeNever;
  PageId best_marked = kInvalidPage;
  Time best_marked_time = kTimeNever;
  for (const auto& [page, entry] : entries_) {
    if (!evictable(page)) continue;
    if (!entry.marked) {
      if (best_unmarked == kInvalidPage || entry.last_use < best_unmarked_time ||
          (entry.last_use == best_unmarked_time && page < best_unmarked)) {
        best_unmarked = page;
        best_unmarked_time = entry.last_use;
      }
    } else {
      if (best_marked == kInvalidPage || entry.last_use < best_marked_time ||
          (entry.last_use == best_marked_time && page < best_marked)) {
        best_marked = page;
        best_marked_time = entry.last_use;
      }
    }
  }
  return best_unmarked != kInvalidPage ? best_unmarked : best_marked;
}

}  // namespace mcp
