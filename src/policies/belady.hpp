// Classic single-core paging reference algorithms.
//
// For a *static* partition and disjoint sequences, what happens inside one
// part depends only on that core's own subsequence (delays change timing,
// never the order of one core's requests), so per-part fault counts reduce
// to classic sequential paging.  That makes Belady's algorithm the exact
// value of the paper's sP^B_OPT per part, and sum-of-Belady the exact
// sP^OPT_OPT once minimized over partitions (see partition_search.hpp).
#pragma once

#include <cstddef>

#include "core/request.hpp"
#include "core/types.hpp"
#include "policies/eviction_policy.hpp"

namespace mcp {

/// Exact minimum number of faults to serve `seq` alone with a cache of `k`
/// pages (Belady / Furthest-In-The-Future; optimal for sequential paging).
/// k = 0 returns seq.size() (every request faults and the model never
/// actually allows it, but the value is the natural limit).
[[nodiscard]] Count belady_faults(const RequestSequence& seq, std::size_t k);

/// Faults of the online policy produced by `factory` serving `seq` alone
/// with `k` cells.  Timing plays no role in a single-core run, so this is a
/// tight loop over the sequence (much faster than the full simulator) —
/// used to build per-core fault curves for partition search.
[[nodiscard]] Count single_core_policy_faults(const RequestSequence& seq,
                                              std::size_t k,
                                              const PolicyFactory& factory);

}  // namespace mcp
