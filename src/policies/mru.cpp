#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void MruPolicy::reset() {
  order_.clear();
  index_.clear();
}

void MruPolicy::on_insert(PageId page, const AccessContext& /*ctx*/) {
  MCP_REQUIRE(!index_.contains(page), "MRU: inserting tracked page");
  order_.push_front(page);
  index_[page] = order_.begin();
}

void MruPolicy::on_hit(PageId page, const AccessContext& /*ctx*/) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "MRU: hit on untracked page");
  order_.splice(order_.begin(), order_, it->second);
}

void MruPolicy::on_remove(PageId page) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "MRU: removing untracked page");
  order_.erase(it->second);
  index_.erase(it);
}

PageId MruPolicy::victim(const AccessContext& /*ctx*/,
                         const EvictablePredicate& evictable) {
  for (PageId page : order_) {  // front = most recent
    if (evictable(page)) return page;
  }
  return kInvalidPage;
}

}  // namespace mcp
