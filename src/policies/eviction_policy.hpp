// Eviction-policy interface.
//
// In the paper's taxonomy a cache strategy = (partition policy, eviction
// policy A).  An EvictionPolicy instance manages *one region* of the cache:
// the whole cache for shared strategies (S_A), or one core's part for
// partitioned strategies (sP^B_A / dP^D_A, one instance per part).  The
// policy tracks the pages of its region and ranks them for eviction; it
// never touches the CacheState.
//
// victim() takes an `evictable` predicate because a page whose cell is
// reserved (fetch in flight) cannot be evicted under the model; policies
// must return their best-ranked page among the evictable ones.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <type_traits>

#include "core/events.hpp"
#include "core/types.hpp"

namespace mcp {

/// Returns true iff the page may be evicted right now.
///
/// A non-owning, non-allocating reference to a `bool(PageId)` callable
/// (function_ref): victim() runs on every fault, and a std::function here
/// would pay type-erasure allocation/indirection per call.  The referenced
/// callable must outlive the predicate — passing a lambda directly at a
/// victim() call site is fine (temporaries live to the end of the full
/// expression); storing a predicate built from a temporary is not.
class EvictablePredicate {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EvictablePredicate> &&
                std::is_invocable_r_v<bool, const F&, PageId>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  EvictablePredicate(const F& fn) noexcept
      : obj_(&fn), call_([](const void* obj, PageId page) {
          return static_cast<bool>((*static_cast<const F*>(obj))(page));
        }) {}

  bool operator()(PageId page) const { return call_(obj_, page); }

 private:
  const void* obj_;
  bool (*call_)(const void*, PageId);
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Forget all tracked pages (start of a run).
  virtual void reset() = 0;

  /// Hints how many cells this policy's region holds.  Strategies call it
  /// after reset() and again whenever the region is resized (dynamic
  /// partitions).  Most policies ignore it; segment-structured ones (SLRU)
  /// size their segments from it.
  virtual void set_capacity(std::size_t cells) { (void)cells; }

  /// `page` entered this policy's region (it faulted in).  `ctx` is the
  /// faulting request.
  virtual void on_insert(PageId page, const AccessContext& ctx) = 0;

  /// `page` was requested and hit in this region.
  virtual void on_hit(PageId page, const AccessContext& ctx) = 0;

  /// `page` left the region (evicted, or migrated by a repartition).
  virtual void on_remove(PageId page) = 0;

  /// Best eviction candidate among tracked pages with evictable(page).
  /// Returns kInvalidPage if no tracked page is evictable.  Does not remove
  /// the page — callers follow up with on_remove().
  [[nodiscard]] virtual PageId victim(const AccessContext& ctx,
                                      const EvictablePredicate& evictable) = 0;

  /// Number of tracked pages.
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual bool contains(PageId page) const = 0;

  /// Short display name ("LRU", "FIFO", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory producing fresh policy instances — partitioned strategies need
/// one instance per part, so strategies take factories, not instances.
using PolicyFactory = std::function<std::unique_ptr<EvictionPolicy>()>;

}  // namespace mcp
