// Eviction-policy interface.
//
// In the paper's taxonomy a cache strategy = (partition policy, eviction
// policy A).  An EvictionPolicy instance manages *one region* of the cache:
// the whole cache for shared strategies (S_A), or one core's part for
// partitioned strategies (sP^B_A / dP^D_A, one instance per part).  The
// policy tracks the pages of its region and ranks them for eviction; it
// never touches the CacheState.
//
// victim() takes an `evictable` predicate because a page whose cell is
// reserved (fetch in flight) cannot be evicted under the model; policies
// must return their best-ranked page among the evictable ones.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/events.hpp"
#include "core/types.hpp"

namespace mcp {

/// Returns true iff the page may be evicted right now.
using EvictablePredicate = std::function<bool(PageId)>;

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Forget all tracked pages (start of a run).
  virtual void reset() = 0;

  /// Hints how many cells this policy's region holds.  Strategies call it
  /// after reset() and again whenever the region is resized (dynamic
  /// partitions).  Most policies ignore it; segment-structured ones (SLRU)
  /// size their segments from it.
  virtual void set_capacity(std::size_t cells) { (void)cells; }

  /// `page` entered this policy's region (it faulted in).  `ctx` is the
  /// faulting request.
  virtual void on_insert(PageId page, const AccessContext& ctx) = 0;

  /// `page` was requested and hit in this region.
  virtual void on_hit(PageId page, const AccessContext& ctx) = 0;

  /// `page` left the region (evicted, or migrated by a repartition).
  virtual void on_remove(PageId page) = 0;

  /// Best eviction candidate among tracked pages with evictable(page).
  /// Returns kInvalidPage if no tracked page is evictable.  Does not remove
  /// the page — callers follow up with on_remove().
  [[nodiscard]] virtual PageId victim(const AccessContext& ctx,
                                      const EvictablePredicate& evictable) = 0;

  /// Number of tracked pages.
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual bool contains(PageId page) const = 0;

  /// Short display name ("LRU", "FIFO", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory producing fresh policy instances — partitioned strategies need
/// one instance per part, so strategies take factories, not instances.
using PolicyFactory = std::function<std::unique_ptr<EvictionPolicy>()>;

}  // namespace mcp
