#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void LfuPolicy::reset() { entries_.clear(); }

void LfuPolicy::on_insert(PageId page, const AccessContext& ctx) {
  auto [it, inserted] = entries_.try_emplace(page, Entry{1, ctx.now});
  MCP_REQUIRE(inserted, "LFU: inserting tracked page");
  (void)it;
}

void LfuPolicy::on_hit(PageId page, const AccessContext& ctx) {
  auto it = entries_.find(page);
  MCP_REQUIRE(it != entries_.end(), "LFU: hit on untracked page");
  ++it->second.uses;
  it->second.last_use = ctx.now;
}

void LfuPolicy::on_remove(PageId page) {
  MCP_REQUIRE(entries_.erase(page) == 1, "LFU: removing untracked page");
}

PageId LfuPolicy::victim(const AccessContext& /*ctx*/,
                         const EvictablePredicate& evictable) {
  PageId best = kInvalidPage;
  Count best_uses = 0;
  Time best_last = 0;
  for (const auto& [page, entry] : entries_) {
    if (!evictable(page)) continue;
    const bool better =
        best == kInvalidPage || entry.uses < best_uses ||
        (entry.uses == best_uses &&
         (entry.last_use < best_last ||
          (entry.last_use == best_last && page < best)));
    if (better) {
      best = page;
      best_uses = entry.uses;
      best_last = entry.last_use;
    }
  }
  return best;
}

}  // namespace mcp
