// Name-based policy construction, for benches / examples with CLI knobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policies/eviction_policy.hpp"
#include "policies/future_oracle.hpp"

namespace mcp {

/// Factory for an *online* policy by name: "lru", "fifo", "clock", "lfu",
/// "mru", "random", "mark" (case-insensitive).  `seed` feeds randomized
/// policies.  Throws InputError for unknown names (including "fitf", which
/// needs an oracle — use fitf_policy_factory).
[[nodiscard]] PolicyFactory make_policy_factory(const std::string& name,
                                                std::uint64_t seed = 0xC0FFEE);

/// Factory for offline FITF bound to `oracle` (not owned; must outlive all
/// produced policies).
[[nodiscard]] PolicyFactory fitf_policy_factory(const FutureOracle* oracle);

/// The online policy names make_policy_factory accepts, in canonical order.
[[nodiscard]] const std::vector<std::string>& online_policy_names();

}  // namespace mcp
