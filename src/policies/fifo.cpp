#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void FifoPolicy::reset() {
  order_.clear();
  index_.clear();
}

void FifoPolicy::on_insert(PageId page, const AccessContext& /*ctx*/) {
  MCP_REQUIRE(!index_.contains(page), "FIFO: inserting tracked page");
  order_.push_front(page);
  index_[page] = order_.begin();
}

void FifoPolicy::on_remove(PageId page) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "FIFO: removing untracked page");
  order_.erase(it->second);
  index_.erase(it);
}

PageId FifoPolicy::victim(const AccessContext& /*ctx*/,
                          const EvictablePredicate& evictable) {
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (evictable(*it)) return *it;
  }
  return kInvalidPage;
}

}  // namespace mcp
