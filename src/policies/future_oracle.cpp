#include "policies/future_oracle.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcp {

void FutureOracle::attach(const RequestSet& requests) {
  occurrences_.clear();
  positions_.assign(requests.num_cores(), 0);
  for (CoreId core = 0; core < requests.num_cores(); ++core) {
    const RequestSequence& seq = requests.sequence(core);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      auto& lists = occurrences_[seq[i]];
      if (lists.empty() || lists.back().core != core) {
        lists.push_back(CoreOccurrences{core, {}});
      }
      lists.back().indices.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

void FutureOracle::advance(CoreId core, std::size_t seq_index) {
  MCP_REQUIRE(core < positions_.size(), "FutureOracle: core out of range");
  MCP_REQUIRE(seq_index >= positions_[core],
              "FutureOracle positions must advance monotonically");
  positions_[core] = seq_index;
}

std::uint64_t FutureOracle::next_use_in(CoreId core, PageId page) const {
  MCP_REQUIRE(core < positions_.size(), "FutureOracle: core out of range");
  const auto it = occurrences_.find(page);
  if (it == occurrences_.end()) return kNeverAgain;
  for (const CoreOccurrences& occ : it->second) {
    if (occ.core != core) continue;
    const std::size_t pos = positions_[core];
    const auto next = std::lower_bound(occ.indices.begin(), occ.indices.end(),
                                       static_cast<std::uint32_t>(pos));
    if (next == occ.indices.end()) return kNeverAgain;
    return *next - pos;
  }
  return kNeverAgain;
}

std::uint64_t FutureOracle::next_use_any(PageId page) const {
  const auto it = occurrences_.find(page);
  if (it == occurrences_.end()) return kNeverAgain;
  std::uint64_t best = kNeverAgain;
  for (const CoreOccurrences& occ : it->second) {
    const std::size_t pos = positions_[occ.core];
    const auto next = std::lower_bound(occ.indices.begin(), occ.indices.end(),
                                       static_cast<std::uint32_t>(pos));
    if (next == occ.indices.end()) continue;
    best = std::min<std::uint64_t>(best, *next - pos);
  }
  return best;
}

}  // namespace mcp
