#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void LruPolicy::reset() {
  order_.clear();
  index_.clear();
  last_use_.clear();
}

void LruPolicy::touch(PageId page, Time now) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "LRU: touching untracked page");
  order_.splice(order_.begin(), order_, it->second);
  last_use_[page] = now;
}

void LruPolicy::on_insert(PageId page, const AccessContext& ctx) {
  MCP_REQUIRE(!index_.contains(page), "LRU: inserting tracked page");
  order_.push_front(page);
  index_[page] = order_.begin();
  last_use_[page] = ctx.now;
}

void LruPolicy::on_hit(PageId page, const AccessContext& ctx) {
  touch(page, ctx.now);
}

void LruPolicy::on_remove(PageId page) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "LRU: removing untracked page");
  order_.erase(it->second);
  index_.erase(it);
  last_use_.erase(page);
}

PageId LruPolicy::victim(const AccessContext& /*ctx*/,
                         const EvictablePredicate& evictable) {
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (evictable(*it)) return *it;
  }
  return kInvalidPage;
}

Time LruPolicy::last_use(PageId page) const {
  auto it = last_use_.find(page);
  return it == last_use_.end() ? kTimeNever : it->second;
}

}  // namespace mcp

// ---------------------------------------------------------------------------
// LruScanPolicy (the victim-selection data-structure ablation)
// ---------------------------------------------------------------------------

namespace mcp {

void LruScanPolicy::on_insert(PageId page, const AccessContext& ctx) {
  const auto [it, inserted] = last_use_.try_emplace(page, ctx.now);
  MCP_REQUIRE(inserted, "LRU-SCAN: inserting tracked page");
  (void)it;
}

void LruScanPolicy::on_hit(PageId page, const AccessContext& ctx) {
  const auto it = last_use_.find(page);
  MCP_REQUIRE(it != last_use_.end(), "LRU-SCAN: hit on untracked page");
  it->second = ctx.now;
}

void LruScanPolicy::on_remove(PageId page) {
  MCP_REQUIRE(last_use_.erase(page) == 1, "LRU-SCAN: removing untracked page");
}

PageId LruScanPolicy::victim(const AccessContext& /*ctx*/,
                             const EvictablePredicate& evictable) {
  PageId best = kInvalidPage;
  Time best_time = 0;
  for (const auto& [page, used] : last_use_) {
    if (!evictable(page)) continue;
    if (best == kInvalidPage || used < best_time ||
        (used == best_time && page < best)) {
      best = page;
      best_time = used;
    }
  }
  return best;
}

}  // namespace mcp
