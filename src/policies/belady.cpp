#include "policies/belady.hpp"

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/error.hpp"

namespace mcp {

Count belady_faults(const RequestSequence& seq, std::size_t k) {
  if (k == 0) return seq.size();
  const std::size_t n = seq.size();

  // next_use[i] = index of the next request to seq[i] after i, or n.
  std::vector<std::size_t> next_use(n, n);
  std::unordered_map<PageId, std::size_t> last_seen;
  for (std::size_t i = n; i-- > 0;) {
    auto it = last_seen.find(seq[i]);
    next_use[i] = it == last_seen.end() ? n : it->second;
    last_seen[seq[i]] = i;
  }

  // Cache as a map from next-use index to page (all keys distinct: two
  // resident pages cannot share the same next-use position).
  std::map<std::size_t, PageId, std::greater<>> by_next_use;  // furthest first
  std::unordered_map<PageId, std::size_t> resident;           // page -> key
  Count faults = 0;
  // Pages never used again share key n; disambiguate with descending
  // sub-keys below n would collide — instead give each dead page a unique
  // key beyond n.
  std::size_t dead_key = n;

  for (std::size_t i = 0; i < n; ++i) {
    const PageId page = seq[i];
    const std::size_t next = next_use[i] == n ? ++dead_key : next_use[i];
    auto it = resident.find(page);
    if (it != resident.end()) {  // hit: reposition under its new next use
      by_next_use.erase(it->second);
      by_next_use.emplace(next, page);
      it->second = next;
      continue;
    }
    ++faults;
    if (resident.size() == k) {  // evict the furthest-in-the-future page
      auto victim = by_next_use.begin();
      resident.erase(victim->second);
      by_next_use.erase(victim);
    }
    by_next_use.emplace(next, page);
    resident[page] = next;
  }
  return faults;
}

Count single_core_policy_faults(const RequestSequence& seq, std::size_t k,
                                const PolicyFactory& factory) {
  if (k == 0) return seq.size();
  const std::unique_ptr<EvictionPolicy> policy = factory();
  policy->reset();
  policy->set_capacity(k);
  std::unordered_set<PageId> resident;
  const auto always = [](PageId) { return true; };
  Count faults = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const PageId page = seq[i];
    const AccessContext ctx{/*core=*/0, page, /*now=*/static_cast<Time>(i), i};
    if (resident.contains(page)) {
      policy->on_hit(page, ctx);
      continue;
    }
    ++faults;
    if (resident.size() == k) {
      const PageId victim = policy->victim(ctx, always);
      MCP_ASSERT_MSG(victim != kInvalidPage, "policy returned no victim");
      policy->on_remove(victim);
      resident.erase(victim);
    }
    policy->on_insert(page, ctx);
    resident.insert(page);
  }
  return faults;
}

}  // namespace mcp
