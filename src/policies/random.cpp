#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void RandomPolicy::reset() {
  pages_.clear();
  index_.clear();
}

void RandomPolicy::on_insert(PageId page, const AccessContext& /*ctx*/) {
  MCP_REQUIRE(!index_.contains(page), "RANDOM: inserting tracked page");
  index_[page] = pages_.size();
  pages_.push_back(page);
}

void RandomPolicy::on_remove(PageId page) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "RANDOM: removing untracked page");
  const std::size_t slot = it->second;
  const PageId moved = pages_.back();
  pages_[slot] = moved;
  pages_.pop_back();
  if (moved != page) index_[moved] = slot;
  index_.erase(it);
}

PageId RandomPolicy::victim(const AccessContext& /*ctx*/,
                            const EvictablePredicate& evictable) {
  // Collect the evictable subset so the draw is uniform over it.
  std::vector<PageId> candidates;
  candidates.reserve(pages_.size());
  for (PageId page : pages_) {
    if (evictable(page)) candidates.push_back(page);
  }
  if (candidates.empty()) return kInvalidPage;
  return candidates[rng_.below(candidates.size())];
}

}  // namespace mcp
