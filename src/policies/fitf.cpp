#include <algorithm>

#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

FitfPolicy::FitfPolicy(const FutureOracle* oracle) : oracle_(oracle) {
  MCP_REQUIRE(oracle != nullptr, "FITF requires a future oracle");
}

void FitfPolicy::reset() { pages_.clear(); }

void FitfPolicy::on_insert(PageId page, const AccessContext& /*ctx*/) {
  const auto it = std::lower_bound(pages_.begin(), pages_.end(), page);
  MCP_REQUIRE(it == pages_.end() || *it != page, "FITF: inserting tracked page");
  pages_.insert(it, page);
}

void FitfPolicy::on_remove(PageId page) {
  const auto it = std::lower_bound(pages_.begin(), pages_.end(), page);
  MCP_REQUIRE(it != pages_.end() && *it == page, "FITF: removing untracked page");
  pages_.erase(it);
}

bool FitfPolicy::contains(PageId page) const {
  return std::binary_search(pages_.begin(), pages_.end(), page);
}

PageId FitfPolicy::victim(const AccessContext& /*ctx*/,
                          const EvictablePredicate& evictable) {
  PageId best = kInvalidPage;
  std::uint64_t best_distance = 0;
  for (PageId page : pages_) {  // ascending id => deterministic tie-breaking
    if (!evictable(page)) continue;
    const std::uint64_t distance = oracle_->next_use_any(page);
    if (best == kInvalidPage || distance > best_distance) {
      best = page;
      best_distance = distance;
    }
  }
  return best;
}

}  // namespace mcp
