// Concrete eviction policies.
//
// Online: LRU, FIFO, CLOCK, LFU, MRU, Random, LRU-Marking.
// Offline: FITF (Belady's furthest-in-the-future, via FutureOracle).
//
// The paper's bounds reference LRU (its running example of a marking /
// conservative algorithm), FIFO (conservative), marking algorithms as a
// class, and FITF; the remaining policies round out the shootout benchmark
// (experiment E12) with the classics every paging suite is expected to have.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rng.hpp"
#include "policies/eviction_policy.hpp"
#include "policies/future_oracle.hpp"

namespace mcp {

/// Least Recently Used.  Victim = least recently requested evictable page.
class LruPolicy final : public EvictionPolicy {
 public:
  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId page, const AccessContext& ctx) override;
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return index_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "LRU"; }

  /// Least recently used tracked page regardless of evictability (used by
  /// the Lemma-3 dynamic-partition controller to find the global LRU page).
  [[nodiscard]] PageId least_recent() const {
    return order_.empty() ? kInvalidPage : order_.back();
  }
  /// Timestep of the page's last use; kTimeNever if untracked.
  [[nodiscard]] Time last_use(PageId page) const;

 private:
  void touch(PageId page, Time now);
  std::list<PageId> order_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  std::unordered_map<PageId, Time> last_use_;
};

/// LRU implemented by timestamp scan instead of an intrusive list — the
/// victim-selection data-structure ablation (DESIGN.md): O(1) bookkeeping
/// per access, O(size) victim selection.  Semantically identical to
/// LruPolicy whenever access timestamps are unique (always true for a
/// single core); with simultaneous same-step accesses ties break by page id
/// instead of touch order.
class LruScanPolicy final : public EvictionPolicy {
 public:
  void reset() override { last_use_.clear(); }
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId page, const AccessContext& ctx) override;
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return last_use_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return last_use_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "LRU-SCAN"; }

 private:
  std::unordered_map<PageId, Time> last_use_;
};

/// First-In First-Out.  Victim = evictable page resident the longest.
class FifoPolicy final : public EvictionPolicy {
 public:
  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId /*page*/, const AccessContext& /*ctx*/) override {}
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return index_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "FIFO"; }

 private:
  std::list<PageId> order_;  // front = newest arrival
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

/// CLOCK (second-chance).  A circular hand sweeps pages; referenced bits are
/// cleared on the way and the first evictable page with a clear bit is the
/// victim.
class ClockPolicy final : public EvictionPolicy {
 public:
  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId page, const AccessContext& ctx) override;
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return index_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "CLOCK"; }

 private:
  struct Entry {
    PageId page = kInvalidPage;
    bool referenced = false;
  };
  std::vector<Entry> ring_;
  std::size_t hand_ = 0;
  std::unordered_map<PageId, std::size_t> index_;  // page -> ring slot
};

/// Least Frequently Used, with LRU tie-breaking.
class LfuPolicy final : public EvictionPolicy {
 public:
  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId page, const AccessContext& ctx) override;
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return entries_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "LFU"; }

 private:
  struct Entry {
    Count uses = 0;
    Time last_use = 0;
  };
  std::unordered_map<PageId, Entry> entries_;
};

/// Most Recently Used (good for cyclic scans longer than the cache; included
/// as the textbook anti-LRU baseline).
class MruPolicy final : public EvictionPolicy {
 public:
  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId page, const AccessContext& ctx) override;
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return index_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "MRU"; }

 private:
  std::list<PageId> order_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

/// Segmented LRU: a probation segment absorbs new arrivals; a hit promotes
/// the page into a protected segment capped at half the region (classic
/// SLRU).  Scan-resistant: a one-shot sweep churns probation but cannot
/// displace the protected hot set.
class SlruPolicy final : public EvictionPolicy {
 public:
  void reset() override;
  void set_capacity(std::size_t cells) override {
    protected_cap_ = cells == 0 ? 1 : std::max<std::size_t>(1, cells / 2);
  }
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId page, const AccessContext& ctx) override;
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return index_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "SLRU"; }

  /// Pages currently in the protected segment (for tests).
  [[nodiscard]] std::size_t protected_size() const noexcept {
    return protected_count_;
  }

 private:
  struct Node {
    std::list<PageId>::iterator where;
    bool is_protected = false;
  };
  void demote_if_needed();

  std::list<PageId> probation_;   // front = most recent
  std::list<PageId> protected_;   // front = most recent
  std::unordered_map<PageId, Node> index_;
  std::size_t protected_cap_ = 1;
  std::size_t protected_count_ = 0;
};

/// Uniform random eviction (seeded, reproducible).
class RandomPolicy final : public EvictionPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 0xC0FFEE) : rng_(seed) {}
  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId /*page*/, const AccessContext& /*ctx*/) override {}
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return pages_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return index_.contains(page);
  }
  [[nodiscard]] std::string name() const override { return "RANDOM"; }

 private:
  Rng rng_;
  std::vector<PageId> pages_;
  std::unordered_map<PageId, std::size_t> index_;  // page -> slot in pages_
};

/// Generic marking algorithm.  Requests mark their page; when every tracked
/// page is marked a new phase begins and all marks are cleared.  Any marking
/// algorithm faults at most k times per phase (the paper's Lemma 1 upper
/// bound applies to it).  Victim selection among unmarked pages is either
/// deterministic (LRU tie-break) or uniformly random — the latter is the
/// classic RANDOMIZED MARKING algorithm (H_k-competitive sequentially).
class MarkingPolicy final : public EvictionPolicy {
 public:
  enum class TieBreak { kLru, kRandom };

  explicit MarkingPolicy(TieBreak tie_break = TieBreak::kLru,
                         std::uint64_t seed = 0xBADBEEF)
      : tie_break_(tie_break), rng_(seed) {}

  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId page, const AccessContext& ctx) override;
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] bool contains(PageId page) const override {
    return entries_.contains(page);
  }
  [[nodiscard]] std::string name() const override {
    return tie_break_ == TieBreak::kLru ? "MARK" : "MARK-RAND";
  }

  /// Number of phase resets so far (exposed for the phase-bound tests).
  [[nodiscard]] Count phases() const noexcept { return phases_; }

 private:
  struct Entry {
    bool marked = false;
    Time last_use = 0;
  };
  TieBreak tie_break_;
  Rng rng_;
  std::unordered_map<PageId, Entry> entries_;
  std::size_t marked_count_ = 0;
  Count phases_ = 0;
};

/// Furthest-In-The-Future (Belady), offline.  Victim = evictable page whose
/// next use — min over cores, per the oracle — is furthest away; pages never
/// used again rank furthest of all.  Optimal for p=1; *not* optimal for
/// multicore paging when tau > K/p (paper, Section 4), which experiment E7
/// reproduces.
class FitfPolicy final : public EvictionPolicy {
 public:
  /// `oracle` is shared with the owning strategy, which keeps its positions
  /// current; not owned, must outlive the policy.
  explicit FitfPolicy(const FutureOracle* oracle);
  void reset() override;
  void on_insert(PageId page, const AccessContext& ctx) override;
  void on_hit(PageId /*page*/, const AccessContext& /*ctx*/) override {}
  void on_remove(PageId page) override;
  [[nodiscard]] PageId victim(const AccessContext& ctx,
                              const EvictablePredicate& evictable) override;
  [[nodiscard]] std::size_t size() const override { return pages_.size(); }
  [[nodiscard]] bool contains(PageId page) const override;
  [[nodiscard]] std::string name() const override { return "FITF"; }

 private:
  const FutureOracle* oracle_;
  std::vector<PageId> pages_;  // sorted, small: scan is fine and deterministic
};

}  // namespace mcp
