#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void ClockPolicy::reset() {
  ring_.clear();
  index_.clear();
  hand_ = 0;
}

void ClockPolicy::on_insert(PageId page, const AccessContext& /*ctx*/) {
  MCP_REQUIRE(!index_.contains(page), "CLOCK: inserting tracked page");
  // Insert at the hand position so the new page is the last the hand will
  // revisit (classic CLOCK admission).  The faulting access references the
  // page, so it arrives with its bit set — this keeps CLOCK conservative
  // (a just-fetched page always survives the next sweep).
  const std::size_t slot = ring_.empty() ? 0 : hand_;
  ring_.insert(ring_.begin() + static_cast<std::ptrdiff_t>(slot),
               Entry{page, /*referenced=*/true});
  // Slots at or after the insertion point shifted by one.
  for (auto& [tracked_page, tracked_slot] : index_) {
    if (tracked_slot >= slot) ++tracked_slot;
  }
  index_[page] = slot;
  if (!ring_.empty()) hand_ = (slot + 1) % ring_.size();
}

void ClockPolicy::on_hit(PageId page, const AccessContext& /*ctx*/) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "CLOCK: hit on untracked page");
  ring_[it->second].referenced = true;
}

void ClockPolicy::on_remove(PageId page) {
  auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "CLOCK: removing untracked page");
  const std::size_t slot = it->second;
  ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(slot));
  index_.erase(it);
  for (auto& [tracked_page, tracked_slot] : index_) {
    if (tracked_slot > slot) --tracked_slot;
  }
  if (ring_.empty()) {
    hand_ = 0;
  } else if (hand_ > slot || hand_ >= ring_.size()) {
    hand_ = (hand_ == 0 ? ring_.size() : hand_) - 1;
    hand_ %= ring_.size();
  }
}

PageId ClockPolicy::victim(const AccessContext& /*ctx*/,
                           const EvictablePredicate& evictable) {
  if (ring_.empty()) return kInvalidPage;
  // Two full sweeps suffice: the first clears referenced bits, the second
  // must find an unreferenced evictable page if any page is evictable.
  for (std::size_t visited = 0; visited < 2 * ring_.size(); ++visited) {
    Entry& entry = ring_[hand_];
    if (!evictable(entry.page)) {
      hand_ = (hand_ + 1) % ring_.size();
      continue;
    }
    if (entry.referenced) {
      entry.referenced = false;
      hand_ = (hand_ + 1) % ring_.size();
      continue;
    }
    return entry.page;  // hand stays; caller removes the page via on_remove
  }
  return kInvalidPage;  // nothing evictable
}

}  // namespace mcp
