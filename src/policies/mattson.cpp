#include "policies/mattson.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/sentry.hpp"

namespace mcp {

namespace {

// Fenwick tree over 1-based access positions; tree[i] counts positions in
// i's range that still hold some page's most recent access.
class PositionTree {
 public:
  explicit PositionTree(std::size_t n) : tree_(n + 1, 0), n_(n) {}

  void mark(std::size_t pos) {
    for (; pos <= n_; pos += lowbit(pos)) ++tree_[pos];
  }
  void unmark(std::size_t pos) {
    for (; pos <= n_; pos += lowbit(pos)) --tree_[pos];
  }
  /// Number of marked positions in [1, pos].
  [[nodiscard]] std::size_t prefix(std::size_t pos) const {
    std::size_t sum = 0;
    for (; pos > 0; pos -= lowbit(pos)) sum += tree_[pos];
    return sum;
  }

 private:
  static std::size_t lowbit(std::size_t i) { return i & (~i + 1); }

  std::vector<std::uint32_t> tree_;
  std::size_t n_;
};

// Single pass over `seq`, calling on_cold() for first accesses and
// on_reuse(d) with the stack distance d >= 1 for repeats.  O(n log n).
template <typename OnCold, typename OnReuse>
void scan_stack_distances(const RequestSequence& seq, OnCold on_cold,
                          OnReuse on_reuse) {
  const std::size_t n = seq.size();
  PositionTree marks(n);
  // Presize the page->position map from the sequence's max page id: one O(n)
  // pass up front, and the scan below never grows it — which lets the
  // allocation sentry hold the kernel to the §8 allocation-free claim.
  // The callbacks inherit the guard: both callers append into
  // exactly-reserved storage or bump counters.
  PageId max_page = 0;
  for (const PageId page : seq) max_page = std::max(max_page, page);
  std::vector<std::size_t> last_pos(n == 0 ? 1 : std::size_t{max_page} + 1,
                                    0);  // page -> 1-based position, 0 = unseen
  AllocGuard guard("mattson stack-distance scan");
  for (std::size_t i = 1; i <= n; ++i) {
    const PageId page = seq[i - 1];
    const std::size_t prev = last_pos[page];
    if (prev == 0) {
      on_cold();
    } else {
      // Distinct pages since the previous access to `page`: the still-marked
      // positions strictly between prev and i, plus `page` itself.
      on_reuse(marks.prefix(i - 1) - marks.prefix(prev) + 1);
      marks.unmark(prev);
    }
    marks.mark(i);
    last_pos[page] = i;
  }
}

}  // namespace

std::vector<Count> lru_fault_curve(const RequestSequence& seq,
                                   std::size_t max_k) {
  const std::size_t n = seq.size();
  // hist[d] = reuses at stack distance d, distances beyond max_k bucketed
  // at max_k + 1 (they miss at every tracked capacity).
  std::vector<Count> hist(max_k + 2, 0);
  Count cold = 0;
  scan_stack_distances(
      seq, [&cold] { ++cold; },
      [&hist, max_k](std::size_t d) { ++hist[std::min(d, max_k + 1)]; });

  // f(k) = cold misses + reuses with distance > k; suffix-sum the histogram.
  std::vector<Count> curve(max_k + 1, 0);
  Count beyond = 0;
  for (std::size_t k = max_k + 1; k-- > 0;) {
    beyond += hist[k + 1];
    curve[k] = cold + beyond;
  }
  // k = 0 limit: every request misses (cold + every reuse).
  MCP_ASSERT(curve[0] == n);
  return curve;
}

std::vector<std::size_t> stack_distances(const RequestSequence& seq) {
  std::vector<std::size_t> out;
  out.reserve(seq.size());
  scan_stack_distances(
      seq, [&out] { out.push_back(0); },
      [&out](std::size_t d) { out.push_back(d); });
  return out;
}

}  // namespace mcp
