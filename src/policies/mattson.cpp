#include "policies/mattson.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/sentry.hpp"

namespace mcp {

namespace {

// Fenwick tree over 1-based access positions; tree[i] counts positions in
// i's range that still hold some page's most recent access.
class PositionTree {
 public:
  explicit PositionTree(std::size_t n) : tree_(n + 1, 0), n_(n) {}

  void mark(std::size_t pos) {
    for (; pos <= n_; pos += lowbit(pos)) ++tree_[pos];
  }
  void unmark(std::size_t pos) {
    for (; pos <= n_; pos += lowbit(pos)) --tree_[pos];
  }
  /// Number of marked positions in [1, pos].
  [[nodiscard]] std::size_t prefix(std::size_t pos) const {
    std::size_t sum = 0;
    for (; pos > 0; pos -= lowbit(pos)) sum += tree_[pos];
    return sum;
  }

 private:
  static std::size_t lowbit(std::size_t i) { return i & (~i + 1); }

  std::vector<std::uint32_t> tree_;
  std::size_t n_;
};

// Single pass over `seq`, calling on_cold() for first accesses and
// on_reuse(d) with the stack distance d >= 1 for repeats.  O(n log n).
template <typename OnCold, typename OnReuse>
void scan_stack_distances(const RequestSequence& seq, OnCold on_cold,
                          OnReuse on_reuse) {
  const std::size_t n = seq.size();
  PositionTree marks(n);
  // Presize the page->position map from the sequence's max page id: one O(n)
  // pass up front, and the scan below never grows it — which lets the
  // allocation sentry hold the kernel to the §8 allocation-free claim.
  // The callbacks inherit the guard: both callers append into
  // exactly-reserved storage or bump counters.
  PageId max_page = 0;
  for (const PageId page : seq) max_page = std::max(max_page, page);
  std::vector<std::size_t> last_pos(n == 0 ? 1 : std::size_t{max_page} + 1,
                                    0);  // page -> 1-based position, 0 = unseen
  AllocGuard guard("mattson stack-distance scan");
  for (std::size_t i = 1; i <= n; ++i) {
    const PageId page = seq[i - 1];
    const std::size_t prev = last_pos[page];
    if (prev == 0) {
      on_cold();
    } else {
      // Distinct pages since the previous access to `page`: the still-marked
      // positions strictly between prev and i, plus `page` itself.
      on_reuse(marks.prefix(i - 1) - marks.prefix(prev) + 1);
      marks.unmark(prev);
    }
    marks.mark(i);
    last_pos[page] = i;
  }
}

/// Lanes per pool task in lru_fault_curve_batch: enough to amortize lane
/// setup, few enough that large-p sets still spread across workers.
constexpr std::size_t kMattsonChunkLanes = 8;

/// The batched scan for cores [first, first + count): all lanes' Fenwick
/// trees, last-position maps and histograms live in three shared arrays
/// with per-lane base offsets, and one outer loop over the position index
/// advances every still-active lane — the SoA shape of BatchEngine applied
/// to Mattson's algorithm.  Writes only curves[first .. first+count).
void lru_fault_curve_batch_chunk(const RequestSet& requests, std::size_t first,
                                 std::size_t count, std::size_t max_k,
                                 std::vector<std::vector<Count>>& curves) {
  struct Lane {
    const PageId* seq = nullptr;
    std::size_t n = 0;
    std::size_t tree_base = 0;  ///< Fenwick over positions (n + 1 entries)
    std::size_t pos_base = 0;   ///< page -> 1-based last position, 0 = unseen
    std::size_t hist_base = 0;  ///< stack-distance histogram (max_k + 2)
    Count cold = 0;
  };
  std::vector<Lane> lanes(count);
  std::size_t tree_total = 0;
  std::size_t pos_total = 0;
  std::size_t max_n = 0;
  for (std::size_t a = 0; a < count; ++a) {
    const RequestSequence& seq =
        requests.sequence(static_cast<CoreId>(first + a));
    Lane& lane = lanes[a];
    lane.seq = seq.pages().data();
    lane.n = seq.size();
    PageId max_page = 0;
    for (const PageId page : seq) max_page = std::max(max_page, page);
    lane.tree_base = tree_total;
    lane.pos_base = pos_total;
    lane.hist_base = a * (max_k + 2);
    tree_total += lane.n + 1;
    pos_total += lane.n == 0 ? 1 : std::size_t{max_page} + 1;
    max_n = std::max(max_n, lane.n);
  }
  std::vector<std::uint32_t> tree(tree_total, 0);
  std::vector<std::size_t> last_pos(pos_total, 0);
  std::vector<Count> hist(count * (max_k + 2), 0);
  // Longest lanes first: the active prefix shrinks as the position index
  // runs past the shorter sequences (the ragged tail).
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&lanes](std::size_t a, std::size_t b) {
                     return lanes[a].n > lanes[b].n;
                   });

  const auto mark = [&tree](Lane& lane, std::size_t pos) {
    for (; pos <= lane.n; pos += pos & (~pos + 1)) ++tree[lane.tree_base + pos];
  };
  const auto unmark = [&tree](Lane& lane, std::size_t pos) {
    for (; pos <= lane.n; pos += pos & (~pos + 1)) --tree[lane.tree_base + pos];
  };
  const auto prefix = [&tree](const Lane& lane, std::size_t pos) {
    std::size_t sum = 0;
    for (; pos > 0; pos -= pos & (~pos + 1)) sum += tree[lane.tree_base + pos];
    return sum;
  };

  {
    AllocGuard guard("batched mattson scan");
    std::size_t active = count;
    for (std::size_t i = 1; i <= max_n; ++i) {
      while (active > 0 && lanes[order[active - 1]].n < i) --active;
      for (std::size_t a = 0; a < active; ++a) {
        Lane& lane = lanes[order[a]];
        const PageId page = lane.seq[i - 1];
        std::size_t& last = last_pos[lane.pos_base + page];
        if (last == 0) {
          ++lane.cold;
        } else {
          const std::size_t d = prefix(lane, i - 1) - prefix(lane, last) + 1;
          ++hist[lane.hist_base + std::min(d, max_k + 1)];
          unmark(lane, last);
        }
        mark(lane, i);
        last = i;
      }
    }
  }

  // Suffix-sum each lane's histogram into its curve, exactly as the scalar
  // kernel does.
  for (std::size_t a = 0; a < count; ++a) {
    const Lane& lane = lanes[a];
    std::vector<Count>& curve = curves[first + a];
    curve.assign(max_k + 1, 0);
    Count beyond = 0;
    for (std::size_t k = max_k + 1; k-- > 0;) {
      beyond += hist[lane.hist_base + k + 1];
      curve[k] = lane.cold + beyond;
    }
    MCP_ASSERT(curve[0] == lane.n);
  }
}

}  // namespace

std::vector<Count> lru_fault_curve(const RequestSequence& seq,
                                   std::size_t max_k) {
  const std::size_t n = seq.size();
  // hist[d] = reuses at stack distance d, distances beyond max_k bucketed
  // at max_k + 1 (they miss at every tracked capacity).
  std::vector<Count> hist(max_k + 2, 0);
  Count cold = 0;
  scan_stack_distances(
      seq, [&cold] { ++cold; },
      [&hist, max_k](std::size_t d) { ++hist[std::min(d, max_k + 1)]; });

  // f(k) = cold misses + reuses with distance > k; suffix-sum the histogram.
  std::vector<Count> curve(max_k + 1, 0);
  Count beyond = 0;
  for (std::size_t k = max_k + 1; k-- > 0;) {
    beyond += hist[k + 1];
    curve[k] = cold + beyond;
  }
  // k = 0 limit: every request misses (cold + every reuse).
  MCP_ASSERT(curve[0] == n);
  return curve;
}

std::vector<std::vector<Count>> lru_fault_curve_batch(
    const RequestSet& requests, std::size_t max_k) {
  const std::size_t p = requests.num_cores();
  std::vector<std::vector<Count>> curves(p);
  if (p == 0) return curves;
  const std::size_t chunks =
      (p + kMattsonChunkLanes - 1) / kMattsonChunkLanes;
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t first = c * kMattsonChunkLanes;
    const std::size_t count = std::min(kMattsonChunkLanes, p - first);
    lru_fault_curve_batch_chunk(requests, first, count, max_k, curves);
  });
  return curves;
}

std::vector<std::size_t> stack_distances(const RequestSequence& seq) {
  std::vector<std::size_t> out;
  out.reserve(seq.size());
  scan_stack_distances(
      seq, [&out] { out.push_back(0); },
      [&out](std::size_t d) { out.push_back(d); });
  return out;
}

}  // namespace mcp
