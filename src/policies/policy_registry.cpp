#include "policies/policy_registry.hpp"

#include <algorithm>
#include <cctype>

#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

namespace {
std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

PolicyFactory make_policy_factory(const std::string& name, std::uint64_t seed) {
  const std::string key = lowercase(name);
  if (key == "lru") return [] { return std::make_unique<LruPolicy>(); };
  if (key == "lru-scan") {
    return [] { return std::make_unique<LruScanPolicy>(); };
  }
  if (key == "slru") return [] { return std::make_unique<SlruPolicy>(); };
  if (key == "fifo") return [] { return std::make_unique<FifoPolicy>(); };
  if (key == "clock") return [] { return std::make_unique<ClockPolicy>(); };
  if (key == "lfu") return [] { return std::make_unique<LfuPolicy>(); };
  if (key == "mru") return [] { return std::make_unique<MruPolicy>(); };
  if (key == "random") {
    return [seed] { return std::make_unique<RandomPolicy>(seed); };
  }
  if (key == "mark" || key == "marking") {
    return [] { return std::make_unique<MarkingPolicy>(); };
  }
  if (key == "mark-random") {
    return [seed] {
      return std::make_unique<MarkingPolicy>(MarkingPolicy::TieBreak::kRandom,
                                             seed);
    };
  }
  throw InputError("unknown eviction policy: '" + name +
                   "' (known: lru lru-scan slru fifo clock lfu mru random mark mark-random; "
                   "fitf needs "
                   "an oracle, see fitf_policy_factory)");
}

PolicyFactory fitf_policy_factory(const FutureOracle* oracle) {
  MCP_REQUIRE(oracle != nullptr, "fitf_policy_factory: null oracle");
  return [oracle] { return std::make_unique<FitfPolicy>(oracle); };
}

const std::vector<std::string>& online_policy_names() {
  static const std::vector<std::string> names = {
      "lru",  "lru-scan", "slru", "fifo",        "clock",
      "lfu",  "mru",      "random", "mark",      "mark-random"};
  return names;
}

}  // namespace mcp
