// Future-knowledge oracle for offline eviction policies (FITF / Belady).
//
// In multicore paging the *absolute time* of a page's next request shifts as
// faults delay sequences, but the number of requests until it (its index
// distance) does not.  The oracle therefore measures "furthest in the
// future" in per-core request counts from each core's current position —
// the natural generalization of Belady's rule used by Theorem 5 ("evicts a
// page sigma in R_j whose next request time is maximal in R_j").
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp {

/// Distance value for "never requested again".
inline constexpr std::uint64_t kNeverAgain = std::numeric_limits<std::uint64_t>::max();

class FutureOracle {
 public:
  FutureOracle() = default;

  /// Indexes `requests` and resets all positions to 0.
  void attach(const RequestSet& requests);

  /// Core `core` is about to serve the request at `seq_index`; occurrences
  /// before it no longer count as future uses.  Positions must advance
  /// monotonically.
  void advance(CoreId core, std::size_t seq_index);

  /// Requests remaining until core `core` next uses `page`, measured from
  /// the core's current position (0 = the very next request).  kNeverAgain
  /// if the core never requests it again.
  [[nodiscard]] std::uint64_t next_use_in(CoreId core, PageId page) const;

  /// min over cores of next_use_in — how soon *anyone* needs the page.
  /// This is the ranking shared FITF maximizes.
  [[nodiscard]] std::uint64_t next_use_any(PageId page) const;

  [[nodiscard]] std::size_t num_cores() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t position(CoreId core) const { return positions_.at(core); }

 private:
  struct CoreOccurrences {
    CoreId core = kInvalidCore;
    std::vector<std::uint32_t> indices;  // ascending request indices in R_core
  };
  // page -> occurrence lists, one per core that requests it.
  std::unordered_map<PageId, std::vector<CoreOccurrences>> occurrences_;
  std::vector<std::size_t> positions_;
};

}  // namespace mcp
