#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

void SlruPolicy::reset() {
  probation_.clear();
  protected_.clear();
  index_.clear();
  protected_count_ = 0;
}

void SlruPolicy::demote_if_needed() {
  while (protected_count_ > protected_cap_) {
    // Protected overflow: its LRU page drops to the front of probation
    // (still warm, but exposed to eviction again).
    const PageId demoted = protected_.back();
    protected_.pop_back();
    probation_.push_front(demoted);
    Node& node = index_.at(demoted);
    node.where = probation_.begin();
    node.is_protected = false;
    --protected_count_;
  }
}

void SlruPolicy::on_insert(PageId page, const AccessContext& /*ctx*/) {
  MCP_REQUIRE(!index_.contains(page), "SLRU: inserting tracked page");
  probation_.push_front(page);
  index_[page] = Node{probation_.begin(), false};
}

void SlruPolicy::on_hit(PageId page, const AccessContext& /*ctx*/) {
  const auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "SLRU: hit on untracked page");
  Node& node = it->second;
  if (node.is_protected) {
    protected_.splice(protected_.begin(), protected_, node.where);
    node.where = protected_.begin();
    return;
  }
  // Promotion: probation -> protected.
  probation_.erase(node.where);
  protected_.push_front(page);
  node.where = protected_.begin();
  node.is_protected = true;
  ++protected_count_;
  demote_if_needed();
}

void SlruPolicy::on_remove(PageId page) {
  const auto it = index_.find(page);
  MCP_REQUIRE(it != index_.end(), "SLRU: removing untracked page");
  if (it->second.is_protected) {
    protected_.erase(it->second.where);
    --protected_count_;
  } else {
    probation_.erase(it->second.where);
  }
  index_.erase(it);
}

PageId SlruPolicy::victim(const AccessContext& /*ctx*/,
                          const EvictablePredicate& evictable) {
  // Probation LRU first; fall back to protected LRU.
  for (auto it = probation_.rbegin(); it != probation_.rend(); ++it) {
    if (evictable(*it)) return *it;
  }
  for (auto it = protected_.rbegin(); it != protected_.rend(); ++it) {
    if (evictable(*it)) return *it;
  }
  return kInvalidPage;
}

}  // namespace mcp
