#include "strategies/partition_search.hpp"

#include <limits>
#include <optional>

#include "core/batch_state.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "policies/belady.hpp"
#include "policies/mattson.hpp"
#include "strategies/static_partition.hpp"

namespace mcp {

namespace {

// Fault-curve construction is a (core, k) grid of independent single-core
// runs: flatten it into cells and sweep the cells on the shared pool.  Each
// cell writes only its own curve slot, so the curves are bit-identical for
// any worker count.
FaultCurves fault_curve_sweep(
    const RequestSet& requests, std::size_t cache_size,
    const std::function<Count(const RequestSequence&, std::size_t)>& faults) {
  FaultCurves curves(requests.num_cores());
  const std::size_t width = cache_size + 1;
  for (auto& curve : curves) curve.resize(width);
  parallel_for(requests.num_cores() * width, [&](std::size_t cell) {
    const CoreId j = static_cast<CoreId>(cell / width);
    const std::size_t k = cell % width;
    curves[j][k] = faults(requests.sequence(j), k);
  });
  return curves;
}

}  // namespace

FaultCurves belady_fault_curves(const RequestSet& requests,
                                std::size_t cache_size) {
  return fault_curve_sweep(
      requests, cache_size,
      [](const RequestSequence& seq, std::size_t k) {
        return belady_faults(seq, k);
      });
}

FaultCurves policy_fault_curves(const RequestSet& requests,
                                std::size_t cache_size,
                                const PolicyFactory& factory) {
  // LRU has the stack property, so the whole column f_j(0..K) falls out of
  // one Mattson pass per core instead of K + 1 independent runs — and the
  // batched kernel advances all cores' passes in lockstep lanes.  The name
  // check is deliberately exact: LRU-SCAN and the other variants do not
  // keep the inclusion property.
  const std::string policy_name = factory()->name();
  if (policy_name == "LRU") {
    return lru_fault_curve_batch(requests, cache_size);
  }
  // FIFO has no stack property, but every (j, k) grid cell is a one-core
  // simulation the batch engine runs natively: materialize the grid as
  // SimJobs and run them as lockstep lanes instead of per-cell policy
  // objects.  The k = 0 column is the no-cache limit (every request
  // faults), same as single_core_policy_faults.
  if (const std::optional<BatchPolicy> batched =
          batch_policy_from_name(policy_name);
      batched.has_value()) {
    const std::size_t p = requests.num_cores();
    std::vector<RequestSet> singles;
    singles.reserve(p);
    for (CoreId j = 0; j < p; ++j) {
      RequestSet single;
      single.add_sequence(requests.sequence(j));
      singles.push_back(std::move(single));
    }
    std::vector<SimJob> jobs;
    jobs.reserve(p * cache_size);
    for (CoreId j = 0; j < p; ++j) {
      for (std::size_t k = 1; k <= cache_size; ++k) {
        SimJob job;
        job.config.cache_size = k;
        job.config.record_fault_timeline = false;
        job.requests = &singles[j];
        job.strategy = BatchStrategySpec::shared(*batched);
        jobs.push_back(std::move(job));
      }
    }
    SweepRunner sweep;
    const std::vector<RunStats> stats = sweep.run_jobs(jobs);
    FaultCurves curves(p);
    for (CoreId j = 0; j < p; ++j) {
      curves[j].resize(cache_size + 1);
      curves[j][0] = requests.sequence(j).size();
      for (std::size_t k = 1; k <= cache_size; ++k) {
        curves[j][k] = stats[j * cache_size + (k - 1)].total_faults();
      }
    }
    return curves;
  }
  return fault_curve_sweep(
      requests, cache_size,
      [&factory](const RequestSequence& seq, std::size_t k) {
        return single_core_policy_faults(seq, k, factory);
      });
}

PartitionSearchResult optimal_partition_from_curves(const FaultCurves& curves,
                                                    std::size_t cache_size,
                                                    std::size_t min_per_core) {
  const std::size_t p = curves.size();
  MCP_REQUIRE(p > 0, "optimal_partition_from_curves: no cores");
  MCP_REQUIRE(cache_size >= p * min_per_core,
              "cache too small for the per-core minimum");
  for (const auto& curve : curves) {
    MCP_REQUIRE(curve.size() == cache_size + 1,
                "fault curve must cover k = 0..K");
  }

  constexpr Count kInf = std::numeric_limits<Count>::max();
  // best[c] = min faults assigning exactly c cells to the cores handled so
  // far; choice[j][c] = k_j realizing it (for reconstruction).
  std::vector<Count> best(cache_size + 1, kInf);
  std::vector<std::vector<std::size_t>> choice(
      p, std::vector<std::size_t>(cache_size + 1, 0));
  best[0] = 0;
  for (std::size_t j = 0; j < p; ++j) {
    std::vector<Count> next(cache_size + 1, kInf);
    for (std::size_t used = 0; used <= cache_size; ++used) {
      if (best[used] == kInf) continue;
      for (std::size_t k = min_per_core; used + k <= cache_size; ++k) {
        const Count total = best[used] + curves[j][k];
        if (total < next[used + k]) {
          next[used + k] = total;
          choice[j][used + k] = k;
        }
      }
    }
    best = std::move(next);
  }
  MCP_REQUIRE(best[cache_size] != kInf, "no feasible partition");

  PartitionSearchResult result;
  result.faults = best[cache_size];
  result.partition.assign(p, 0);
  std::size_t cells = cache_size;
  for (std::size_t j = p; j-- > 0;) {
    result.partition[j] = choice[j][cells];
    cells -= choice[j][cells];
  }
  MCP_ASSERT(cells == 0);
  return result;
}

PartitionSearchResult optimal_partition_opt(const RequestSet& requests,
                                            std::size_t cache_size) {
  MCP_REQUIRE(requests.is_disjoint(),
              "optimal_partition_opt requires a disjoint request set "
              "(use optimal_partition_by_simulation otherwise)");
  return optimal_partition_from_curves(belady_fault_curves(requests, cache_size),
                                       cache_size);
}

PartitionSearchResult optimal_partition_for_policy(const RequestSet& requests,
                                                   std::size_t cache_size,
                                                   const PolicyFactory& factory) {
  MCP_REQUIRE(requests.is_disjoint(),
              "optimal_partition_for_policy requires a disjoint request set "
              "(use optimal_partition_by_simulation otherwise)");
  return optimal_partition_from_curves(
      policy_fault_curves(requests, cache_size, factory), cache_size);
}

PartitionSearchResult optimal_partition_by_simulation(
    const SimConfig& config, const RequestSet& requests,
    const PolicyFactory& factory, std::size_t min_per_core) {
  const std::vector<Partition> candidates = enumerate_partitions(
      config.cache_size, requests.num_cores(), min_per_core);
  MCP_REQUIRE(!candidates.empty(), "no feasible partition");

  // The candidate runs are independent: sweep them on the shared pool.  The
  // cells are seed-free (the simulation is deterministic), so the sweep is
  // reproducible for any worker count by construction.  LRU and FIFO
  // partitions are batchable: one SimJob per candidate, run as lockstep
  // lanes (bit-equal to the per-cell Simulator runs — the differential
  // battery holds the batch engine to that).
  SweepRunner sweep;
  std::vector<Count> faults;
  if (const std::optional<BatchPolicy> batched =
          batch_policy_from_name(factory()->name());
      batched.has_value()) {
    std::vector<SimJob> jobs(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      jobs[i].config = config;
      jobs[i].config.record_fault_timeline = false;  // totals only
      jobs[i].requests = &requests;
      jobs[i].strategy =
          BatchStrategySpec::static_partition(candidates[i], *batched);
    }
    const std::vector<RunStats> stats = sweep.run_jobs(jobs);
    faults.resize(stats.size());
    for (std::size_t i = 0; i < stats.size(); ++i) {
      faults[i] = stats[i].total_faults();
    }
  } else {
    faults = sweep.run(candidates.size(), [&](std::size_t i, Rng& /*rng*/) {
      StaticPartitionStrategy strategy(candidates[i], factory);
      return simulate(config, requests, strategy).total_faults();
    });
  }

  PartitionSearchResult result;
  result.faults = std::numeric_limits<Count>::max();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (faults[i] < result.faults) {
      result.faults = faults[i];
      result.partition = candidates[i];
    }
  }
  return result;
}

}  // namespace mcp
