// Offline optimal static partition search: the paper's sP^OPT_A and
// sP^OPT_OPT strategies ("the partition ... determined offline so as to
// minimize the total number of faults").
//
// For disjoint inputs, what happens inside part j of a static partition
// depends only on R_j and k_j — fault delays shift timing, never one core's
// request order — so sP^B_A faults decompose as sum_j F_A(R_j, k_j).  The
// search therefore (1) builds per-core fault curves F(.)(R_j, k) for
// k = 0..K with fast single-core runs, then (2) minimizes the sum over the
// partition simplex with an O(p K^2) dynamic program.  An exhaustive
// simulate-every-partition fallback covers non-disjoint inputs and doubles
// as the reference in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "core/request.hpp"
#include "core/strategy.hpp"
#include "policies/eviction_policy.hpp"
#include "strategies/partition.hpp"

namespace mcp {

/// curves[j][k] = faults of core j's sequence alone with k cells (k = 0..K).
using FaultCurves = std::vector<std::vector<Count>>;

/// Per-core Belady (optimal) fault curves — the building block of sP^OPT_OPT.
[[nodiscard]] FaultCurves belady_fault_curves(const RequestSet& requests,
                                              std::size_t cache_size);

/// Per-core fault curves for the online policy from `factory` (sP^OPT_A).
[[nodiscard]] FaultCurves policy_fault_curves(const RequestSet& requests,
                                              std::size_t cache_size,
                                              const PolicyFactory& factory);

struct PartitionSearchResult {
  Partition partition;  ///< A minimizing partition (ties: lexicographically first).
  Count faults = 0;     ///< Its total faults.
};

/// min over partitions (each part >= min_per_core) of sum_j curves[j][k_j].
/// Exact for disjoint inputs by the decomposition argument above.
[[nodiscard]] PartitionSearchResult optimal_partition_from_curves(
    const FaultCurves& curves, std::size_t cache_size,
    std::size_t min_per_core = 1);

/// sP^OPT_OPT for disjoint inputs: optimal partition with per-part Belady.
[[nodiscard]] PartitionSearchResult optimal_partition_opt(
    const RequestSet& requests, std::size_t cache_size);

/// sP^OPT_A for disjoint inputs: optimal partition for the given policy.
[[nodiscard]] PartitionSearchResult optimal_partition_for_policy(
    const RequestSet& requests, std::size_t cache_size,
    const PolicyFactory& factory);

/// Reference search: simulate sP^B_A under the full multicore model for
/// every B in Pi(K,p) and keep the best.  Exponential in p; also correct
/// for non-disjoint inputs.
[[nodiscard]] PartitionSearchResult optimal_partition_by_simulation(
    const SimConfig& config, const RequestSet& requests,
    const PolicyFactory& factory, std::size_t min_per_core = 1);

}  // namespace mcp
