// Shared cache strategy S_A: one eviction policy governs the whole cache.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "policies/eviction_policy.hpp"
#include "policies/future_oracle.hpp"

namespace mcp {

/// S_A — the entire cache is one region managed by policy A.  Evicts only
/// when the cache is full (honest, in the paper's Theorem-4 sense).
///
/// Construct with a PolicyFactory for online policies; use
/// SharedStrategy::fitf() for the offline shared FITF (S_FITF), which needs
/// the request set at attach() time.
class SharedStrategy final : public CacheStrategy {
 public:
  explicit SharedStrategy(PolicyFactory factory);

  /// Offline S_FITF: victim = resident page whose next use (by any core) is
  /// furthest in the future.
  [[nodiscard]] static std::unique_ptr<SharedStrategy> fitf();

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  [[nodiscard]] std::string name() const override;

 private:
  SharedStrategy() = default;  // fitf() uses this
  void maybe_advance_oracle(const AccessContext& ctx);

  PolicyFactory factory_;
  std::unique_ptr<EvictionPolicy> policy_;
  FutureOracle oracle_;
  bool offline_fitf_ = false;
  std::size_t cache_size_ = 0;
};

}  // namespace mcp
