#include "strategies/static_partition.hpp"

#include "core/error.hpp"
#include "policies/policies.hpp"

namespace mcp {

StaticPartitionStrategy::StaticPartitionStrategy(Partition sizes,
                                                 PolicyFactory factory)
    : sizes_(std::move(sizes)), factory_(std::move(factory)) {
  MCP_REQUIRE(static_cast<bool>(factory_), "StaticPartitionStrategy: empty factory");
}

StaticPartitionStrategy::StaticPartitionStrategy(Partition sizes)
    : sizes_(std::move(sizes)) {}

std::unique_ptr<StaticPartitionStrategy> StaticPartitionStrategy::fitf(
    Partition sizes) {
  auto strategy = std::unique_ptr<StaticPartitionStrategy>(
      new StaticPartitionStrategy(std::move(sizes)));
  strategy->offline_fitf_ = true;
  return strategy;
}

void StaticPartitionStrategy::attach(const SimConfig& config,
                                     std::size_t num_cores,
                                     const RequestSet* requests) {
  validate_partition(sizes_, config.cache_size, num_cores, /*min_per_core=*/1);
  parts_.clear();
  occupancy_.assign(num_cores, 0);
  owner_.clear();
  if (offline_fitf_) {
    MCP_REQUIRE(requests != nullptr,
                "sP_FITF is offline: it needs the materialized request set");
    oracle_.attach(*requests);
    for (std::size_t j = 0; j < num_cores; ++j) {
      parts_.push_back(std::make_unique<FitfPolicy>(&oracle_));
    }
  } else {
    for (std::size_t j = 0; j < num_cores; ++j) {
      parts_.push_back(factory_());
      parts_.back()->reset();
      parts_.back()->set_capacity(sizes_[j]);
    }
  }
}

void StaticPartitionStrategy::maybe_advance_oracle(const AccessContext& ctx) {
  if (offline_fitf_) oracle_.advance(ctx.core, ctx.seq_index + 1);
}

void StaticPartitionStrategy::on_hit(const AccessContext& ctx) {
  maybe_advance_oracle(ctx);
  // The hit may land in another core's part for non-disjoint inputs (the
  // partition governs placement, not lookup); credit the owning part.
  const auto it = owner_.find(ctx.page);
  MCP_ASSERT_MSG(it != owner_.end(), "hit on a page no part owns");
  parts_[it->second]->on_hit(ctx.page, ctx);
}

void StaticPartitionStrategy::on_fault(const AccessContext& ctx,
                                       const CacheState& cache, bool needs_cell,
                                       std::vector<PageId>& evictions) {
  maybe_advance_oracle(ctx);
  if (!needs_cell) return;
  const CoreId j = ctx.core;
  if (occupancy_[j] == sizes_[j]) {
    const PageId victim = parts_[j]->victim(
        ctx, [&cache](PageId page) { return cache.contains(page); });
    MCP_REQUIRE(victim != kInvalidPage,
                name() + ": part " + std::to_string(j) +
                    " has no evictable page (all reserved)");
    parts_[j]->on_remove(victim);
    owner_.erase(victim);
    --occupancy_[j];
    evictions.push_back(victim);
  }
  parts_[j]->on_insert(ctx.page, ctx);
  owner_[ctx.page] = j;
  ++occupancy_[j];
}

std::string StaticPartitionStrategy::name() const {
  const std::string policy_name =
      offline_fitf_ ? "FITF"
                    : (parts_.empty() ? std::string("?") : parts_[0]->name());
  return "sP" + partition_to_string(sizes_) + "_" + policy_name;
}

}  // namespace mcp
