#include "strategies/partitioned_base.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcp {

BudgetedPartitionStrategy::BudgetedPartitionStrategy(PolicyFactory factory)
    : factory_(std::move(factory)) {
  MCP_REQUIRE(static_cast<bool>(factory_),
              "BudgetedPartitionStrategy: empty factory");
}

Partition BudgetedPartitionStrategy::initial_sizes() const {
  return even_partition(cache_size_, occupancy_.size());
}

void BudgetedPartitionStrategy::attach(const SimConfig& config,
                                       std::size_t num_cores,
                                       const RequestSet* /*requests*/) {
  cache_size_ = config.cache_size;
  parts_.clear();
  for (std::size_t j = 0; j < num_cores; ++j) {
    parts_.push_back(factory_());
    parts_.back()->reset();
  }
  occupancy_.assign(num_cores, 0);
  owner_.clear();
  total_occupancy_ = 0;
  repartitions_ = 0;
  sizes_ = initial_sizes();
  validate_partition(sizes_, cache_size_, num_cores, /*min_per_core=*/1);
  for (std::size_t j = 0; j < num_cores; ++j) {
    parts_[j]->set_capacity(sizes_[j]);
  }
}

void BudgetedPartitionStrategy::apply_sizes(Partition&& next) {
  if (next.empty() || next == sizes_) return;
  validate_partition(next, cache_size_, sizes_.size(), /*min_per_core=*/1);
  for (std::size_t j = 0; j < sizes_.size(); ++j) {
    if (next[j] != sizes_[j]) {
      ++repartitions_;
      break;
    }
  }
  sizes_ = std::move(next);
  for (std::size_t j = 0; j < sizes_.size(); ++j) {
    parts_[j]->set_capacity(sizes_[j]);
  }
}

PageId BudgetedPartitionStrategy::evict_from_part(CoreId part,
                                                  const AccessContext& ctx,
                                                  const CacheState& cache) {
  const PageId victim = parts_[part]->victim(
      ctx, [&cache](PageId page) { return cache.contains(page); });
  if (victim == kInvalidPage) return kInvalidPage;
  parts_[part]->on_remove(victim);
  owner_.erase(victim);
  --occupancy_[part];
  --total_occupancy_;
  return victim;
}

void BudgetedPartitionStrategy::on_step_begin(Time now, const CacheState& cache,
                                              std::vector<PageId>& evictions) {
  apply_sizes(decide_sizes(now));
  const AccessContext ctx{kInvalidCore, kInvalidPage, now, 0};
  for (CoreId j = 0; j < sizes_.size(); ++j) {
    while (occupancy_[j] > sizes_[j]) {
      const PageId victim = evict_from_part(j, ctx, cache);
      if (victim == kInvalidPage) break;  // reserved cells; retry next step
      evictions.push_back(victim);
    }
  }
}

void BudgetedPartitionStrategy::on_hit(const AccessContext& ctx) {
  const auto it = owner_.find(ctx.page);
  MCP_ASSERT_MSG(it != owner_.end(), "budgeted partition: hit on unowned page");
  parts_[it->second]->on_hit(ctx.page, ctx);
  observe_hit(ctx);
}

void BudgetedPartitionStrategy::on_fault(const AccessContext& ctx,
                                         const CacheState& cache,
                                         bool needs_cell,
                                         std::vector<PageId>& evictions) {
  observe_fault(ctx);
  if (!needs_cell) return;
  const CoreId j = ctx.core;

  while (occupancy_[j] + 1 > sizes_[j]) {
    const PageId victim = evict_from_part(j, ctx, cache);
    MCP_REQUIRE(victim != kInvalidPage,
                name() + ": part " + std::to_string(j) +
                    " cannot shrink (all reserved)");
    evictions.push_back(victim);
  }
  while (total_occupancy_ + 1 > cache_size_) {
    CoreId worst = kInvalidCore;
    std::size_t worst_excess = 0;
    for (CoreId c = 0; c < sizes_.size(); ++c) {
      if (occupancy_[c] > sizes_[c] && occupancy_[c] - sizes_[c] > worst_excess) {
        worst = c;
        worst_excess = occupancy_[c] - sizes_[c];
      }
    }
    MCP_REQUIRE(worst != kInvalidCore,
                name() + ": cache full with no over-budget part");
    const PageId victim = evict_from_part(worst, ctx, cache);
    MCP_REQUIRE(victim != kInvalidPage,
                name() + ": over-budget part cannot shrink (all reserved)");
    evictions.push_back(victim);
  }

  parts_[j]->on_insert(ctx.page, ctx);
  owner_[ctx.page] = j;
  ++occupancy_[j];
  ++total_occupancy_;
}

}  // namespace mcp
