// Cache partitions: the paper's Pi(K, p) space.
//
// A partition assigns k_j cells of the K-cell cache to core j with
// sum_j k_j = K; the paper restricts attention to partitions giving at
// least one cell to every active core.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcp {

/// sizes[j] = number of cells assigned to core j.
using Partition = std::vector<std::size_t>;

/// Throws ModelError unless `sizes` is a valid partition of `cache_size`
/// over `num_cores` cores with each part >= `min_per_core`.
void validate_partition(const Partition& sizes, std::size_t cache_size,
                        std::size_t num_cores, std::size_t min_per_core = 1);

/// K split as evenly as possible: floor(K/p) each, the first K mod p cores
/// get one extra cell.
[[nodiscard]] Partition even_partition(std::size_t cache_size, std::size_t num_cores);

/// All partitions of `cache_size` into `num_cores` parts, each part at
/// least `min_per_core` (the paper's Pi(K,p) with the >=1 restriction).
/// Ordered lexicographically.  Size is C(K - p(m-1) ... ) — use only for
/// small K, p; see count_partitions.
[[nodiscard]] std::vector<Partition> enumerate_partitions(
    std::size_t cache_size, std::size_t num_cores, std::size_t min_per_core = 1);

/// |Pi(K,p)| with the min_per_core restriction = C(K - p*min + p - 1, p - 1).
[[nodiscard]] std::size_t count_partitions(std::size_t cache_size,
                                           std::size_t num_cores,
                                           std::size_t min_per_core = 1);

/// "[4,2,2]" — used in strategy display names.
[[nodiscard]] std::string partition_to_string(const Partition& sizes);

}  // namespace mcp
