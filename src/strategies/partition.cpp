#include "strategies/partition.hpp"

#include <numeric>
#include <sstream>

#include "core/error.hpp"

namespace mcp {

void validate_partition(const Partition& sizes, std::size_t cache_size,
                        std::size_t num_cores, std::size_t min_per_core) {
  MCP_REQUIRE(sizes.size() == num_cores,
              "partition must have one part per core");
  std::size_t total = 0;
  for (std::size_t k : sizes) {
    MCP_REQUIRE(k >= min_per_core, "partition part below minimum size");
    total += k;
  }
  MCP_REQUIRE(total == cache_size, "partition parts must sum to K");
}

Partition even_partition(std::size_t cache_size, std::size_t num_cores) {
  MCP_REQUIRE(num_cores > 0, "even_partition: no cores");
  MCP_REQUIRE(cache_size >= num_cores,
              "even_partition: K < p cannot give every core a cell");
  Partition sizes(num_cores, cache_size / num_cores);
  for (std::size_t j = 0; j < cache_size % num_cores; ++j) ++sizes[j];
  return sizes;
}

namespace {
void enumerate_rec(std::size_t remaining, std::size_t parts_left,
                   std::size_t min_per_core, Partition& current,
                   std::vector<Partition>& out) {
  if (parts_left == 1) {
    if (remaining >= min_per_core) {
      current.push_back(remaining);
      out.push_back(current);
      current.pop_back();
    }
    return;
  }
  // Leave at least min_per_core for each remaining part.
  const std::size_t reserve = min_per_core * (parts_left - 1);
  for (std::size_t k = min_per_core; k + reserve <= remaining; ++k) {
    current.push_back(k);
    enumerate_rec(remaining - k, parts_left - 1, min_per_core, current, out);
    current.pop_back();
  }
}
}  // namespace

std::vector<Partition> enumerate_partitions(std::size_t cache_size,
                                            std::size_t num_cores,
                                            std::size_t min_per_core) {
  MCP_REQUIRE(num_cores > 0, "enumerate_partitions: no cores");
  std::vector<Partition> out;
  Partition current;
  current.reserve(num_cores);
  enumerate_rec(cache_size, num_cores, min_per_core, current, out);
  return out;
}

std::size_t count_partitions(std::size_t cache_size, std::size_t num_cores,
                             std::size_t min_per_core) {
  if (num_cores == 0) return 0;
  if (cache_size < num_cores * min_per_core) return 0;
  // Stars and bars: distribute K - p*min extra cells over p parts.
  const std::size_t extra = cache_size - num_cores * min_per_core;
  const std::size_t slots = num_cores - 1;
  // C(extra + slots, slots), computed carefully.
  std::size_t result = 1;
  for (std::size_t i = 1; i <= slots; ++i) {
    result = result * (extra + i) / i;
  }
  return result;
}

std::string partition_to_string(const Partition& sizes) {
  std::ostringstream os;
  os << '[';
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    if (j > 0) os << ',';
    os << sizes[j];
  }
  os << ']';
  return os.str();
}

}  // namespace mcp
