#include "strategies/dynamic_partition.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcp {

// ---------------------------------------------------------------------------
// Lemma3DynamicPartition
// ---------------------------------------------------------------------------

void Lemma3DynamicPartition::attach(const SimConfig& config,
                                    std::size_t num_cores,
                                    const RequestSet* /*requests*/) {
  cache_size_ = config.cache_size;
  sizes_ = even_partition(cache_size_, num_cores);
  parts_.clear();
  for (std::size_t j = 0; j < num_cores; ++j) {
    parts_.push_back(std::make_unique<LruPolicy>());
  }
  occupancy_.assign(num_cores, 0);
  owner_.clear();
  total_occupancy_ = 0;
  changes_ = 0;
}

void Lemma3DynamicPartition::on_hit(const AccessContext& ctx) {
  const auto it = owner_.find(ctx.page);
  MCP_ASSERT_MSG(it != owner_.end(), "lemma3: hit on unowned page");
  parts_[it->second]->on_hit(ctx.page, ctx);
}

void Lemma3DynamicPartition::on_fault(const AccessContext& ctx,
                                      const CacheState& cache, bool needs_cell,
                                      std::vector<PageId>& evictions) {
  if (!needs_cell) return;
  const CoreId j = ctx.core;

  if (occupancy_[j] >= sizes_[j]) {
    if (total_occupancy_ < cache_size_) {
      // Some core holds unused allocation; move one of its cells to j.
      CoreId donor = kInvalidCore;
      std::size_t best_slack = 0;
      for (CoreId c = 0; c < sizes_.size(); ++c) {
        const std::size_t slack = sizes_[c] - occupancy_[c];
        if (slack > best_slack) {
          best_slack = slack;
          donor = c;
        }
      }
      MCP_ASSERT_MSG(donor != kInvalidCore, "lemma3: full parts but free cache");
      --sizes_[donor];
      ++sizes_[j];
      ++changes_;
    } else {
      // Cache full: the part holding the globally least-recently-used
      // *evictable* page donates its cell, evicting that page — exactly what
      // shared LRU would evict.
      const auto evictable = [&cache](PageId page) { return cache.contains(page); };
      CoreId donor = kInvalidCore;
      PageId victim = kInvalidPage;
      Time victim_time = kTimeNever;
      for (CoreId c = 0; c < parts_.size(); ++c) {
        if (occupancy_[c] == 0) continue;
        const PageId candidate = parts_[c]->victim(ctx, evictable);
        if (candidate == kInvalidPage) continue;
        const Time used = parts_[c]->last_use(candidate);
        if (donor == kInvalidCore || used < victim_time) {
          donor = c;
          victim = candidate;
          victim_time = used;
        }
      }
      MCP_REQUIRE(victim != kInvalidPage,
                  "lemma3: no evictable page anywhere (all reserved)");
      parts_[donor]->on_remove(victim);
      owner_.erase(victim);
      --occupancy_[donor];
      --total_occupancy_;
      if (donor != j) {
        --sizes_[donor];
        ++sizes_[j];
        ++changes_;
      }
      evictions.push_back(victim);
    }
  }

  parts_[j]->on_insert(ctx.page, ctx);
  owner_[ctx.page] = j;
  ++occupancy_[j];
  ++total_occupancy_;
}

// ---------------------------------------------------------------------------
// StagedPartitionStrategy
// ---------------------------------------------------------------------------

StagedPartitionStrategy::StagedPartitionStrategy(
    std::vector<PartitionStage> schedule, PolicyFactory factory)
    : BudgetedPartitionStrategy(std::move(factory)),
      schedule_(std::move(schedule)) {
  MCP_REQUIRE(!schedule_.empty(), "staged partition: empty schedule");
  MCP_REQUIRE(schedule_.front().start == 0,
              "staged partition: first stage must start at time 0");
  for (std::size_t s = 1; s < schedule_.size(); ++s) {
    MCP_REQUIRE(schedule_[s].start > schedule_[s - 1].start,
                "staged partition: stage starts must be strictly ascending");
  }
}

void StagedPartitionStrategy::attach(const SimConfig& config,
                                     std::size_t num_cores,
                                     const RequestSet* requests) {
  for (const PartitionStage& stage : schedule_) {
    validate_partition(stage.sizes, config.cache_size, num_cores,
                       /*min_per_core=*/1);
  }
  stage_ = 0;
  BudgetedPartitionStrategy::attach(config, num_cores, requests);
}

Partition StagedPartitionStrategy::decide_sizes(Time now) {
  bool advanced = false;
  while (stage_ + 1 < schedule_.size() && schedule_[stage_ + 1].start <= now) {
    ++stage_;
    advanced = true;
  }
  return advanced ? schedule_[stage_].sizes : Partition{};
}

std::string StagedPartitionStrategy::name() const {
  return "dP[staged:" + std::to_string(schedule_.size()) + "]_A";
}

}  // namespace mcp
