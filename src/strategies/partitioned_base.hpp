// Shared machinery for partition strategies whose part sizes can change at
// run time (staged schedules, utility-driven and fairness-driven
// controllers).  Derived classes decide *when sizes change*; this base owns
// the budget bookkeeping: per-part policies, occupancy, page ownership,
// deferred shrinking (reserved cells can postpone evictions) and the
// growth-under-pending-shrink pressure rule.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/strategy.hpp"
#include "policies/eviction_policy.hpp"
#include "strategies/partition.hpp"

namespace mcp {

class BudgetedPartitionStrategy : public CacheStrategy {
 public:
  explicit BudgetedPartitionStrategy(PolicyFactory factory);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  void on_step_begin(Time now, const CacheState& cache,
                     std::vector<PageId>& evictions) override;

  [[nodiscard]] const Partition& current_sizes() const noexcept { return sizes_; }
  /// Times a cell moved between parts (repartition count).
  [[nodiscard]] Count repartitions() const noexcept { return repartitions_; }

 protected:
  /// Derived classes: return the part sizes to use from `now` on (must
  /// partition K with each part >= 1), or an empty vector for "no change".
  /// Called at the start of every timestep, before shrink enforcement.
  [[nodiscard]] virtual Partition decide_sizes(Time now) = 0;
  /// Derived classes: initial partition (default: even split).
  [[nodiscard]] virtual Partition initial_sizes() const;
  /// Observation hooks for adaptive controllers (called after bookkeeping).
  virtual void observe_hit(const AccessContext& ctx) { (void)ctx; }
  virtual void observe_fault(const AccessContext& ctx) { (void)ctx; }

  [[nodiscard]] std::size_t num_cores() const noexcept { return sizes_.size(); }
  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_size_; }
  [[nodiscard]] const std::vector<std::size_t>& occupancy() const noexcept {
    return occupancy_;
  }

 private:
  PageId evict_from_part(CoreId part, const AccessContext& ctx,
                         const CacheState& cache);
  void apply_sizes(Partition&& next);

  PolicyFactory factory_;
  std::vector<std::unique_ptr<EvictionPolicy>> parts_;
  Partition sizes_;
  std::vector<std::size_t> occupancy_;
  std::unordered_map<PageId, CoreId> owner_;
  std::size_t cache_size_ = 0;
  std::size_t total_occupancy_ = 0;
  Count repartitions_ = 0;
};

}  // namespace mcp
