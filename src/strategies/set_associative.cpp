#include "strategies/set_associative.hpp"

#include "core/error.hpp"

namespace mcp {

SetAssociativeStrategy::SetAssociativeStrategy(std::size_t num_sets,
                                               PolicyFactory factory)
    : num_sets_(num_sets), factory_(std::move(factory)) {
  MCP_REQUIRE(num_sets_ > 0, "set-associative: need at least one set");
  MCP_REQUIRE(static_cast<bool>(factory_), "set-associative: empty factory");
}

void SetAssociativeStrategy::attach(const SimConfig& config,
                                    std::size_t /*num_cores*/,
                                    const RequestSet* /*requests*/) {
  MCP_REQUIRE(config.cache_size % num_sets_ == 0,
              "set-associative: K must be divisible by the set count");
  ways_ = config.cache_size / num_sets_;
  sets_.clear();
  for (std::size_t s = 0; s < num_sets_; ++s) {
    sets_.push_back(factory_());
    sets_.back()->reset();
    sets_.back()->set_capacity(ways_);
  }
  occupancy_.assign(num_sets_, 0);
}

void SetAssociativeStrategy::on_hit(const AccessContext& ctx) {
  sets_[set_of(ctx.page)]->on_hit(ctx.page, ctx);
}

void SetAssociativeStrategy::on_step_begin(Time now, const CacheState& cache,
                                           std::vector<PageId>& evictions) {
  // Drain overflow: sets holding more than `ways_` pages (possible only
  // when a fault hit a fully reserved set) shrink as soon as they can.
  const AccessContext ctx{kInvalidCore, kInvalidPage, now, 0};
  for (std::size_t s = 0; s < num_sets_; ++s) {
    while (occupancy_[s] > ways_) {
      const PageId victim = sets_[s]->victim(
          ctx, [&cache](PageId page) { return cache.contains(page); });
      if (victim == kInvalidPage) break;  // still all reserved; retry later
      sets_[s]->on_remove(victim);
      --occupancy_[s];
      evictions.push_back(victim);
    }
  }
}

void SetAssociativeStrategy::on_fault(const AccessContext& ctx,
                                      const CacheState& cache, bool needs_cell,
                                      std::vector<PageId>& evictions) {
  if (!needs_cell) return;
  const std::size_t s = set_of(ctx.page);
  if (occupancy_[s] >= ways_) {
    // Conflict: the victim must come from this set, regardless of free
    // cells elsewhere.  Evict down to ways_-1 so the insert lands within
    // budget; if every page of the set is reserved (fetches in flight),
    // overflow into a free cell and let on_step_begin reclaim it.
    while (occupancy_[s] + 1 > ways_) {
      const PageId victim = sets_[s]->victim(
          ctx, [&cache](PageId page) { return cache.contains(page); });
      if (victim == kInvalidPage) break;  // all reserved: overflow
      sets_[s]->on_remove(victim);
      --occupancy_[s];
      evictions.push_back(victim);
    }
  }
  // Overflow needs a free cell; if the cache is globally full, displace a
  // present page from another set — over-budget sets first, then the first
  // set with anything evictable (the victim-buffer corner an MSHR absorbs
  // in hardware; it cannot be avoided when a whole set is mid-fetch).
  if (evictions.empty() && cache.occupied() == cache.capacity()) {
    std::size_t donor = num_sets_;
    PageId victim = kInvalidPage;
    for (int pass = 0; pass < 2 && victim == kInvalidPage; ++pass) {
      for (std::size_t d = 0; d < num_sets_; ++d) {
        if (d == s) continue;
        if (pass == 0 && occupancy_[d] <= ways_) continue;  // over-budget first
        if (occupancy_[d] == 0) continue;
        const PageId candidate = sets_[d]->victim(
            ctx, [&cache](PageId page) { return cache.contains(page); });
        if (candidate != kInvalidPage) {
          donor = d;
          victim = candidate;
          break;
        }
      }
    }
    MCP_REQUIRE(victim != kInvalidPage,
                name() + ": every resident page is reserved");
    sets_[donor]->on_remove(victim);
    --occupancy_[donor];
    evictions.push_back(victim);
  }
  sets_[s]->on_insert(ctx.page, ctx);
  ++occupancy_[s];
}

std::string SetAssociativeStrategy::name() const {
  const std::string policy =
      sets_.empty() ? std::string("?") : sets_[0]->name();
  return "SA[" + std::to_string(num_sets_) + "x" + std::to_string(ways_) +
         "]_" + policy;
}

}  // namespace mcp
