#include "strategies/adaptive_partition.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcp {

// ---------------------------------------------------------------------------
// UtilityPartitionStrategy
// ---------------------------------------------------------------------------

UtilityPartitionStrategy::UtilityPartitionStrategy(PolicyFactory factory,
                                                   Time interval, double decay)
    : BudgetedPartitionStrategy(std::move(factory)),
      interval_(interval),
      decay_(decay) {
  MCP_REQUIRE(interval > 0, "utility partition: interval must be positive");
  MCP_REQUIRE(decay >= 0.0 && decay <= 1.0,
              "utility partition: decay must be in [0, 1]");
}

void UtilityPartitionStrategy::attach(const SimConfig& config,
                                      std::size_t num_cores,
                                      const RequestSet* requests) {
  BudgetedPartitionStrategy::attach(config, num_cores, requests);
  shadow_.assign(num_cores, {});
  histogram_.assign(num_cores, std::vector<double>(config.cache_size, 0.0));
  next_update_ = interval_;
}

void UtilityPartitionStrategy::profile(const AccessContext& ctx) {
  std::vector<PageId>& stack = shadow_[ctx.core];
  const auto it = std::find(stack.begin(), stack.end(), ctx.page);
  if (it != stack.end()) {
    const std::size_t distance = static_cast<std::size_t>(it - stack.begin());
    // A cache of (distance+1) cells or more would have hit this access.
    for (std::size_t d = distance; d < histogram_[ctx.core].size(); ++d) {
      histogram_[ctx.core][d] += 1.0;
    }
    stack.erase(it);
  } else if (stack.size() == cache_size()) {
    stack.pop_back();
  }
  stack.insert(stack.begin(), ctx.page);
}

Partition UtilityPartitionStrategy::decide_sizes(Time now) {
  if (now < next_update_) return {};
  next_update_ = now + interval_;

  // Qureshi-style "lookahead" allocation: plain greedy stalls on utility
  // plateaus (a loop over L pages yields zero hits until all L cells are
  // there), so each round we award a whole *block* of cells to the core
  // with the best hits-per-cell density over any extension of its current
  // allocation.
  const std::size_t p = num_cores();
  const std::size_t K = cache_size();
  Partition alloc(p, 1);
  std::size_t remaining = K - p;
  while (remaining > 0) {
    CoreId best_core = kInvalidCore;
    std::size_t best_block = 1;
    double best_density = -1.0;
    for (CoreId j = 0; j < p; ++j) {
      const double at_cur = histogram_[j][alloc[j] - 1];
      for (std::size_t u = alloc[j] + 1; u <= alloc[j] + remaining && u <= K;
           ++u) {
        const double density = (histogram_[j][u - 1] - at_cur) /
                               static_cast<double>(u - alloc[j]);
        if (density > best_density) {
          best_density = density;
          best_core = j;
          best_block = u - alloc[j];
        }
      }
    }
    if (best_core == kInvalidCore || best_density <= 0.0) {
      // No one profits from more cells; spread the remainder evenly.
      for (CoreId j = 0; remaining > 0; j = (j + 1) % static_cast<CoreId>(p)) {
        ++alloc[j];
        --remaining;
      }
      break;
    }
    alloc[best_core] += best_block;
    remaining -= best_block;
  }
  for (auto& hist : histogram_) {
    for (double& v : hist) v *= decay_;
  }
  return alloc;
}

// ---------------------------------------------------------------------------
// FairnessPartitionStrategy
// ---------------------------------------------------------------------------

FairnessPartitionStrategy::FairnessPartitionStrategy(PolicyFactory factory,
                                                     Time interval)
    : BudgetedPartitionStrategy(std::move(factory)), interval_(interval) {
  MCP_REQUIRE(interval > 0, "fairness partition: interval must be positive");
}

void FairnessPartitionStrategy::attach(const SimConfig& config,
                                       std::size_t num_cores,
                                       const RequestSet* requests) {
  BudgetedPartitionStrategy::attach(config, num_cores, requests);
  tau_ = config.fault_penalty;
  window_hits_.assign(num_cores, 0);
  window_faults_.assign(num_cores, 0);
  next_update_ = interval_;
}

Partition FairnessPartitionStrategy::decide_sizes(Time now) {
  if (now < next_update_) return {};
  next_update_ = now + interval_;

  const std::size_t p = num_cores();
  CoreId slowest = kInvalidCore;
  CoreId fastest = kInvalidCore;
  double max_slowdown = -1.0;
  double min_slowdown = -1.0;
  const Partition& sizes = current_sizes();
  for (CoreId j = 0; j < p; ++j) {
    const Count requests = window_hits_[j] + window_faults_[j];
    if (requests == 0) continue;  // idle cores keep their cells
    const double slowdown =
        (static_cast<double>(window_hits_[j]) +
         static_cast<double>(tau_ + 1) * static_cast<double>(window_faults_[j])) /
        static_cast<double>(requests);
    if (slowdown > max_slowdown) {
      max_slowdown = slowdown;
      slowest = j;
    }
    if ((min_slowdown < 0.0 || slowdown < min_slowdown) && sizes[j] > 1) {
      min_slowdown = slowdown;
      fastest = j;
    }
  }
  std::fill(window_hits_.begin(), window_hits_.end(), 0);
  std::fill(window_faults_.begin(), window_faults_.end(), 0);

  if (slowest == kInvalidCore || fastest == kInvalidCore || slowest == fastest) {
    return {};
  }
  Partition next = sizes;
  --next[fastest];
  ++next[slowest];
  return next;
}

}  // namespace mcp
