#include "strategies/shared.hpp"

#include "core/error.hpp"
#include "policies/policies.hpp"
#include "policies/policy_registry.hpp"

namespace mcp {

SharedStrategy::SharedStrategy(PolicyFactory factory)
    : factory_(std::move(factory)) {
  MCP_REQUIRE(static_cast<bool>(factory_), "SharedStrategy: empty factory");
}

std::unique_ptr<SharedStrategy> SharedStrategy::fitf() {
  auto strategy = std::unique_ptr<SharedStrategy>(new SharedStrategy());
  strategy->offline_fitf_ = true;
  return strategy;
}

void SharedStrategy::attach(const SimConfig& config, std::size_t /*num_cores*/,
                            const RequestSet* requests) {
  cache_size_ = config.cache_size;
  if (offline_fitf_) {
    MCP_REQUIRE(requests != nullptr,
                "S_FITF is offline: it needs the materialized request set");
    oracle_.attach(*requests);
    policy_ = std::make_unique<FitfPolicy>(&oracle_);
  } else {
    policy_ = factory_();
    policy_->reset();
    policy_->set_capacity(cache_size_);
  }
}

void SharedStrategy::maybe_advance_oracle(const AccessContext& ctx) {
  // Future uses are occurrences strictly after the request being served.
  if (offline_fitf_) oracle_.advance(ctx.core, ctx.seq_index + 1);
}

void SharedStrategy::on_hit(const AccessContext& ctx) {
  maybe_advance_oracle(ctx);
  policy_->on_hit(ctx.page, ctx);
}

void SharedStrategy::on_fault(const AccessContext& ctx,
                              const CacheState& cache, bool needs_cell,
                              std::vector<PageId>& evictions) {
  maybe_advance_oracle(ctx);
  if (!needs_cell) return;  // page already in flight; no cell required
  if (cache.occupied() == cache_size_) {
    const PageId victim = policy_->victim(
        ctx, [&cache](PageId page) { return cache.contains(page); });
    MCP_REQUIRE(victim != kInvalidPage,
                "S_" + policy_->name() + ": no evictable page (all reserved)");
    policy_->on_remove(victim);
    evictions.push_back(victim);
  }
  policy_->on_insert(ctx.page, ctx);
}

std::string SharedStrategy::name() const {
  if (policy_ != nullptr) return "S_" + policy_->name();
  return offline_fitf_ ? "S_FITF" : "S_?";
}

}  // namespace mcp
