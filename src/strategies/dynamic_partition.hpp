// Dynamic partition strategies dP^D_A.
//
// Two controllers from the paper:
//
//  * Lemma3DynamicPartition — the dynamic partition D of Lemma 3 that makes
//    dP^D_LRU behave *identically* to shared LRU on disjoint inputs: on a
//    fault, the part holding the globally least-recently-used page donates
//    a cell (evicting that page) to the faulting core; while the cache has
//    unused allocation, parts simply grow.  The Lemma-3 equivalence
//    benchmark (E6) checks fault-for-fault equality with S_LRU.
//
//  * StagedPartitionStrategy — a piecewise-constant partition schedule
//    (the paper's "stages", Theorem 1.3).  When a stage boundary shrinks a
//    part below its occupancy, the excess pages are evicted voluntarily by
//    the part's policy; growth pressure during a pending shrink is resolved
//    by evicting from the most over-budget part.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/strategy.hpp"
#include "policies/policies.hpp"
#include "strategies/partition.hpp"
#include "strategies/partitioned_base.hpp"

namespace mcp {

class Lemma3DynamicPartition final : public CacheStrategy {
 public:
  Lemma3DynamicPartition() = default;

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  [[nodiscard]] std::string name() const override { return "dP[lemma3]_LRU"; }

  /// Current part sizes (the partition k(.,t) the controller maintains).
  [[nodiscard]] const Partition& sizes() const noexcept { return sizes_; }
  /// Number of times the partition changed (cell moved between parts).
  [[nodiscard]] Count partition_changes() const noexcept { return changes_; }

 private:
  std::vector<std::unique_ptr<LruPolicy>> parts_;
  Partition sizes_;
  std::vector<std::size_t> occupancy_;
  std::unordered_map<PageId, CoreId> owner_;
  std::size_t cache_size_ = 0;
  std::size_t total_occupancy_ = 0;
  Count changes_ = 0;
};

/// One stage of a partition schedule: `sizes` applies from timestep `start`
/// until the next stage's start.
struct PartitionStage {
  Time start = 0;
  Partition sizes;
};

class StagedPartitionStrategy final : public BudgetedPartitionStrategy {
 public:
  /// `schedule` must be non-empty, with ascending starts and the first stage
  /// starting at 0; every stage's sizes must partition K with parts >= 1.
  StagedPartitionStrategy(std::vector<PartitionStage> schedule,
                          PolicyFactory factory);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t current_stage() const noexcept { return stage_; }

 protected:
  [[nodiscard]] Partition decide_sizes(Time now) override;
  [[nodiscard]] Partition initial_sizes() const override {
    return schedule_.front().sizes;
  }

 private:
  std::vector<PartitionStage> schedule_;
  std::size_t stage_ = 0;
};

}  // namespace mcp
