// Set-associative cache geometry — a practice-facing extension.
//
// The paper's model (like most paging theory) is fully associative: any
// page may occupy any cell.  Real CMP last-level caches are W-way
// set-associative: the K cells form S = K/W sets, a page may only live in
// the set its id hashes to, and eviction happens within that set.  Since
// eviction decisions are strategy-level in this library, the geometry is a
// *strategy* (no simulator changes): a fault's victim is chosen by the
// per-set policy among that set's resident pages, even if other sets have
// free cells — exactly the conflict misses full associativity hides.
//
// S = 1 recovers the shared fully-associative strategy bit-for-bit, which
// the tests check; experiment E17 sweeps associativity.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/strategy.hpp"
#include "policies/eviction_policy.hpp"

namespace mcp {

class SetAssociativeStrategy final : public CacheStrategy {
 public:
  /// Splits the cache into `num_sets` sets of K/num_sets ways each
  /// (K % num_sets must be 0; validated at attach).  `factory` builds the
  /// per-set eviction policy.  Pages map to sets by id modulo num_sets (the
  /// usual index-bits rule for consecutive page ids).
  SetAssociativeStrategy(std::size_t num_sets, PolicyFactory factory);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  /// A set whose cells are all mid-fetch cannot evict; the incoming page
  /// then overflows into a free cell (an MSHR/victim-buffer stand-in) and
  /// the set is shrunk back to its way budget here, as soon as one of its
  /// pages is evictable again.
  void on_step_begin(Time now, const CacheState& cache,
                     std::vector<PageId>& evictions) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t set_of(PageId page) const noexcept {
    return page % num_sets_;
  }

 private:
  std::size_t num_sets_;
  std::size_t ways_ = 0;
  PolicyFactory factory_;
  std::vector<std::unique_ptr<EvictionPolicy>> sets_;
  std::vector<std::size_t> occupancy_;
};

}  // namespace mcp
