// Online adaptive partition controllers — the direction the paper's
// conclusion points at ("perhaps other measures such as fairness or
// relative progress of sequences should be considered") and the practical
// line it cites (Stone et al., Qureshi et al.: utility-based cache
// partitioning).
//
//  * UtilityPartitionStrategy ("UCP-lite"): per-core shadow LRU stacks
//    record the stack-distance histogram of each core's access stream; at a
//    fixed cadence the cache is re-divided greedily, giving each next cell
//    to the core whose histogram promises the most extra hits.  A decay
//    factor keeps the profile adaptive to phase changes.
//
//  * FairnessPartitionStrategy: equalizes relative progress.  Each core's
//    slowdown proxy is (hits + (tau+1)*faults) / requests over the current
//    window; at each cadence one cell migrates from the least-slowed core
//    to the most-slowed one.
//
// Both are honest except for the voluntary evictions repartitioning implies
// (exactly like the paper's dynamic partitions).
#pragma once

#include <cstddef>
#include <vector>

#include "strategies/partitioned_base.hpp"

namespace mcp {

class UtilityPartitionStrategy final : public BudgetedPartitionStrategy {
 public:
  /// `interval`: timesteps between repartitions; `decay`: multiplier applied
  /// to the histograms at each repartition (0 = forget everything, 1 = never
  /// forget).
  explicit UtilityPartitionStrategy(PolicyFactory factory,
                                    Time interval = 256, double decay = 0.5);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  [[nodiscard]] std::string name() const override { return "dP[utility]_A"; }

 protected:
  [[nodiscard]] Partition decide_sizes(Time now) override;
  void observe_hit(const AccessContext& ctx) override { profile(ctx); }
  void observe_fault(const AccessContext& ctx) override { profile(ctx); }

 private:
  void profile(const AccessContext& ctx);

  Time interval_;
  double decay_;
  Time next_update_ = 0;
  // shadow_[j]: most-recent-first list of up to K pages core j touched.
  std::vector<std::vector<PageId>> shadow_;
  // histogram_[j][d]: (decayed) hits core j would get with d+1 cells —
  // accesses at shadow-stack distance <= d+1.
  std::vector<std::vector<double>> histogram_;
};

class FairnessPartitionStrategy final : public BudgetedPartitionStrategy {
 public:
  explicit FairnessPartitionStrategy(PolicyFactory factory, Time interval = 256);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  [[nodiscard]] std::string name() const override { return "dP[fairness]_A"; }

 protected:
  [[nodiscard]] Partition decide_sizes(Time now) override;
  void observe_hit(const AccessContext& ctx) override { ++window_hits_[ctx.core]; }
  void observe_fault(const AccessContext& ctx) override {
    ++window_faults_[ctx.core];
  }

 private:
  Time interval_;
  Time tau_ = 0;
  Time next_update_ = 0;
  std::vector<Count> window_hits_;
  std::vector<Count> window_faults_;
};

}  // namespace mcp
