// Static partition strategy sP^B_A: the cache is split once into p fixed
// parts; part j exclusively stores pages faulted in by core j, managed by
// its own instance of eviction policy A.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/strategy.hpp"
#include "policies/eviction_policy.hpp"
#include "policies/future_oracle.hpp"
#include "strategies/partition.hpp"

namespace mcp {

class StaticPartitionStrategy final : public CacheStrategy {
 public:
  /// sP^B_A with B = `sizes` (one entry per core, summing to K, each >= 1 —
  /// validated at attach) and A built by `factory` per part.
  StaticPartitionStrategy(Partition sizes, PolicyFactory factory);

  /// sP^B_FITF: per-part offline Belady (victim = page of that core whose
  /// next use in its own sequence is furthest).  For disjoint inputs this is
  /// the per-part optimal, i.e. the paper's sP^B_OPT.
  [[nodiscard]] static std::unique_ptr<StaticPartitionStrategy> fitf(Partition sizes);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Partition& sizes() const noexcept { return sizes_; }

 private:
  explicit StaticPartitionStrategy(Partition sizes);  // fitf() uses this
  void maybe_advance_oracle(const AccessContext& ctx);

  Partition sizes_;
  PolicyFactory factory_;
  std::vector<std::unique_ptr<EvictionPolicy>> parts_;
  std::vector<std::size_t> occupancy_;       // resident pages owned per part
  std::unordered_map<PageId, CoreId> owner_;  // resident page -> owning part
  FutureOracle oracle_;
  bool offline_fitf_ = false;
};

}  // namespace mcp
