// Replacement global operator new/delete with per-thread accounting, and the
// AllocGuard/AllocAllow machinery (see sentry.hpp).
//
// Linkage: this TU lives in mcp_core; the linker pulls it into any binary
// that references a sentry symbol (every binary using the simulator or the
// offline solvers does, via their guard wiring), and the replacement
// operators then cover the whole binary.  tests/test_sentry.cpp asserts
// instrumentation_active() so a silently-uninstrumented build cannot pass.
//
// Re-entrancy: reporting a violation builds a std::string (allocates).  The
// thread-local `reporting` flag suppresses the guard check during message
// construction; ModelError's copy/move are noexcept (libstdc++ shares the
// string), so the throw itself performs no further allocation.
#include "core/sentry.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "core/error.hpp"

namespace mcp {
namespace sentry {
namespace {

struct ThreadState {
  ThreadAllocStats stats;
  AllocGuard* innermost = nullptr;
  int guard_depth = 0;
  int allow_depth = 0;
  bool reporting = false;
};

ThreadState& tls() noexcept {
  // All members are constant-initializable: no TLS init guard on access.
  thread_local ThreadState state;
  return state;
}

/// Formats the fatal report for an allocation inside a guarded region.
/// Pre: a guard is armed on this thread.
[[noreturn]] void report_violation(std::size_t bytes) {
  ThreadState& st = tls();
  st.reporting = true;
  const AllocGuard* guard = st.innermost;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "AllocGuard violation: %zu-byte allocation inside "
                "allocation-free region \"%s\" declared at %s:%u",
                bytes, guard->region(), guard->site().file_name(),
                static_cast<unsigned>(guard->site().line()));
  ModelError error{std::string(buf)};  // allocates; reporting flag is set
  st.reporting = false;
  throw error;  // noexcept copy/move: no allocation past this point
}

/// Counts the attempt, enforces any armed guard, then allocates.  `align`
/// is 0 for the default-aligned forms.
void* checked_alloc(std::size_t size, std::size_t align) {
  ThreadState& st = tls();
  ++st.stats.allocations;
  st.stats.bytes_allocated += size;
  if (st.guard_depth > 0 && st.allow_depth == 0 && !st.reporting) {
    report_violation(size);
  }
  for (;;) {
    void* ptr = nullptr;
    if (align == 0) {
      ptr = std::malloc(size != 0 ? size : 1);
    } else {
      // aligned_alloc requires size to be a multiple of the alignment.
      const std::size_t padded = (size + align - 1) / align * align;
      ptr = std::aligned_alloc(align, padded != 0 ? padded : align);
    }
    if (ptr != nullptr) return ptr;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc{};
    handler();
  }
}

/// nothrow forms cannot throw the violation report; a guarded allocation
/// here is still a fatal contract break, so report and abort.
void* checked_alloc_nothrow(std::size_t size, std::size_t align) noexcept {
  ThreadState& st = tls();
  if (st.guard_depth > 0 && st.allow_depth == 0 && !st.reporting) {
    const AllocGuard* guard = st.innermost;
    std::fprintf(stderr,
                 "AllocGuard violation (nothrow new): %zu-byte allocation "
                 "inside allocation-free region \"%s\" declared at %s:%u\n",
                 size, guard->region(), guard->site().file_name(),
                 static_cast<unsigned>(guard->site().line()));
    std::abort();
  }
  try {
    return checked_alloc(size, align);
  } catch (...) {
    return nullptr;
  }
}

void checked_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  ++tls().stats.deallocations;
  std::free(ptr);
}

}  // namespace

ThreadAllocStats thread_alloc_stats() noexcept { return tls().stats; }

std::uint64_t thread_allocations() noexcept { return tls().stats.allocations; }

bool instrumentation_active() {
  const std::uint64_t before = tls().stats.allocations;
  { auto probe = std::make_unique<int>(0); }
  return tls().stats.allocations != before;
}

}  // namespace sentry

AllocGuard::AllocGuard(const char* region, std::source_location site)
    : region_(region), site_(site) {
  sentry::ThreadState& st = sentry::tls();
  start_allocations_ = st.stats.allocations;
  prev_ = st.innermost;
  st.innermost = this;
  ++st.guard_depth;
}

AllocGuard::~AllocGuard() {
  sentry::ThreadState& st = sentry::tls();
  st.innermost = prev_;
  --st.guard_depth;
  // Unwinding a violation passes through here; make sure a half-cleared
  // reporting flag can never outlive the region that tripped it.
  if (st.guard_depth == 0) st.reporting = false;
}

std::uint64_t AllocGuard::allocations() const noexcept {
  return sentry::tls().stats.allocations - start_allocations_;
}

AllocAllow::AllocAllow() noexcept { ++sentry::tls().allow_depth; }

AllocAllow::~AllocAllow() { --sentry::tls().allow_depth; }

}  // namespace mcp

// ---------------------------------------------------------------------------
// Replacement global allocation functions.  Every form routes through
// checked_alloc/checked_free so the counters and guards see all of them.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  return mcp::sentry::checked_alloc(size, 0);
}
void* operator new[](std::size_t size) {
  return mcp::sentry::checked_alloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return mcp::sentry::checked_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return mcp::sentry::checked_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return mcp::sentry::checked_alloc_nothrow(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return mcp::sentry::checked_alloc_nothrow(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return mcp::sentry::checked_alloc_nothrow(size,
                                            static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return mcp::sentry::checked_alloc_nothrow(size,
                                            static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { mcp::sentry::checked_free(ptr); }
void operator delete[](void* ptr) noexcept { mcp::sentry::checked_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  mcp::sentry::checked_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  mcp::sentry::checked_free(ptr);
}
