#include "core/cache_state.hpp"

#include <algorithm>
#include <functional>

#include "core/error.hpp"
#include "core/sentry.hpp"

namespace mcp {

CacheState::CacheState(std::size_t capacity) : capacity_(capacity) {
  MCP_REQUIRE(capacity > 0, "cache capacity must be positive");
  slots_.resize(capacity_);
  free_slots_.reserve(capacity_);
  // Pop order is cosmetic (slot indices never affect observable behaviour),
  // but allocate low slots first so arenas fill front-to-back.
  for (std::size_t s = capacity_; s-- > 0;) {
    free_slots_.push_back(static_cast<std::uint32_t>(s));
  }
  fetch_heap_.reserve(capacity_);
  completed_.reserve(capacity_);  // at most `capacity` fetches can land at once
}

void CacheState::reserve_universe(PageId bound) {
  if (bound > page_to_slot_.size()) page_to_slot_.resize(bound, kNoSlot);
}

std::uint32_t& CacheState::index_entry(PageId page) {
  if (page >= page_to_slot_.size()) {
    // Amortized growth for adaptive streams whose universe is unknown at
    // attach time; doubling keeps total growth work linear in the universe.
    std::size_t next = page_to_slot_.empty() ? 64 : page_to_slot_.size() * 2;
    page_to_slot_.resize(std::max<std::size_t>(next, std::size_t{page} + 1),
                         kNoSlot);
  }
  return page_to_slot_[page];
}

std::uint32_t CacheState::allocate_slot(PageId page, const CellInfo& info) {
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot].page = page;
  slots_[slot].info = info;
  ++occupied_;
  return slot;
}

void CacheState::begin_fetch(PageId page, CoreId core, Time ready_at) {
  MCP_REQUIRE(occupied_ < capacity_, "begin_fetch on a full cache");
  std::uint32_t& entry = index_entry(page);
  MCP_REQUIRE(entry == kNoSlot, "begin_fetch: page already resident");
  entry = allocate_slot(page, CellInfo{CellStatus::kFetching, ready_at, core});
  ++fetching_count_;
  fetch_heap_.emplace_back(ready_at, page);
  std::push_heap(fetch_heap_.begin(), fetch_heap_.end(),
                 std::greater<>());
}

const std::vector<PageId>& CacheState::complete_fetches(Time now) {
  completed_.clear();
  while (!fetch_heap_.empty() && fetch_heap_.front().first <= now) {
    const PageId page = fetch_heap_.front().second;
    std::pop_heap(fetch_heap_.begin(), fetch_heap_.end(), std::greater<>());
    fetch_heap_.pop_back();
    Slot& slot = slots_[page_to_slot_[page]];
    slot.info.status = CellStatus::kPresent;
    --fetching_count_;
    completed_.push_back(page);
  }
  // Multiple ready times can land at once after an idle fast-forward; the
  // contract is ascending page id across the whole batch.
  std::sort(completed_.begin(), completed_.end());
  return completed_;
}

void CacheState::evict(PageId page) {
  const std::uint32_t slot = slot_of(page);
  MCP_REQUIRE(slot != kNoSlot, "evict: page not resident");
  MCP_REQUIRE(slots_[slot].info.status == CellStatus::kPresent,
              "evict: page is still being fetched (reserved cell)");
  slots_[slot].page = kInvalidPage;
  page_to_slot_[page] = kNoSlot;
  free_slots_.push_back(slot);
  --occupied_;
}

void CacheState::insert_present(PageId page, CoreId core) {
  MCP_REQUIRE(occupied_ < capacity_, "insert_present on a full cache");
  std::uint32_t& entry = index_entry(page);
  MCP_REQUIRE(entry == kNoSlot, "insert_present: page already resident");
  entry = allocate_slot(page, CellInfo{CellStatus::kPresent, 0, core});
}

std::vector<PageId> CacheState::present_pages() const {
  std::vector<PageId> pages;
  pages.reserve(present_count());
  for_each_present([&pages](PageId page) { pages.push_back(page); });
  std::sort(pages.begin(), pages.end());
  return pages;
}

std::vector<PageId> CacheState::resident_pages() const {
  std::vector<PageId> pages;
  pages.reserve(occupied_);
  for_each_resident([&pages](PageId page) { pages.push_back(page); });
  std::sort(pages.begin(), pages.end());
  return pages;
}

void CacheState::validate() const {
  // The validator's own scratch is declared: it may run inside a guarded
  // region (checked builds arm guards and validators together).
  AllocAllow allow;

  MCP_ASSERT_MSG(slots_.size() == capacity_, "validate: slot arena resized");
  MCP_ASSERT_MSG(occupied_ <= capacity_, "validate: occupancy over capacity");

  // Arena -> index: every occupied slot is indexed back to itself; counters
  // match the arena contents.
  std::size_t occupied = 0;
  std::size_t fetching = 0;
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = slots_[s];
    if (slot.page == kInvalidPage) continue;
    ++occupied;
    if (slot.info.status == CellStatus::kFetching) ++fetching;
    MCP_ASSERT_MSG(slot.page < page_to_slot_.size(),
                   "validate: resident page outside the index universe");
    MCP_ASSERT_MSG(page_to_slot_[slot.page] == s,
                   "validate: slot arena and page->slot index disagree");
  }
  MCP_ASSERT_MSG(occupied == occupied_, "validate: occupied_ counter drifted");
  MCP_ASSERT_MSG(fetching == fetching_count_,
                 "validate: fetching_count_ counter drifted");

  // Index -> arena: every live index entry points at a slot holding exactly
  // that page (with the arena->index pass above, a bijection).
  for (PageId page = 0; page < page_to_slot_.size(); ++page) {
    const std::uint32_t entry = page_to_slot_[page];
    if (entry == kNoSlot) continue;
    MCP_ASSERT_MSG(entry < slots_.size(),
                   "validate: page->slot index entry out of range");
    MCP_ASSERT_MSG(slots_[entry].page == page,
                   "validate: page->slot index entry points at another page");
  }

  // Free-slot stack: exactly the unoccupied arena slots, each once.
  MCP_ASSERT_MSG(free_slots_.size() == capacity_ - occupied_,
                 "validate: free-slot stack size mismatch");
  std::vector<bool> free_seen(capacity_, false);
  for (const std::uint32_t s : free_slots_) {
    MCP_ASSERT_MSG(s < capacity_, "validate: free-slot index out of range");
    MCP_ASSERT_MSG(!free_seen[s], "validate: duplicate free-slot entry");
    free_seen[s] = true;
    MCP_ASSERT_MSG(slots_[s].page == kInvalidPage,
                   "validate: free-slot entry names an occupied slot");
  }

  // Fetch heap: min-heap over exactly the in-flight pages, keyed by their
  // recorded ready times.
  MCP_ASSERT_MSG(fetch_heap_.size() == fetching_count_,
                 "validate: fetch-heap size != fetching count");
  MCP_ASSERT_MSG(
      std::is_heap(fetch_heap_.begin(), fetch_heap_.end(), std::greater<>()),
      "validate: fetch heap lost min-heap ordering");
  for (const auto& [ready_at, page] : fetch_heap_) {
    const std::uint32_t entry = slot_of(page);
    MCP_ASSERT_MSG(entry != kNoSlot,
                   "validate: fetch-heap entry for a non-resident page");
    MCP_ASSERT_MSG(slots_[entry].info.status == CellStatus::kFetching,
                   "validate: fetch-heap entry for a present page");
    MCP_ASSERT_MSG(slots_[entry].info.ready_at == ready_at,
                   "validate: fetch-heap key disagrees with cell ready_at");
  }
}

void CacheState::clear() {
  for (Slot& slot : slots_) {
    if (slot.page != kInvalidPage) {
      page_to_slot_[slot.page] = kNoSlot;
      slot.page = kInvalidPage;
    }
  }
  free_slots_.clear();
  for (std::size_t s = capacity_; s-- > 0;) {
    free_slots_.push_back(static_cast<std::uint32_t>(s));
  }
  fetch_heap_.clear();
  occupied_ = 0;
  fetching_count_ = 0;
}

}  // namespace mcp
