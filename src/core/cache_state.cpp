#include "core/cache_state.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcp {

CacheState::CacheState(std::size_t capacity) : capacity_(capacity) {
  MCP_REQUIRE(capacity > 0, "cache capacity must be positive");
  cells_.reserve(capacity);
}

bool CacheState::contains(PageId page) const {
  auto it = cells_.find(page);
  return it != cells_.end() && it->second.status == CellStatus::kPresent;
}

bool CacheState::is_fetching(PageId page) const {
  auto it = cells_.find(page);
  return it != cells_.end() && it->second.status == CellStatus::kFetching;
}

const CellInfo* CacheState::find(PageId page) const {
  auto it = cells_.find(page);
  return it == cells_.end() ? nullptr : &it->second;
}

void CacheState::begin_fetch(PageId page, CoreId core, Time ready_at) {
  MCP_REQUIRE(cells_.size() < capacity_, "begin_fetch on a full cache");
  auto [it, inserted] = cells_.try_emplace(
      page, CellInfo{CellStatus::kFetching, ready_at, core});
  MCP_REQUIRE(inserted, "begin_fetch: page already resident");
  (void)it;
  ++fetching_count_;
}

std::vector<PageId> CacheState::complete_fetches(Time now) {
  std::vector<PageId> done;
  if (fetching_count_ == 0) return done;
  for (auto& [page, info] : cells_) {
    if (info.status == CellStatus::kFetching && info.ready_at <= now) {
      info.status = CellStatus::kPresent;
      --fetching_count_;
      done.push_back(page);
    }
  }
  std::sort(done.begin(), done.end());
  return done;
}

void CacheState::evict(PageId page) {
  auto it = cells_.find(page);
  MCP_REQUIRE(it != cells_.end(), "evict: page not resident");
  MCP_REQUIRE(it->second.status == CellStatus::kPresent,
              "evict: page is still being fetched (reserved cell)");
  cells_.erase(it);
}

void CacheState::insert_present(PageId page, CoreId core) {
  MCP_REQUIRE(cells_.size() < capacity_, "insert_present on a full cache");
  auto [it, inserted] =
      cells_.try_emplace(page, CellInfo{CellStatus::kPresent, 0, core});
  MCP_REQUIRE(inserted, "insert_present: page already resident");
  (void)it;
}

std::vector<PageId> CacheState::present_pages() const {
  std::vector<PageId> pages;
  pages.reserve(cells_.size());
  for (const auto& [page, info] : cells_) {
    if (info.status == CellStatus::kPresent) pages.push_back(page);
  }
  std::sort(pages.begin(), pages.end());
  return pages;
}

std::vector<PageId> CacheState::resident_pages() const {
  std::vector<PageId> pages;
  pages.reserve(cells_.size());
  for (const auto& [page, info] : cells_) pages.push_back(page);
  std::sort(pages.begin(), pages.end());
  return pages;
}

void CacheState::clear() {
  cells_.clear();
  fetching_count_ = 0;
}

}  // namespace mcp
