#include "core/thread_pool.hpp"

#include <atomic>
#include <memory>
#include <utility>

#include "core/error.hpp"

namespace mcp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  MCP_REQUIRE(static_cast<bool>(task), "ThreadPool::enqueue: empty task");
  {
    LockGuard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  // Explicit wait loop, not the predicate overload: the analysis treats
  // mutex_ as held across the wait, and the guarded reads stay inside this
  // annotated function (see core/annotations.hpp, conventions).
  while (!queue_.empty() || in_flight_ != 0) idle_cv_.wait(lock.native());
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(lock.native());
      // Drain-then-exit: a worker only leaves once the queue is empty, so
      // tasks enqueued by still-running tasks are always served.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      LockGuard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      LockGuard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t max_workers) {
  if (count == 0) return;

  // Shared between the caller and the helper tasks.  Held by shared_ptr
  // because a queued helper may only get scheduled after this call returned
  // (it then claims an exhausted index and exits immediately).
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    Mutex mutex;
    std::condition_variable done_cv;
    /// Cells finished or skipped.
    std::size_t completed MCP_GUARDED_BY(mutex) = 0;
    /// First failure.
    std::exception_ptr error MCP_GUARDED_BY(mutex);
  };
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->count = count;

  const auto runner = [job] {
    for (;;) {
      const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->count) return;
      if (!job->failed.load(std::memory_order_relaxed)) {
        try {
          job->fn(i);
        } catch (...) {
          LockGuard lock(job->mutex);
          if (!job->error) job->error = std::current_exception();
          job->failed.store(true, std::memory_order_relaxed);
        }
      }
      bool all_done = false;
      {
        LockGuard lock(job->mutex);
        all_done = ++job->completed == job->count;
      }
      if (all_done) job->done_cv.notify_all();
    }
  };

  std::size_t limit = max_workers == 0 ? num_workers() + 1 : max_workers;
  // The caller is one runner; at most num_workers() helpers are useful.
  const std::size_t helpers =
      std::min({count, limit, num_workers() + 1}) - 1;
  for (std::size_t h = 0; h < helpers; ++h) enqueue(runner);
  runner();

  UniqueLock lock(job->mutex);
  while (job->completed != job->count) job->done_cv.wait(lock.native());
  if (job->error) {
    std::exception_ptr error = std::exchange(job->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mcp
