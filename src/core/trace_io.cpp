#include "core/trace_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/error.hpp"

namespace mcp {

void write_trace(std::ostream& os, const RequestSet& requests) {
  os << "mcptrace 1\n";
  os << "cores " << requests.num_cores() << '\n';
  for (CoreId core = 0; core < requests.num_cores(); ++core) {
    const RequestSequence& seq = requests.sequence(core);
    os << "seq " << core << ' ' << seq.size();
    for (PageId page : seq) os << ' ' << page;
    os << '\n';
  }
}

RequestSet read_trace(std::istream& is) {
  std::string line;
  std::size_t num_cores = 0;
  bool saw_header = false;
  bool saw_cores = false;
  std::vector<RequestSequence> seqs;
  std::vector<bool> seen;

  std::size_t lineno = 0;
  std::size_t byte_offset = 0;  // offset of the current line's first byte
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t line_start = byte_offset;
    byte_offset += line.size() + 1;  // + the newline getline consumed
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    const auto fail = [&](const std::string& why) -> void {
      throw InputError("trace line " + std::to_string(lineno) + " (byte " +
                       std::to_string(line_start) + "): " + why);
    };
    if (!saw_header) {
      int version = 0;
      if (keyword != "mcptrace" || !(ls >> version) || version != 1) {
        fail("expected header 'mcptrace 1'");
      }
      saw_header = true;
    } else if (keyword == "cores") {
      if (saw_cores) fail("duplicate 'cores' line");
      if (!(ls >> num_cores) || num_cores == 0) fail("bad core count");
      seqs.resize(num_cores);
      seen.assign(num_cores, false);
      saw_cores = true;
    } else if (keyword == "seq") {
      if (!saw_cores) fail("'seq' before 'cores'");
      std::size_t core = 0;
      std::size_t n = 0;
      if (!(ls >> core >> n)) fail("bad 'seq' header");
      if (core >= num_cores) fail("core id out of range");
      if (seen[core]) fail("duplicate sequence for core " + std::to_string(core));
      seen[core] = true;
      std::vector<PageId> pages(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (!(ls >> pages[i])) fail("sequence shorter than declared length");
      }
      PageId extra = 0;
      if (ls >> extra) fail("sequence longer than declared length");
      seqs[core] = RequestSequence(std::move(pages));
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }

  if (!saw_header) throw InputError("empty trace: missing 'mcptrace 1' header");
  if (!saw_cores) throw InputError("trace missing 'cores' line");
  for (std::size_t core = 0; core < num_cores; ++core) {
    if (!seen[core]) {
      throw InputError("trace missing sequence for core " + std::to_string(core));
    }
  }
  return RequestSet(std::move(seqs));
}

RequestSet read_trace_pairs(std::istream& is) {
  std::vector<RequestSequence> seqs;
  std::string line;
  std::size_t lineno = 0;
  std::size_t byte_offset = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t line_start = byte_offset;
    byte_offset += line.size() + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& why) -> void {
      throw InputError("pairs line " + std::to_string(lineno) + " (byte " +
                       std::to_string(line_start) + "): " + why);
    };
    std::istringstream ls(line);
    std::size_t core = 0;
    PageId page = 0;
    if (!(ls >> core >> page)) fail("expected '<core> <page>'");
    std::string extra;
    if (ls >> extra) fail("trailing tokens");
    if (core >= seqs.size()) seqs.resize(core + 1);
    seqs[core].push_back(page);
  }
  if (seqs.empty()) throw InputError("pairs trace: no requests");
  return RequestSet(std::move(seqs));
}

void save_trace(const std::string& path, const RequestSet& requests) {
  std::ofstream os(path);
  if (!os) throw InputError("cannot open for writing: " + path);
  write_trace(os, requests);
  if (!os) throw InputError("write failed: " + path);
}

RequestSet load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw InputError("cannot open for reading: " + path);
  return read_trace(is);
}

}  // namespace mcp
