// Minimal data-parallel helper for embarrassingly parallel sweeps
// (partition enumeration, fault-curve construction, bench grids).
//
// Deliberately tiny: a blocking parallel_for over an index range with
// static chunking.  Tasks must be independent and must not throw across
// threads uncaught — exceptions are captured and rethrown on the caller.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace mcp {

/// Runs fn(i) for i in [0, count), using up to `max_threads` hardware
/// threads (0 = hardware_concurrency).  Falls back to a plain loop when the
/// range is small or only one thread is available.  The first exception
/// thrown by any task is rethrown after all threads join.
inline void parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t max_threads = 0) {
  if (count == 0) return;
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (max_threads != 0) hw = std::min(hw, max_threads);
  const std::size_t workers = std::min(hw, count);
  if (workers <= 1 || count < 4) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  const auto body = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        if (!failed.exchange(true)) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(body);
  body();
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mcp
