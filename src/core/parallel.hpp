// Minimal data-parallel helper for embarrassingly parallel sweeps
// (partition enumeration, fault-curve construction, bench grids).
//
// Compatibility shim: parallel_for keeps its original blocking signature but
// now dispatches onto the persistent shared ThreadPool (thread_pool.hpp)
// instead of spawning fresh threads per call.  Tasks must be independent;
// the first exception thrown by any task is rethrown on the caller.  New
// code that needs per-cell RNG streams or timing should use the SweepRunner
// layer (sweep.hpp) directly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <thread>

#include "core/thread_pool.hpp"

namespace mcp {

/// Runs fn(i) for i in [0, count), using up to `max_threads` concurrent
/// runners from the shared pool (0 = hardware_concurrency).  Falls back to a
/// plain in-order loop on the caller's thread when the range is small or
/// only one runner is allowed.  The first exception thrown by any task is
/// rethrown after all tasks settle.
inline void parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t max_threads = 0) {
  if (count == 0) return;
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (max_threads != 0) hw = std::min(hw, max_threads);
  if (std::min(hw, count) <= 1 || count < 4) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::global().run_indexed(count, fn, hw);
}

}  // namespace mcp
