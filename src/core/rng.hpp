// Deterministic pseudo-random number generation.
//
// Every stochastic component of mcpaging (workload generators, randomized
// eviction policies, instance samplers) draws from this generator so that a
// run is reproducible from a single 64-bit seed.  The implementation is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64 — fast,
// well-tested statistically, and trivially portable, which matters more here
// than cryptographic strength.
#pragma once

#include <array>
#include <cstdint>

#include "core/error.hpp"

namespace mcp {

/// SplitMix64 step: used to expand a single seed into xoshiro state and as a
/// standalone hash-like mixer for deriving per-core sub-seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though mcpaging uses the bounded
/// helpers below to stay bit-for-bit reproducible across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Lemire-style rejection keeps the draw
  /// unbiased without library-dependent behaviour.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    MCP_REQUIRE(bound > 0, "Rng::below bound must be positive");
    // Rejection sampling on the top bits.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    MCP_REQUIRE(lo <= hi, "Rng::between requires lo <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `prob`.
  [[nodiscard]] bool chance(double prob) noexcept { return uniform01() < prob; }

  /// Derives an independent child generator; `salt` distinguishes siblings
  /// (e.g. one stream per core).
  [[nodiscard]] Rng fork(std::uint64_t salt) const noexcept {
    std::uint64_t sm = state_[0] ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mcp
