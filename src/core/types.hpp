// Fundamental identifier and quantity types shared by every mcpaging module.
//
// The model (Lopez-Ortiz & Salinger, TR CS-2011-12, Section 3): a multicore
// processor with p cores shares one cache of K pages.  Time is discrete; a
// hit takes one timestep, a fault additionally delays the remainder of the
// faulting core's sequence by tau timesteps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mcp {

/// Identifier of a memory page.  Pages are opaque; equality is all that the
/// model ever inspects.  Dense small integers keep traces compact.
using PageId = std::uint32_t;

/// Sentinel for "no page" (used by policies that may decline to pick a
/// victim and by cells that are empty).
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// Identifier of a core (processor). Cores are numbered 0..p-1; the paper's
/// convention that simultaneous requests are served in a fixed logical order
/// maps to increasing CoreId.
using CoreId = std::uint32_t;

/// Sentinel for "no core".
inline constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();

/// A discrete timestep.  The first request of a run is issued at time 0.
using Time = std::uint64_t;

/// Sentinel for "never" / "not yet".
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/// Counters (faults, hits, requests).
using Count = std::uint64_t;

/// How a request to a page that is currently being fetched on behalf of
/// *another* core is treated.  The paper analyses disjoint sequences, where
/// the situation cannot arise; for non-disjoint inputs the behaviour must be
/// pinned down (see DESIGN.md section 2).
enum class SharedFetchMode {
  /// The request counts as a fault for the requesting core and delays it by
  /// the full tau, but it joins the in-flight fetch (no extra cell).  This is
  /// the default: it preserves the paper's "a miss delays the remaining
  /// requests by tau" rule verbatim.
  kCountsAsFault,
  /// The request blocks until the in-flight fetch completes and is then
  /// scored as a hit (delay <= tau, no extra fault).  Models a cache with
  /// MSHR-style fetch merging.
  kJoinsFetch,
};

}  // namespace mcp
