// mcp::sentry — the checked-build analysis layer's allocation sentry.
//
// PR 3/4 rebuilt the engines around structural performance claims
// ("allocation-free steady-state hot loops", "no per-emission allocations
// outside declared amortized growth points").  This module turns those
// claims into *enforced invariants*: the global operator new/delete pair is
// instrumented with a thread-local allocation counter, and a scoped
// `AllocGuard` declares a region allocation-free — any allocation attempted
// inside the region fails immediately with an MCP_ASSERT-style fatal report
// (ModelError) naming the region and the site that declared it.
//
// Amortized growth that a region's claim explicitly permits (an interner
// arena doubling, a direct-mapped index resize) is marked in the code with a
// scoped `AllocAllow` at the growth site, so the declaration of "this may
// allocate, and only this" lives next to the code it describes.
//
// Guards nest (the innermost region is reported) and are strictly
// per-thread: a guard on the main thread says nothing about pool workers —
// parallel regions arm a guard inside each worker task (see pif_solver.cpp).
// All sentry state is thread_local (sentry.cpp), so there is no shared
// capability for the thread-safety analysis to track; the *coverage*
// invariant — every declared hot kernel still arms its guard and is
// exercised under it by some test — is checked statically by
// tools/verify/mcp_verify.py rule `alloc-guard` against the kernel
// registry in tools/verify/rules.toml.
//
// Cost when unarmed: one thread-local counter update per program-wide
// allocation, nothing per guarded-loop iteration.  The deep invariant
// validators compiled under MCP_CHECKED (CacheState::validate(),
// StateInterner::validate(), validate_front()) are gated by the
// MCP_CHECKED_ONLY macro below and are zero-cost no-ops otherwise.
#pragma once

#include <cstdint>
#include <source_location>

namespace mcp {

namespace sentry {

/// Monotonic counters for the calling thread, maintained by the replacement
/// global operator new/delete in sentry.cpp.  `allocations` counts attempts
/// (a guard-refused allocation is still counted).
struct ThreadAllocStats {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t bytes_allocated = 0;
};

/// Snapshot of the calling thread's counters.
[[nodiscard]] ThreadAllocStats thread_alloc_stats() noexcept;

/// Shorthand for thread_alloc_stats().allocations.
[[nodiscard]] std::uint64_t thread_allocations() noexcept;

/// True iff the instrumented operator new is linked into this binary (it is
/// whenever any sentry symbol is referenced; a binary without it sees every
/// guard pass vacuously).  Performs one small heap allocation.
[[nodiscard]] bool instrumentation_active();

}  // namespace sentry

/// RAII declaration that the enclosed region performs no heap allocation on
/// this thread.  Violations throw ModelError with the region name and the
/// guard's declaration site; the offending allocation is never performed.
class AllocGuard {
 public:
  explicit AllocGuard(
      const char* region,
      std::source_location site = std::source_location::current());
  ~AllocGuard();

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Allocation attempts on this thread since the guard was armed.
  [[nodiscard]] std::uint64_t allocations() const noexcept;

  [[nodiscard]] const char* region() const noexcept { return region_; }
  [[nodiscard]] const std::source_location& site() const noexcept {
    return site_;
  }

 private:
  const char* region_;
  std::source_location site_;
  std::uint64_t start_allocations_;
  AllocGuard* prev_;  ///< enclosing guard on this thread, if any
};

/// Scoped suspension of the innermost AllocGuard: marks a *declared*
/// amortized growth point (arena append, index doubling, pool dispatch)
/// inside an otherwise allocation-free region.  Nesting is counted.
class AllocAllow {
 public:
  AllocAllow() noexcept;
  ~AllocAllow();

  AllocAllow(const AllocAllow&) = delete;
  AllocAllow& operator=(const AllocAllow&) = delete;
};

}  // namespace mcp

/// Deep invariant validation, compiled only in checked builds
/// (-DMCP_CHECKED=ON; CI job `checked`).  Wrap validator invocations at
/// strategy/step/layer boundaries in this macro so release builds pay
/// nothing:
///
///   MCP_CHECKED_ONLY(cache.validate());
#ifdef MCP_CHECKED
#define MCP_CHECKED_BUILD 1
#define MCP_CHECKED_ONLY(stmt) \
  do {                         \
    stmt;                      \
  } while (false)
#else
#define MCP_CHECKED_ONLY(stmt) \
  do {                         \
  } while (false)
#endif
