#include "core/sweep.hpp"

#include <cstdio>

namespace mcp {

double SweepTiming::cells_per_second() const noexcept {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(cells) / wall_seconds;
}

std::string SweepTiming::json(const std::string& sweep_name) const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"sweep\":\"%s\",\"cells\":%zu,\"wall_seconds\":%.6f,"
                "\"cells_per_second\":%.1f,\"max_threads\":%zu}",
                sweep_name.c_str(), cells, wall_seconds, cells_per_second(),
                max_threads);
  return std::string(buffer);
}

Rng sweep_cell_rng(std::uint64_t master_seed, std::size_t cell_index) noexcept {
  // Same SplitMix64 mixing as Rng::fork: the cell seed is a hash of the
  // master seed and the index, so streams are independent and a sweep's
  // randomness depends on nothing but (master_seed, cell_index).
  std::uint64_t sm =
      master_seed ^
      (static_cast<std::uint64_t>(cell_index) * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

}  // namespace mcp
