// Error handling helpers.
//
// Model-contract violations (an eviction of a page that is not present, a
// partition that starves a core, ...) are programming errors in the caller
// and throw ModelError; they are cheap to test and make misuse loud.  Hot
// inner-loop invariants use MCP_ASSERT, which compiles to a check in all
// build types (the simulator is an experiment platform; silent corruption
// would invalidate results).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcp {

/// Thrown when a caller violates the paging-model contract.
class ModelError : public std::logic_error {
 public:
  explicit ModelError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an input (trace file, instance description) is malformed.
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "MCP_ASSERT failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ModelError(os.str());
}
}  // namespace detail

}  // namespace mcp

/// Always-on invariant check.  `msg` may use stream syntax pieces already
/// formatted into a std::string by the caller.
#define MCP_ASSERT(expr)                                               \
  do {                                                                 \
    if (!(expr))                                                       \
      ::mcp::detail::assert_fail(#expr, __FILE__, __LINE__, {});       \
  } while (false)

#define MCP_ASSERT_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::mcp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)

/// Contract check for public API entry points.
#define MCP_REQUIRE(expr, msg)                                         \
  do {                                                                 \
    if (!(expr)) throw ::mcp::ModelError(std::string("requirement failed: ") + (msg)); \
  } while (false)
