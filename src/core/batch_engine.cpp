// Implementation of the batched lockstep engine and SweepRunner::run_jobs.
//
// The per-lane step function is a transliteration of Simulator::run's step
// loop (land fetches, serve ready cores in increasing id, fast-forward the
// clock), specialized at compile time on (shared vs static-partition, LRU
// vs FIFO).  Bit-equality with the scalar engine is argued in DESIGN.md
// §12; the load-bearing piece is the stamp representation of the policies:
// stamps are unique and monotonic per cell, LRU writes them on insert and
// hit, FIFO on insert only, so "first evictable page scanning the policy
// list from the back" is exactly "minimum stamp among the region's present
// slots".  The scan itself reads one array: non-present slots carry tagged
// keys (kReservedKey / kFreeKey below) that can never win the min while an
// evictable slot exists.
#include "core/batch_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <span>

#include "core/error.hpp"
#include "core/sentry.hpp"
#include "core/sweep.hpp"

namespace mcp {

namespace {

/// Blocked schedule for run()/drain(): each visit advances a lane many
/// steps, so its slot and core lanes stay hot in L1 instead of being
/// flushed by the other B - 1 lanes between consecutive steps.
constexpr std::size_t kRunBlockSteps = 1024;

/// Victim-scan keys, folded into slot_stamp: a present slot holds its
/// policy stamp verbatim, a fetching slot holds stamp | kReservedKey (the
/// tag loses every min-comparison while an evictable slot exists and the
/// fetch landing clears it, restoring the stamp), and a free slot holds
/// kFreeKey.  The eviction scan then reduces to an unsigned min over the
/// region's contiguous key lane — no status-byte loads, no data-dependent
/// branches — and "no evictable page" is simply min >= kReservedKey.
/// Stamps count serves per cell, so they stay far below 2^62.
constexpr std::uint64_t kReservedKey = std::uint64_t{1} << 62;
constexpr std::uint64_t kFreeKey = std::numeric_limits<std::uint64_t>::max();

}  // namespace

void BatchEngine::load(std::span<const SimJob> jobs, std::span<RunStats> out) {
  MCP_REQUIRE(out.size() == jobs.size(),
              "BatchEngine::load: out.size() must equal jobs.size()");
  state_.clear();
  active_.clear();
  cohort_ = false;
  free_lanes_.clear();
  lane_stats_.clear();
  page_capacity_ = 0;
  retired_steps_ = 0;
  out_ = out.data();
  out_size_ = out.size();

  // Pass 1: validate every job's shape and size the lanes.
  std::size_t total_slots = 0;
  std::size_t total_cores = 0;
  std::size_t total_regions = 0;
  std::size_t total_pages = 0;
  std::vector<PageId> page_bounds(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SimJob& job = jobs[i];
    MCP_REQUIRE(job.requests != nullptr, "SimJob.requests must not be null");
    MCP_REQUIRE(job.config.cache_size > 0,
                "SimConfig.cache_size must be positive");
    const std::size_t p = job.requests->num_cores();
    MCP_REQUIRE(p > 0, "request stream has no cores");
    const BatchStrategySpec& spec = job.strategy;
    if (spec.kind == BatchStrategySpec::Kind::kStaticPartition) {
      MCP_REQUIRE(spec.partition.size() == p,
                  "static partition spec must have one part per core");
      std::size_t sum = 0;
      for (const std::size_t part : spec.partition) {
        MCP_REQUIRE(part >= 1, "every core's part must hold at least one page");
        sum += part;
      }
      MCP_REQUIRE(sum == job.config.cache_size,
                  "partition must sum to the cache size");
    } else {
      MCP_REQUIRE(spec.partition.empty(),
                  "shared strategy spec takes no partition");
    }
    page_bounds[i] = job.requests->page_bound();
    total_slots += job.config.cache_size;
    total_cores += p;
    total_regions +=
        spec.kind == BatchStrategySpec::Kind::kStaticPartition ? p : 1;
    total_pages += page_bounds[i];
  }

  state_.cells.resize(jobs.size());
  state_.slot_page.assign(total_slots, kInvalidPage);
  state_.slot_status.assign(total_slots, BatchSlotStatus::kFree);
  state_.slot_ready.assign(total_slots, 0);
  state_.slot_stamp.assign(total_slots, kFreeKey);
  state_.free_stack.resize(total_slots);
  state_.inflight.resize(total_slots);
  state_.page_slot.assign(total_pages, kNoBatchSlot);
  state_.core_ready.assign(total_cores, 0);
  state_.core_finish.assign(total_cores, 0);
  state_.core_seq.resize(total_cores);
  state_.core_len.resize(total_cores);
  state_.core_next.assign(total_cores, 0);
  state_.core_pending.assign(total_cores, kInvalidPage);
  state_.core_flags.assign(total_cores, 0);
  state_.region_size.resize(total_regions);
  state_.region_occ.assign(total_regions, 0);
  state_.region_slot_base.resize(total_regions);
  state_.region_free_top.resize(total_regions);
  active_.reserve(jobs.size());

  // Pass 2: fill the lane slices and pre-size every result (the step loop
  // must not allocate, so fault timelines get their worst-case capacity —
  // at most one fault per request — here).
  std::size_t slot_base = 0;
  std::size_t core_base = 0;
  std::size_t region_base = 0;
  std::size_t page_base = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SimJob& job = jobs[i];
    const std::size_t cache_size = job.config.cache_size;
    const std::size_t p = job.requests->num_cores();
    const bool partitioned =
        job.strategy.kind == BatchStrategySpec::Kind::kStaticPartition;

    BatchCell& cell = state_.cells[i];
    cell = BatchCell{};
    cell.cache_size = static_cast<std::uint32_t>(cache_size);
    cell.num_cores = static_cast<std::uint32_t>(p);
    cell.num_regions = static_cast<std::uint32_t>(partitioned ? p : 1);
    cell.page_bound = page_bounds[i];
    cell.tau = job.config.fault_penalty;
    cell.max_steps = job.config.max_steps;
    cell.mode = job.config.shared_fetch;
    cell.kind = job.strategy.kind;
    cell.policy = job.strategy.policy;
    cell.record_timeline = job.config.record_fault_timeline;
    cell.slot_base = slot_base;
    cell.core_base = core_base;
    cell.region_base = region_base;
    cell.page_base = page_base;
    cell.active_cores = static_cast<std::uint32_t>(p);

    // The identity fill seeds every region's free-stack segment with its
    // own slot range (region slot ranges tile the cell's range in region
    // order, so slot and free-stack segments coincide).
    for (std::size_t s = 0; s < cache_size; ++s) {
      state_.free_stack[slot_base + s] =
          static_cast<std::uint32_t>(slot_base + s);
    }
    for (std::size_t j = 0; j < p; ++j) {
      const RequestSequence& seq =
          job.requests->sequence(static_cast<CoreId>(j));
      state_.core_seq[core_base + j] = seq.pages().data();
      state_.core_len[core_base + j] = static_cast<std::uint32_t>(seq.size());
    }
    std::size_t region_slot = slot_base;
    for (std::size_t r = 0; r < cell.num_regions; ++r) {
      const std::size_t rsize =
          partitioned ? job.strategy.partition[r] : cache_size;
      state_.region_size[region_base + r] = static_cast<std::uint32_t>(rsize);
      state_.region_slot_base[region_base + r] =
          static_cast<std::uint32_t>(region_slot);
      state_.region_free_top[region_base + r] =
          static_cast<std::uint32_t>(rsize);
      region_slot += rsize;
    }

    RunStats stats(p);
    if (job.config.record_fault_timeline) {
      for (std::size_t j = 0; j < p; ++j) {
        stats.core(static_cast<CoreId>(j))
            .fault_times.reserve(
                job.requests->sequence(static_cast<CoreId>(j)).size());
      }
    }
    out_[i] = std::move(stats);

    active_.push_back(static_cast<std::uint32_t>(i));
    slot_base += cache_size;
    core_base += p;
    region_base += cell.num_regions;
    page_base += page_bounds[i];
  }
}

template <bool kPartitioned, bool kLruTouch>
bool BatchEngine::step_block(BatchCell& cell, RunStats& stats,
                             std::size_t steps) {
  BatchState& st = state_;
  // Lane slices as raw locals: the lanes are disjoint arrays of distinct
  // element types indexed by absolute slot ids (slot lanes) or pre-offset
  // by the cell's base (core/region/page lanes).  Hoisting the data
  // pointers out of the vectors keeps the optimizer from reloading them
  // after every store (the vectors alias `state_` as far as it can tell).
  PageId* const slot_page = st.slot_page.data();
  BatchSlotStatus* const slot_status = st.slot_status.data();
  Time* const slot_ready = st.slot_ready.data();
  std::uint64_t* const slot_stamp = st.slot_stamp.data();
  std::uint32_t* const free_stack = st.free_stack.data();
  std::uint32_t* const inflight = st.inflight.data() + cell.slot_base;
  std::uint32_t* const page_slot = st.page_slot.data() + cell.page_base;
  Time* const core_ready = st.core_ready.data() + cell.core_base;
  Time* const core_finish = st.core_finish.data() + cell.core_base;
  const PageId* const* const core_seq = st.core_seq.data() + cell.core_base;
  const std::uint32_t* const core_len = st.core_len.data() + cell.core_base;
  std::uint32_t* const core_next = st.core_next.data() + cell.core_base;
  PageId* const core_pending = st.core_pending.data() + cell.core_base;
  std::uint8_t* const core_flags = st.core_flags.data() + cell.core_base;
  const std::uint32_t* const region_size =
      st.region_size.data() + cell.region_base;
  std::uint32_t* const region_occ = st.region_occ.data() + cell.region_base;
  const std::uint32_t* const region_slot_base =
      st.region_slot_base.data() + cell.region_base;
  std::uint32_t* const region_free_top =
      st.region_free_top.data() + cell.region_base;
  CoreStats* const cores = &stats.core(0);

  const Time tau = cell.tau;
  // The lane's clock and stamp counter live in registers across the whole
  // block (every serve touches both) and are written back at each exit —
  // together with the pointer hoists above, this is the per-step overhead
  // the blocked schedule amortizes over kRunBlockSteps steps.
  Time now = cell.now;
  std::uint64_t stamp = cell.stamp;

  for (std::size_t t = 0; t < steps; ++t) {
    Time next_time = kTimeNever;
    std::uint32_t serve_from = 0;
    if (cell.in_step) {
      // Resuming a step parked by a stall below: the preamble (step count,
      // fetch landing) already ran when this step first started, cores before
      // resume_core are already served, and the folded fast-forward min they
      // contributed is restored.  Nothing else ran while the lane was parked,
      // so every value is exactly what the uninterrupted step would see.
      cell.in_step = false;
      next_time = cell.next_time_partial;
      serve_from = cell.resume_core;
    } else {
      ++cell.steps;
      if (cell.max_steps != 0 && cell.steps > cell.max_steps) {
        AllocAllow allow;  // declared growth: error paths may build a message
        cell.now = now;
        cell.stamp = stamp;
        throw ModelError("simulation exceeded SimConfig.max_steps");
      }

      // 1. Land fetches due now, before any request is served this step.  The
      //    in-flight lane holds at most min(p, K) entries; backwards
      //    swap-remove keeps it packed.  Landing order is unobservable here:
      //    the batchable strategies' on_fetch_complete is a no-op.
      for (std::uint32_t i = cell.fetching; i-- > 0;) {
        const std::uint32_t slot = inflight[i];
        if (slot_ready[slot] <= now) {
          slot_status[slot] = BatchSlotStatus::kPresent;
          slot_stamp[slot] &= ~kReservedKey;  // evictable again, stamp intact
          inflight[i] = inflight[--cell.fetching];
        }
      }
    }

    // 2. (No voluntary evictions and no deferrals: the batchable strategies
    //    keep the base class's no-op on_step_begin / defer_request.)

    // 3. Serve ready cores in increasing core id — the paper's fixed logical
    //    service order for simultaneous requests.  The fast-forward min is
    //    folded into the same pass: iteration j is the only writer of core
    //    j's ready time, so the value observed here is the value the old
    //    second pass would have read.
    for (std::uint32_t j = serve_from; j < cell.num_cores; ++j) {
      const std::uint8_t flags = core_flags[j];
      if ((flags & kBatchCoreDone) != 0) continue;
      if (core_ready[j] > now) {
        next_time = std::min(next_time, core_ready[j]);
        continue;
      }
      // The pending lane materializes a pulled-but-unserved request only on
      // the paths that actually park one (the stall below, kJoinsFetch); a
      // request served the same step it is pulled stays in this register, so
      // the hit path writes no pending state at all.
      PageId page;
      if ((flags & kBatchCorePending) != 0) {
        page = core_pending[j];
      } else {
        if (core_next[j] >= core_len[j]) {
          if (!cell.closed) {
            // Source contract (SimSession): the feed may still grow, so the
            // whole lane parks mid-step before core j — a later same-step
            // core must never be served ahead of an earlier one.  This
            // branch lives on the already-cold cursor-exhausted path, so the
            // hot kernel is untouched while a lane has buffered requests.
            cell.status = BatchLaneStatus::kStalled;
            cell.in_step = true;
            cell.resume_core = j;
            cell.next_time_partial = next_time;
            cell.now = now;
            cell.stamp = stamp;
            return false;
          }
          core_flags[j] = static_cast<std::uint8_t>(flags | kBatchCoreDone);
          cores[j].completion_time = core_finish[j];
          --cell.active_cores;
          continue;
        }
        page = core_seq[j][core_next[j]++];
      }
      MCP_ASSERT(page < cell.page_bound);
      std::uint32_t& slot_of_page = page_slot[page];
      CoreStats& core_stats = cores[j];

      if (slot_of_page != kNoBatchSlot &&
          slot_status[slot_of_page] == BatchSlotStatus::kPresent) {
        // Hit: served within the step; LRU freshens the slot's stamp.
        ++core_stats.hits;
        ++core_stats.requests;
        if constexpr (kLruTouch) slot_stamp[slot_of_page] = ++stamp;
        core_ready[j] = now + 1;
        core_finish[j] = now;
        if ((flags & kBatchCorePending) != 0) {
          core_flags[j] = static_cast<std::uint8_t>(flags & ~kBatchCorePending);
        }
        next_time = std::min(next_time, now + 1);
        continue;
      }

      if (slot_of_page != kNoBatchSlot) {
        // The page is in flight on behalf of another core.
        if (cell.mode == SharedFetchMode::kJoinsFetch) {
          // Block until the fetch lands, then re-serve the parked request
          // (usually a hit; a fault if the page was evicted again).
          if ((flags & kBatchCorePending) == 0) {
            core_pending[j] = page;
            core_flags[j] = static_cast<std::uint8_t>(flags | kBatchCorePending);
          }
          const Time wake = std::max(slot_ready[slot_of_page], now + 1);
          core_ready[j] = wake;
          next_time = std::min(next_time, wake);
          continue;
        }
        // kCountsAsFault: full penalty, but the request joins the in-flight
        // fetch — no cell is taken and the policy is not consulted.
        ++core_stats.faults;
        ++core_stats.requests;
        if (cell.record_timeline) core_stats.fault_times.push_back(now);
        core_ready[j] = now + tau + 1;
        core_finish[j] = now + tau;
        if ((flags & kBatchCorePending) != 0) {
          core_flags[j] = static_cast<std::uint8_t>(flags & ~kBatchCorePending);
        }
        next_time = std::min(next_time, now + tau + 1);
        continue;
      }

      // Plain fault: evict if the region is full, then begin the fetch.
      ++core_stats.faults;
      ++core_stats.requests;
      if (cell.record_timeline) core_stats.fault_times.push_back(now);
      const std::uint32_t region = kPartitioned ? j : 0;
      const std::size_t region_begin = region_slot_base[region];
      if (region_occ[region] == region_size[region]) {
        // Victim: minimum stamp among the region's present slots (fetching
        // cells carry kReservedKey-tagged keys and free ones kFreeKey, so the
        // min pass needs no status checks and no data-dependent branches —
        // it compiles to a straight-line reduction the hardware can overlap).
        // A second short pass recovers the slot: stamps are unique per cell
        // and the tagged keys can never equal an untagged minimum.  The scan
        // covers only the region's own slot range — K/p slots, not K.
        const std::size_t end = region_begin + region_size[region];
        std::uint64_t oldest = kFreeKey;
        for (std::size_t s = region_begin; s < end; ++s) {
          oldest = std::min(oldest, slot_stamp[s]);
        }
        if (oldest >= kReservedKey) {
          AllocAllow allow;
          cell.now = now;  // keep the header consistent even on this exit
          cell.stamp = stamp;
          throw ModelError("batch engine: no evictable page (all reserved)");
        }
        std::size_t victim = region_begin;
        while (slot_stamp[victim] != oldest) ++victim;
        page_slot[slot_page[victim]] = kNoBatchSlot;
        slot_page[victim] = kInvalidPage;
        slot_status[victim] = BatchSlotStatus::kFree;
        slot_stamp[victim] = kFreeKey;
        free_stack[region_begin + region_free_top[region]++] =
            static_cast<std::uint32_t>(victim);
        --region_occ[region];
      }
      MCP_ASSERT(region_free_top[region] > 0);
      const std::uint32_t slot =
          free_stack[region_begin + --region_free_top[region]];
      slot_page[slot] = page;
      slot_status[slot] = BatchSlotStatus::kFetching;
      slot_ready[slot] = now + tau + 1;
      slot_stamp[slot] = ++stamp | kReservedKey;
      slot_of_page = slot;
      inflight[cell.fetching++] = slot;
      ++region_occ[region];
      core_ready[j] = now + tau + 1;
      core_finish[j] = now + tau;
      if ((flags & kBatchCorePending) != 0) {
        core_flags[j] = static_cast<std::uint8_t>(flags & ~kBatchCorePending);
      }
      next_time = std::min(next_time, now + tau + 1);
    }

    if (cell.active_cores == 0) {
      cell.status = BatchLaneStatus::kEnded;
      stats.end_time = now;
      stats.sim_steps = cell.steps;
      cell.now = now;
      cell.stamp = stamp;
      return false;
    }

    // 4. Fast-forward to the next step at which any core can act.
    MCP_ASSERT(next_time != kTimeNever);
    now = std::max(now + 1, next_time);
  }

  cell.now = now;
  cell.stamp = stamp;
  return true;
}

std::size_t BatchEngine::round(std::size_t steps_per_lane) {
  std::size_t i = 0;
  while (i < active_.size()) {
    const std::uint32_t index = active_[i];
    MCP_ASSERT(index < out_size_);
    BatchCell& cell = state_.cells[index];
    RunStats& stats = out_[index];
    bool alive = false;
    if (cell.kind == BatchStrategySpec::Kind::kStaticPartition) {
      alive = cell.policy == BatchPolicy::kLru
                  ? step_block<true, true>(cell, stats, steps_per_lane)
                  : step_block<true, false>(cell, stats, steps_per_lane);
    } else {
      alive = cell.policy == BatchPolicy::kLru
                  ? step_block<false, true>(cell, stats, steps_per_lane)
                  : step_block<false, false>(cell, stats, steps_per_lane);
    }
    if (alive) {
      ++i;
    } else {
      // Ragged tail: a finished (or, in cohort mode, stalled) lane is
      // swap-removed and not visited again until a refresh re-wakes it;
      // the remaining lanes keep their own clocks.
      active_[i] = active_.back();
      active_.pop_back();
    }
  }
  MCP_CHECKED_ONLY(validate());
  return active_.size();
}

std::size_t BatchEngine::step_round() { return round(1); }

void BatchEngine::run(std::span<const SimJob> jobs, std::span<RunStats> out) {
  load(jobs, out);
  std::optional<AllocGuard> guard;
  if (options_.alloc_guard) guard.emplace("batch engine lockstep loop");
  // Blocked schedule (kRunBlockSteps): per-lane results are identical to
  // the strict one-step round-robin (lanes never read each other's state),
  // which step_round() still provides for the phased API.
  while (round(kRunBlockSteps) > 0) {
  }
}

std::vector<RunStats> BatchEngine::run(std::span<const SimJob> jobs) {
  std::vector<RunStats> results(jobs.size());
  run(jobs, results);
  return results;
}

Count BatchEngine::lane_steps() const noexcept {
  Count total = retired_steps_;
  for (const BatchCell& cell : state_.cells) total += cell.steps;
  return total;
}

// --- Cohort mode ------------------------------------------------------------

void BatchEngine::init_cohort(const CohortShape& shape) {
  MCP_REQUIRE(shape.cache_size > 0, "cohort shape: cache_size must be positive");
  MCP_REQUIRE(shape.num_cores > 0, "cohort shape: need at least one core");
  const BatchStrategySpec& spec = shape.strategy;
  cohort_regions_.clear();
  if (spec.kind == BatchStrategySpec::Kind::kStaticPartition) {
    MCP_REQUIRE(spec.partition.size() == shape.num_cores,
                "static partition spec must have one part per core");
    std::size_t sum = 0;
    for (const std::size_t part : spec.partition) {
      MCP_REQUIRE(part >= 1, "every core's part must hold at least one page");
      sum += part;
    }
    MCP_REQUIRE(sum == shape.cache_size,
                "partition must sum to the cache size");
    cohort_regions_ = spec.partition;
  } else {
    MCP_REQUIRE(spec.partition.empty(),
                "shared strategy spec takes no partition");
    // Liveness: a faulting core never has its own fetch outstanding, so at
    // most p - 1 slots are reserved when a victim is needed; with K >= p
    // a present (evictable) slot always exists and drain() cannot throw.
    // K < p shapes can abort mid-run and belong on the scalar path.
    MCP_REQUIRE(shape.cache_size >= shape.num_cores,
                "cohort shared lanes need cache_size >= num_cores");
    cohort_regions_ = {shape.cache_size};
  }

  state_.clear();
  active_.clear();
  free_lanes_.clear();
  lane_stats_.clear();
  page_capacity_ = 0;
  retired_steps_ = 0;
  cohort_ = true;
  out_ = nullptr;
  out_size_ = 0;

  proto_ = BatchCell{};
  proto_.cache_size = static_cast<std::uint32_t>(shape.cache_size);
  proto_.num_cores = static_cast<std::uint32_t>(shape.num_cores);
  proto_.num_regions = static_cast<std::uint32_t>(cohort_regions_.size());
  proto_.page_bound = 0;
  proto_.tau = shape.fault_penalty;
  proto_.max_steps = shape.max_steps;
  proto_.mode = shape.shared_fetch;
  proto_.kind = spec.kind;
  proto_.policy = spec.policy;
  proto_.record_timeline = shape.record_fault_timeline;
  proto_.status = BatchLaneStatus::kFree;
  proto_.closed = false;
  proto_.active_cores = 0;
}

std::uint32_t BatchEngine::attach_lane() {
  MCP_REQUIRE(cohort_, "attach_lane: engine is not in cohort mode");
  std::uint32_t lane;
  if (!free_lanes_.empty()) {
    lane = free_lanes_.back();
    free_lanes_.pop_back();
  } else {
    // Grow every lane array by one uniform stride.  resize() preserves the
    // existing lanes in place: cohort strides are uniform, so the old
    // slices keep their offsets.
    lane = static_cast<std::uint32_t>(state_.cells.size());
    const std::size_t slots = proto_.cache_size;
    const std::size_t cores = proto_.num_cores;
    const std::size_t regions = proto_.num_regions;
    BatchState& st = state_;
    st.cells.emplace_back();
    st.slot_page.resize(st.slot_page.size() + slots, kInvalidPage);
    st.slot_status.resize(st.slot_status.size() + slots,
                          BatchSlotStatus::kFree);
    st.slot_ready.resize(st.slot_ready.size() + slots, 0);
    st.slot_stamp.resize(st.slot_stamp.size() + slots, kFreeKey);
    st.free_stack.resize(st.free_stack.size() + slots, 0);
    st.inflight.resize(st.inflight.size() + slots, 0);
    st.page_slot.resize(st.page_slot.size() + page_capacity_, kNoBatchSlot);
    st.core_ready.resize(st.core_ready.size() + cores, 0);
    st.core_finish.resize(st.core_finish.size() + cores, 0);
    st.core_seq.resize(st.core_seq.size() + cores, nullptr);
    st.core_len.resize(st.core_len.size() + cores, 0);
    st.core_next.resize(st.core_next.size() + cores, 0);
    st.core_pending.resize(st.core_pending.size() + cores, kInvalidPage);
    st.core_flags.resize(st.core_flags.size() + cores, 0);
    st.region_size.resize(st.region_size.size() + regions, 0);
    st.region_occ.resize(st.region_occ.size() + regions, 0);
    st.region_slot_base.resize(st.region_slot_base.size() + regions, 0);
    st.region_free_top.resize(st.region_free_top.size() + regions, 0);
    lane_stats_.emplace_back();
  }
  reset_lane(lane);
  BatchCell& cell = state_.cells[lane];
  cell.status = BatchLaneStatus::kStalled;
  cell.active_cores = proto_.num_cores;
  lane_stats_[lane] = RunStats(proto_.num_cores);
  // lane_stats_ may have reallocated; round() indexes through out_.
  out_ = lane_stats_.data();
  out_size_ = lane_stats_.size();
  return lane;
}

void BatchEngine::reset_lane(std::uint32_t lane) {
  BatchState& st = state_;
  BatchCell& cell = st.cells[lane];
  const std::size_t slots = proto_.cache_size;
  const std::size_t cores = proto_.num_cores;
  const std::size_t regions = proto_.num_regions;
  cell = proto_;
  cell.slot_base = static_cast<std::size_t>(lane) * slots;
  cell.core_base = static_cast<std::size_t>(lane) * cores;
  cell.region_base = static_cast<std::size_t>(lane) * regions;
  cell.page_base = static_cast<std::size_t>(lane) * page_capacity_;
  for (std::size_t s = cell.slot_base; s < cell.slot_base + slots; ++s) {
    st.slot_page[s] = kInvalidPage;
    st.slot_status[s] = BatchSlotStatus::kFree;
    st.slot_ready[s] = 0;
    st.slot_stamp[s] = kFreeKey;
  }
  for (std::size_t j = 0; j < cores; ++j) {
    const std::size_t cj = cell.core_base + j;
    st.core_ready[cj] = 0;
    st.core_finish[cj] = 0;
    st.core_seq[cj] = nullptr;
    st.core_len[cj] = 0;
    st.core_next[cj] = 0;
    st.core_pending[cj] = kInvalidPage;
    st.core_flags[cj] = 0;
  }
  std::size_t region_slot = cell.slot_base;
  for (std::size_t r = 0; r < regions; ++r) {
    const std::size_t rsize = cohort_regions_[r];
    st.region_size[cell.region_base + r] = static_cast<std::uint32_t>(rsize);
    st.region_slot_base[cell.region_base + r] =
        static_cast<std::uint32_t>(region_slot);
    st.region_free_top[cell.region_base + r] =
        static_cast<std::uint32_t>(rsize);
    st.region_occ[cell.region_base + r] = 0;
    for (std::size_t s = 0; s < rsize; ++s) {
      st.free_stack[region_slot + s] =
          static_cast<std::uint32_t>(region_slot + s);
    }
    region_slot += rsize;
  }
}

void BatchEngine::grow_page_capacity(std::size_t bound) {
  std::size_t cap = page_capacity_ == 0 ? 64 : page_capacity_;
  while (cap < bound) cap *= 2;
  const std::size_t lanes = state_.cells.size();
  std::vector<std::uint32_t> fresh(lanes * cap, kNoBatchSlot);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    BatchCell& cell = state_.cells[lane];
    std::copy_n(
        state_.page_slot.begin() + static_cast<std::ptrdiff_t>(cell.page_base),
        page_capacity_,
        fresh.begin() + static_cast<std::ptrdiff_t>(lane * cap));
    cell.page_base = lane * cap;
  }
  state_.page_slot = std::move(fresh);
  page_capacity_ = cap;
}

void BatchEngine::refresh_lane(std::uint32_t lane, const RequestSet& trace,
                               PageId page_bound, bool closed) {
  MCP_REQUIRE(cohort_, "refresh_lane: engine is not in cohort mode");
  MCP_REQUIRE(lane < state_.cells.size(), "refresh_lane: no such lane");
  BatchCell& cell = state_.cells[lane];
  MCP_REQUIRE(cell.status == BatchLaneStatus::kStalled,
              "refresh_lane: lane is not parked (free, running or ended)");
  MCP_REQUIRE(trace.num_cores() == cell.num_cores,
              "refresh_lane: trace core count does not match the cohort");
  MCP_REQUIRE(!cell.closed || closed, "refresh_lane: a closed lane cannot "
                                      "reopen");

  if (page_bound > page_capacity_) grow_page_capacity(page_bound);
  if (page_bound > cell.page_bound) cell.page_bound = page_bound;
  BatchState& st = state_;
  for (std::uint32_t j = 0; j < cell.num_cores; ++j) {
    const RequestSequence& seq = trace.sequence(static_cast<CoreId>(j));
    const std::size_t cj = cell.core_base + j;
    MCP_REQUIRE(seq.size() >= st.core_len[cj],
                "refresh_lane: a lane feed may only grow");
    st.core_seq[cj] = seq.pages().data();
    st.core_len[cj] = static_cast<std::uint32_t>(seq.size());
  }
  if (cell.record_timeline) {
    // Worst case one fault per request: pre-size here so drain() stays
    // allocation-free.
    for (std::uint32_t j = 0; j < cell.num_cores; ++j) {
      lane_stats_[lane]
          .core(static_cast<CoreId>(j))
          .fault_times.reserve(st.core_len[cell.core_base + j]);
    }
  }
  cell.closed = closed;
  // Wake only when the parked core can act: the model serves a step's cores
  // in increasing id, so data for later cores cannot unblock the lane, and
  // waking it would only re-park on the same core.  (A never-stepped lane
  // parks at core 0, which is also where its first step begins.)
  const std::size_t resume = cell.core_base + cell.resume_core;
  if (closed || st.core_len[resume] > st.core_next[resume]) {
    cell.status = BatchLaneStatus::kRunning;
    active_.push_back(lane);
  }
}

void BatchEngine::drain() {
  MCP_REQUIRE(cohort_, "drain: engine is not in cohort mode");
  std::optional<AllocGuard> guard;
  if (options_.alloc_guard) guard.emplace("batch engine cohort drain");
  while (round(kRunBlockSteps) > 0) {
  }
}

BatchLaneStatus BatchEngine::lane_status(std::uint32_t lane) const {
  MCP_REQUIRE(cohort_ && lane < state_.cells.size(),
              "lane_status: no such cohort lane");
  return state_.cells[lane].status;
}

RunStats BatchEngine::detach_lane(std::uint32_t lane) {
  MCP_REQUIRE(cohort_ && lane < state_.cells.size(),
              "detach_lane: no such cohort lane");
  BatchCell& cell = state_.cells[lane];
  MCP_REQUIRE(cell.status == BatchLaneStatus::kEnded,
              "detach_lane: lane has not ended");
  retired_steps_ += cell.steps;
  // Clear the lane's page-index entries through the slot/page bijection —
  // O(K) instead of O(page_capacity).
  for (std::size_t s = cell.slot_base; s < cell.slot_base + cell.cache_size;
       ++s) {
    if (state_.slot_status[s] != BatchSlotStatus::kFree) {
      state_.page_slot[cell.page_base + state_.slot_page[s]] = kNoBatchSlot;
    }
  }
  reset_lane(lane);
  free_lanes_.push_back(lane);
  RunStats result = std::move(lane_stats_[lane]);
  lane_stats_[lane] = RunStats();
  return result;
}

void BatchEngine::validate() const {
  // The validator allocates scratch; it is a checked-build/test facility,
  // not hot-path code, so it suspends any enclosing AllocGuard.
  AllocAllow allow;
  const BatchState& st = state_;

  std::size_t slot_base = 0;
  std::size_t core_base = 0;
  std::size_t region_base = 0;
  std::size_t page_base = 0;
  // Marks free-stack and in-flight members (disjoint sets, one array).
  std::vector<std::uint8_t> slot_seen(st.slot_page.size(), 0);
  std::vector<std::uint8_t> cell_active(st.cells.size(), 0);
  for (const std::uint32_t index : active_) {
    MCP_REQUIRE(index < st.cells.size(),
                "batch state: active list references a nonexistent cell");
    MCP_REQUIRE(cell_active[index] == 0,
                "batch state: cell listed as active twice");
    cell_active[index] = 1;
  }

  for (std::size_t i = 0; i < st.cells.size(); ++i) {
    const BatchCell& cell = st.cells[i];
    // Cohort lanes share a uniform page stride (page_capacity_) that may
    // exceed the lane's own page bound; load() lanes pack exactly.
    const std::size_t page_stride = cohort_ ? page_capacity_ : cell.page_bound;
    MCP_REQUIRE(cell.page_bound <= page_stride,
                "batch state: cell page bound exceeds its lane stride");
    MCP_REQUIRE(cell.slot_base == slot_base && cell.core_base == core_base &&
                    cell.region_base == region_base &&
                    cell.page_base == page_base,
                "batch state: cell lane bases are not contiguous");
    MCP_REQUIRE(slot_base + cell.cache_size <= st.slot_page.size() &&
                    core_base + cell.num_cores <= st.core_ready.size() &&
                    region_base + cell.num_regions <= st.region_size.size() &&
                    page_base + page_stride <= st.page_slot.size(),
                "batch state: cell lane slice exceeds the lane arrays");

    // Lane lifecycle: only kRunning lanes ride the active list, only
    // cohort-mode detach leaves kFree lanes behind, and a parked step is
    // coherent with its stall (resume core in range, neither done nor
    // holding a pending request — a stall happens at the cursor pull).
    MCP_REQUIRE((cell_active[i] != 0) == (cell.status == BatchLaneStatus::kRunning),
                "batch state: active list disagrees with lane status");
    switch (cell.status) {
      case BatchLaneStatus::kFree:
        MCP_REQUIRE(cohort_, "batch state: detached lane outside cohort mode");
        [[fallthrough]];
      case BatchLaneStatus::kEnded:
        MCP_REQUIRE(cell.active_cores == 0 && !cell.in_step,
                    "batch state: ended or detached lane still has live "
                    "cores or a parked step");
        break;
      case BatchLaneStatus::kRunning:
      case BatchLaneStatus::kStalled:
        MCP_REQUIRE(cell.active_cores > 0,
                    "batch state: runnable lane has no live cores");
        break;
    }
    if (cell.in_step) {
      MCP_REQUIRE(cell.status == BatchLaneStatus::kStalled,
                  "batch state: parked step on a lane that is not stalled");
      MCP_REQUIRE(cell.resume_core < cell.num_cores,
                  "batch state: stalled lane's resume core out of range");
      const std::size_t rj = core_base + cell.resume_core;
      MCP_REQUIRE(
          (st.core_flags[rj] & (kBatchCoreDone | kBatchCorePending)) == 0,
          "batch state: stalled lane's resume core is done or already "
          "holds a pending request");
    }

    const std::size_t slot_end = slot_base + cell.cache_size;
    std::size_t fetching = 0;
    for (std::size_t s = slot_base; s < slot_end; ++s) {
      // Eviction-key coherence: the victim scan trusts the key tags alone,
      // so a status/key desync would silently evict a reserved cell (or
      // never evict a present one) — check the folding invariant per slot.
      switch (st.slot_status[s]) {
        case BatchSlotStatus::kFree:
          MCP_REQUIRE(st.slot_stamp[s] == kFreeKey,
                      "batch state: free slot's eviction key is not kFreeKey");
          break;
        case BatchSlotStatus::kFetching:
          MCP_REQUIRE((st.slot_stamp[s] & kReservedKey) != 0 &&
                          st.slot_stamp[s] != kFreeKey,
                      "batch state: fetching slot's eviction key lacks the "
                      "reserved tag");
          break;
        case BatchSlotStatus::kPresent:
          MCP_REQUIRE(st.slot_stamp[s] < kReservedKey,
                      "batch state: present slot's eviction key carries a "
                      "reserved or free tag");
          break;
      }
      if (st.slot_status[s] == BatchSlotStatus::kFree) {
        MCP_REQUIRE(st.slot_page[s] == kInvalidPage,
                    "batch state: free slot still names a page");
        continue;
      }
      if (st.slot_status[s] == BatchSlotStatus::kFetching) ++fetching;
      const PageId page = st.slot_page[s];
      MCP_REQUIRE(page < cell.page_bound,
                  "batch state: slot holds a page outside the cell's bound");
      MCP_REQUIRE(st.page_slot[page_base + page] == s,
                  "batch state: page index does not point back at the slot "
                  "holding the page");
    }
    for (std::size_t q = 0; q < page_stride; ++q) {
      const std::uint32_t s = st.page_slot[page_base + q];
      if (s == kNoBatchSlot) continue;
      MCP_REQUIRE(q < cell.page_bound,
                  "batch state: page index entry beyond the cell's page "
                  "bound");
      MCP_REQUIRE(s >= slot_base && s < slot_end,
                  "batch state: page index points outside the cell's slot "
                  "lane (lane/cell bijection broken)");
      MCP_REQUIRE(st.slot_status[s] != BatchSlotStatus::kFree &&
                      st.slot_page[s] == q,
                  "batch state: page index points at a slot not holding the "
                  "page");
    }
    MCP_REQUIRE(cell.fetching == fetching,
                "batch state: in-flight count disagrees with slot statuses");
    for (std::size_t t = 0; t < cell.fetching; ++t) {
      const std::uint32_t f = st.inflight[slot_base + t];
      MCP_REQUIRE(f >= slot_base && f < slot_end &&
                      st.slot_status[f] == BatchSlotStatus::kFetching &&
                      slot_seen[f] == 0,
                  "batch state: in-flight lane names a non-fetching or "
                  "duplicate slot");
      slot_seen[f] = 1;
    }

    std::size_t region_slot = slot_base;
    for (std::size_t r = 0; r < cell.num_regions; ++r) {
      const std::size_t rsize = st.region_size[region_base + r];
      MCP_REQUIRE(st.region_slot_base[region_base + r] == region_slot,
                  "batch state: region slot ranges do not tile the cell's "
                  "slot lane in region order");
      std::size_t occupied = 0;
      for (std::size_t s = region_slot; s < region_slot + rsize; ++s) {
        if (st.slot_status[s] != BatchSlotStatus::kFree) ++occupied;
      }
      MCP_REQUIRE(st.region_occ[region_base + r] == occupied,
                  "batch state: region occupancy disagrees with the slot "
                  "statuses of its range");
      const std::size_t free_top = st.region_free_top[region_base + r];
      MCP_REQUIRE(free_top == rsize - occupied,
                  "batch state: free-stack depth disagrees with occupancy");
      for (std::size_t t = 0; t < free_top; ++t) {
        const std::uint32_t f = st.free_stack[region_slot + t];
        MCP_REQUIRE(f >= region_slot && f < region_slot + rsize &&
                        st.slot_status[f] == BatchSlotStatus::kFree &&
                        slot_seen[f] == 0,
                    "batch state: free stack names a non-free, foreign, or "
                    "duplicate slot");
        slot_seen[f] = 1;
      }
      region_slot += rsize;
    }
    MCP_REQUIRE(region_slot == slot_end,
                "batch state: region sizes do not sum to the cache size");

    std::size_t running = 0;
    for (std::size_t j = 0; j < cell.num_cores; ++j) {
      const std::size_t cj = core_base + j;
      MCP_REQUIRE(st.core_next[cj] <= st.core_len[cj],
                  "batch state: core cursor past the end of its sequence");
      if ((st.core_flags[cj] & kBatchCoreDone) == 0) ++running;
      if ((st.core_flags[cj] & kBatchCorePending) != 0) {
        MCP_REQUIRE(st.core_pending[cj] < cell.page_bound,
                    "batch state: pending request outside the page bound");
      }
      if (cell.status == BatchLaneStatus::kFree) {
        MCP_REQUIRE(st.core_flags[cj] == 0 && st.core_next[cj] == 0 &&
                        st.core_len[cj] == 0,
                    "batch state: detached lane has a live core");
      }
    }
    // A detached lane's cores are fully reset (flags 0) while its
    // active_cores is 0, so the flag/count coherence applies to the others.
    if (cell.status != BatchLaneStatus::kFree) {
      MCP_REQUIRE(running == cell.active_cores,
                  "batch state: active core count disagrees with core flags");
      // Done flags require a closed feed: an open lane must have every core
      // still live.
      if (!cell.closed) {
        MCP_REQUIRE(running == cell.num_cores,
                    "batch state: core finished on an unclosed lane");
      }
    }

    slot_base += cell.cache_size;
    core_base += cell.num_cores;
    region_base += cell.num_regions;
    page_base += page_stride;
  }
  MCP_REQUIRE(slot_base == st.slot_page.size() &&
                  core_base == st.core_ready.size() &&
                  region_base == st.region_size.size() &&
                  page_base == st.page_slot.size(),
              "batch state: cells do not tile the lane arrays");
}

std::vector<RunStats> SweepRunner::run_jobs(std::span<const SimJob> jobs,
                                            std::size_t batch_width) {
  MCP_REQUIRE(batch_width > 0,
              "SweepRunner::run_jobs: batch_width must be positive");
  std::vector<RunStats> results(jobs.size());
  const auto start = std::chrono::steady_clock::now();
  if (!jobs.empty()) {
    const std::size_t batches = (jobs.size() + batch_width - 1) / batch_width;
    ThreadPool::global().run_indexed(
        batches,
        [&](std::size_t b) {
          const std::size_t begin = b * batch_width;
          const std::size_t count = std::min(batch_width, jobs.size() - begin);
          BatchEngine engine;
          engine.run(jobs.subspan(begin, count),
                     std::span<RunStats>(results).subspan(begin, count));
        },
        options_.max_threads);
  }
  const auto stop = std::chrono::steady_clock::now();
  timing_.cells = jobs.size();
  timing_.wall_seconds = std::chrono::duration<double>(stop - start).count();
  timing_.max_threads = options_.max_threads;
  return results;
}

}  // namespace mcp
