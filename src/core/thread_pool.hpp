// Persistent worker pool for the sweep engine.
//
// Every empirical claim in this repo is validated by sweeping grids of
// (strategy x policy x K x p x tau) cells; the old parallel_for spawned and
// joined fresh threads per call, which dominated small sweeps and made the
// bench numbers noisy.  ThreadPool keeps `num_workers` threads alive for the
// process lifetime and feeds them from one task queue.
//
// Contracts:
//  * enqueue() never blocks on task execution (only on the queue mutex) and
//    is safe to call from inside a running task, so tasks may spawn tasks.
//  * The first exception thrown by any task is captured and rethrown from
//    the next wait_idle(); later exceptions of the same quiet period are
//    dropped (matching the old parallel_for contract).
//  * Destruction is graceful: queued work is drained, then workers join.
//    Exceptions still pending at destruction are discarded (destructors
//    must not throw).
//  * run_indexed() is the blocking data-parallel primitive: the caller
//    participates as a runner, so it is safe to call from inside a pool
//    task (the inline runner guarantees progress even when every worker is
//    busy — no deadlock by construction).
//
// Lock discipline: all mutable pool state is guarded by `mutex_` and
// annotated MCP_GUARDED_BY (core/annotations.hpp), so the `analyze` CI
// job's Clang thread-safety pass rejects any unguarded access at compile
// time.  The public entry points are MCP_EXCLUDES(mutex_): callers never
// hold the pool lock (a task calling enqueue() mid-run would otherwise
// self-deadlock).
//
// Determinism note: the pool itself promises nothing about execution order.
// Reproducibility across worker counts is the sweep layer's job (sweep.hpp):
// each cell writes only its own result slot and draws randomness only from a
// per-cell RNG derived from (master_seed, cell_index).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/annotations.hpp"

namespace mcp {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 = hardware_concurrency, minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queues `task` for execution on some worker.  Safe from inside a task.
  void enqueue(std::function<void()> task) MCP_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no task is running, then rethrows
  /// the first exception captured since the last wait (if any).  Must not be
  /// called from inside a pool task (it would wait on itself).
  void wait_idle() MCP_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  /// Blocking indexed dispatch: runs fn(i) for every i in [0, count) using
  /// at most `max_workers` concurrent runners (0 = one per pool worker plus
  /// the caller).  The caller thread is always one of the runners, so this
  /// never deadlocks even when called from inside a pool task with every
  /// worker busy.  The first exception thrown by any fn(i) cancels the
  /// remaining cells and is rethrown on the caller.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t max_workers = 0) MCP_EXCLUDES(mutex_);

  /// The process-wide shared pool (lazily constructed, hardware-sized).
  /// This is the one deliberate exception to the "no global mutable state"
  /// rule: worker threads are a process resource, exactly like the heap.
  static ThreadPool& global();

 private:
  void worker_loop() MCP_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::condition_variable work_cv_;  ///< workers sleep here
  std::condition_variable idle_cv_;  ///< wait_idle sleeps here
  std::deque<std::function<void()>> queue_ MCP_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;  ///< written by the ctor only
  std::size_t in_flight_ MCP_GUARDED_BY(mutex_) = 0;  ///< tasks executing
  bool stopping_ MCP_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ MCP_GUARDED_BY(mutex_);
};

}  // namespace mcp
