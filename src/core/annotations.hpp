// Clang thread-safety annotations and the annotated lock primitives the
// concurrent structures of this repo are written against.
//
// The repo's headline guarantee — bit-identical sweep/solver/service
// results at any worker, shard, batch or chunk count — rests on a small
// set of lock- and atomic-coordination invariants (DESIGN.md §10,
// "Static concurrency & determinism analysis").  The dynamic checkers
// (TSan, the differential tests, AllocGuard) catch violations that
// *execute*; the annotations below let Clang's `-Wthread-safety`
// analysis reject them at compile time, on every path, executed or not.
// The `analyze` CI job builds with `-DMCP_ANALYZE=ON` under Clang and
// treats any thread-safety warning as an error.
//
// Conventions (enforced by review + the analyze job):
//  * every field whose access is serialized by a mutex carries
//    MCP_GUARDED_BY(that_mutex);
//  * member functions that must (or must not) run under a lock carry
//    MCP_REQUIRES / MCP_EXCLUDES;
//  * locks are mcp::Mutex + mcp::LockGuard / mcp::UniqueLock — never raw
//    std::mutex with std::lock_guard.  libstdc++'s lock types are not
//    annotated, so the analysis cannot see through them; the thin
//    wrappers below are, at zero runtime cost.
//  * condition-variable waits use an explicit `while (!pred) cv.wait(...)`
//    loop inside the annotated critical section, not the predicate
//    overload: the analysis treats the capability as held across the
//    wait (the standard treatment — the predicate re-check happens with
//    the lock reacquired), and a lambda predicate would be analyzed as
//    an unannotated separate function.
//  * purely atomic-coordinated structures (MpscQueue, the mcpd shard
//    wake protocol, ResponseMailbox) have no capability to annotate;
//    their invariant — every load/store names an explicit memory_order —
//    is enforced by `tools/verify/mcp_verify.py` rule `atomic-order`.
//
// All macros expand to nothing on compilers without the capability
// attributes (GCC, MSVC), so the annotations are free documentation off
// Clang.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MCP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MCP_THREAD_ANNOTATION
#define MCP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define MCP_CAPABILITY(name) MCP_THREAD_ANNOTATION(capability(name))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define MCP_SCOPED_CAPABILITY MCP_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define MCP_GUARDED_BY(x) MCP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field annotation: the pointed-to data is guarded by `x` (the
/// pointer itself may be read freely).
#define MCP_PT_GUARDED_BY(x) MCP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities.
#define MCP_REQUIRES(...) \
  MCP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: the function acquires the listed capabilities
/// (its own `this` for lock() of a capability class).
#define MCP_ACQUIRE(...) \
  MCP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: acquires the capabilities iff it returns `ret`.
#define MCP_TRY_ACQUIRE(ret, ...) \
  MCP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function annotation: the function releases the listed capabilities.
#define MCP_RELEASE(...) \
  MCP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (the function acquires them itself, or would deadlock).
#define MCP_EXCLUDES(...) MCP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the named capability.
#define MCP_RETURN_CAPABILITY(x) MCP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot model (documented at
/// each use site; a bare use without a comment is a review error).
#define MCP_NO_THREAD_SAFETY_ANALYSIS \
  MCP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mcp {

/// std::mutex with the capability attribute the analysis needs.  Same
/// size, same cost — lock()/unlock() are inline forwards.
class MCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MCP_ACQUIRE() { mutex_.lock(); }
  void unlock() MCP_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() MCP_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// The raw std::mutex, for std::condition_variable interop only (the
  /// wait itself releases/reacquires outside the analysis' view — the
  /// standard treatment of condition waits; see the header comment).
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Annotated std::lock_guard equivalent: acquires on construction,
/// releases on destruction, no manual unlock.
class MCP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) MCP_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~LockGuard() MCP_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

/// Annotated std::unique_lock equivalent for condition-variable waits and
/// early manual release.  native() hands the underlying unique_lock to
/// std::condition_variable::wait.
class MCP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) MCP_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~UniqueLock() MCP_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// Early release (the destructor then does nothing).
  void unlock() MCP_RELEASE() { lock_.unlock(); }

  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace mcp
