#include "core/request.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "core/error.hpp"

namespace mcp {

void RequestSequence::append_repeated(std::span<const PageId> pages, std::size_t reps) {
  pages_.reserve(pages_.size() + pages.size() * reps);
  for (std::size_t r = 0; r < reps; ++r) {
    pages_.insert(pages_.end(), pages.begin(), pages.end());
  }
}

std::size_t RequestSequence::distinct_pages() const {
  std::unordered_set<PageId> seen(pages_.begin(), pages_.end());
  return seen.size();
}

std::size_t RequestSet::total_requests() const noexcept {
  std::size_t n = 0;
  for (const auto& seq : seqs_) n += seq.size();
  return n;
}

std::size_t RequestSet::max_sequence_length() const noexcept {
  std::size_t m = 0;
  for (const auto& seq : seqs_) m = std::max(m, seq.size());
  return m;
}

std::vector<PageId> RequestSet::universe() const {
  std::unordered_set<PageId> seen;
  for (const auto& seq : seqs_) seen.insert(seq.begin(), seq.end());
  std::vector<PageId> pages(seen.begin(), seen.end());
  std::sort(pages.begin(), pages.end());
  return pages;
}

bool RequestSet::is_disjoint() const {
  std::unordered_set<PageId> seen;
  for (const auto& seq : seqs_) {
    std::unordered_set<PageId> mine(seq.begin(), seq.end());
    for (PageId page : mine) {
      if (!seen.insert(page).second) return false;
    }
  }
  return true;
}

std::vector<CoreId> RequestSet::owner_map(PageId universe_size) const {
  std::vector<CoreId> owner(universe_size, kInvalidCore);
  for (CoreId core = 0; core < seqs_.size(); ++core) {
    for (PageId page : seqs_[core]) {
      MCP_REQUIRE(page < universe_size, "owner_map: page id outside universe bound");
      if (owner[page] == kInvalidCore) {
        owner[page] = core;
      } else {
        MCP_REQUIRE(owner[page] == core,
                    "owner_map requires a disjoint request set");
      }
    }
  }
  return owner;
}

PageId RequestSet::page_bound() const noexcept {
  PageId bound = 0;
  for (const auto& seq : seqs_) {
    for (PageId page : seq) bound = std::max(bound, page + 1);
  }
  return bound;
}

std::string RequestSet::describe() const {
  std::ostringstream os;
  os << "p=" << seqs_.size() << " n=" << total_requests() << " (";
  for (std::size_t j = 0; j < seqs_.size(); ++j) {
    if (j > 0) os << '/';
    os << seqs_[j].size();
  }
  os << ')';
  return os.str();
}

std::vector<PageId> page_block(PageId first, std::size_t count) {
  std::vector<PageId> pages(count);
  for (std::size_t i = 0; i < count; ++i) pages[i] = first + static_cast<PageId>(i);
  return pages;
}

}  // namespace mcp
