// Run statistics: fault/hit counts, completion times, fault timelines and
// fairness measures.
//
// FTF needs only total faults; PIF needs "faults of core i by time t", so
// the collector optionally records the timestamp of every fault.  Fairness
// metrics (Jain's index over slowdowns) support the paper's closing
// discussion that fairness, not just total faults, is the interesting
// objective for multicore paging.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcp {

/// Fixed-bucket latency histogram (HdrHistogram-style: one power-of-two
/// exponent range per row, kSubBuckets linear sub-buckets per row), sized
/// for nanosecond samples from ~1ns to ~18s.  record() is allocation-free
/// and O(1); quantiles are deterministic (bucket upper edge), so two runs
/// that record the same samples report identical percentiles.  Used by the
/// mcpd service layer (epoch/query latency) and the E13 lab verdicts.
class LatencyHistogram {
 public:
  /// Adds one sample (any unit; the service layer records nanoseconds).
  void record(std::uint64_t value) noexcept;
  /// Convenience for wall-clock seconds: records round(seconds * 1e9) ns.
  void record_seconds(double seconds) noexcept;

  /// Merges another histogram's samples into this one (bucket-wise add).
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_; }

  /// Upper edge of the bucket containing quantile `q` in [0, 1]; 0 when the
  /// histogram is empty.  Relative bucket error is below
  /// 2^(1-kSubBucketBits), i.e. ~6% with the default 32 sub-buckets.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

  /// One-line JSON object, stable field set:
  /// {"count":N,"p50":..,"p90":..,"p99":..,"max":..} (values in the unit
  /// recorded, nanoseconds throughout this repo).
  [[nodiscard]] std::string to_json() const;

  static constexpr std::size_t kSubBucketBits = 5;  ///< 32 sub-buckets/row.
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  /// Row r >= 1 holds values whose top bit is kSubBucketBits + r - 1, so
  /// row 64 - kSubBucketBits covers bit 63: every uint64_t has a bucket.
  static constexpr std::size_t kRows = 64 - kSubBucketBits + 1;

 private:
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_edge(
      std::size_t index) noexcept;

  std::array<std::uint64_t, kRows * kSubBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

/// Per-core tallies of one run.
struct CoreStats {
  Count hits = 0;
  Count faults = 0;
  Count requests = 0;          ///< hits + faults (requests actually issued).
  Time completion_time = 0;    ///< Timestep at which the last request's
                               ///< service finished (hits finish in their own
                               ///< step; faults tau steps later).
  std::vector<Time> fault_times;  ///< Issue time of each fault (if recorded).

  [[nodiscard]] double fault_rate() const noexcept {
    return requests == 0 ? 0.0 : static_cast<double>(faults) / static_cast<double>(requests);
  }
};

/// Aggregated results of a simulation run.
class RunStats {
 public:
  RunStats() = default;
  explicit RunStats(std::size_t num_cores) : cores_(num_cores) {}

  [[nodiscard]] std::size_t num_cores() const noexcept { return cores_.size(); }
  [[nodiscard]] const CoreStats& core(CoreId core) const { return cores_.at(core); }
  [[nodiscard]] CoreStats& core(CoreId core) { return cores_.at(core); }

  [[nodiscard]] Count total_faults() const noexcept;
  [[nodiscard]] Count total_hits() const noexcept;
  [[nodiscard]] Count total_requests() const noexcept;
  /// Max over cores of completion time (Hassidim's makespan objective; we
  /// report it for cross-model comparisons even though FTF/PIF are the
  /// paper's objectives).
  [[nodiscard]] Time makespan() const noexcept;
  [[nodiscard]] double overall_fault_rate() const noexcept;

  /// Number of faults core `core` has incurred on requests issued at
  /// timesteps < `t` (the "at time t" accounting used by PIF; a request
  /// issued exactly at t-1 that faults counts, one issued at t does not).
  /// Requires the fault timeline to have been recorded.
  [[nodiscard]] Count faults_before(CoreId core, Time t) const;

  /// The per-core fault vector at time `t` (see faults_before).
  [[nodiscard]] std::vector<Count> fault_vector_at(Time t) const;

  /// True iff fault_vector_at(t) <= bounds componentwise.
  [[nodiscard]] bool within_bounds_at(Time t, const std::vector<Count>& bounds) const;

  /// Jain's fairness index over per-core slowdowns.  Slowdown of core j is
  /// completion_time / (requests - 1 ... clamped to >=1): 1.0 would be an
  /// all-hit run.  Index is 1 for perfectly equal slowdowns, down to 1/p.
  [[nodiscard]] double jain_fairness() const;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string report(const std::string& label = {}) const;

  /// One-line JSON object with the run's summary shape: totals, makespan,
  /// Jain fairness, and per-core hits/faults/completion times.  This is the
  /// form mcp::lab embeds in its JSONL records (docs/LAB.md), so the field
  /// set is stable: {"total":{...},"makespan":N,"jain_fairness":X,
  /// "end_time":N,"cores":[{...}]}.  Fault timelines are intentionally
  /// omitted (they can be arbitrarily long; record them via a Series).
  [[nodiscard]] std::string to_json() const;

  Time end_time = 0;  ///< First timestep at which every core was finished.
  /// Step-loop iterations the simulator executed (fast-forwarded idle spans
  /// count once).  Engine throughput = sim_steps / wall time; not part of
  /// to_json() so the lab record shape stays stable.
  Count sim_steps = 0;

 private:
  std::vector<CoreStats> cores_;
};

}  // namespace mcp
