// Deterministic parallel sweep engine.
//
// A "sweep" is a grid of independent cells — (strategy x policy x K x p x
// tau) configurations in the benches, candidate partitions in partition
// search, trials in the competitive-ratio harness.  SweepRunner executes the
// cells on the shared ThreadPool and guarantees that the result vector is
// bit-identical for ANY worker count (1, N, or hardware):
//
//  * each cell writes only its own slot of the pre-sized result vector, so
//    scheduling order cannot reorder results;
//  * each cell draws randomness only from a private Rng derived from
//    (master_seed, cell_index) via the rng.hpp splitter, so no cell ever
//    observes another cell's draws.
//
// That contract — asserted by tests/test_sweep_determinism.cpp — is what
// makes the repo's bench trajectory trustworthy: a result can be reproduced
// on a laptop or a 128-way box from the master seed alone.
//
// Static analysis: the sweep layer coordinates by *disjoint-slot
// confinement*, not locks — there is no capability to annotate (see
// core/annotations.hpp for the conventions).  The lock-coordinated half of
// the contract lives in ThreadPool, whose state is MCP_GUARDED_BY-checked
// by the `analyze` CI job; the determinism half (per-cell RNG, no wall
// clock, no hash-order emission) is enforced by tools/verify/mcp_verify.py.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"

namespace mcp {

struct SimJob;  // core/batch_state.hpp

/// Default lanes per batch for run_jobs: wide enough to amortize the batch
/// load, small enough that a sweep still spreads across pool workers.
inline constexpr std::size_t kDefaultBatchWidth = 64;

struct SweepOptions {
  /// Root of every cell's RNG stream; two sweeps with equal seeds and equal
  /// cell functions produce equal results.
  std::uint64_t master_seed = 0x5EED;
  /// Concurrency cap: 0 = one runner per pool worker plus the caller, 1 =
  /// serial (still bit-identical to any parallel run).
  std::size_t max_threads = 0;
};

/// Wall-clock accounting of the most recent sweep — the repo's perf
/// baseline channel.  Benches emit it via json() into their output so a CI
/// trajectory can track cells/sec.
struct SweepTiming {
  std::size_t cells = 0;
  double wall_seconds = 0.0;
  std::size_t max_threads = 0;  ///< as configured (0 = all workers)

  [[nodiscard]] double cells_per_second() const noexcept;
  /// One-line JSON record, e.g.
  /// {"sweep":"E12.zipf","cells":36,"wall_seconds":0.012,...}.
  [[nodiscard]] std::string json(const std::string& sweep_name) const;
};

/// The per-cell RNG stream: depends on (master_seed, cell_index) only —
/// never on worker count or scheduling.  Distinct indices give statistically
/// independent streams (SplitMix64 mixing, as Rng::fork).
[[nodiscard]] Rng sweep_cell_rng(std::uint64_t master_seed,
                                 std::size_t cell_index) noexcept;

class SweepRunner {
 public:
  SweepRunner() = default;
  explicit SweepRunner(SweepOptions options) : options_(options) {}

  /// Evaluates fn(cell_index, rng) for every cell in [0, cells) on the
  /// shared pool and returns the results in cell order.  The result type
  /// must be default-constructible.  Deterministic for any max_threads.
  template <typename Fn>
  auto run(std::size_t cells, Fn&& fn)
      -> std::vector<
          std::decay_t<std::invoke_result_t<Fn&, std::size_t, Rng&>>> {
    using Cell = std::decay_t<std::invoke_result_t<Fn&, std::size_t, Rng&>>;
    std::vector<Cell> results(cells);
    const auto start = std::chrono::steady_clock::now();
    if (cells > 0) {
      ThreadPool::global().run_indexed(
          cells,
          [&](std::size_t i) {
            Rng rng = sweep_cell_rng(options_.master_seed, i);
            results[i] = fn(i, rng);
          },
          options_.max_threads);
    }
    const auto stop = std::chrono::steady_clock::now();
    timing_.cells = cells;
    timing_.wall_seconds = std::chrono::duration<double>(stop - start).count();
    timing_.max_threads = options_.max_threads;
    return results;
  }

  /// Executes pre-materialized simulation jobs through the batched lockstep
  /// engine (core/batch_engine.hpp), `batch_width` lanes per batch, batches
  /// dispatched over the shared pool.  Results are bit-identical to running
  /// each job through mcp::Simulator with the matching strategy object, for
  /// any worker count AND any batch width: lanes are fully independent and
  /// each batch writes only its own contiguous slice of the result vector.
  /// Jobs draw no randomness, so the master seed plays no role here.
  /// Records last_timing() like run().  Defined in batch_engine.cpp.
  [[nodiscard]] std::vector<RunStats> run_jobs(
      std::span<const SimJob> jobs,
      std::size_t batch_width = kDefaultBatchWidth);

  [[nodiscard]] const SweepOptions& options() const noexcept { return options_; }
  /// Timing of the most recent run() (zeroed cells before the first run).
  [[nodiscard]] const SweepTiming& last_timing() const noexcept {
    return timing_;
  }

 private:
  SweepOptions options_{};
  SweepTiming timing_{};
};

}  // namespace mcp
