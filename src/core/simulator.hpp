// The discrete-time multicore shared-cache paging simulator.
//
// Implements the model of Section 3 of the paper exactly:
//   * one shared cache of K pages serves p request sequences;
//   * all ready cores issue one request per timestep, served logically in
//     increasing core id (online strategies never see later same-step
//     requests);
//   * a hit completes within its step; a fault evicts its victim
//     immediately, reserves the cell, and delays the remainder of the
//     faulting core's sequence by an additive tau (the request occupies
//     tau+1 steps, the fetched page becomes usable at issue_time + tau + 1);
//   * fetches proceed in parallel across cores; reserved cells cannot be
//     evicted.
//
// The simulator is the single source of truth: strategies only *propose*
// evictions, and every proposal is validated against CacheState before it
// is applied, so a buggy or dishonest strategy cannot corrupt a run's
// accounting.
#pragma once

#include <span>
#include <vector>

#include "core/cache_state.hpp"
#include "core/events.hpp"
#include "core/request.hpp"
#include "core/stats.hpp"
#include "core/strategy.hpp"
#include "core/stream.hpp"
#include "core/types.hpp"

namespace mcp {

/// Result of one incremental request pull (RequestSource::pull).
enum class PullStatus {
  kReady,    ///< `page` was filled; the request is consumed.
  kEnded,    ///< The core's sequence is complete (permanent).
  kStalled,  ///< Not available *yet*; retry after more input arrives.
};

/// Incremental pull interface for sessions whose input arrives over time
/// (the mcpd service layer feeds request chunks as clients send them).
/// Unlike RequestStream, a source may answer "not yet": the session then
/// suspends exactly where it is — mid-step, before the stalled core — and
/// resumes bit-identically once data shows up, so a chunked feed produces
/// the same run as a materialized trace.
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  [[nodiscard]] virtual std::size_t num_cores() const = 0;
  /// Pulls core `core`'s next request.  kReady consumes it (never re-asked);
  /// kStalled leaves it pending (the same position is re-pulled later).
  virtual PullStatus pull(CoreId core, PageId& page) = 0;
};

/// A resumable simulation: the run_stream step loop of the Simulator, made
/// suspendable at request-pull boundaries.  This is the engine behind both
/// Simulator::run_stream (which drives it to completion in one advance())
/// and the mcpd service sessions (which advance() after every ingested
/// chunk).  Because both paths execute this one loop, a daemon session's
/// fault accounting is bit-identical to a direct library run by
/// construction — the shard-determinism contract of docs/MCPD.md.
///
/// Suspension semantics: the model serves all ready cores of a timestep in
/// increasing core order, and online strategies must never observe a later
/// same-step request before an earlier one.  advance() therefore stalls the
/// *whole session* the moment the next ready core's request is unavailable,
/// remembering its mid-step position; earlier cores of that step are
/// already served and are not re-served on resume.
class SimSession {
 public:
  /// Sets up the run and calls strategy.attach (exactly as a Simulator run
  /// would).  `observers` are not owned and must outlive the session.
  SimSession(const SimConfig& config, std::size_t num_cores,
             CacheStrategy& strategy, const RequestSet* offline_info = nullptr,
             std::span<SimObserver* const> observers = {});

  /// Steps until every core ended (returns true; the session is finished
  /// and stats() is final) or some ready core's pull stalled (returns
  /// false; call advance() again once the source has more data).
  bool advance(RequestSource& source);

  [[nodiscard]] bool finished() const noexcept { return finished_; }
  /// Live statistics: counts cover exactly the requests served so far.
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }
  /// Moves the final statistics out; requires finished().
  [[nodiscard]] RunStats take_stats();
  /// The current simulated timestep.
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  struct CoreRuntime {
    Time ready_at = 0;        ///< Earliest step the next request can issue.
    Time last_finish = 0;     ///< Service-completion time of the last request.
    std::size_t issued = 0;   ///< Requests issued so far (seq_index of next).
    bool has_pending = false; ///< A request was pulled but not yet served.
    PageId pending = kInvalidPage;
    bool done = false;
  };

  void serve_request(CoreId core, PageId page, Time now, CoreRuntime& runtime);
  void apply_evictions(const std::vector<PageId>& victims, PageId incoming,
                       CoreId cause_core, Time now, EvictionCause cause);

  template <typename Fn>
  void notify(Fn&& fn) {
    for (SimObserver* obs : observers_) fn(*obs);
  }

  SimConfig config_;
  CacheStrategy* strategy_;
  std::vector<SimObserver*> observers_;
  CacheState cache_;
  RunStats stats_;
  std::vector<CoreRuntime> cores_;
  std::size_t active_;
  Time now_ = 0;
  Time steps_ = 0;
  Time stalled_steps_ = 0;
  CoreId resume_core_ = 0;   ///< Mid-step resume position (valid iff in_step_).
  bool in_step_ = false;     ///< Step preamble for now_ already executed.
  bool any_deferred_ = false;
  bool any_served_ = false;
  bool finished_ = false;
  // Reusable eviction scratch buffers (the allocation-free step-loop
  // contract): cleared before every strategy call, never reallocated after
  // the first few faults.
  std::vector<PageId> fault_evictions_;
  std::vector<PageId> voluntary_evictions_;
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);

  /// Registers a passive observer for subsequent runs (not owned; must
  /// outlive the run).  Observers fire in registration order, after the
  /// stream's own observer.
  void add_observer(SimObserver* observer);
  void clear_observers() { observers_.clear(); }

  /// Serves a materialized request set with `strategy`.  The strategy's
  /// attach() receives the request set, so offline strategies may use it.
  RunStats run(const RequestSet& requests, CacheStrategy& strategy);

  /// Serves requests pulled from `stream` (possibly adaptive).  If
  /// `offline_info` is non-null it is forwarded to the strategy's attach();
  /// adaptive runs normally pass nullptr so the strategy stays online.
  RunStats run_stream(RequestStream& stream, CacheStrategy& strategy,
                      const RequestSet* offline_info = nullptr);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  SimConfig config_;
  std::vector<SimObserver*> observers_;
  std::vector<SimObserver*> active_observers_;  // stream observer + observers_
};

/// Convenience: one-shot run of `strategy` on `requests` under `config`.
RunStats simulate(const SimConfig& config, const RequestSet& requests,
                  CacheStrategy& strategy);

}  // namespace mcp
