// The discrete-time multicore shared-cache paging simulator.
//
// Implements the model of Section 3 of the paper exactly:
//   * one shared cache of K pages serves p request sequences;
//   * all ready cores issue one request per timestep, served logically in
//     increasing core id (online strategies never see later same-step
//     requests);
//   * a hit completes within its step; a fault evicts its victim
//     immediately, reserves the cell, and delays the remainder of the
//     faulting core's sequence by an additive tau (the request occupies
//     tau+1 steps, the fetched page becomes usable at issue_time + tau + 1);
//   * fetches proceed in parallel across cores; reserved cells cannot be
//     evicted.
//
// The simulator is the single source of truth: strategies only *propose*
// evictions, and every proposal is validated against CacheState before it
// is applied, so a buggy or dishonest strategy cannot corrupt a run's
// accounting.
#pragma once

#include <vector>

#include "core/cache_state.hpp"
#include "core/events.hpp"
#include "core/request.hpp"
#include "core/stats.hpp"
#include "core/strategy.hpp"
#include "core/stream.hpp"
#include "core/types.hpp"

namespace mcp {

class Simulator {
 public:
  explicit Simulator(SimConfig config);

  /// Registers a passive observer for subsequent runs (not owned; must
  /// outlive the run).  Observers fire in registration order, after the
  /// stream's own observer.
  void add_observer(SimObserver* observer);
  void clear_observers() { observers_.clear(); }

  /// Serves a materialized request set with `strategy`.  The strategy's
  /// attach() receives the request set, so offline strategies may use it.
  RunStats run(const RequestSet& requests, CacheStrategy& strategy);

  /// Serves requests pulled from `stream` (possibly adaptive).  If
  /// `offline_info` is non-null it is forwarded to the strategy's attach();
  /// adaptive runs normally pass nullptr so the strategy stays online.
  RunStats run_stream(RequestStream& stream, CacheStrategy& strategy,
                      const RequestSet* offline_info = nullptr);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  struct CoreRuntime {
    Time ready_at = 0;        ///< Earliest step the next request can issue.
    Time last_finish = 0;     ///< Service-completion time of the last request.
    std::size_t issued = 0;   ///< Requests issued so far (seq_index of next).
    bool has_pending = false; ///< A request was pulled but not yet served
                              ///< (kJoinsFetch blocking only).
    PageId pending = kInvalidPage;
    bool done = false;
  };

  void serve_request(CoreId core, PageId page, Time now, CacheState& cache,
                     CacheStrategy& strategy, RunStats& stats,
                     CoreRuntime& runtime);
  void apply_evictions(const std::vector<PageId>& victims, PageId incoming,
                       CoreId cause_core, Time now, CacheState& cache,
                       EvictionCause cause);

  // Observer fan-out helpers.
  template <typename Fn>
  void notify(Fn&& fn) {
    for (SimObserver* obs : active_observers_) fn(*obs);
  }

  SimConfig config_;
  std::vector<SimObserver*> observers_;
  std::vector<SimObserver*> active_observers_;  // stream observer + observers_
  // Reusable eviction scratch buffers (the allocation-free step-loop
  // contract): cleared before every strategy call, never reallocated after
  // the first few faults.
  std::vector<PageId> fault_evictions_;
  std::vector<PageId> voluntary_evictions_;
};

/// Convenience: one-shot run of `strategy` on `requests` under `config`.
RunStats simulate(const SimConfig& config, const RequestSet& requests,
                  CacheStrategy& strategy);

}  // namespace mcp
