// Text serialization of multicore request traces.
//
// Format ("mcptrace v1"): a line-oriented format that is diff-friendly and
// easy to generate from external tools (e.g. Pin/Valgrind post-processing):
//
//   # comments and blank lines are ignored
//   mcptrace 1
//   cores <p>
//   seq <core> <n> <page_0> <page_1> ... <page_{n-1}>
//
// One `seq` line per core, in any order; every core in [0, p) must appear
// exactly once (empty sequences use n=0).
#pragma once

#include <iosfwd>
#include <string>

#include "core/request.hpp"

namespace mcp {

/// Writes `requests` to `os` in mcptrace v1 format.
void write_trace(std::ostream& os, const RequestSet& requests);

/// Parses an mcptrace v1 document.  Throws InputError on malformed input.
[[nodiscard]] RequestSet read_trace(std::istream& is);

/// File-path conveniences.
void save_trace(const std::string& path, const RequestSet& requests);
[[nodiscard]] RequestSet load_trace(const std::string& path);

/// Parses the interleaved pairs format most trace post-processors emit:
/// one "<core> <page>" pair per line (comments/blank lines ignored), cores
/// numbered from 0.  The per-core request order is the line order; the
/// interleaving itself carries no timing (the simulator re-times requests
/// per the model).  Cores never mentioned get empty sequences up to the
/// highest core id seen.  Throws InputError on malformed lines.
[[nodiscard]] RequestSet read_trace_pairs(std::istream& is);

}  // namespace mcp
