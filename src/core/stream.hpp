// Request streams: where the simulator pulls requests from.
//
// Most experiments use a materialized RequestSet, but the paper's lower
// bounds (Lemma 1, Theorem 1.3) are *adaptive adversaries*: the next request
// depends on what the algorithm evicted.  RequestStream abstracts both; an
// adaptive stream additionally registers as a SimObserver to watch
// evictions.
#pragma once

#include <optional>
#include <vector>

#include "core/events.hpp"
#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp {

/// Pull-based request source, one lane per core.  `next(core)` is called
/// exactly once per request when the core becomes ready to issue; returning
/// nullopt permanently finishes the core.
class RequestStream {
 public:
  virtual ~RequestStream() = default;

  [[nodiscard]] virtual std::size_t num_cores() const = 0;
  /// The next page core `core` requests, or nullopt if its sequence ended.
  virtual std::optional<PageId> next(CoreId core) = 0;
  /// Observer hook for adaptive streams; nullptr for oblivious ones.
  virtual SimObserver* observer() { return nullptr; }
};

/// Stream over a fixed, fully materialized RequestSet.
class FixedStream final : public RequestStream {
 public:
  explicit FixedStream(const RequestSet& requests)
      : requests_(&requests), cursor_(requests.num_cores(), 0) {}

  [[nodiscard]] std::size_t num_cores() const override {
    return requests_->num_cores();
  }

  std::optional<PageId> next(CoreId core) override {
    const RequestSequence& seq = requests_->sequence(core);
    std::size_t& pos = cursor_[core];
    if (pos >= seq.size()) return std::nullopt;
    return seq[pos++];
  }

 private:
  const RequestSet* requests_;
  std::vector<std::size_t> cursor_;
};

/// Records every request an (adaptive) stream emitted, so the resulting
/// fixed trace can be replayed against reference algorithms (e.g. the
/// offline optimum that Lemma 1's ratio is measured against).
class RecordingStream final : public RequestStream, public SimObserver {
 public:
  explicit RecordingStream(RequestStream& inner)
      : inner_(&inner), recorded_(inner.num_cores()) {}

  [[nodiscard]] std::size_t num_cores() const override { return inner_->num_cores(); }

  std::optional<PageId> next(CoreId core) override {
    auto page = inner_->next(core);
    if (page) recorded_.sequence(core).push_back(*page);
    return page;
  }

  SimObserver* observer() override { return this; }

  /// The trace issued so far.
  [[nodiscard]] const RequestSet& recorded() const noexcept { return recorded_; }

  // SimObserver passthrough to the inner stream's observer, if any.
  void on_step_begin(Time now) override { forward()->on_step_begin(now); }
  void on_hit(const AccessContext& ctx) override { forward()->on_hit(ctx); }
  void on_fault(const AccessContext& ctx) override { forward()->on_fault(ctx); }
  void on_evict(PageId page, CoreId core, Time now, EvictionCause cause) override {
    forward()->on_evict(page, core, now, cause);
  }
  void on_fetch_complete(PageId page, CoreId core, Time now) override {
    forward()->on_fetch_complete(page, core, now);
  }
  void on_core_done(CoreId core, Time finish) override {
    forward()->on_core_done(core, finish);
  }
  void on_step_end(Time now) override { forward()->on_step_end(now); }

 private:
  SimObserver* forward() {
    static SimObserver null_observer;
    SimObserver* obs = inner_->observer();
    return obs != nullptr ? obs : &null_observer;
  }

  RequestStream* inner_;
  RequestSet recorded_;
};

}  // namespace mcp
