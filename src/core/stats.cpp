#include "core/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace mcp {

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const std::size_t msb = static_cast<std::size_t>(std::bit_width(value)) - 1;
  const std::size_t row = msb - kSubBucketBits + 1;
  return row * kSubBuckets + static_cast<std::size_t>(value >> row);
}

std::uint64_t LatencyHistogram::bucket_upper_edge(std::size_t index) noexcept {
  const std::size_t row = index / kSubBuckets;
  const std::uint64_t sub = index % kSubBuckets;
  if (row == 0) return sub;  // row 0 is exact: bucket i holds value i only
  return ((sub + 1) << row) - 1;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_index(value)];
  ++count_;
  max_ = std::max(max_, value);
}

void LatencyHistogram::record_seconds(double seconds) noexcept {
  if (!(seconds > 0.0)) {
    record(0);
    return;
  }
  record(static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  target = std::clamp<std::uint64_t>(target, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(bucket_upper_edge(i), max_);
  }
  return max_;  // unreachable: all samples are bucketed
}

std::string LatencyHistogram::to_json() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"p50\":" << p50() << ",\"p90\":" << p90()
     << ",\"p99\":" << p99() << ",\"max\":" << max_ << '}';
  return os.str();
}

Count RunStats::total_faults() const noexcept {
  Count sum = 0;
  for (const auto& c : cores_) sum += c.faults;
  return sum;
}

Count RunStats::total_hits() const noexcept {
  Count sum = 0;
  for (const auto& c : cores_) sum += c.hits;
  return sum;
}

Count RunStats::total_requests() const noexcept {
  Count sum = 0;
  for (const auto& c : cores_) sum += c.requests;
  return sum;
}

Time RunStats::makespan() const noexcept {
  Time span = 0;
  for (const auto& c : cores_) span = std::max(span, c.completion_time);
  return span;
}

double RunStats::overall_fault_rate() const noexcept {
  const Count reqs = total_requests();
  return reqs == 0 ? 0.0
                   : static_cast<double>(total_faults()) / static_cast<double>(reqs);
}

Count RunStats::faults_before(CoreId core, Time t) const {
  const CoreStats& c = cores_.at(core);
  MCP_REQUIRE(c.fault_times.size() == c.faults,
              "faults_before requires record_fault_timeline=true");
  // fault_times is non-decreasing by construction.
  const auto it = std::lower_bound(c.fault_times.begin(), c.fault_times.end(), t);
  return static_cast<Count>(it - c.fault_times.begin());
}

std::vector<Count> RunStats::fault_vector_at(Time t) const {
  std::vector<Count> vec(cores_.size());
  for (CoreId j = 0; j < cores_.size(); ++j) vec[j] = faults_before(j, t);
  return vec;
}

bool RunStats::within_bounds_at(Time t, const std::vector<Count>& bounds) const {
  MCP_REQUIRE(bounds.size() == cores_.size(),
              "bounds vector size must equal the number of cores");
  for (CoreId j = 0; j < cores_.size(); ++j) {
    if (faults_before(j, t) > bounds[j]) return false;
  }
  return true;
}

double RunStats::jain_fairness() const {
  if (cores_.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& c : cores_) {
    // Ideal all-hit completion of m requests issued back-to-back is m-1
    // (request i issued at step i, the last one at m-1).
    const double ideal =
        c.requests <= 1 ? 1.0 : static_cast<double>(c.requests - 1);
    const double slowdown = static_cast<double>(c.completion_time) / ideal;
    sum += slowdown;
    sum_sq += slowdown * slowdown;
  }
  if (sum_sq == 0.0) return 1.0;
  const auto p = static_cast<double>(cores_.size());
  return (sum * sum) / (p * sum_sq);
}

std::string RunStats::to_json() const {
  std::ostringstream os;
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.6f", overall_fault_rate());
  char jain[32];
  std::snprintf(jain, sizeof(jain), "%.6f", jain_fairness());
  os << "{\"total\":{\"requests\":" << total_requests()
     << ",\"faults\":" << total_faults() << ",\"hits\":" << total_hits()
     << ",\"fault_rate\":" << rate << "},\"makespan\":" << makespan()
     << ",\"jain_fairness\":" << jain << ",\"end_time\":" << end_time
     << ",\"cores\":[";
  for (CoreId j = 0; j < cores_.size(); ++j) {
    const CoreStats& c = cores_[j];
    if (j > 0) os << ',';
    os << "{\"requests\":" << c.requests << ",\"hits\":" << c.hits
       << ",\"faults\":" << c.faults
       << ",\"completion_time\":" << c.completion_time << '}';
  }
  os << "]}";
  return os.str();
}

std::string RunStats::report(const std::string& label) const {
  std::ostringstream os;
  if (!label.empty()) os << label << '\n';
  os << "  total: requests=" << total_requests() << " faults=" << total_faults()
     << " hits=" << total_hits() << " fault_rate=" << std::fixed
     << std::setprecision(4) << overall_fault_rate()
     << " makespan=" << makespan() << " jain=" << std::setprecision(3)
     << jain_fairness() << '\n';
  for (CoreId j = 0; j < cores_.size(); ++j) {
    const auto& c = cores_[j];
    os << "  core " << j << ": requests=" << c.requests << " faults=" << c.faults
       << " completion=" << c.completion_time << '\n';
  }
  return os.str();
}

}  // namespace mcp
