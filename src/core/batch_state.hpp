// Structure-of-arrays state for the batched lockstep engine (DESIGN.md §12).
//
// A *cell* is one independent simulation — a (SimConfig, RequestSet,
// strategy) triple; a batch is B cells advanced in lockstep by BatchEngine.
// All per-cell state lives in flat lanes shared by the whole batch: cell i
// owns the contiguous [base, base + count) slice of every lane, with the
// bases recorded in its BatchCell header (a CSR layout).  Heterogeneous
// shapes — cache size K, core count p, page bound, trace length — pack
// without padding, and a cell that finishes early is simply dropped from the
// active list, so ragged tails cost nothing.
//
// Only strategies whose decisions are a pure function of this packed state
// are batchable: the shared cache S_A and static partitions sP^B_A under LRU
// or FIFO (BatchStrategySpec).  Recency/insertion order is represented by a
// per-cell monotonic stamp written into slot_stamp on insert (LRU and FIFO)
// and on hit (LRU only); the victim is the minimum-stamp present slot of the
// faulting region, which reproduces the scalar policies' list order exactly
// because stamps are unique.  Fetching and free slots hold high-tagged keys
// (batch_engine.cpp) so the victim scan is a branchless min over one array.  Everything else (dynamic partitions, marking,
// adaptive adversary streams) keeps the scalar Simulator — which is also
// retained as the differential oracle for the batched path
// (tests/core/test_batch_differential.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "core/request.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"

namespace mcp {

/// Eviction policies the batch engine can express with stamp lanes.
enum class BatchPolicy : std::uint8_t { kLru, kFifo };

/// Maps a policy display name to its batched counterpart.  Exact-name match
/// ("LRU", "FIFO") on purpose: variants such as "LRU-SCAN" must not silently
/// take the batched path.
[[nodiscard]] inline std::optional<BatchPolicy> batch_policy_from_name(
    std::string_view name) noexcept {
  if (name == "LRU") return BatchPolicy::kLru;
  if (name == "FIFO") return BatchPolicy::kFifo;
  return std::nullopt;
}

/// Value-type description of a batchable strategy (no factories or virtual
/// dispatch: a SimJob must be shippable to any worker and hashable into a
/// lane header).
struct BatchStrategySpec {
  enum class Kind : std::uint8_t { kShared, kStaticPartition };

  Kind kind = Kind::kShared;
  BatchPolicy policy = BatchPolicy::kLru;
  /// kStaticPartition only: one entry per core, each >= 1, summing to K.
  std::vector<std::size_t> partition;

  [[nodiscard]] static BatchStrategySpec shared(BatchPolicy policy) {
    return {Kind::kShared, policy, {}};
  }
  [[nodiscard]] static BatchStrategySpec static_partition(
      std::vector<std::size_t> partition, BatchPolicy policy) {
    return {Kind::kStaticPartition, policy, std::move(partition)};
  }
};

/// One simulation cell, ready to run.  `requests` is borrowed: the caller
/// keeps the RequestSet alive until the run completes.
struct SimJob {
  SimConfig config;
  const RequestSet* requests = nullptr;
  BatchStrategySpec strategy;
};

/// Status of one cache slot lane entry.
enum class BatchSlotStatus : std::uint8_t { kFree = 0, kFetching, kPresent };

/// Lifecycle of a lane.  load() lanes own their whole feed up front, so
/// they are born kRunning with closed = true and can only move to kEnded.
/// Cohort lanes (BatchEngine::init_cohort) mirror the RequestSource
/// contract of core/simulator.hpp instead: a lane whose next ready core's
/// cursor catches the buffered feed end parks (kStalled) mid-step and
/// resumes bit-identically after the next refresh_lane(); once the feed is
/// closed and every core drained it becomes kEnded and detach_lane()
/// recycles the slot (kFree).
enum class BatchLaneStatus : std::uint8_t {
  kFree = 0,   ///< Detached cohort slot awaiting reuse.
  kRunning,    ///< In the active list; stepped by round().
  kStalled,    ///< Parked on an exhausted, unclosed feed.
  kEnded,      ///< Every core served its last request (terminal).
};

/// Sentinel for page_slot lane entries: page not resident in this cell.
inline constexpr std::uint32_t kNoBatchSlot =
    std::numeric_limits<std::uint32_t>::max();

/// core_flags lane bits.
inline constexpr std::uint8_t kBatchCorePending = 0x1;  ///< has_pending
inline constexpr std::uint8_t kBatchCoreDone = 0x2;     ///< sequence drained

/// Per-cell header: immutable shape, CSR lane bases, and the mutable
/// scalars that are one-per-cell rather than one-per-slot/core.
struct BatchCell {
  // Immutable shape (from SimJob).
  std::uint32_t cache_size = 0;  ///< K: slots in [slot_base, slot_base+K)
  std::uint32_t num_cores = 0;   ///< p: cores in [core_base, core_base+p)
  std::uint32_t num_regions = 0;  ///< 1 (shared) or p (static partition)
  std::uint32_t page_bound = 0;   ///< page ids < page_bound
  Time tau = 0;
  Time max_steps = 0;
  SharedFetchMode mode = SharedFetchMode::kCountsAsFault;
  BatchStrategySpec::Kind kind = BatchStrategySpec::Kind::kShared;
  BatchPolicy policy = BatchPolicy::kLru;
  bool record_timeline = true;

  // CSR bases into the shared lanes (slot_base also indexes the free-stack
  // and in-flight lanes, which are slot-capacity arrays).
  std::size_t slot_base = 0;
  std::size_t core_base = 0;
  std::size_t region_base = 0;
  std::size_t page_base = 0;

  // Mutable per-cell scalars.
  Time now = 0;
  Time steps = 0;               ///< lockstep iterations this lane executed
  std::uint64_t stamp = 0;      ///< monotonic recency/insertion counter
  std::uint32_t active_cores = 0;
  std::uint32_t fetching = 0;   ///< live entries in the in-flight lane

  // Lane lifecycle (BatchLaneStatus).  The stall fields mirror SimSession's
  // mid-step suspension: a step's preamble (fetch landing, step count) runs
  // once, cores before resume_core are already served, and the folded
  // fast-forward min accumulated so far is parked in next_time_partial.
  BatchLaneStatus status = BatchLaneStatus::kRunning;
  bool closed = true;           ///< No more requests will ever be appended.
  bool in_step = false;         ///< Parked mid-step; resume at resume_core.
  std::uint32_t resume_core = 0;
  Time next_time_partial = 0;
};

/// The flat lanes.  Invariants (enforced by BatchEngine::validate()):
///  * cells' lane slices are contiguous, ascending and non-overlapping;
///  * regions' slot ranges tile the cell's slot range in region order, so a
///    slot's owning region is implied by its index — the victim scan and the
///    free stack of region r touch only [region_slot_base[r],
///    region_slot_base[r] + region_size[r]);
///  * page_slot and (slot_page, slot_status) are a bijection per cell: a
///    non-sentinel page_slot entry points into its own cell's slot range at
///    a non-free slot holding that page, and vice versa;
///  * region r's free-stack segment holds exactly the region's free slots,
///    once each;
///  * in-flight entries are exactly the cell's fetching slots;
///  * region occupancy equals the count of non-free slots in the region's
///    slot range.
struct BatchState {
  std::vector<BatchCell> cells;

  // Slot lanes (size = sum of cache sizes).
  std::vector<PageId> slot_page;
  std::vector<BatchSlotStatus> slot_status;
  std::vector<Time> slot_ready;             ///< fetch completion time
  std::vector<std::uint64_t> slot_stamp;    ///< eviction key: stamp, tagged
                                            ///< while fetching/free
  std::vector<std::uint32_t> free_stack;    ///< absolute slot ids, segmented
                                            ///< per region like the slots
  std::vector<std::uint32_t> inflight;      ///< absolute slot ids

  // Page-index lane (size = sum of page bounds): absolute slot id or
  // kNoBatchSlot.
  std::vector<std::uint32_t> page_slot;

  // Core lanes (size = sum of core counts).
  std::vector<Time> core_ready;
  std::vector<Time> core_finish;            ///< last request's finish time
  std::vector<const PageId*> core_seq;
  std::vector<std::uint32_t> core_len;
  std::vector<std::uint32_t> core_next;     ///< cursor into core_seq
  std::vector<PageId> core_pending;
  std::vector<std::uint8_t> core_flags;

  // Region lanes (size = sum of region counts).
  std::vector<std::uint32_t> region_size;
  std::vector<std::uint32_t> region_occ;       ///< present + fetching slots
  std::vector<std::uint32_t> region_slot_base; ///< absolute first slot id
  std::vector<std::uint32_t> region_free_top;  ///< live free-stack entries

  void clear() {
    cells.clear();
    slot_page.clear();
    slot_status.clear();
    slot_ready.clear();
    slot_stamp.clear();
    free_stack.clear();
    inflight.clear();
    page_slot.clear();
    core_ready.clear();
    core_finish.clear();
    core_seq.clear();
    core_len.clear();
    core_next.clear();
    core_pending.clear();
    core_flags.clear();
    region_size.clear();
    region_occ.clear();
    region_slot_base.clear();
    region_free_top.clear();
  }
};

}  // namespace mcp
