#include "core/simulator.hpp"

#include <algorithm>
#include <optional>

#include "core/error.hpp"
#include "core/sentry.hpp"

namespace mcp {

namespace {

const SimConfig& validated(const SimConfig& config) {
  MCP_REQUIRE(config.cache_size > 0, "SimConfig.cache_size must be positive");
  return config;
}

/// Adapts a (blocking, possibly adaptive) RequestStream to the incremental
/// RequestSource contract; such a stream never stalls.
class StreamSource final : public RequestSource {
 public:
  explicit StreamSource(RequestStream& stream) : stream_(&stream) {}

  [[nodiscard]] std::size_t num_cores() const override {
    return stream_->num_cores();
  }

  PullStatus pull(CoreId core, PageId& page) override {
    const std::optional<PageId> next = stream_->next(core);
    if (!next.has_value()) return PullStatus::kEnded;
    page = *next;
    return PullStatus::kReady;
  }

 private:
  RequestStream* stream_;
};

}  // namespace

SimSession::SimSession(const SimConfig& config, std::size_t num_cores,
                       CacheStrategy& strategy,
                       const RequestSet* offline_info,
                       std::span<SimObserver* const> observers)
    : config_(validated(config)),
      strategy_(&strategy),
      observers_(observers.begin(), observers.end()),
      cache_(config.cache_size),
      stats_(num_cores),
      cores_(num_cores),
      active_(num_cores) {
  MCP_REQUIRE(num_cores > 0, "request stream has no cores");
  strategy_->attach(config_, num_cores, offline_info);
  if (offline_info != nullptr) {
    cache_.reserve_universe(offline_info->page_bound());
    if (config_.record_fault_timeline) {
      // Worst case every request faults; one reserve beats per-fault growth.
      for (CoreId j = 0; j < num_cores; ++j) {
        stats_.core(j).fault_times.reserve(offline_info->sequence(j).size());
      }
    }
  }
}

RunStats SimSession::take_stats() {
  MCP_REQUIRE(finished_, "SimSession::take_stats before the session finished");
  return std::move(stats_);
}

void SimSession::apply_evictions(const std::vector<PageId>& victims,
                                 PageId incoming, CoreId cause_core, Time now,
                                 EvictionCause cause) {
  // Duplicate detection by linear scan over the already-validated prefix:
  // victims are almost always 0 or 1 pages, so this beats building a hash
  // set per fault.
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const PageId victim = victims[i];
    MCP_REQUIRE(victim != incoming, "strategy evicted the incoming page");
    const auto begin = victims.begin();
    MCP_REQUIRE(std::find(begin, begin + static_cast<std::ptrdiff_t>(i),
                          victim) == begin + static_cast<std::ptrdiff_t>(i),
                "strategy evicted a page twice");
    cache_.evict(victim);  // validates: present, not a reserved (fetching) cell
    if (!observers_.empty()) {
      notify([&](SimObserver& obs) { obs.on_evict(victim, cause_core, now, cause); });
    }
  }
}

void SimSession::serve_request(CoreId core, PageId page, Time now,
                               CoreRuntime& runtime) {
  const AccessContext ctx{core, page, now, runtime.issued};
  CoreStats& cstats = stats_.core(core);
  const bool observed = !observers_.empty();

  if (cache_.contains(page)) {  // hit: served within this step
    ++cstats.hits;
    ++cstats.requests;
    strategy_->on_hit(ctx);
    if (observed) notify([&](SimObserver& obs) { obs.on_hit(ctx); });
    runtime.ready_at = now + 1;
    runtime.last_finish = now;
    ++runtime.issued;
    runtime.has_pending = false;
    return;
  }

  if (cache_.is_fetching(page)) {
    // Another core's fetch for this page is in flight (only possible for
    // non-disjoint inputs).  Behaviour per SharedFetchMode; see types.hpp.
    if (config_.shared_fetch == SharedFetchMode::kJoinsFetch) {
      // Block until the in-flight fetch lands, then retry (it will be a hit
      // unless the strategy evicts it first, in which case it faults then).
      const CellInfo* info = cache_.find(page);
      MCP_ASSERT(info != nullptr);
      runtime.ready_at = std::max(info->ready_at, now + 1);
      runtime.has_pending = true;
      runtime.pending = page;
      return;
    }
    // kCountsAsFault: full fault accounting, but the page needs no new cell.
    ++cstats.faults;
    ++cstats.requests;
    if (config_.record_fault_timeline) cstats.fault_times.push_back(now);
    if (observed) notify([&](SimObserver& obs) { obs.on_fault(ctx); });
    fault_evictions_.clear();
    strategy_->on_fault(ctx, cache_, /*needs_cell=*/false, fault_evictions_);
    MCP_REQUIRE(fault_evictions_.empty(),
                "on_fault(needs_cell=false) must not request evictions");
    runtime.ready_at = now + config_.fault_penalty + 1;
    runtime.last_finish = now + config_.fault_penalty;
    ++runtime.issued;
    runtime.has_pending = false;
    return;
  }

  // Plain fault: charge it, let the strategy pick victims, reserve a cell.
  ++cstats.faults;
  ++cstats.requests;
  if (config_.record_fault_timeline) cstats.fault_times.push_back(now);
  if (observed) notify([&](SimObserver& obs) { obs.on_fault(ctx); });
  fault_evictions_.clear();
  strategy_->on_fault(ctx, cache_, /*needs_cell=*/true, fault_evictions_);
  apply_evictions(fault_evictions_, page, core, now, EvictionCause::kFault);
  MCP_REQUIRE(cache_.free_cells() >= 1,
              "strategy left no free cell for a faulting request");
  cache_.begin_fetch(page, core, now + config_.fault_penalty + 1);
  runtime.ready_at = now + config_.fault_penalty + 1;
  runtime.last_finish = now + config_.fault_penalty;
  ++runtime.issued;
  runtime.has_pending = false;
}

bool SimSession::advance(RequestSource& source) {
  const std::size_t p = cores_.size();
  MCP_REQUIRE(source.num_cores() == p,
              "request source core count does not match the session");
  if (finished_) return true;
  const bool observed = !observers_.empty();
  constexpr Time kMaxStalledSteps = 1 << 20;

  while (active_ > 0) {
    if (!in_step_) {
      ++steps_;
      stats_.sim_steps = steps_;
      if (config_.max_steps != 0 && steps_ > config_.max_steps) {
        throw ModelError("simulation exceeded SimConfig.max_steps");
      }
    }

    // Allocation sentry: past warm-up, the whole step — engine bookkeeping
    // and strategy callbacks alike — must not touch the heap (§8 claim).
    // On a resume the guard covers the remainder of the suspended step.
    std::optional<AllocGuard> step_guard;
    if (config_.alloc_guard_after_step != 0 &&
        steps_ > config_.alloc_guard_after_step) {
      step_guard.emplace("simulator step loop");
    }

    if (!in_step_) {
      if (observed) notify([&](SimObserver& obs) { obs.on_step_begin(now_); });

      // 1. Land fetches due now, before any request is served this step.
      for (PageId page : cache_.complete_fetches(now_)) {
        const CellInfo* info = cache_.find(page);
        const CoreId by = info != nullptr ? info->fetched_by : kInvalidCore;
        strategy_->on_fetch_complete(page, by, now_);
        if (observed) {
          notify([&](SimObserver& obs) { obs.on_fetch_complete(page, by, now_); });
        }
      }

      // 2. Voluntary evictions (dynamic-partition shrinks, dishonest moves).
      voluntary_evictions_.clear();
      strategy_->on_step_begin(now_, cache_, voluntary_evictions_);
      apply_evictions(voluntary_evictions_, kInvalidPage, kInvalidCore, now_,
                      EvictionCause::kVoluntary);

      in_step_ = true;
      resume_core_ = 0;
      any_deferred_ = false;
      any_served_ = false;
    }

    // 3. Serve ready cores in logical (increasing id) order.  On a stall the
    //    session parks right here: earlier cores of this step are served,
    //    the stalled core is re-pulled on the next advance().
    for (CoreId core = resume_core_; core < p; ++core) {
      CoreRuntime& rt = cores_[core];
      if (rt.done || rt.ready_at > now_) continue;
      if (!rt.has_pending) {
        PageId page = kInvalidPage;
        const PullStatus status = source.pull(core, page);
        if (status == PullStatus::kStalled) {
          resume_core_ = core;
          return false;
        }
        if (status == PullStatus::kEnded) {
          rt.done = true;
          stats_.core(core).completion_time = rt.last_finish;
          strategy_->on_core_done(core, now_);
          if (observed) {
            notify([&](SimObserver& obs) { obs.on_core_done(core, rt.last_finish); });
          }
          --active_;
          continue;
        }
        rt.has_pending = true;
        rt.pending = page;
      }
      const AccessContext ctx{core, rt.pending, now_, rt.issued};
      if (strategy_->defer_request(ctx, cache_)) {
        any_deferred_ = true;  // postponed; the core stays ready next step
        continue;
      }
      any_served_ = true;
      serve_request(core, rt.pending, now_, rt);
    }

    if (observed) notify([&](SimObserver& obs) { obs.on_step_end(now_); });

    // Checked builds revalidate the cache's deep structural invariants at
    // every step boundary (validators carry their own AllocAllow).
    MCP_CHECKED_ONLY(cache_.validate());

    in_step_ = false;

    if (active_ == 0) {
      stats_.end_time = now_;
      break;
    }

    // Deferrals with nothing in flight and nothing served make no progress.
    // Tolerate bounded idle waiting (a strategy may stall until a target
    // time), but call a persistent stall what it is: livelock.
    if (any_deferred_ && !any_served_ && cache_.fetching_count() == 0) {
      if (++stalled_steps_ > kMaxStalledSteps) {
        throw ModelError("strategy deferred every serviceable request with "
                         "nothing in flight for too long (livelock)");
      }
    } else {
      stalled_steps_ = 0;
    }

    // 4. Advance time; fast-forward over steps where no core can act —
    //    impossible while a deferral keeps a core ready at `now`.
    Time next_time = kTimeNever;
    for (const CoreRuntime& rt : cores_) {
      if (!rt.done) next_time = std::min(next_time, rt.ready_at);
    }
    MCP_ASSERT(next_time != kTimeNever);
    now_ = any_deferred_ ? now_ + 1 : std::max(now_ + 1, next_time);
  }

  finished_ = true;
  return true;
}

Simulator::Simulator(SimConfig config) : config_(config) {
  MCP_REQUIRE(config_.cache_size > 0, "SimConfig.cache_size must be positive");
}

void Simulator::add_observer(SimObserver* observer) {
  MCP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

RunStats Simulator::run(const RequestSet& requests, CacheStrategy& strategy) {
  FixedStream stream(requests);
  return run_stream(stream, strategy, &requests);
}

RunStats Simulator::run_stream(RequestStream& stream, CacheStrategy& strategy,
                               const RequestSet* offline_info) {
  active_observers_.clear();
  if (SimObserver* obs = stream.observer(); obs != nullptr) {
    active_observers_.push_back(obs);
  }
  active_observers_.insert(active_observers_.end(), observers_.begin(),
                           observers_.end());

  StreamSource source(stream);
  SimSession session(config_, stream.num_cores(), strategy, offline_info,
                     active_observers_);
  const bool done = session.advance(source);
  MCP_ASSERT(done);  // a RequestStream never stalls
  active_observers_.clear();
  return session.take_stats();
}

RunStats simulate(const SimConfig& config, const RequestSet& requests,
                  CacheStrategy& strategy) {
  Simulator sim(config);
  return sim.run(requests, strategy);
}

}  // namespace mcp
