#include "core/simulator.hpp"

#include <algorithm>
#include <optional>

#include "core/error.hpp"
#include "core/sentry.hpp"

namespace mcp {

Simulator::Simulator(SimConfig config) : config_(config) {
  MCP_REQUIRE(config_.cache_size > 0, "SimConfig.cache_size must be positive");
}

void Simulator::add_observer(SimObserver* observer) {
  MCP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

RunStats Simulator::run(const RequestSet& requests, CacheStrategy& strategy) {
  FixedStream stream(requests);
  return run_stream(stream, strategy, &requests);
}

void Simulator::apply_evictions(const std::vector<PageId>& victims,
                                PageId incoming, CoreId cause_core, Time now,
                                CacheState& cache, EvictionCause cause) {
  // Duplicate detection by linear scan over the already-validated prefix:
  // victims are almost always 0 or 1 pages, so this beats building a hash
  // set per fault.
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const PageId victim = victims[i];
    MCP_REQUIRE(victim != incoming, "strategy evicted the incoming page");
    const auto begin = victims.begin();
    MCP_REQUIRE(std::find(begin, begin + static_cast<std::ptrdiff_t>(i),
                          victim) == begin + static_cast<std::ptrdiff_t>(i),
                "strategy evicted a page twice");
    cache.evict(victim);  // validates: present, not a reserved (fetching) cell
    if (!active_observers_.empty()) {
      notify([&](SimObserver& obs) { obs.on_evict(victim, cause_core, now, cause); });
    }
  }
}

void Simulator::serve_request(CoreId core, PageId page, Time now,
                              CacheState& cache, CacheStrategy& strategy,
                              RunStats& stats, CoreRuntime& runtime) {
  const AccessContext ctx{core, page, now, runtime.issued};
  CoreStats& cstats = stats.core(core);
  const bool observed = !active_observers_.empty();

  if (cache.contains(page)) {  // hit: served within this step
    ++cstats.hits;
    ++cstats.requests;
    strategy.on_hit(ctx);
    if (observed) notify([&](SimObserver& obs) { obs.on_hit(ctx); });
    runtime.ready_at = now + 1;
    runtime.last_finish = now;
    ++runtime.issued;
    runtime.has_pending = false;
    return;
  }

  if (cache.is_fetching(page)) {
    // Another core's fetch for this page is in flight (only possible for
    // non-disjoint inputs).  Behaviour per SharedFetchMode; see types.hpp.
    if (config_.shared_fetch == SharedFetchMode::kJoinsFetch) {
      // Block until the in-flight fetch lands, then retry (it will be a hit
      // unless the strategy evicts it first, in which case it faults then).
      const CellInfo* info = cache.find(page);
      MCP_ASSERT(info != nullptr);
      runtime.ready_at = std::max(info->ready_at, now + 1);
      runtime.has_pending = true;
      runtime.pending = page;
      return;
    }
    // kCountsAsFault: full fault accounting, but the page needs no new cell.
    ++cstats.faults;
    ++cstats.requests;
    if (config_.record_fault_timeline) cstats.fault_times.push_back(now);
    if (observed) notify([&](SimObserver& obs) { obs.on_fault(ctx); });
    fault_evictions_.clear();
    strategy.on_fault(ctx, cache, /*needs_cell=*/false, fault_evictions_);
    MCP_REQUIRE(fault_evictions_.empty(),
                "on_fault(needs_cell=false) must not request evictions");
    runtime.ready_at = now + config_.fault_penalty + 1;
    runtime.last_finish = now + config_.fault_penalty;
    ++runtime.issued;
    runtime.has_pending = false;
    return;
  }

  // Plain fault: charge it, let the strategy pick victims, reserve a cell.
  ++cstats.faults;
  ++cstats.requests;
  if (config_.record_fault_timeline) cstats.fault_times.push_back(now);
  if (observed) notify([&](SimObserver& obs) { obs.on_fault(ctx); });
  fault_evictions_.clear();
  strategy.on_fault(ctx, cache, /*needs_cell=*/true, fault_evictions_);
  apply_evictions(fault_evictions_, page, core, now, cache,
                  EvictionCause::kFault);
  MCP_REQUIRE(cache.free_cells() >= 1,
              "strategy left no free cell for a faulting request");
  cache.begin_fetch(page, core, now + config_.fault_penalty + 1);
  runtime.ready_at = now + config_.fault_penalty + 1;
  runtime.last_finish = now + config_.fault_penalty;
  ++runtime.issued;
  runtime.has_pending = false;
}

RunStats Simulator::run_stream(RequestStream& stream, CacheStrategy& strategy,
                               const RequestSet* offline_info) {
  const std::size_t p = stream.num_cores();
  MCP_REQUIRE(p > 0, "request stream has no cores");

  active_observers_.clear();
  if (SimObserver* obs = stream.observer(); obs != nullptr) {
    active_observers_.push_back(obs);
  }
  active_observers_.insert(active_observers_.end(), observers_.begin(),
                           observers_.end());
  const bool observed = !active_observers_.empty();

  strategy.attach(config_, p, offline_info);

  CacheState cache(config_.cache_size);
  RunStats stats(p);
  if (offline_info != nullptr) {
    cache.reserve_universe(offline_info->page_bound());
    if (config_.record_fault_timeline) {
      // Worst case every request faults; one reserve beats per-fault growth.
      for (CoreId j = 0; j < p; ++j) {
        stats.core(j).fault_times.reserve(offline_info->sequence(j).size());
      }
    }
  }
  std::vector<CoreRuntime> cores(p);
  std::size_t active = p;
  Time now = 0;
  Time steps = 0;
  Time stalled_steps = 0;
  constexpr Time kMaxStalledSteps = 1 << 20;

  while (active > 0) {
    ++steps;
    if (config_.max_steps != 0 && steps > config_.max_steps) {
      throw ModelError("simulation exceeded SimConfig.max_steps");
    }

    // Allocation sentry: past warm-up, the whole step — engine bookkeeping
    // and strategy callbacks alike — must not touch the heap (§8 claim).
    std::optional<AllocGuard> step_guard;
    if (config_.alloc_guard_after_step != 0 &&
        steps > config_.alloc_guard_after_step) {
      step_guard.emplace("simulator step loop");
    }

    if (observed) notify([&](SimObserver& obs) { obs.on_step_begin(now); });

    // 1. Land fetches due now, before any request is served this step.
    for (PageId page : cache.complete_fetches(now)) {
      const CellInfo* info = cache.find(page);
      const CoreId by = info != nullptr ? info->fetched_by : kInvalidCore;
      strategy.on_fetch_complete(page, by, now);
      if (observed) {
        notify([&](SimObserver& obs) { obs.on_fetch_complete(page, by, now); });
      }
    }

    // 2. Voluntary evictions (dynamic-partition shrinks, dishonest moves).
    voluntary_evictions_.clear();
    strategy.on_step_begin(now, cache, voluntary_evictions_);
    apply_evictions(voluntary_evictions_, kInvalidPage, kInvalidCore, now,
                    cache, EvictionCause::kVoluntary);

    // 3. Serve ready cores in logical (increasing id) order.
    bool any_deferred = false;
    bool any_served = false;
    for (CoreId core = 0; core < p; ++core) {
      CoreRuntime& rt = cores[core];
      if (rt.done || rt.ready_at > now) continue;
      if (!rt.has_pending) {
        const std::optional<PageId> next = stream.next(core);
        if (!next.has_value()) {
          rt.done = true;
          stats.core(core).completion_time = rt.last_finish;
          strategy.on_core_done(core, now);
          if (observed) {
            notify([&](SimObserver& obs) { obs.on_core_done(core, rt.last_finish); });
          }
          --active;
          continue;
        }
        rt.has_pending = true;
        rt.pending = *next;
      }
      const AccessContext ctx{core, rt.pending, now, rt.issued};
      if (strategy.defer_request(ctx, cache)) {
        any_deferred = true;  // postponed; the core stays ready next step
        continue;
      }
      any_served = true;
      serve_request(core, rt.pending, now, cache, strategy, stats, rt);
    }

    if (observed) notify([&](SimObserver& obs) { obs.on_step_end(now); });

    // Checked builds revalidate the cache's deep structural invariants at
    // every step boundary (validators carry their own AllocAllow).
    MCP_CHECKED_ONLY(cache.validate());

    if (active == 0) {
      stats.end_time = now;
      break;
    }

    // Deferrals with nothing in flight and nothing served make no progress.
    // Tolerate bounded idle waiting (a strategy may stall until a target
    // time), but call a persistent stall what it is: livelock.
    if (any_deferred && !any_served && cache.fetching_count() == 0) {
      if (++stalled_steps > kMaxStalledSteps) {
        throw ModelError("strategy deferred every serviceable request with "
                         "nothing in flight for too long (livelock)");
      }
    } else {
      stalled_steps = 0;
    }

    // 4. Advance time; fast-forward over steps where no core can act —
    //    impossible while a deferral keeps a core ready at `now`.
    Time next_time = kTimeNever;
    for (const CoreRuntime& rt : cores) {
      if (!rt.done) next_time = std::min(next_time, rt.ready_at);
    }
    MCP_ASSERT(next_time != kTimeNever);
    now = any_deferred ? now + 1 : std::max(now + 1, next_time);
  }

  stats.sim_steps = steps;
  active_observers_.clear();
  return stats;
}

RunStats simulate(const SimConfig& config, const RequestSet& requests,
                  CacheStrategy& strategy) {
  Simulator sim(config);
  return sim.run(requests, strategy);
}

}  // namespace mcp
