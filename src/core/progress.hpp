// Relative-progress tracking — the measure the paper's conclusion proposes
// for evaluating online multicore paging ("perhaps other measures such as
// fairness or relative progress of sequences should be considered").
//
// A ProgressTracker observer samples, at a fixed cadence, how many requests
// each core has completed; progress_spread() reduces each sample to the
// max-min gap of normalized progress (0 = perfectly even, 1 = one core
// finished while another hasn't started).
#pragma once

#include <algorithm>
#include <vector>

#include "core/events.hpp"
#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp {

class ProgressTracker final : public SimObserver {
 public:
  explicit ProgressTracker(std::size_t num_cores, Time sample_interval = 64)
      : interval_(sample_interval), served_(num_cores, 0) {}

  void on_hit(const AccessContext& ctx) override { ++served_[ctx.core]; }
  void on_fault(const AccessContext& ctx) override { ++served_[ctx.core]; }
  void on_step_end(Time now) override {
    // The simulator may fast-forward over idle stretches; emit the sample
    // for every crossed boundary so the series stays evenly spaced.
    while (now >= next_sample_) {
      times_.push_back(next_sample_);
      samples_.push_back(served_);
      next_sample_ += interval_;
    }
  }

  /// Sample timestamps (multiples of the interval).
  [[nodiscard]] const std::vector<Time>& sample_times() const noexcept {
    return times_;
  }
  /// samples()[s][j] = requests core j had completed by sample_times()[s].
  [[nodiscard]] const std::vector<std::vector<Count>>& samples() const noexcept {
    return samples_;
  }

  /// Per-sample max-min spread of progress normalized by each core's own
  /// sequence length (cores with empty sequences are skipped).
  [[nodiscard]] std::vector<double> progress_spread(const RequestSet& rs) const {
    std::vector<double> spread;
    spread.reserve(samples_.size());
    for (const auto& sample : samples_) {
      double lo = 1.0;
      double hi = 0.0;
      for (CoreId j = 0; j < sample.size(); ++j) {
        const std::size_t total = rs.sequence(j).size();
        if (total == 0) continue;
        const double frac =
            static_cast<double>(sample[j]) / static_cast<double>(total);
        lo = std::min(lo, frac);
        hi = std::max(hi, frac);
      }
      spread.push_back(hi >= lo ? hi - lo : 0.0);
    }
    return spread;
  }

  /// Largest spread observed over the run (0 = perfectly even throughout).
  [[nodiscard]] double max_spread(const RequestSet& rs) const {
    const std::vector<double> spread = progress_spread(rs);
    return spread.empty() ? 0.0
                          : *std::max_element(spread.begin(), spread.end());
  }

 private:
  Time interval_;
  Time next_sample_ = 0;
  std::vector<Count> served_;
  std::vector<Time> times_;
  std::vector<std::vector<Count>> samples_;
};

}  // namespace mcp
