// The cache-strategy interface: the decision maker under test.
//
// The paper classifies strategies as *shared* (S_A), *static partition*
// (sP^B_A) and *dynamic partition* (dP^D_A); all fit this interface.  A
// strategy never mutates the cache itself — it returns eviction decisions
// which the simulator validates (pages must be present, reserved cells are
// untouchable) and applies.  This separation is what lets the honesty
// checker (Theorem 4) and the statistics layer trust the event feed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cache_state.hpp"
#include "core/events.hpp"
#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp {

/// Run-wide parameters of the model.
struct SimConfig {
  std::size_t cache_size = 0;  ///< K, in pages.
  Time fault_penalty = 0;      ///< tau: extra delay per miss (miss = tau+1 steps).
  SharedFetchMode shared_fetch = SharedFetchMode::kCountsAsFault;
  /// Record per-fault timestamps (needed for PIF-style "faults by time t"
  /// queries; costs memory proportional to the number of faults).
  bool record_fault_timeline = true;
  /// Hard stop: abort with ModelError if the run exceeds this many steps
  /// (guards against adaptive streams that never terminate). 0 = no limit.
  Time max_steps = 0;
  /// Allocation sentry (DESIGN.md §10): arm an AllocGuard over every
  /// simulation step past this step count (0 = disabled).  Turns the
  /// steady-state allocation-free hot-path claim (§8) into an enforced
  /// invariant: any heap allocation in a guarded step — simulator
  /// bookkeeping, CacheState, or strategy callbacks — throws ModelError.
  /// Arm it only past warm-up and only with strategies whose steady-state
  /// callbacks do not allocate.
  Time alloc_guard_after_step = 0;
};

class CacheStrategy {
 public:
  virtual ~CacheStrategy() = default;

  /// Called once before a run.  `requests` is non-null when the input is a
  /// materialized RequestSet (offline strategies need it; online strategies
  /// must ignore everything but the core count).
  virtual void attach(const SimConfig& config, std::size_t num_cores,
                      const RequestSet* requests) = 0;

  /// The request `ctx` hit in cache.
  virtual void on_hit(const AccessContext& ctx) = 0;

  /// The request `ctx` faulted.  If `needs_cell` is true the strategy must
  /// append the pages to evict to `evictions` so that at least one free cell
  /// exists; the usual case is exactly one victim when its region is full
  /// and none otherwise.  If `needs_cell` is false (shared-fetch join: the
  /// page is already in flight) the strategy must append nothing.
  ///
  /// `evictions` is a scratch buffer owned by the simulator, cleared before
  /// the call (the allocation-free step-loop contract, DESIGN.md §8):
  /// strategies only push_back and never keep a reference past the call.
  virtual void on_fault(const AccessContext& ctx, const CacheState& cache,
                        bool needs_cell, std::vector<PageId>& evictions) = 0;

  /// A fetch issued earlier completed; `page` is now present.
  virtual void on_fetch_complete(PageId page, CoreId core, Time now) {
    (void)page; (void)core; (void)now;
  }

  /// Called at the start of every timestep, before any request is served.
  /// May append *voluntary* evictions — pages evicted without a fault — to
  /// the simulator-owned scratch buffer `evictions` (cleared before the
  /// call).  The paper calls strategies that never do this "honest"
  /// (Theorem 4 shows honesty is WLOG for disjoint inputs); dynamic
  /// partitions use it to shrink parts, and Theorem-4 experiments use it to
  /// force faults.
  virtual void on_step_begin(Time now, const CacheState& cache,
                             std::vector<PageId>& evictions) {
    (void)now; (void)cache; (void)evictions;
  }

  /// Core `core` issued its last request.
  virtual void on_core_done(CoreId core, Time now) { (void)core; (void)now; }

  /// Model extension (OFF in the paper's model): called before serving a
  /// ready request; returning true postpones it to the next step.  This is
  /// exactly the scheduling power Hassidim's model grants and this paper's
  /// model forbids ("requests must be served as they arrive") — every
  /// in-model strategy keeps the default.  Deferral-based strategies exist
  /// to make the cross-model comparison executable (experiment E18); the
  /// simulator aborts if deferrals ever stall the whole system.
  [[nodiscard]] virtual bool defer_request(const AccessContext& ctx,
                                           const CacheState& cache) {
    (void)ctx;
    (void)cache;
    return false;
  }

  /// Display name, e.g. "S_LRU" or "sP[4,4]_FIFO".
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mcp
