// Simulation event observers.
//
// Observers give adaptive adversaries (Lemma 1's "request the page the
// algorithm just evicted"), statistics collectors, and honesty checkers a
// read-only feed of everything the simulator does, without entangling them
// with the strategy under test.
#pragma once

#include "core/types.hpp"

namespace mcp {

/// Context of one request being served.  `seq_index` is the 0-based index of
/// the request within its core's sequence.
struct AccessContext {
  CoreId core = kInvalidCore;
  PageId page = kInvalidPage;
  Time now = 0;
  std::size_t seq_index = 0;
};

/// Why a page left the cache.
enum class EvictionCause {
  kFault,        ///< Evicted to make room for a faulting request.
  kVoluntary,    ///< Evicted by the strategy without a fault (dishonest move
                 ///< in the paper's sense, or a partition shrink).
};

/// Passive observer of a simulation run.  All callbacks default to no-ops so
/// implementations override only what they need.  Callbacks fire in model
/// order: step_begin, then per-core events in logical core order, then
/// step_end.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_step_begin(Time /*now*/) {}
  virtual void on_hit(const AccessContext& /*ctx*/) {}
  /// A fault was charged to `ctx.core` for `ctx.page`.  Fires before the
  /// associated evictions.
  virtual void on_fault(const AccessContext& /*ctx*/) {}
  /// `page` was evicted at time `now`; `cause_core` is the faulting core for
  /// kFault evictions and the strategy's acting core (may be kInvalidCore)
  /// for voluntary ones.
  virtual void on_evict(PageId /*page*/, CoreId /*cause_core*/, Time /*now*/,
                        EvictionCause /*cause*/) {}
  /// A fetch completed; `page` is now present.
  virtual void on_fetch_complete(PageId /*page*/, CoreId /*core*/, Time /*now*/) {}
  /// Core `core` served its final request; `finish` is the timestep at which
  /// that request's service completes.
  virtual void on_core_done(CoreId /*core*/, Time /*finish*/) {}
  virtual void on_step_end(Time /*now*/) {}
};

}  // namespace mcp
