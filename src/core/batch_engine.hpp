// BatchEngine: advances B independent simulation cells per step in lockstep
// over the structure-of-arrays lanes of core/batch_state.hpp.
//
// Semantics are bit-equal to running each cell through mcp::Simulator with
// the corresponding strategy object — same RunStats field for field,
// including fault timelines, end_time and sim_steps.  The win is layout:
// no virtual dispatch, no hash maps, no list nodes; every decision is a few
// loads from contiguous lanes, so a sweep of thousands of small cells runs
// at a multiple of the scalar engine's aggregate throughput (BM_BatchSweep,
// E13 `batch_sweep` series).
//
// The step loop is allocation-free after load(): every lane, free stack,
// in-flight list and fault-timeline buffer is sized up front, and run()
// arms an AllocGuard over the whole lockstep loop (DESIGN.md §10), so a
// regression that sneaks an allocation into the hot path fails loudly
// (tests/test_sentry.cpp).
//
// Determinism: lanes never read each other's state, so results are
// bit-identical for any batch width B and — via SweepRunner::run_jobs,
// which assigns each batch a fixed slice of the result vector — any worker
// count (tests/core/test_batch_differential.cpp, test_sweep_determinism).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/batch_state.hpp"
#include "core/stats.hpp"

namespace mcp {

struct BatchEngineTestAccess;

struct BatchEngineOptions {
  /// Arm an AllocGuard over the lockstep loop in run().  Disable only for
  /// sentry tests that want to arm their own guard around step_round().
  bool alloc_guard = true;
};

class BatchEngine {
 public:
  BatchEngine() = default;
  explicit BatchEngine(BatchEngineOptions options) : options_(options) {}

  /// One-shot: load() + lockstep rounds until every lane finishes.
  /// `out[i]` receives job i's RunStats (same values as Simulator::run).
  /// Both spans are borrowed for the duration of the call only.
  void run(std::span<const SimJob> jobs, std::span<RunStats> out);
  [[nodiscard]] std::vector<RunStats> run(std::span<const SimJob> jobs);

  /// Phased API (used by the sentry and differential tests): load the jobs
  /// — this is where ALL allocation happens — then call step_round() until
  /// it returns 0.  `out` must stay alive until the last round.
  void load(std::span<const SimJob> jobs, std::span<RunStats> out);

  /// Advances every active lane by one step-loop iteration; finished lanes
  /// are swap-removed.  Returns the number of still-active lanes.  (run()
  /// uses the private blocked variant — many steps per lane visit — for
  /// locality; per-lane results are identical either way because lanes
  /// never read each other's state.)
  std::size_t step_round();

  [[nodiscard]] std::size_t active_lanes() const noexcept {
    return active_.size();
  }

  /// Total step-loop iterations executed across all lanes so far (the
  /// batched counterpart of RunStats::sim_steps, summed).
  [[nodiscard]] Count lane_steps() const noexcept;

  /// Deep lane/cell invariant check (see BatchState): throws ModelError on
  /// the first violation.  Callable in any build; step_round() invokes it
  /// per round under MCP_CHECKED.  Allocates scratch (owns an AllocAllow).
  void validate() const;

 private:
  friend struct BatchEngineTestAccess;

  template <bool kPartitioned, bool kLruTouch>
  bool step_lane(BatchCell& cell, RunStats& stats);
  template <bool kPartitioned, bool kLruTouch>
  bool step_block(BatchCell& cell, RunStats& stats, std::size_t steps);
  std::size_t round(std::size_t steps_per_lane);

  BatchEngineOptions options_{};
  BatchState state_;
  std::vector<std::uint32_t> active_;  ///< cell indices still running
  RunStats* out_ = nullptr;            ///< borrowed result slots (load())
  std::size_t out_size_ = 0;
};

/// Test-only backdoor, mirroring CacheStateTestAccess: lets the sentry test
/// corrupt lane state in place to prove validate() catches it.
struct BatchEngineTestAccess {
  [[nodiscard]] static BatchState& state(BatchEngine& engine) {
    return engine.state_;
  }
};

}  // namespace mcp
