// BatchEngine: advances B independent simulation cells per step in lockstep
// over the structure-of-arrays lanes of core/batch_state.hpp.
//
// Semantics are bit-equal to running each cell through mcp::Simulator with
// the corresponding strategy object — same RunStats field for field,
// including fault timelines, end_time and sim_steps.  The win is layout:
// no virtual dispatch, no hash maps, no list nodes; every decision is a few
// loads from contiguous lanes, so a sweep of thousands of small cells runs
// at a multiple of the scalar engine's aggregate throughput (BM_BatchSweep,
// E13 `batch_sweep` series).
//
// The step loop is allocation-free after load(): every lane, free stack,
// in-flight list and fault-timeline buffer is sized up front, and run()
// arms an AllocGuard over the whole lockstep loop (DESIGN.md §10), so a
// regression that sneaks an allocation into the hot path fails loudly
// (tests/test_sentry.cpp).
//
// Determinism: lanes never read each other's state, so results are
// bit-identical for any batch width B and — via SweepRunner::run_jobs,
// which assigns each batch a fixed slice of the result vector — any worker
// count (tests/core/test_batch_differential.cpp, test_sweep_determinism).
//
// Static analysis: an engine instance (including cohort mode, where one
// engine serves a whole mcpd cohort) is single-threaded by contract — it
// is confined to the shard worker or sweep task that owns it, so there is
// no capability to annotate (core/annotations.hpp).  What the analysis
// layer checks here instead: the cohort drain/lockstep AllocGuard kernels
// stay registered and test-exercised (mcp_verify.py rule `alloc-guard`),
// and no unordered-container order ever feeds the lane -> result emission
// (rule `unordered-iter` over the emission paths).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/batch_state.hpp"
#include "core/stats.hpp"

namespace mcp {

struct BatchEngineTestAccess;

struct BatchEngineOptions {
  /// Arm an AllocGuard over the lockstep loop in run() / drain().  Disable
  /// only for sentry tests that want to arm their own guard around
  /// step_round() or drain().
  bool alloc_guard = true;
};

/// Shape shared by every lane of a cohort-mode engine (init_cohort): the
/// (SimConfig, strategy) half of a SimJob, with the per-lane request feed
/// arriving later through refresh_lane().  Shared-cache cohorts require
/// cache_size >= num_cores: with fewer slots than cores, every slot can be
/// simultaneously reserved by in-flight fetches, and the resulting "no
/// evictable page" abort must fail one scalar session, never a whole batch.
struct CohortShape {
  std::size_t cache_size = 0;
  std::size_t num_cores = 0;
  Time fault_penalty = 0;
  Time max_steps = 0;
  SharedFetchMode shared_fetch = SharedFetchMode::kCountsAsFault;
  bool record_fault_timeline = false;
  BatchStrategySpec strategy;
};

class BatchEngine {
 public:
  BatchEngine() = default;
  explicit BatchEngine(BatchEngineOptions options) : options_(options) {}

  /// One-shot: load() + lockstep rounds until every lane finishes.
  /// `out[i]` receives job i's RunStats (same values as Simulator::run).
  /// Both spans are borrowed for the duration of the call only.
  void run(std::span<const SimJob> jobs, std::span<RunStats> out);
  [[nodiscard]] std::vector<RunStats> run(std::span<const SimJob> jobs);

  /// Phased API (used by the sentry and differential tests): load the jobs
  /// — this is where ALL allocation happens — then call step_round() until
  /// it returns 0.  `out` must stay alive until the last round.
  void load(std::span<const SimJob> jobs, std::span<RunStats> out);

  /// Advances every active lane by one step-loop iteration; finished lanes
  /// are swap-removed.  Returns the number of still-active lanes.  (run()
  /// uses the private blocked variant — many steps per lane visit — for
  /// locality; per-lane results are identical either way because lanes
  /// never read each other's state.)
  std::size_t step_round();

  [[nodiscard]] std::size_t active_lanes() const noexcept {
    return active_.size();
  }

  /// Total step-loop iterations executed across all lanes so far (the
  /// batched counterpart of RunStats::sim_steps, summed).  Cohort mode
  /// includes detached lanes, so the counter is monotonic across reuse.
  [[nodiscard]] Count lane_steps() const noexcept;

  // --- Cohort mode (mcpd's per-shard scheduler) -----------------------------
  //
  // One engine per group of identically-shaped sessions.  Every lane shares
  // the CohortShape, so lane arrays have uniform strides and lane id == cell
  // index; the per-lane page index is a shared capacity (page_capacity_)
  // that doubles as feeds reveal larger page ids.  Lanes attach/detach
  // dynamically and their feeds arrive in chunks: refresh_lane() re-points a
  // lane at the (append-only) caller trace and wakes it, drain() steps every
  // runnable lane until it parks or ends.  All allocation happens in
  // init_cohort/attach_lane/refresh_lane — drain() is allocation-free.

  /// Switches the engine to cohort mode with zero lanes.  Throws ModelError
  /// on an invalid shape (see CohortShape).
  void init_cohort(const CohortShape& shape);
  [[nodiscard]] bool cohort_mode() const noexcept { return cohort_; }

  /// Adds a lane (recycling a detached slot when one exists) and returns
  /// its id.  The lane starts kStalled with an empty feed.
  std::uint32_t attach_lane();

  /// Points the lane's cores at `trace`'s sequences (borrowed until the
  /// next refresh or detach; sequences may only grow between refreshes).
  /// `page_bound` must exceed every page id in `trace`; `closed` is sticky.
  /// Wakes the lane iff the new data (or the close) lets it progress: the
  /// model serves a step's cores in increasing id, so only data for the
  /// parked core — or the promise of no more data — can unblock it.
  void refresh_lane(std::uint32_t lane, const RequestSet& trace,
                    PageId page_bound, bool closed);

  /// Steps every woken lane until it parks or ends (blocked rounds, like
  /// run()).  Arms an AllocGuard per options_.alloc_guard.
  void drain();

  [[nodiscard]] BatchLaneStatus lane_status(std::uint32_t lane) const;

  /// Moves an ended lane's final RunStats out and recycles the lane slot
  /// for a future attach_lane().
  [[nodiscard]] RunStats detach_lane(std::uint32_t lane);

  /// Deep lane/cell invariant check (see BatchState): throws ModelError on
  /// the first violation.  Callable in any build; step_round() invokes it
  /// per round under MCP_CHECKED.  Allocates scratch (owns an AllocAllow).
  void validate() const;

 private:
  friend struct BatchEngineTestAccess;

  /// Advances one lane by up to `steps` simulation steps; the lane's
  /// pointer slices, clock and stamp counter are hoisted once per block,
  /// so larger blocks amortize the per-step dispatch to nothing.  Returns
  /// false when the lane stalled or ended before exhausting the block.
  template <bool kPartitioned, bool kLruTouch>
  bool step_block(BatchCell& cell, RunStats& stats, std::size_t steps);
  std::size_t round(std::size_t steps_per_lane);
  void reset_lane(std::uint32_t lane);
  void grow_page_capacity(std::size_t bound);

  BatchEngineOptions options_{};
  BatchState state_;
  std::vector<std::uint32_t> active_;  ///< cell indices still running
  RunStats* out_ = nullptr;            ///< borrowed (load()) or
                                       ///< lane_stats_.data() (cohort)
  std::size_t out_size_ = 0;

  // Cohort mode only.
  bool cohort_ = false;
  BatchCell proto_{};                        ///< lane shape template
  std::vector<std::size_t> cohort_regions_;  ///< region sizes (1 or p)
  std::size_t page_capacity_ = 0;            ///< per-lane page_slot stride
  std::vector<std::uint32_t> free_lanes_;    ///< detached, reusable slots
  std::vector<RunStats> lane_stats_;         ///< owned results, per lane
  Count retired_steps_ = 0;                  ///< steps of detached lanes
};

/// Test-only backdoor, mirroring CacheStateTestAccess: lets the sentry test
/// corrupt lane state in place to prove validate() catches it.
struct BatchEngineTestAccess {
  [[nodiscard]] static BatchState& state(BatchEngine& engine) {
    return engine.state_;
  }
  [[nodiscard]] static std::vector<std::uint32_t>& active(
      BatchEngine& engine) {
    return engine.active_;
  }
};

}  // namespace mcp
