// The shared cache's ground-truth state machine.
//
// The paper's conventions (Section 3):
//   * on a fault the victim is evicted immediately and its cell stays
//     *reserved but unusable* until the fetch completes tau+1 steps after
//     the faulting request was issued ("first the page is evicted and the
//     cache cell is unused until the fetching of the new page is finished");
//   * pages can be read and fetched in parallel across cores.
//
// CacheState tracks, per resident page, whether it is PRESENT (hit-able,
// evictable) or FETCHING (occupies a cell, neither hit-able nor evictable).
// Strategies never mutate CacheState directly; the Simulator applies their
// eviction decisions after validating them against this state.
//
// Representation (DESIGN.md §8): a dense slot arena of `capacity` cells with
// a direct-mapped page→slot index sized to the run's page universe, so
// contains/find are two array loads with no hashing; in-flight fetches live
// in a min-heap keyed on ready_at, so a step with no landing fetch costs one
// comparison instead of a full scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace mcp {

/// Lifecycle of a cache cell's content.
enum class CellStatus {
  kFetching,  ///< Cell reserved; page arrives at `ready_at`.
  kPresent,   ///< Page resident and evictable.
};

/// Metadata for one resident (present or in-flight) page.
struct CellInfo {
  CellStatus status = CellStatus::kPresent;
  Time ready_at = 0;            ///< First timestep the page is usable.
  CoreId fetched_by = kInvalidCore;  ///< Core whose fault brought it in.
};

struct CacheStateTestAccess;  // corruption-injection backdoor (tests only)

class CacheState {
 public:
  explicit CacheState(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Cells in use (present + fetching).
  [[nodiscard]] std::size_t occupied() const noexcept { return occupied_; }
  [[nodiscard]] std::size_t free_cells() const noexcept { return capacity_ - occupied_; }

  /// True iff the page is resident and usable (a request to it is a hit).
  [[nodiscard]] bool contains(PageId page) const noexcept {
    const std::uint32_t slot = slot_of(page);
    return slot != kNoSlot && slots_[slot].info.status == CellStatus::kPresent;
  }
  /// True iff the page occupies a cell but is still in flight.
  [[nodiscard]] bool is_fetching(PageId page) const noexcept {
    const std::uint32_t slot = slot_of(page);
    return slot != kNoSlot && slots_[slot].info.status == CellStatus::kFetching;
  }
  /// Metadata lookup; nullptr if the page holds no cell.  The pointer is
  /// invalidated by the next mutating call.
  [[nodiscard]] const CellInfo* find(PageId page) const noexcept {
    const std::uint32_t slot = slot_of(page);
    return slot == kNoSlot ? nullptr : &slots_[slot].info;
  }

  /// Pre-sizes the page→slot index for page ids in [0, bound).  Optional —
  /// the index grows on demand — but a run that knows its universe (any
  /// materialized RequestSet) avoids all growth reallocations.
  void reserve_universe(PageId bound);

  /// Reserves a cell and starts fetching `page`; it becomes present at
  /// `ready_at`.  Throws ModelError if the cache is full or the page already
  /// holds a cell.
  void begin_fetch(PageId page, CoreId core, Time ready_at);

  /// Promotes all fetches with ready_at <= now to PRESENT.  Returns the
  /// promoted pages (ascending page id, for deterministic iteration); the
  /// returned buffer is owned by the CacheState and valid until the next
  /// call.  O(1) when nothing lands this step.
  const std::vector<PageId>& complete_fetches(Time now);

  /// Evicts a PRESENT page.  Throws ModelError if the page is absent or
  /// still fetching (reserved cells cannot be evicted, per the model).
  void evict(PageId page);

  /// Inserts a page directly as PRESENT (used by offline replayers and
  /// tests that construct mid-run states).
  void insert_present(PageId page, CoreId core);

  /// Snapshot of present (evictable) pages, ascending page id.
  [[nodiscard]] std::vector<PageId> present_pages() const;
  /// Snapshot of every resident page (present + fetching), ascending id.
  [[nodiscard]] std::vector<PageId> resident_pages() const;

  /// Visits present pages in arbitrary (slot) order — no snapshot vector,
  /// no sort.  For callers that only need iteration; determinism-sensitive
  /// call sites should keep the sorted accessors above.
  template <typename Fn>
  void for_each_present(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.page != kInvalidPage &&
          slot.info.status == CellStatus::kPresent) {
        fn(slot.page);
      }
    }
  }
  /// Visits every resident page (present + fetching) in arbitrary order.
  template <typename Fn>
  void for_each_resident(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.page != kInvalidPage) fn(slot.page);
    }
  }

  /// Number of PRESENT pages.
  [[nodiscard]] std::size_t present_count() const noexcept {
    return occupied_ - fetching_count_;
  }
  /// Number of FETCHING pages.
  [[nodiscard]] std::size_t fetching_count() const noexcept { return fetching_count_; }

  void clear();

  /// Deep structural invariant check (the checked-build validator, DESIGN.md
  /// §10): slot arena ↔ page→slot index bijection, free-slot stack
  /// disjointness and completeness, occupancy counters, and fetch-heap
  /// ordering/membership.  Throws ModelError naming the violated invariant.
  /// O(capacity + universe + heap); invoked at step boundaries under
  /// MCP_CHECKED and callable directly from tests in any build.
  void validate() const;

 private:
  friend struct CacheStateTestAccess;  ///< corruption injection (test_sentry)

  struct Slot {
    PageId page = kInvalidPage;  ///< kInvalidPage marks a free slot.
    CellInfo info;
  };

  static constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

  [[nodiscard]] std::uint32_t slot_of(PageId page) const noexcept {
    return page < page_to_slot_.size() ? page_to_slot_[page] : kNoSlot;
  }
  /// Grows the index so `page` is addressable, then returns its slot ref.
  std::uint32_t& index_entry(PageId page);
  std::uint32_t allocate_slot(PageId page, const CellInfo& info);

  std::size_t capacity_;
  std::size_t occupied_ = 0;
  std::size_t fetching_count_ = 0;
  std::vector<Slot> slots_;                  ///< Arena of `capacity_` cells.
  std::vector<std::uint32_t> free_slots_;    ///< Stack of free arena indices.
  std::vector<std::uint32_t> page_to_slot_;  ///< page -> arena index / kNoSlot.
  /// Min-heap of (ready_at, page) over in-flight fetches.  Entries leave
  /// only via completion: reserved cells cannot be evicted, so no lazy
  /// deletion is needed.
  std::vector<std::pair<Time, PageId>> fetch_heap_;
  std::vector<PageId> completed_;            ///< Scratch for complete_fetches.
};

}  // namespace mcp
