// The shared cache's ground-truth state machine.
//
// The paper's conventions (Section 3):
//   * on a fault the victim is evicted immediately and its cell stays
//     *reserved but unusable* until the fetch completes tau+1 steps after
//     the faulting request was issued ("first the page is evicted and the
//     cache cell is unused until the fetching of the new page is finished");
//   * pages can be read and fetched in parallel across cores.
//
// CacheState tracks, per resident page, whether it is PRESENT (hit-able,
// evictable) or FETCHING (occupies a cell, neither hit-able nor evictable).
// Strategies never mutate CacheState directly; the Simulator applies their
// eviction decisions after validating them against this state.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace mcp {

/// Lifecycle of a cache cell's content.
enum class CellStatus {
  kFetching,  ///< Cell reserved; page arrives at `ready_at`.
  kPresent,   ///< Page resident and evictable.
};

/// Metadata for one resident (present or in-flight) page.
struct CellInfo {
  CellStatus status = CellStatus::kPresent;
  Time ready_at = 0;            ///< First timestep the page is usable.
  CoreId fetched_by = kInvalidCore;  ///< Core whose fault brought it in.
};

class CacheState {
 public:
  explicit CacheState(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Cells in use (present + fetching).
  [[nodiscard]] std::size_t occupied() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t free_cells() const noexcept { return capacity_ - cells_.size(); }

  /// True iff the page is resident and usable (a request to it is a hit).
  [[nodiscard]] bool contains(PageId page) const;
  /// True iff the page occupies a cell but is still in flight.
  [[nodiscard]] bool is_fetching(PageId page) const;
  /// Metadata lookup; nullptr if the page holds no cell.
  [[nodiscard]] const CellInfo* find(PageId page) const;

  /// Reserves a cell and starts fetching `page`; it becomes present at
  /// `ready_at`.  Throws ModelError if the cache is full or the page already
  /// holds a cell.
  void begin_fetch(PageId page, CoreId core, Time ready_at);

  /// Promotes all fetches with ready_at <= now to PRESENT.  Returns the
  /// promoted pages (ascending page id, for deterministic iteration).
  std::vector<PageId> complete_fetches(Time now);

  /// Evicts a PRESENT page.  Throws ModelError if the page is absent or
  /// still fetching (reserved cells cannot be evicted, per the model).
  void evict(PageId page);

  /// Inserts a page directly as PRESENT (used by offline replayers and
  /// tests that construct mid-run states).
  void insert_present(PageId page, CoreId core);

  /// Snapshot of present (evictable) pages, ascending page id.
  [[nodiscard]] std::vector<PageId> present_pages() const;
  /// Snapshot of every resident page (present + fetching), ascending id.
  [[nodiscard]] std::vector<PageId> resident_pages() const;
  /// Number of PRESENT pages.
  [[nodiscard]] std::size_t present_count() const noexcept {
    return cells_.size() - fetching_count_;
  }
  /// Number of FETCHING pages.
  [[nodiscard]] std::size_t fetching_count() const noexcept { return fetching_count_; }

  void clear();

 private:
  std::size_t capacity_;
  std::size_t fetching_count_ = 0;
  std::unordered_map<PageId, CellInfo> cells_;
};

}  // namespace mcp
