// Request sequences and multicore request sets (the model's input `R`).
//
// A RequestSet bundles one RequestSequence per core, R = {R_1, ..., R_p}.
// The paper's results distinguish *disjoint* request sets (no page appears
// in two cores' sequences) from non-disjoint ones; `is_disjoint()` decides
// this and several offline algorithms require it.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcp {

/// One core's request sequence R_j: an ordered list of page ids.
class RequestSequence {
 public:
  RequestSequence() = default;
  explicit RequestSequence(std::vector<PageId> pages) : pages_(std::move(pages)) {}
  RequestSequence(std::initializer_list<PageId> pages) : pages_(pages) {}

  [[nodiscard]] std::size_t size() const noexcept { return pages_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pages_.empty(); }
  [[nodiscard]] PageId operator[](std::size_t i) const noexcept { return pages_[i]; }
  [[nodiscard]] PageId at(std::size_t i) const { return pages_.at(i); }
  [[nodiscard]] std::span<const PageId> pages() const noexcept { return pages_; }

  void push_back(PageId page) { pages_.push_back(page); }
  void append(std::span<const PageId> pages) {
    pages_.insert(pages_.end(), pages.begin(), pages.end());
  }
  /// Appends `reps` copies of the block `pages` (the `(sigma_1 ... sigma_k)^x`
  /// notation used throughout the paper's constructions).
  void append_repeated(std::span<const PageId> pages, std::size_t reps);

  [[nodiscard]] auto begin() const noexcept { return pages_.begin(); }
  [[nodiscard]] auto end() const noexcept { return pages_.end(); }

  /// Number of distinct pages referenced.
  [[nodiscard]] std::size_t distinct_pages() const;

  bool operator==(const RequestSequence&) const = default;

 private:
  std::vector<PageId> pages_;
};

/// The multicore input R = {R_1, ..., R_p}; index j is core j's sequence.
class RequestSet {
 public:
  RequestSet() = default;
  explicit RequestSet(std::vector<RequestSequence> seqs) : seqs_(std::move(seqs)) {}
  explicit RequestSet(std::size_t num_cores) : seqs_(num_cores) {}

  [[nodiscard]] std::size_t num_cores() const noexcept { return seqs_.size(); }
  [[nodiscard]] const RequestSequence& sequence(CoreId core) const { return seqs_.at(core); }
  [[nodiscard]] RequestSequence& sequence(CoreId core) { return seqs_.at(core); }
  [[nodiscard]] const RequestSequence& operator[](CoreId core) const { return seqs_[core]; }

  void add_sequence(RequestSequence seq) { seqs_.push_back(std::move(seq)); }

  /// Total number of page requests n = sum_j n_j.
  [[nodiscard]] std::size_t total_requests() const noexcept;

  /// Length of the longest individual sequence.
  [[nodiscard]] std::size_t max_sequence_length() const noexcept;

  /// Sorted list of distinct pages requested anywhere in R (the instance's
  /// effective universe; `w` in the paper's complexity bounds).
  [[nodiscard]] std::vector<PageId> universe() const;

  /// True iff no page appears in the sequences of two different cores
  /// (the paper's "disjoint" condition: intersection of all R_j is empty
  /// pairwise; repeats within one sequence are of course allowed).
  [[nodiscard]] bool is_disjoint() const;

  /// For disjoint request sets: page -> owning core map (kInvalidCore for
  /// pages outside the universe).  Throws ModelError if R is not disjoint.
  [[nodiscard]] std::vector<CoreId> owner_map(PageId universe_size) const;

  /// Largest page id referenced plus one (convenient dense-array bound);
  /// zero for an empty request set.
  [[nodiscard]] PageId page_bound() const noexcept;

  /// Human-readable shape summary, e.g. "p=4 n=4096 (1024/1024/1024/1024)".
  [[nodiscard]] std::string describe() const;

  bool operator==(const RequestSet&) const = default;

  [[nodiscard]] auto begin() const noexcept { return seqs_.begin(); }
  [[nodiscard]] auto end() const noexcept { return seqs_.end(); }

 private:
  std::vector<RequestSequence> seqs_;
};

/// Builds the page-id block {first, first+1, ..., first+count-1}.
[[nodiscard]] std::vector<PageId> page_block(PageId first, std::size_t count);

}  // namespace mcp
