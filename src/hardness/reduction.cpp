#include "hardness/reduction.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/simulator.hpp"

namespace mcp {

PifReduction reduce_kpartition_to_pif(const KPartitionInstance& instance,
                                      Time tau) {
  instance.validate();
  const std::size_t p = instance.values.size();
  const std::size_t k = instance.group_size;

  PifReduction reduction;
  reduction.group_size = k;
  reduction.values = instance.values;
  reduction.target = instance.target;
  reduction.tau = tau;

  // Deadline t = B(tau+1) + (k+1)tau + (k+2); for k=3 this is the paper's
  // B(tau+1) + 4tau + 5, for k=4 its B(tau+1) + 5tau + 6.
  const Time deadline = static_cast<Time>(instance.target) * (tau + 1) +
                        static_cast<Time>(k + 1) * tau +
                        static_cast<Time>(k + 2);

  PifInstance& pif = reduction.pif;
  pif.base.cache_size = (k + 1) * (p / k);  // (k+1)/k * p cells
  pif.base.tau = tau;
  pif.deadline = deadline;
  for (CoreId core = 0; core < p; ++core) {
    // R_i alternates alpha_i beta_i ...; `deadline` requests suffice to keep
    // the sequence busy through the deadline even in the all-hit extreme.
    RequestSequence seq;
    for (Time i = 0; i < deadline; ++i) {
      seq.push_back(i % 2 == 0 ? PifReduction::alpha(core)
                               : PifReduction::beta(core));
    }
    pif.base.requests.add_sequence(std::move(seq));
    // b_i = B - s_i + (k+1).
    pif.bounds.push_back(static_cast<Count>(instance.target) -
                         instance.values[core] + k + 1);
  }
  pif.validate();
  return reduction;
}

CertificateStrategy::CertificateStrategy(
    const PifReduction& reduction, std::vector<std::vector<std::size_t>> groups)
    : reduction_(&reduction) {
  const std::size_t p = reduction.values.size();
  group_of_.assign(p, static_cast<std::size_t>(-1));
  for (const auto& group : groups) {
    MCP_REQUIRE(group.size() == reduction.group_size,
                "certificate: group of wrong size");
    GroupState state;
    for (std::size_t idx : group) {
      MCP_REQUIRE(idx < p, "certificate: core index out of range");
      state.members.push_back(static_cast<CoreId>(idx));
    }
    std::sort(state.members.begin(), state.members.end());
    for (CoreId member : state.members) {
      MCP_REQUIRE(group_of_[member] == static_cast<std::size_t>(-1),
                  "certificate: core in two groups");
      group_of_[member] = groups_.size();
    }
    groups_.push_back(std::move(state));
  }
  for (std::size_t g : group_of_) {
    MCP_REQUIRE(g != static_cast<std::size_t>(-1),
                "certificate: core not covered by any group");
  }
}

void CertificateStrategy::attach(const SimConfig& /*config*/,
                                 std::size_t num_cores,
                                 const RequestSet* /*requests*/) {
  MCP_REQUIRE(num_cores == reduction_->values.size(),
              "certificate: core count mismatch");
  hits_done_.assign(num_cores, 0);
  next_index_.assign(num_cores, 0);
  resident_.assign(num_cores, {});
  for (GroupState& group : groups_) {
    group.owner_idx = 0;
    group.occupancy = 0;
  }
}

void CertificateStrategy::on_hit(const AccessContext& ctx) {
  ++hits_done_[ctx.core];
  next_index_[ctx.core] = ctx.seq_index + 1;
}

void CertificateStrategy::on_fault(const AccessContext& ctx,
                                   const CacheState& cache, bool needs_cell,
                                   std::vector<PageId>& evictions) {
  MCP_REQUIRE(needs_cell, "certificate: reduction sequences are disjoint");
  const CoreId c = ctx.core;
  next_index_[c] = ctx.seq_index + 1;
  GroupState& group = groups_[group_of_[c]];

  if (group.occupancy == reduction_->group_size + 1) {
    const CoreId owner = group.members[group.owner_idx];
    // Hand the extra cell to the next member (ascending id) exactly when the
    // current owner's hit quota is complete and that member faults.  Once
    // the rotation plan is exhausted (only possible after the deadline, when
    // the last member finished its quota), faults fall through to the
    // steady-state own-cell recycling below.
    const bool handover =
        c != owner && hits_done_[owner] >= reduction_->required_hits(owner) &&
        group.owner_idx + 1 < group.members.size() &&
        group.members[group.owner_idx + 1] == c;
    CoreId victim_core = kInvalidCore;
    PageId victim = kInvalidPage;
    if (handover) {
      // The next member (ascending id) takes the extra cell.  Evict the old
      // owner's page that it requests *next* — the owner (smaller id) was
      // served earlier this same step, so next_index_ points past its final
      // hit and the victim is exactly its t+1 request.
      ++group.owner_idx;
      MCP_REQUIRE(group.owner_idx < group.members.size() &&
                      group.members[group.owner_idx] == c,
                  "certificate: handover to an unexpected core");
      victim_core = owner;
      const RequestSequence& seq =
          reduction_->pif.base.requests.sequence(owner);
      MCP_REQUIRE(next_index_[owner] < seq.size(),
                  "certificate: old owner's sequence exhausted at handover");
      victim = seq[next_index_[owner]];
    } else {
      // Non-owner steady state: recycle the core's own single cell.
      victim_core = c;
      MCP_REQUIRE(resident_[c].size() == 1,
                  "certificate: non-owner expected exactly one resident page");
      victim = resident_[c][0];
    }
    MCP_REQUIRE(cache.contains(victim),
                "certificate: chosen victim is not evictable");
    auto& resident = resident_[victim_core];
    const auto it = std::find(resident.begin(), resident.end(), victim);
    MCP_REQUIRE(it != resident.end(), "certificate: victim bookkeeping lost");
    resident.erase(it);
    --group.occupancy;
    evictions.push_back(victim);
  }

  resident_[c].push_back(ctx.page);
  ++group.occupancy;
}

RunStats play_certificate(const PifReduction& reduction,
                          const std::vector<std::vector<std::size_t>>& groups) {
  KPartitionInstance source;
  source.values = reduction.values;
  source.target = reduction.target;
  source.group_size = reduction.group_size;
  MCP_REQUIRE(check_kpartition_solution(source, groups),
              "play_certificate: groups are not a k-partition solution");
  CertificateStrategy strategy(reduction, groups);
  Simulator sim(reduction.pif.base.sim_config());
  return sim.run(reduction.pif.base.requests, strategy);
}

}  // namespace mcp
