// 3-PARTITION / 4-PARTITION: the NP-complete sources of the paper's
// hardness reductions (Theorems 2 and 3).
//
// k-PARTITION: given n = k*m integers s_i with B/(k+1) < s_i < B/(k-1) and
// sum = m*B, partition them into m groups of exactly k elements each
// summing to B.  The size bounds force every group to have exactly k
// elements; the solver exploits that.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/rng.hpp"

namespace mcp {

struct KPartitionInstance {
  std::vector<std::uint32_t> values;  ///< s_1..s_n
  std::uint32_t target = 0;           ///< B
  std::size_t group_size = 3;         ///< k (3 or 4 in the paper)

  /// Throws ModelError unless the instance satisfies the size constraints
  /// (n divisible by k, sum = (n/k)*B, B/(k+1) < s_i < B/(k-1)).
  void validate() const;
};

/// Groups of element *indices*, each of size k and summing to B; nullopt if
/// the instance has no solution.  Exact backtracking — exponential, fine
/// for the reduction-scale instances (n <= ~24).
[[nodiscard]] std::optional<std::vector<std::vector<std::size_t>>>
solve_kpartition(const KPartitionInstance& instance);

/// True iff `groups` is a valid solution of `instance`.
[[nodiscard]] bool check_kpartition_solution(
    const KPartitionInstance& instance,
    const std::vector<std::vector<std::size_t>>& groups);

/// Random planted YES instance: `num_groups` groups of `group_size` values
/// summing to `target` each, then shuffled.  All constraints hold by
/// construction.
[[nodiscard]] KPartitionInstance random_yes_instance(Rng& rng,
                                                     std::size_t num_groups,
                                                     std::size_t group_size,
                                                     std::uint32_t target);

/// The canonical smallest NO instance of 3-PARTITION under the paper's
/// constraints: S = {4,4,4,4,4,6}, B = 13 (triples can only reach 12 or 14).
[[nodiscard]] KPartitionInstance smallest_no_instance_3partition();

}  // namespace mcp
