#include "hardness/kpartition.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace mcp {

void KPartitionInstance::validate() const {
  MCP_REQUIRE(group_size >= 2, "k-PARTITION: group size must be >= 2");
  MCP_REQUIRE(!values.empty(), "k-PARTITION: empty instance");
  MCP_REQUIRE(values.size() % group_size == 0,
              "k-PARTITION: n must be divisible by the group size");
  const std::uint64_t sum =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  const std::uint64_t groups = values.size() / group_size;
  MCP_REQUIRE(sum == groups * target,
              "k-PARTITION: values must sum to (n/k)*B");
  for (std::uint32_t v : values) {
    // B/(k+1) < v < B/(k-1), strictly.
    MCP_REQUIRE(v * (group_size + 1) > target,
                "k-PARTITION: value too small (v <= B/(k+1))");
    MCP_REQUIRE(v * (group_size - 1) < target,
                "k-PARTITION: value too large (v >= B/(k-1))");
  }
}

namespace {

struct Solver {
  const KPartitionInstance* instance;
  std::vector<std::size_t> order;      // indices, descending by value
  std::vector<bool> used;
  std::vector<std::vector<std::size_t>> groups;

  bool fill_group(std::vector<std::size_t>& group, std::uint32_t remaining,
                  std::size_t min_order_pos) {
    const std::size_t k = instance->group_size;
    if (group.size() == k) return remaining == 0 && close_group(group);
    const std::size_t slots_left = k - group.size();
    for (std::size_t pos = min_order_pos; pos < order.size(); ++pos) {
      const std::size_t idx = order[pos];
      if (used[idx]) continue;
      const std::uint32_t v = instance->values[idx];
      if (v > remaining) continue;
      // Bound: even the largest remaining values cannot overshoot/undershoot
      // checked implicitly by the value-range constraints; prune on totals.
      if (slots_left == 1 && v != remaining) continue;
      used[idx] = true;
      group.push_back(idx);
      if (fill_group(group, remaining - v, pos + 1)) return true;
      group.pop_back();
      used[idx] = false;
      // Symmetry pruning: trying another element of equal value in the same
      // slot can only reproduce the failure.
      while (pos + 1 < order.size() && instance->values[order[pos + 1]] == v &&
             !used[order[pos + 1]]) {
        ++pos;
      }
    }
    return false;
  }

  bool close_group(std::vector<std::size_t>& group) {
    groups.push_back(group);
    // Next group starts from the first unused element (canonical order kills
    // group-permutation symmetry).
    const auto first_unused =
        std::find_if(order.begin(), order.end(),
                     [this](std::size_t idx) { return !used[idx]; });
    if (first_unused == order.end()) return true;  // all placed
    const std::size_t idx = *first_unused;
    used[idx] = true;
    std::vector<std::size_t> next = {idx};
    const std::size_t pos =
        static_cast<std::size_t>(first_unused - order.begin());
    if (fill_group(next, instance->target - instance->values[idx], pos + 1)) {
      return true;
    }
    used[idx] = false;
    groups.pop_back();
    return false;
  }
};

}  // namespace

std::optional<std::vector<std::vector<std::size_t>>> solve_kpartition(
    const KPartitionInstance& instance) {
  instance.validate();
  Solver solver;
  solver.instance = &instance;
  solver.order.resize(instance.values.size());
  std::iota(solver.order.begin(), solver.order.end(), std::size_t{0});
  std::sort(solver.order.begin(), solver.order.end(),
            [&instance](std::size_t a, std::size_t b) {
              return instance.values[a] > instance.values[b];
            });
  solver.used.assign(instance.values.size(), false);

  // Seed the first group with the (canonical) largest element.
  const std::size_t first = solver.order[0];
  solver.used[first] = true;
  std::vector<std::size_t> group = {first};
  if (solver.fill_group(group, instance.target - instance.values[first], 1)) {
    return solver.groups;
  }
  return std::nullopt;
}

bool check_kpartition_solution(
    const KPartitionInstance& instance,
    const std::vector<std::vector<std::size_t>>& groups) {
  if (groups.size() * instance.group_size != instance.values.size()) return false;
  std::vector<bool> seen(instance.values.size(), false);
  for (const auto& group : groups) {
    if (group.size() != instance.group_size) return false;
    std::uint64_t sum = 0;
    for (std::size_t idx : group) {
      if (idx >= instance.values.size() || seen[idx]) return false;
      seen[idx] = true;
      sum += instance.values[idx];
    }
    if (sum != instance.target) return false;
  }
  return true;
}

KPartitionInstance random_yes_instance(Rng& rng, std::size_t num_groups,
                                       std::size_t group_size,
                                       std::uint32_t target) {
  MCP_REQUIRE(group_size >= 2, "group size must be >= 2");
  const std::uint32_t lo = target / static_cast<std::uint32_t>(group_size + 1) + 1;
  const std::uint32_t hi = (target - 1) / static_cast<std::uint32_t>(group_size - 1);
  MCP_REQUIRE(lo <= hi, "target too small to admit in-range values");

  KPartitionInstance instance;
  instance.target = target;
  instance.group_size = group_size;
  for (std::size_t g = 0; g < num_groups; ++g) {
    // Rejection-sample a group of in-range values summing to target.
    for (int attempt = 0;; ++attempt) {
      MCP_REQUIRE(attempt < 10000, "random_yes_instance: sampling failed "
                                   "(choose a larger target)");
      std::vector<std::uint32_t> group(group_size);
      std::uint32_t sum = 0;
      for (std::size_t i = 0; i + 1 < group_size; ++i) {
        group[i] = static_cast<std::uint32_t>(rng.between(lo, hi));
        sum += group[i];
      }
      if (sum >= target) continue;
      const std::uint32_t last = target - sum;
      if (last < lo || last > hi) continue;
      group[group_size - 1] = last;
      instance.values.insert(instance.values.end(), group.begin(), group.end());
      break;
    }
  }
  // Shuffle so solutions aren't contiguous.
  for (std::size_t i = instance.values.size(); i > 1; --i) {
    std::swap(instance.values[i - 1], instance.values[rng.below(i)]);
  }
  instance.validate();
  return instance;
}

KPartitionInstance smallest_no_instance_3partition() {
  KPartitionInstance instance;
  instance.values = {4, 4, 4, 4, 4, 6};
  instance.target = 13;
  instance.group_size = 3;
  instance.validate();
  return instance;
}

}  // namespace mcp
