// The paper's hardness reductions, as executable instance builders.
//
// Theorem 2 (k=3): 3-PARTITION -> PARTIAL-INDIVIDUAL-FAULTS.  One sequence
// per element, R_i = alpha_i beta_i alpha_i beta_i ..., cache K = (4/3)p,
// per-sequence fault bound b_i = B - s_i + 4, deadline
// t = B(tau+1) + 4*tau + 5.
//
// Theorem 3 (k=4): the analogous 4-PARTITION -> PIF reduction behind the
// MAX-PIF APX-hardness proof: K = (5/4)p, b_i = B - s_i + 5, deadline
// t = B(tau+1) + 5*tau + 6.
//
// Both directions are executable here:
//   * forward — a k-partition solution converts, via CertificateStrategy,
//     into an explicit eviction schedule under which the simulator meets
//     every bound *with equality* (the proof's schedule, mechanized);
//   * backward (on solvable sizes) — the PIF decision of the reduced
//     instance matches the k-PARTITION answer (tested via solve_pif /
//     exhaustive_pif on the tiniest instances, and via the certificate on
//     all).
#pragma once

#include <cstddef>
#include <vector>

#include "core/stats.hpp"
#include "core/strategy.hpp"
#include "hardness/kpartition.hpp"
#include "offline/instance.hpp"

namespace mcp {

struct PifReduction {
  PifInstance pif;
  std::size_t group_size = 3;             ///< k of the source problem
  std::vector<std::uint32_t> values;      ///< s_i, copied from the source
  std::uint32_t target = 0;               ///< B
  Time tau = 0;

  /// alpha_i = 2i, beta_i = 2i + 1.
  [[nodiscard]] static PageId alpha(CoreId core) { return 2 * core; }
  [[nodiscard]] static PageId beta(CoreId core) { return 2 * core + 1; }

  /// Required hits of sequence i by the deadline: h_i = s_i(tau+1) + 1.
  [[nodiscard]] Count required_hits(CoreId core) const {
    return static_cast<Count>(values[core]) * (tau + 1) + 1;
  }
};

/// Builds the PIF instance of the Theorem 2 (group_size 3) or Theorem 3
/// (group_size 4) reduction.  tau >= 0.
[[nodiscard]] PifReduction reduce_kpartition_to_pif(
    const KPartitionInstance& instance, Time tau);

/// The proof's certificate schedule, mechanized as a strategy: each group of
/// k sequences shares k+1 cells; every sequence keeps one dedicated cell and
/// the group's extra cell rotates through the members (ascending core id),
/// giving member i exactly h_i hits before handing the cell on.
class CertificateStrategy final : public CacheStrategy {
 public:
  CertificateStrategy(const PifReduction& reduction,
                      std::vector<std::vector<std::size_t>> groups);

  void attach(const SimConfig& config, std::size_t num_cores,
              const RequestSet* requests) override;
  void on_hit(const AccessContext& ctx) override;
  void on_fault(const AccessContext& ctx, const CacheState& cache,
                bool needs_cell, std::vector<PageId>& evictions) override;
  [[nodiscard]] std::string name() const override { return "CERTIFICATE"; }

 private:
  struct GroupState {
    std::vector<CoreId> members;   // ascending core id
    std::size_t owner_idx = 0;     // member currently holding 2 cells
    std::size_t occupancy = 0;     // resident pages of this group
  };

  const PifReduction* reduction_;
  std::vector<GroupState> groups_;
  std::vector<std::size_t> group_of_;      // core -> group index
  std::vector<Count> hits_done_;
  std::vector<std::size_t> next_index_;    // next unserved request per core
  std::vector<std::vector<PageId>> resident_;  // core -> its resident pages
};

/// Runs the certificate schedule for `groups` (a k-partition solution,
/// element indices == core ids) and returns the stats; the caller checks
/// the PIF bounds.  Throws ModelError if `groups` is not a valid solution.
[[nodiscard]] RunStats play_certificate(
    const PifReduction& reduction,
    const std::vector<std::vector<std::size_t>>& groups);

}  // namespace mcp
