#include "workload/phases.hpp"

#include <unordered_set>

#include "core/error.hpp"

namespace mcp {

std::vector<std::size_t> phase_starts(const RequestSequence& seq,
                                      std::size_t k) {
  MCP_REQUIRE(k > 0, "phase threshold must be positive");
  std::vector<std::size_t> starts;
  std::unordered_set<PageId> distinct;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (starts.empty()) {
      starts.push_back(0);
      distinct.insert(seq[i]);
      continue;
    }
    if (!distinct.contains(seq[i])) {
      if (distinct.size() == k) {  // the (k+1)-th distinct page: new phase
        starts.push_back(i);
        distinct.clear();
      }
      distinct.insert(seq[i]);
    }
  }
  return starts;
}

std::size_t count_phases(const RequestSequence& seq, std::size_t k) {
  return phase_starts(seq, k).size();
}

RequestSequence canonical_interleaving(const RequestSet& requests) {
  RequestSequence merged;
  const std::size_t rounds = requests.max_sequence_length();
  for (std::size_t i = 0; i < rounds; ++i) {
    for (CoreId j = 0; j < requests.num_cores(); ++j) {
      const RequestSequence& seq = requests.sequence(j);
      if (i < seq.size()) merged.push_back(seq[i]);
    }
  }
  return merged;
}

PhaseDecomposition decompose_phases(const RequestSet& requests,
                                    std::size_t cache_size,
                                    const std::vector<std::size_t>& per_core) {
  MCP_REQUIRE(per_core.size() == requests.num_cores(),
              "decompose_phases: one threshold per core required");
  PhaseDecomposition result;
  result.shared_phases =
      count_phases(canonical_interleaving(requests), cache_size);
  for (CoreId j = 0; j < requests.num_cores(); ++j) {
    result.core_phases.push_back(count_phases(requests.sequence(j), per_core[j]));
  }
  return result;
}

}  // namespace mcp
