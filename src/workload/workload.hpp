// Synthetic multicore workload generators.
//
// The paper has no benchmark suite of its own (it is a theory paper), so
// these generators provide the locality models a paging evaluation is
// expected to exercise: uniform noise, Zipf popularity, working-set phases
// (the classic program-behaviour model), sequential scans and tight loops.
// Every generator is deterministic given the seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/rng.hpp"

namespace mcp {

/// Locality model of one core's request sequence.
enum class AccessPattern {
  kUniform,     ///< uniform over the core's page range
  kZipf,        ///< Zipf(alpha) popularity over the range
  kWorkingSet,  ///< phases: a small hot set, re-drawn every phase_length
  kScan,        ///< sequential sweep through the range, wrapping
  kLoop,        ///< tight loop over the first loop_length pages
  kMarkov,      ///< first-order random walk with restarts (spatial locality)
};

[[nodiscard]] std::string to_string(AccessPattern pattern);

/// Per-core generation parameters.
struct CoreWorkload {
  AccessPattern pattern = AccessPattern::kUniform;
  std::size_t num_pages = 64;      ///< size of this core's page range
  std::size_t length = 1024;       ///< requests to generate
  double zipf_alpha = 0.8;         ///< kZipf skew
  std::size_t working_set = 8;     ///< kWorkingSet hot-set size
  std::size_t phase_length = 128;  ///< kWorkingSet requests per phase
  std::size_t loop_length = 8;     ///< kLoop cycle length
  double markov_locality = 0.9;    ///< kMarkov: P(step to a neighbour); the
                                   ///< rest restarts uniformly in the range
};

/// Whole-machine spec: one CoreWorkload per core.
struct WorkloadSpec {
  std::vector<CoreWorkload> cores;
  /// true: each core draws from its own disjoint page range; false: all
  /// cores share range [0, max num_pages).
  bool disjoint = true;
  std::uint64_t seed = 0x5EED;
};

/// Generates the request set for `spec`.
[[nodiscard]] RequestSet make_workload(const WorkloadSpec& spec);

/// Convenience: p identical cores with the given per-core model.
[[nodiscard]] WorkloadSpec homogeneous_spec(std::size_t num_cores,
                                            const CoreWorkload& core,
                                            bool disjoint = true,
                                            std::uint64_t seed = 0x5EED);

/// Samples one sequence directly (unit-test/back-door entry point).
[[nodiscard]] RequestSequence generate_sequence(const CoreWorkload& workload,
                                                PageId first_page, Rng& rng);

/// Zipf sampler over {0..n-1} with exponent alpha (rank 1 most popular).
/// Precomputes the CDF once; draws are O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace mcp
