#include "workload/analysis.hpp"

#include <unordered_map>

#include "core/error.hpp"

namespace mcp {

namespace {

/// Fenwick tree over access timestamps; counts "live" last-access marks.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t i, int delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }
  /// Sum of [0, i).
  [[nodiscard]] int prefix(std::size_t i) const {
    int sum = 0;
    for (; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

 private:
  std::vector<int> tree_;
};

}  // namespace

StackDistanceHistogram::StackDistanceHistogram(const RequestSequence& seq) {
  const std::size_t n = seq.size();
  total_ = n;
  Fenwick live(n);
  std::unordered_map<PageId, std::size_t> last_access;
  std::vector<Count> counts;
  for (std::size_t i = 0; i < n; ++i) {
    const PageId page = seq[i];
    const auto it = last_access.find(page);
    if (it == last_access.end()) {
      ++cold_;
    } else {
      // Distinct pages touched strictly after `page`'s previous access:
      // live marks in (it->second, i).
      const std::size_t d = static_cast<std::size_t>(
          live.prefix(i) - live.prefix(it->second + 1));
      if (d >= counts.size()) counts.resize(d + 1, 0);
      ++counts[d];
      live.add(it->second, -1);
    }
    live.add(i, +1);
    last_access[page] = i;
  }
  // Pad to the number of distinct pages (distances can't exceed it, but a
  // short run may not have realized the deeper ones).
  if (counts.size() < last_access.size()) counts.resize(last_access.size(), 0);
  counts_ = std::move(counts);
  // Suffix sums: suffix_[d] = accesses at distance >= d.
  suffix_.assign(counts_.size() + 1, 0);
  for (std::size_t d = counts_.size(); d-- > 0;) {
    suffix_[d] = suffix_[d + 1] + counts_[d];
  }
}

Count StackDistanceHistogram::lru_faults(std::size_t k) const {
  // An access at stack distance d hits iff k > d.
  const std::size_t idx = std::min(k, suffix_.size() - 1);
  return cold_ + suffix_[idx];
}

std::vector<Count> StackDistanceHistogram::lru_curve(std::size_t max_cache) const {
  std::vector<Count> curve(max_cache + 1);
  for (std::size_t k = 0; k <= max_cache; ++k) curve[k] = lru_faults(k);
  return curve;
}

Count lru_faults_via_stack_distance(const RequestSequence& seq, std::size_t k) {
  return StackDistanceHistogram(seq).lru_faults(k);
}

}  // namespace mcp
