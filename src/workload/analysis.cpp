#include "workload/analysis.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/error.hpp"
#include "policies/mattson.hpp"

namespace mcp {

StackDistanceHistogram::StackDistanceHistogram(const RequestSequence& seq) {
  total_ = seq.size();
  // The single-pass Fenwick kernel lives in policies/mattson.hpp (it is
  // also the LRU fast path of partition search); this class is the
  // histogram view of its output.  Note the off-by-one between the two
  // conventions: mattson's distance counts the re-referenced page itself
  // (minimum 1), the histogram indexes by pages *in between* (minimum 0).
  std::unordered_set<PageId> distinct(seq.begin(), seq.end());
  std::vector<Count> counts;
  for (const std::size_t d : stack_distances(seq)) {
    if (d == 0) {
      ++cold_;
      continue;
    }
    if (d - 1 >= counts.size()) counts.resize(d, 0);
    ++counts[d - 1];
  }
  // Pad to the number of distinct pages (distances can't exceed it, but a
  // short run may not have realized the deeper ones).
  if (counts.size() < distinct.size()) counts.resize(distinct.size(), 0);
  counts_ = std::move(counts);
  // Suffix sums: suffix_[d] = accesses at distance >= d.
  suffix_.assign(counts_.size() + 1, 0);
  for (std::size_t d = counts_.size(); d-- > 0;) {
    suffix_[d] = suffix_[d + 1] + counts_[d];
  }
}

Count StackDistanceHistogram::lru_faults(std::size_t k) const {
  // An access at stack distance d hits iff k > d.
  const std::size_t idx = std::min(k, suffix_.size() - 1);
  return cold_ + suffix_[idx];
}

std::vector<Count> StackDistanceHistogram::lru_curve(std::size_t max_cache) const {
  std::vector<Count> curve(max_cache + 1);
  for (std::size_t k = 0; k <= max_cache; ++k) curve[k] = lru_faults(k);
  return curve;
}

Count lru_faults_via_stack_distance(const RequestSequence& seq, std::size_t k) {
  return StackDistanceHistogram(seq).lru_faults(k);
}

}  // namespace mcp
