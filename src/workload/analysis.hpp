// Trace analysis: reuse (LRU stack) distances and miss-ratio curves.
//
// Mattson's classic observation: LRU's fault count for *every* cache size
// falls out of one pass over the trace — an access at stack distance d hits
// iff the cache holds more than d pages.  The profiler computes the
// stack-distance histogram in O(n log n) with a Fenwick tree; the resulting
// curve is the exact LRU miss-ratio curve, used as the fast path for
// per-core fault curves in partition search and by the utility controller's
// offline counterpart.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp {

/// Exact LRU stack-distance profile of one sequence.
class StackDistanceHistogram {
 public:
  /// Builds the histogram in one pass (O(n log n)).
  explicit StackDistanceHistogram(const RequestSequence& seq);

  /// Accesses at stack distance exactly `d` (0 = re-reference with nothing
  /// in between).
  [[nodiscard]] Count at(std::size_t d) const {
    return d < counts_.size() ? counts_[d] : 0;
  }
  /// First-touch (cold) accesses — infinite stack distance.
  [[nodiscard]] Count cold() const noexcept { return cold_; }
  /// Total accesses profiled.
  [[nodiscard]] Count total() const noexcept { return total_; }
  /// Distinct pages in the sequence.
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  /// Exact LRU faults with a cache of `k` pages: cold misses plus accesses
  /// at stack distance >= k.
  [[nodiscard]] Count lru_faults(std::size_t k) const;

  /// curve[k] = lru_faults(k) for k = 0..max_cache.
  [[nodiscard]] std::vector<Count> lru_curve(std::size_t max_cache) const;

 private:
  std::vector<Count> counts_;  // index d = stack distance d
  std::vector<Count> suffix_;  // suffix sums of counts_ for O(1) queries
  Count cold_ = 0;
  Count total_ = 0;
};

/// Exact LRU fault count for one sequence and one cache size (convenience
/// wrapper; build the histogram once if you need several sizes).
[[nodiscard]] Count lru_faults_via_stack_distance(const RequestSequence& seq,
                                                  std::size_t k);

}  // namespace mcp
