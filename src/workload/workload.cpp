#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace mcp {

std::string to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kUniform: return "uniform";
    case AccessPattern::kZipf: return "zipf";
    case AccessPattern::kWorkingSet: return "working-set";
    case AccessPattern::kScan: return "scan";
    case AccessPattern::kLoop: return "loop";
    case AccessPattern::kMarkov: return "markov";
  }
  return "?";
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  MCP_REQUIRE(n > 0, "ZipfSampler: empty support");
  MCP_REQUIRE(alpha >= 0.0, "ZipfSampler: negative exponent");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), alpha);
    cdf_[rank - 1] = total;
  }
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

RequestSequence generate_sequence(const CoreWorkload& workload,
                                  PageId first_page, Rng& rng) {
  MCP_REQUIRE(workload.num_pages > 0, "workload: empty page range");
  RequestSequence seq;

  switch (workload.pattern) {
    case AccessPattern::kUniform: {
      for (std::size_t i = 0; i < workload.length; ++i) {
        seq.push_back(first_page +
                      static_cast<PageId>(rng.below(workload.num_pages)));
      }
      break;
    }
    case AccessPattern::kZipf: {
      const ZipfSampler zipf(workload.num_pages, workload.zipf_alpha);
      // Random rank->page mapping so the hot pages aren't always the first
      // ids (matters when cores share a universe).
      std::vector<PageId> perm(workload.num_pages);
      for (std::size_t i = 0; i < perm.size(); ++i) {
        perm[i] = first_page + static_cast<PageId>(i);
      }
      for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.below(i)]);
      }
      for (std::size_t i = 0; i < workload.length; ++i) {
        seq.push_back(perm[zipf.sample(rng)]);
      }
      break;
    }
    case AccessPattern::kWorkingSet: {
      const std::size_t ws =
          std::min(workload.working_set, workload.num_pages);
      MCP_REQUIRE(ws > 0, "workload: empty working set");
      std::vector<PageId> hot;
      for (std::size_t i = 0; i < workload.length; ++i) {
        if (i % std::max<std::size_t>(1, workload.phase_length) == 0) {
          // New phase: draw a fresh hot set.
          hot.clear();
          while (hot.size() < ws) {
            const PageId candidate =
                first_page + static_cast<PageId>(rng.below(workload.num_pages));
            if (std::find(hot.begin(), hot.end(), candidate) == hot.end()) {
              hot.push_back(candidate);
            }
          }
        }
        seq.push_back(hot[rng.below(hot.size())]);
      }
      break;
    }
    case AccessPattern::kScan: {
      for (std::size_t i = 0; i < workload.length; ++i) {
        seq.push_back(first_page +
                      static_cast<PageId>(i % workload.num_pages));
      }
      break;
    }
    case AccessPattern::kLoop: {
      const std::size_t cycle =
          std::min(std::max<std::size_t>(1, workload.loop_length),
                   workload.num_pages);
      for (std::size_t i = 0; i < workload.length; ++i) {
        seq.push_back(first_page + static_cast<PageId>(i % cycle));
      }
      break;
    }
    case AccessPattern::kMarkov: {
      MCP_REQUIRE(workload.markov_locality >= 0.0 &&
                      workload.markov_locality <= 1.0,
                  "workload: markov_locality must be in [0, 1]");
      std::size_t cur = rng.below(workload.num_pages);
      for (std::size_t i = 0; i < workload.length; ++i) {
        seq.push_back(first_page + static_cast<PageId>(cur));
        if (rng.chance(workload.markov_locality)) {
          // Walk to a neighbour (wrapping), modelling spatial locality.
          const std::size_t dir = rng.below(2);
          cur = dir == 0 ? (cur + 1) % workload.num_pages
                         : (cur + workload.num_pages - 1) % workload.num_pages;
        } else {
          cur = rng.below(workload.num_pages);  // restart
        }
      }
      break;
    }
  }
  return seq;
}

RequestSet make_workload(const WorkloadSpec& spec) {
  MCP_REQUIRE(!spec.cores.empty(), "workload spec has no cores");
  Rng root(spec.seed);
  RequestSet rs;
  PageId next_base = 0;
  std::size_t shared_range = 0;
  for (const CoreWorkload& core : spec.cores) {
    shared_range = std::max(shared_range, core.num_pages);
  }
  for (std::size_t j = 0; j < spec.cores.size(); ++j) {
    Rng rng = root.fork(j);
    const PageId base = spec.disjoint ? next_base : 0;
    rs.add_sequence(generate_sequence(spec.cores[j], base, rng));
    next_base += static_cast<PageId>(spec.cores[j].num_pages);
  }
  (void)shared_range;
  return rs;
}

WorkloadSpec homogeneous_spec(std::size_t num_cores, const CoreWorkload& core,
                              bool disjoint, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.cores.assign(num_cores, core);
  spec.disjoint = disjoint;
  spec.seed = seed;
  return spec;
}

}  // namespace mcp
