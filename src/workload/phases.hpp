// Phase decompositions — the combinatorial engine behind the paper's upper
// bounds (Lemma 1's k-competitiveness and Theorem 1.2's S_LRU <= K *
// sP^OPT_OPT).
//
// Per-core phases: sequence R_j splits into maximal segments containing at
// most k_j distinct pages (a new phase begins at the (k_j+1)-th distinct
// page).  Any algorithm with k_j cells faults at least once per phase; a
// marking/conservative algorithm faults at most k_j times per phase.
//
// Shared phases: the same decomposition applied to an interleaving of the
// whole request set with threshold K.  Theorem 1.2's key claim: a shared
// phase cannot start and end without at least one per-core phase ending,
// hence phi_shared <= sum_j phi_j.  Phases of the *interleaved* sequence
// depend on execution timing; this module uses the canonical tau=0
// round-robin interleaving, which is exactly the execution order when no
// faults delay anyone — the claims proved here are combinatorial and the
// tests verify them on this canonical order.
#pragma once

#include <cstddef>
#include <vector>

#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp {

/// Number of phases of `seq` with distinct-page threshold `k` (0 for an
/// empty sequence; every nonempty sequence has at least 1).
[[nodiscard]] std::size_t count_phases(const RequestSequence& seq,
                                       std::size_t k);

/// Start indices of each phase (first element 0 for nonempty sequences).
[[nodiscard]] std::vector<std::size_t> phase_starts(const RequestSequence& seq,
                                                    std::size_t k);

/// The canonical tau=0 interleaving of a request set: round-robin over
/// cores by request index (core order within a round), which is the service
/// order when every request hits.
[[nodiscard]] RequestSequence canonical_interleaving(const RequestSet& requests);

struct PhaseDecomposition {
  std::size_t shared_phases = 0;          ///< phi: threshold-K phases of the
                                          ///< canonical interleaving
  std::vector<std::size_t> core_phases;   ///< phi_j: threshold-k_j phases of R_j
  [[nodiscard]] std::size_t core_phase_total() const {
    std::size_t total = 0;
    for (std::size_t phi : core_phases) total += phi;
    return total;
  }
};

/// Full decomposition: shared phases at threshold `cache_size`, per-core
/// phases at thresholds `per_core[j]`.
[[nodiscard]] PhaseDecomposition decompose_phases(
    const RequestSet& requests, std::size_t cache_size,
    const std::vector<std::size_t>& per_core);

}  // namespace mcp
