#include "service/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "workload/workload.hpp"

namespace mcp::service {

namespace {

/// One tenant's pre-encoded wire document: open, interleaved single-core
/// run frames (the compact kRequestRun form), close, and a trailing
/// fault-count query (query_id = session id), so a single submission
/// drives the session end-to-end.
[[nodiscard]] std::shared_ptr<const std::vector<std::byte>> encode_tenant(
    const RequestSet& trace, std::uint64_t session,
    const wire::SessionParams& params, std::size_t chunk_pairs) {
  wire::WireWriter writer;
  writer.session_open(session, params);
  std::vector<std::size_t> cursor(trace.num_cores(), 0);
  bool emitted = true;
  while (emitted) {
    emitted = false;
    for (CoreId core = 0; core < trace.num_cores(); ++core) {
      const RequestSequence& seq = trace.sequence(core);
      if (cursor[core] >= seq.size()) continue;
      const std::size_t n = std::min(chunk_pairs, seq.size() - cursor[core]);
      writer.request_run(session, static_cast<std::uint32_t>(core),
                         seq.pages().subspan(cursor[core], n));
      cursor[core] += n;
      emitted = true;
    }
  }
  writer.session_close(session);
  writer.query_faults(session, /*query_id=*/session);
  return std::make_shared<const std::vector<std::byte>>(
      std::move(writer).take());
}

}  // namespace

LoadgenResult run_loadgen(const LoadgenConfig& config) {
  MCP_REQUIRE(config.tenants > 0, "loadgen: need at least one tenant");
  MCP_REQUIRE(config.producers > 0, "loadgen: need at least one producer");

  // Tenant t's session parameters: the homogeneous mix is one cohort per
  // shard, the mixed mix cycles every wire strategy (several cohorts).
  static constexpr wire::StrategyKind kStrategyCycle[] = {
      wire::StrategyKind::kSharedLru, wire::StrategyKind::kStaticEvenLru,
      wire::StrategyKind::kSharedFifo, wire::StrategyKind::kStaticEvenFifo};
  const auto tenant_params = [&config](std::size_t t) {
    wire::SessionParams params{
        static_cast<std::uint32_t>(config.cores_per_tenant),
        static_cast<std::uint32_t>(config.cache_size),
        static_cast<std::uint32_t>(config.fault_penalty), config.strategy};
    if (config.mix == TenantMix::kMixed) {
      params.strategy = kStrategyCycle[t % std::size(kStrategyCycle)];
    }
    return params;
  };

  // Build every tenant's trace and wire document up front — excluded from
  // the timed region, the loadgen measures the daemon, not the generator.
  CoreWorkload core_model;
  core_model.pattern = AccessPattern::kWorkingSet;
  core_model.num_pages = config.pages_per_core;
  core_model.length = config.requests_per_core;
  core_model.working_set = std::max<std::size_t>(4, config.cache_size /
                                                        config.cores_per_tenant);
  if (config.mix == TenantMix::kHomogeneous) {
    // The cohort scenario models correctly-provisioned identical tenants:
    // each core's page universe is exactly its cache share, so past the
    // cold misses the daemon runs at an advisory service's design-point
    // hit rate.  The mixed replay keeps the oversubscribed shape (a
    // 128-page universe churning against a 16-page share) that stresses
    // the fault path instead.
    core_model.num_pages = core_model.working_set;
  }

  std::vector<std::shared_ptr<const std::vector<std::byte>>> docs;
  docs.reserve(config.tenants);
  std::uint64_t pairs = 0;
  std::uint64_t seed_state = config.seed;
  for (std::size_t t = 0; t < config.tenants; ++t) {
    const RequestSet trace = make_workload(homogeneous_spec(
        config.cores_per_tenant, core_model, /*disjoint=*/true,
        splitmix64(seed_state)));
    pairs += trace.total_requests();
    // Session ids start at 1; id 0 is reserved for "no session" in traces.
    docs.push_back(
        encode_tenant(trace, t + 1, tenant_params(t), config.chunk_pairs));
  }

  McpdConfig daemon_config;
  daemon_config.num_shards = config.num_shards;
  daemon_config.enable_batching = config.enable_batching;
  Mcpd daemon(daemon_config);

  // Producers own disjoint tenant slices; each submits its documents, then
  // blocks until every one of its sessions replied to the trailing query.
  std::vector<std::uint64_t> producer_faults(config.producers, 0);
  const auto producer_body = [&](std::size_t producer) {
    const auto mailbox = std::make_shared<ResponseMailbox>();
    std::size_t mine = 0;
    for (std::size_t t = producer; t < config.tenants;
         t += config.producers) {
      daemon.submit_document(docs[t], mailbox);
      ++mine;
    }
    std::uint64_t faults = 0;
    for (std::size_t got = 0; got < mine; ++got) {
      const std::vector<std::byte> doc = mailbox->wait();
      wire::WireReader reader(doc);
      wire::FrameView frame;
      MCP_REQUIRE(reader.next(frame), "loadgen: empty reply");
      const wire::FaultCountsReply reply = wire::decode_fault_counts(frame);
      MCP_REQUIRE(reply.finished, "loadgen: unfinished session replied");
      for (const Count f : reply.per_core_faults) faults += f;
    }
    producer_faults[producer] = faults;
  };

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> producers;
    producers.reserve(config.producers);
    for (std::size_t c = 0; c < config.producers; ++c) {
      producers.emplace_back(producer_body, c);
    }
    for (std::thread& thread : producers) thread.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  daemon.stop();

  LoadgenResult result;
  result.shards = config.num_shards;
  result.tenants = config.tenants;
  result.pairs = pairs;
  result.wall_seconds = wall;
  result.requests_per_sec =
      wall > 0.0 ? static_cast<double>(pairs) / wall : 0.0;
  for (const std::uint64_t faults : producer_faults) {
    result.total_faults += faults;
  }
  for (std::size_t s = 0; s < daemon.num_shards(); ++s) {
    const ShardStats& stats = daemon.shard_stats(s);
    if (stats.busy_ns > 0 && stats.pairs > 0) {
      result.capacity_rps += static_cast<double>(stats.pairs) /
                             (static_cast<double>(stats.busy_ns) * 1e-9);
    }
    result.epochs += stats.epochs;
    result.bad_frames += stats.bad_frames;
    result.batched_sessions += stats.batched_sessions;
    result.scalar_sessions += stats.scalar_sessions;
    result.lane_steps += stats.lane_steps;
    result.epoch_latency.merge(stats.epoch_latency);
  }
  MCP_REQUIRE(result.bad_frames == 0, "loadgen: daemon dropped frames");
  return result;
}

}  // namespace mcp::service
