// Lock-free multi-producer single-consumer intrusive queue (Vyukov's
// classic design) — the ingress path of every mcpd shard.
//
// Producers (client threads, the loadgen) push with one atomic exchange and
// one store; the shard's worker thread is the only popper.  The queue is
// *intrusive*: values embed the hook node, so a push is allocation-free
// once the message object exists — no internal nodes, no ABA problem (a
// node is owned by exactly one side at a time), unbounded capacity.
//
// Progress guarantees: push is wait-free (two unconditional atomic ops).
// pop is lock-free with one benign transient: after a producer's exchange
// but before its store, the list is momentarily split and pop returns
// nullptr as if empty; the item becomes visible as soon as the store lands.
// The consumer must therefore treat "empty" as advisory — mcpd re-checks
// after arming its sleep (see Shard::run).
//
// Memory ordering: push publishes the message payload via the release
// store to prev->next; pop's acquire load of next synchronizes-with it, so
// everything written before push() is visible to the consumer after pop().
//
// Static analysis: the queue is purely atomic-coordinated — there is no
// lock capability for Clang's -Wthread-safety to track (the single-consumer
// discipline is a caller contract, checked dynamically by the tsan-full CI
// job).  Its static invariant — every access above names an explicit
// memory_order — is enforced by `tools/verify/mcp_verify.py` rule
// `atomic-order` over src/service (see src/core/annotations.hpp).
#pragma once

#include <atomic>
#include <cstddef>

#include "core/error.hpp"

namespace mcp::service {

/// Embed one of these in every message type pushed through MpscQueue.
struct MpscHook {
  std::atomic<MpscHook*> next{nullptr};
};
// push()'s wait-freedom claim assumes the link pointer is a real atomic
// word, not a lock-backed emulation.
static_assert(std::atomic<MpscHook*>::is_always_lock_free);

/// T must derive from MpscHook.  The queue never owns messages: the pusher
/// hands ownership to the popper through the queue, and destruction of a
/// non-empty queue asserts (messages would leak silently otherwise).
template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() { MCP_ASSERT(empty()); }

  /// Wait-free; callable from any thread.
  void push(T* item) noexcept {
    MpscHook* node = item;
    node->next.store(nullptr, std::memory_order_relaxed);
    // The exchange makes this node the new head; linking the previous head
    // to it (release) publishes the item and everything written before.
    MpscHook* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Single-consumer only.  Returns nullptr when empty *or* when a push is
  /// mid-flight (see header comment) — callers must not infer quiescence.
  T* pop() noexcept {
    MpscHook* tail = tail_;
    MpscHook* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // empty (or push in flight)
      tail_ = next;  // unhook the stub; first real node becomes the tail
      tail = next;
      next = tail->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return static_cast<T*>(tail);
    }
    // tail is the last visible node.  If it is also the head, re-insert the
    // stub behind it so the list never empties out from under a producer.
    if (head_.load(std::memory_order_acquire) != tail) {
      return nullptr;  // a push is mid-flight; its store will link tail->next
    }
    push_hook(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return static_cast<T*>(tail);
    }
    return nullptr;  // another producer got between; retry later
  }

  /// Advisory (single-consumer): true when no item is visible.
  [[nodiscard]] bool empty() const noexcept {
    return tail_ == &stub_ &&
           tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  void push_hook(MpscHook* node) noexcept {
    node->next.store(nullptr, std::memory_order_relaxed);
    MpscHook* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // head_ is the producers' end (most recently pushed), tail_ the
  // consumer's end; stub_ keeps the list non-empty so push never races an
  // empty->non-empty transition.
  alignas(64) std::atomic<MpscHook*> head_;
  alignas(64) MpscHook* tail_;
  MpscHook stub_;
};

}  // namespace mcp::service
