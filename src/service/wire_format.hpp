// mcpwire v1 — the binary, zero-copy trace/request wire format of the mcpd
// service layer (docs/MCPD.md has the full spec tables).
//
// A wire *document* is a contiguous little-endian byte buffer (a file, an
// mmap'd region, or an in-process message) laid out as:
//
//   magic "MCPWIRE1" (8 bytes)
//   frame*
//
// and every frame is
//
//   u32 type        FrameType below
//   u32 payload_len bytes, always a multiple of 8 (alignment invariant)
//   u64 session     session id the frame addresses
//   payload_len bytes of payload
//
// so a reader walks frames with header arithmetic only and hands out
// *views* into the buffer — request chunks are never re-parsed per request
// the way the mcptrace text format is (core/trace_io.hpp).  All integers
// are little-endian; the load/store helpers below compile to plain loads
// on little-endian targets and byte-swap elsewhere.
//
// Request frames:    kSessionOpen, kRequestChunk, kRequestRun,
//                    kSessionClose, kQueryFaults, kQueryFaultCurve,
//                    kQueryPartition.
// Response frames:   kFaultCounts, kFaultCurve, kPartitionAdvice, kError.
//
// encode_trace()/decode_trace() convert between a materialized RequestSet
// and a single-session wire document, so every existing text trace feeds
// the daemon: read_trace() -> encode_trace() is the text-to-binary
// converter, and the round trip is bit-exact (tests/service).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/error.hpp"
#include "core/request.hpp"
#include "core/types.hpp"

namespace mcp::wire {

inline constexpr std::array<char, 8> kMagic = {'M', 'C', 'P', 'W',
                                               'I', 'R', 'E', '1'};
inline constexpr std::size_t kMagicSize = kMagic.size();
inline constexpr std::size_t kFrameHeaderSize = 16;

/// Spec-level sanity bounds.  A session open whose fields exceed these is
/// rejected before any allocation is sized from them, so a corrupted (or
/// hostile) document cannot make the decoder or the daemon reserve
/// memory proportional to an attacker-chosen 32-bit value.
inline constexpr std::uint32_t kMaxWireCores = 1u << 16;
inline constexpr std::uint32_t kMaxWireCacheCells = 1u << 28;

enum class FrameType : std::uint32_t {
  kSessionOpen = 1,
  kRequestChunk = 2,
  kSessionClose = 3,
  kQueryFaults = 4,
  kQueryFaultCurve = 5,
  kQueryPartition = 6,
  kFaultCounts = 7,
  kFaultCurve = 8,
  kPartitionAdvice = 9,
  kError = 10,
  kRequestRun = 11,
};

/// The strategy a session runs; the service instantiates the matching
/// library strategy object at session open (mcpd.cpp).
enum class StrategyKind : std::uint32_t {
  kSharedLru = 0,       ///< S_LRU: one shared LRU over the whole cache.
  kSharedFifo = 1,      ///< S_FIFO.
  kStaticEvenLru = 2,   ///< sP^even_LRU: even static partition, LRU parts.
  kStaticEvenFifo = 3,  ///< sP^even_FIFO.
};

[[nodiscard]] std::string to_string(StrategyKind kind);

/// kSessionOpen payload (16 bytes): the session's model parameters.
struct SessionParams {
  std::uint32_t num_cores = 0;      ///< p
  std::uint32_t cache_size = 0;     ///< K
  std::uint32_t fault_penalty = 0;  ///< tau
  StrategyKind strategy = StrategyKind::kSharedLru;

  friend bool operator==(const SessionParams&, const SessionParams&) = default;
};
// Wire-layout invariants (the kSessionOpen encoder/decoder walk fields at
// these offsets; see encode/decode in wire_format.cpp).
static_assert(std::is_trivially_copyable_v<SessionParams>);
static_assert(std::is_standard_layout_v<SessionParams>);
static_assert(sizeof(SessionParams) == 16 && alignof(SessionParams) == 4);
static_assert(offsetof(SessionParams, num_cores) == 0);
static_assert(offsetof(SessionParams, cache_size) == 4);
static_assert(offsetof(SessionParams, fault_penalty) == 8);
static_assert(offsetof(SessionParams, strategy) == 12);
static_assert(sizeof(StrategyKind) == 4 && sizeof(FrameType) == 4);

/// One (core, page) request pair as it travels in a kRequestChunk payload.
struct WirePair {
  std::uint32_t core = 0;
  std::uint32_t page = 0;

  friend bool operator==(const WirePair&, const WirePair&) = default;
};
// A kRequestChunk payload is `count x WirePair` with no padding: the pair
// array's in-memory layout must equal its wire layout field-for-field.
static_assert(std::is_trivially_copyable_v<WirePair>);
static_assert(std::is_standard_layout_v<WirePair>);
static_assert(sizeof(WirePair) == 8 && alignof(WirePair) == 4);
static_assert(offsetof(WirePair, core) == 0);
static_assert(offsetof(WirePair, page) == 4);

// The frame header is `u32 type, u32 payload_len, u64 session`.
static_assert(kFrameHeaderSize ==
              2 * sizeof(std::uint32_t) + sizeof(std::uint64_t));

// --- little-endian primitives ----------------------------------------------

[[nodiscard]] inline std::uint32_t load_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
        ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
  }
  return v;
}

[[nodiscard]] inline std::uint64_t load_u64(const std::byte* p) noexcept {
  const std::uint64_t lo = load_u32(p);
  const std::uint64_t hi = load_u32(p + 4);
  return lo | (hi << 32);
}

inline void store_u32(std::byte* p, std::uint32_t v) noexcept {
  if constexpr (std::endian::native == std::endian::big) {
    v = ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
        ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
  }
  std::memcpy(p, &v, sizeof(v));
}

inline void store_u64(std::byte* p, std::uint64_t v) noexcept {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

// --- frame views -----------------------------------------------------------

/// One parsed frame: a (type, session, payload) view into the document
/// buffer.  The payload span aliases the buffer — zero copies; the buffer
/// must outlive the view.
struct FrameView {
  FrameType type = FrameType::kSessionOpen;
  std::uint64_t session = 0;
  std::span<const std::byte> payload;
};

/// kRequestChunk payload view: `u32 count, u32 reserved, count x WirePair`.
/// pair(i) decodes in place — the pairs are never materialized unless the
/// consumer copies them.
class ChunkView {
 public:
  explicit ChunkView(const FrameView& frame);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] WirePair pair(std::size_t i) const noexcept {
    const std::byte* p = data_ + i * sizeof(WirePair);
    return WirePair{load_u32(p), load_u32(p + 4)};
  }

 private:
  const std::byte* data_ = nullptr;
  std::size_t count_ = 0;
};

/// kRequestRun payload view: `u32 core, u32 count, count x u32 page`,
/// padded to the format's 8-byte alignment.  The compact form of
/// kRequestChunk for a single core's consecutive requests — the shape
/// every encoder here emits anyway — at half the bytes per pair; on a
/// little-endian host the page array is already a PageId array, so the
/// ingest path reduces to a bulk copy (page_bytes()).
class RunView {
 public:
  explicit RunView(const FrameView& frame);

  [[nodiscard]] std::uint32_t core() const noexcept { return core_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] PageId page(std::size_t i) const noexcept {
    return load_u32(data_ + i * 4);
  }
  /// The run's raw little-endian page words (size() * 4 bytes, 4-aligned).
  [[nodiscard]] const std::byte* page_bytes() const noexcept { return data_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t count_ = 0;
  std::uint32_t core_ = 0;
};
// page_bytes() hands the wire words to a bulk memcpy into PageId storage
// on little-endian hosts (mcpd ingest): a page word and a PageId must be
// the same 4 bytes, and the endianness must be one the load/store
// primitives handle (no mixed/PDP byte orders).
static_assert(sizeof(PageId) == 4 && std::is_trivially_copyable_v<PageId>);
static_assert(std::endian::native == std::endian::little ||
              std::endian::native == std::endian::big);

/// kQueryFaults / kQueryFaultCurve / kQueryPartition payload:
/// `u64 query_id, u32 max_k, u32 reserved` (max_k used by curve queries).
struct QueryView {
  std::uint64_t query_id = 0;
  std::uint32_t max_k = 0;
};

/// kFaultCounts payload: per-core fault totals and completion times of the
/// session as simulated so far, plus whether the session has finished (all
/// cores ended after a kSessionClose).
struct FaultCountsReply {
  std::uint64_t query_id = 0;
  bool finished = false;
  Count requests_served = 0;
  std::vector<Count> per_core_faults;
  std::vector<Time> completion_times;
  Time end_time = 0;
};

/// kFaultCurve payload: per-core LRU fault curves f_j(0..max_k) of the
/// session's trace (Mattson kernel, policies/mattson.hpp).
struct FaultCurveReply {
  std::uint64_t query_id = 0;
  std::uint32_t max_k = 0;
  std::vector<std::vector<Count>> curves;  ///< [core][k], k = 0..max_k.
};

/// kPartitionAdvice payload: a static partition minimizing the summed LRU
/// fault curves over the session's trace (>= 1 cell per core).
struct PartitionAdviceReply {
  std::uint64_t query_id = 0;
  std::vector<std::uint32_t> cells_per_core;
  Count predicted_faults = 0;
};

/// kError payload: a query the daemon could not answer (infeasible
/// parameters, parked-query overflow, or an answer-time failure).  Sent in
/// place of the normal reply so blocking clients fail instead of waiting
/// forever.
struct ErrorReply {
  std::uint64_t query_id = 0;
  std::string message;
};

// --- writer ----------------------------------------------------------------

/// Append-only wire document builder.  A default-constructed writer starts
/// a fresh document (magic included); take() yields the bytes.
class WireWriter {
 public:
  WireWriter();

  void session_open(std::uint64_t session, const SessionParams& params);
  void request_chunk(std::uint64_t session, std::span<const WirePair> pairs);
  /// Chunk of one core's pages (the common converter shape).
  void request_chunk(std::uint64_t session, std::uint32_t core,
                     std::span<const PageId> pages);
  /// Same requests as the single-core request_chunk at half the wire
  /// bytes (kRequestRun).
  void request_run(std::uint64_t session, std::uint32_t core,
                   std::span<const PageId> pages);
  void session_close(std::uint64_t session);
  void query_faults(std::uint64_t session, std::uint64_t query_id);
  void query_fault_curve(std::uint64_t session, std::uint64_t query_id,
                         std::uint32_t max_k);
  void query_partition(std::uint64_t session, std::uint64_t query_id);

  void fault_counts(std::uint64_t session, const FaultCountsReply& reply);
  void fault_curve(std::uint64_t session, const FaultCurveReply& reply);
  void partition_advice(std::uint64_t session,
                        const PartitionAdviceReply& reply);
  void error_reply(std::uint64_t session, const ErrorReply& reply);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return buf_;
  }

 private:
  /// Opens a frame, returns the payload's offset in buf_.
  std::size_t begin_frame(FrameType type, std::uint64_t session,
                          std::size_t payload_len);

  std::vector<std::byte> buf_;
};

// --- reader ----------------------------------------------------------------

/// Walks the frames of a wire document.  Malformed input throws InputError
/// naming the byte offset of the defect; a clean end returns false from
/// next().  The reader never copies payload bytes.
class WireReader {
 public:
  /// Validates the magic; `data` must stay alive while views are used.
  explicit WireReader(std::span<const std::byte> data);

  /// Advances to the next frame.  False at a clean end of document.
  bool next(FrameView& frame);

  /// Current read position (bytes from the start of the document).
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Parses a frame *without* the document magic (the shard ingress path:
/// frames are routed individually).  `offset_in_doc` seeds error messages.
[[nodiscard]] FrameView parse_frame(std::span<const std::byte> bytes,
                                    std::size_t offset_in_doc = 0);

// Payload decoders (validate lengths; throw InputError on mismatch).
[[nodiscard]] SessionParams decode_session_open(const FrameView& frame);
[[nodiscard]] QueryView decode_query(const FrameView& frame);
[[nodiscard]] FaultCountsReply decode_fault_counts(const FrameView& frame);
[[nodiscard]] FaultCurveReply decode_fault_curve(const FrameView& frame);
[[nodiscard]] PartitionAdviceReply decode_partition_advice(
    const FrameView& frame);
[[nodiscard]] ErrorReply decode_error(const FrameView& frame);

// --- trace conversion (text <-> binary) ------------------------------------

/// Encodes `requests` as a single-session wire document: kSessionOpen,
/// round-robin kRequestChunk frames of at most `chunk_pairs` pairs each
/// (cores interleaved chunk-by-chunk, preserving every core's order), and
/// kSessionClose.  This is the bridge from the text formats: feed it the
/// result of read_trace()/read_trace_pairs().
[[nodiscard]] std::vector<std::byte> encode_trace(
    const RequestSet& requests, std::uint64_t session,
    const SessionParams& params, std::size_t chunk_pairs = 256);

/// A decoded single-session trace document.
struct DecodedTrace {
  std::uint64_t session = 0;
  SessionParams params;
  RequestSet requests;
  bool closed = false;
};

/// Replays a single-session document's open/chunk/close frames back into a
/// RequestSet.  Throws InputError on multi-session documents, frames after
/// close, chunks before open, or any malformed frame.
[[nodiscard]] DecodedTrace decode_trace(std::span<const std::byte> data);

/// File conveniences (whole-file read/write; the format is mmap-able but
/// plain buffered I/O keeps these dependency-free).
void save_wire_trace(const std::string& path, const RequestSet& requests,
                     std::uint64_t session, const SessionParams& params,
                     std::size_t chunk_pairs = 256);
[[nodiscard]] DecodedTrace load_wire_trace(const std::string& path);

}  // namespace mcp::wire
